//! Unified observability: lock-free counters, log₂-bucketed histograms,
//! sampled stage timers, a connection flight recorder, and the
//! [`Telemetry`] registry that renders them all for the admin endpoint.
//!
//! Everything a hot path touches here is a relaxed atomic on
//! pre-allocated storage — recording a latency sample, a frame size, or
//! a flight-recorder event never allocates, never locks, and never
//! blocks another thread (`crates/core/tests/zero_alloc.rs` pins the
//! steady-state codec/relay paths at zero allocations *with* this
//! instrumentation enabled). The read side — snapshots, percentile
//! math, Prometheus rendering, event dumps — runs on the admin plane
//! and may allocate freely.
//!
//! The module grew out of `protoobf-transport`'s metrics (which now
//! re-exports it): hoisting it into core lets one registry aggregate
//! transport [`Metrics`] *and* [`crate::service::ServiceStats`] without
//! a dependency cycle.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::service::CodecService;

/// Log-bucketed bucket count of [`LatencyHistogram`]: bucket `i` holds
/// values whose bit length is `i` (bucket 0 is exactly zero, bucket 1 is
/// 1, bucket 2 is 2–3, ... bucket 39 is everything ≥ 2³⁸ µs ≈ 76 h).
/// Forty buckets span nanoscale to absurd with ~2× resolution — plenty
/// for p50/p95/p99 tuning.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A lock-free log₂-bucketed histogram. Despite the name it is a
/// general value histogram — the gateway records frame *sizes* through
/// the same type. Recording is two relaxed `fetch_add`s — cheap enough
/// for the event loop's per-wake hot path — and percentiles are
/// computed from a snapshot, so readers never block writers.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Sum of every recorded value (for Prometheus `_sum` / mean).
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// The bucket index a value lands in: its bit length, clamped to the
    /// last bucket.
    pub fn bucket_of(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The largest value bucket `i` can hold (the value percentiles
    /// report): `0` for bucket 0, `2^i - 1` for the rest, `u64::MAX` for
    /// the clamp bucket.
    pub fn bucket_ceiling(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one value (relaxed; never blocks, never allocates).
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Folds a frozen snapshot into this histogram — the aggregation
    /// primitive for registries that combine per-worker or per-plane
    /// histograms into one scrape series.
    pub fn merge(&self, other: &HistogramSnapshot) {
        for (bucket, &n) in self.buckets.iter().zip(&other.buckets) {
            if n != 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets, sum: self.sum.load(Ordering::Relaxed) }
    }
}

/// A frozen [`LatencyHistogram`], from [`LatencyHistogram::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Raw per-bucket counts; see [`LatencyHistogram::bucket_of`] for the
    /// boundaries.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of every recorded value.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The counts recorded since `prev` was taken: per-bucket (and sum)
    /// saturating difference. With `prev` the previous scrape's
    /// snapshot, the result's percentiles are *per-interval* — the
    /// latency shape of the last scrape window, not of the process
    /// lifetime. Saturation (rather than wrap) keeps a mismatched or
    /// restarted `prev` harmless: stale buckets clamp to zero.
    pub fn delta(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, (&now, &old)) in buckets.iter_mut().zip(self.buckets.iter().zip(&prev.buckets)) {
            *out = now.saturating_sub(old);
        }
        HistogramSnapshot { buckets, sum: self.sum.saturating_sub(prev.sum) }
    }

    /// The value at percentile `p` (0–100): the ceiling of the first
    /// bucket whose cumulative count reaches `p`% of the total, i.e. an
    /// upper bound within one 2× bucket of the true percentile. Zero on
    /// an empty histogram.
    pub fn percentile(&self, p: u8) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // ceil(total * p / 100), saturating: the rank of the percentile.
        // At least 1 so p0 reports the smallest recorded value's bucket,
        // not an empty leading bucket.
        let rank = total.saturating_mul(u64::from(p.min(100))).div_ceil(100).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return LatencyHistogram::bucket_ceiling(i);
            }
        }
        LatencyHistogram::bucket_ceiling(HISTOGRAM_BUCKETS - 1)
    }

    /// Median upper bound, `percentile(50)`.
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// `percentile(95)`.
    pub fn p95(&self) -> u64 {
        self.percentile(95)
    }

    /// `percentile(99)`.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }
}

/// Every how many calls a [`StageTimer`] actually reads the clock. A
/// power of two so the arm check is one mask on a relaxed counter; at
/// 1/32 the pair of `Instant` calls amortizes to noise even on the
/// per-message relay path while percentiles still converge within a few
/// thousand messages.
pub const STAGE_SAMPLE_PERIOD: u64 = 32;

/// A sampled latency timer for one codec stage. Every call bumps a
/// relaxed counter; every [`STAGE_SAMPLE_PERIOD`]th call arms a clock
/// read whose elapsed nanoseconds land in a [`LatencyHistogram`]. The
/// un-sampled calls cost one `fetch_add` — the clock syscall stays off
/// the per-byte path, which is what lets the zero-alloc/hot-loop
/// guarantees hold with timing enabled.
#[derive(Debug, Default)]
pub struct StageTimer {
    calls: AtomicU64,
    /// Sampled stage latency in **nanoseconds** (stage work is sub-µs).
    pub latency: LatencyHistogram,
}

impl StageTimer {
    /// Creates an idle timer.
    pub fn new() -> StageTimer {
        StageTimer::default()
    }

    /// Counts one call and, on sampled calls, returns an armed start
    /// instant to hand back to [`StageTimer::finish`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        (n & (STAGE_SAMPLE_PERIOD - 1) == 0).then(Instant::now)
    }

    /// Records an armed sample; a `None` pass-through is free. Dropping
    /// an armed instant instead (e.g. the stage bailed early) simply
    /// under-samples — never skews.
    #[inline]
    pub fn finish(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.latency.record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Total calls counted (sampled or not).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Frozen copy: total calls + sampled latency distribution.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot { calls: self.calls(), latency: self.latency.snapshot() }
    }
}

/// A frozen [`StageTimer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Total stage invocations (every call, sampled or not).
    pub calls: u64,
    /// Sampled latency distribution, nanoseconds.
    pub latency: HistogramSnapshot,
}

/// The three codec stages a relay runs per message, each behind a
/// sampled [`StageTimer`]: `serialize` (message → wire bytes, including
/// framing), `parse` (wire bytes → message), `transcode` (compiled
/// copy-program run between codecs).
#[derive(Debug, Default)]
pub struct StageTimers {
    pub serialize: StageTimer,
    pub parse: StageTimer,
    pub transcode: StageTimer,
}

impl StageTimers {
    /// Frozen copy of all three stages.
    pub fn snapshot(&self) -> StagesSnapshot {
        StagesSnapshot {
            serialize: self.serialize.snapshot(),
            parse: self.parse.snapshot(),
            transcode: self.transcode.snapshot(),
        }
    }
}

/// Frozen [`StageTimers`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagesSnapshot {
    pub serialize: StageSnapshot,
    pub parse: StageSnapshot,
    pub transcode: StageSnapshot,
}

/// Connection lifecycle event kinds recorded by the [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A session was accepted and registered with the event loop.
    Accept = 0,
    /// Accept-time failure (socket setup, upstream dial): `detail` is a
    /// transport error code when the factory reported one, else 0.
    AcceptError = 1,
    /// A session finished cleanly.
    Close = 2,
    /// A session was torn down by a typed transport error; `detail`
    /// carries the error's stable numeric code.
    Fail = 3,
    /// A backpressure stall *edge*: the session's outbound cap closed
    /// its read gate (`detail` = queued bytes at the stall).
    Backpressure = 4,
    /// Event-loop shutdown dropped the session mid-flight.
    Shutdown = 5,
}

impl EventKind {
    fn from_u64(v: u64) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::Accept,
            1 => EventKind::AcceptError,
            2 => EventKind::Close,
            3 => EventKind::Fail,
            4 => EventKind::Backpressure,
            5 => EventKind::Shutdown,
            _ => return None,
        })
    }

    /// Stable lowercase name, as rendered at `/events`.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Accept => "accept",
            EventKind::AcceptError => "accept-error",
            EventKind::Close => "close",
            EventKind::Fail => "fail",
            EventKind::Backpressure => "backpressure",
            EventKind::Shutdown => "shutdown",
        }
    }
}

/// Packs a peer address into the opaque `u64` token that flight-recorder
/// events carry. IPv4 round-trips losslessly (`ip << 16 | port`, upper
/// 16 bits zero); IPv6 is FNV-1a-hashed with the port mixed in and its
/// top bit forced so the two shapes cannot collide.
pub fn peer_token(addr: &SocketAddr) -> u64 {
    match addr {
        SocketAddr::V4(v4) => {
            (u64::from(u32::from_be_bytes(v4.ip().octets())) << 16) | u64::from(v4.port())
        }
        SocketAddr::V6(v6) => {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in v6.ip().octets() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            h = (h ^ u64::from(v6.port())).wrapping_mul(0x0000_0100_0000_01b3);
            h | (1 << 63)
        }
    }
}

/// Renders a [`peer_token`] for humans: decoded `a.b.c.d:port` when it
/// carries an IPv4 address, bare hex otherwise.
pub fn format_token(token: u64) -> String {
    if token != 0 && token >> 48 == 0 {
        let ip = (token >> 16) as u32;
        let [a, b, c, d] = ip.to_be_bytes();
        format!("{a}.{b}.{c}.{d}:{}", token & 0xffff)
    } else {
        format!("{token:#018x}")
    }
}

/// Slots in a default-capacity [`FlightRecorder`]. Power of two (the
/// ring index is a mask).
pub const FLIGHT_RECORDER_CAPACITY: usize = 1024;

/// One pre-allocated recorder slot. A per-slot sequence implements a
/// seqlock: the writer publishes `2·index + 1` (odd: in progress),
/// writes the fields, then `2·index + 2` (even: stable), so a reader
/// that observes the same even sequence before and after its field
/// reads holds a consistent event.
#[derive(Debug)]
struct EventSlot {
    seq: AtomicU64,
    micros: AtomicU64,
    kind: AtomicU64,
    token: AtomicU64,
    detail: AtomicU64,
}

/// A fixed-capacity lock-free ring of recent connection lifecycle
/// events — the black box a long-lived gateway dumps at `/events` to
/// reconstruct *what happened* around a teardown or a backpressure
/// stall without any log volume on the happy path.
///
/// Recording claims a slot with one `fetch_add` on the head counter and
/// publishes through the slot seqlock — no allocation, no lock, safe
/// from any number of threads. The ring keeps the most recent
/// `capacity` events; older ones are overwritten. Reading
/// ([`FlightRecorder::dump`]) is best-effort by design: a slot caught
/// mid-write is skipped, and a reader racing ≥ `capacity` concurrent
/// writes may drop a torn slot — acceptable for a postmortem aid,
/// disqualifying for billing.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    /// Total events ever recorded (head of the ring).
    head: AtomicU64,
    slots: Box<[EventSlot]>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(FLIGHT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the `capacity` most recent events (rounded up
    /// to a power of two, min 2).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.next_power_of_two().max(2);
        FlightRecorder {
            epoch: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| EventSlot {
                    seq: AtomicU64::new(0),
                    micros: AtomicU64::new(0),
                    kind: AtomicU64::new(0),
                    token: AtomicU64::new(0),
                    detail: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (≥ what [`FlightRecorder::dump`]
    /// returns once the ring has wrapped).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event: relaxed atomics on pre-allocated slots only —
    /// hot-path safe.
    pub fn record(&self, kind: EventKind, token: u64, detail: u64) {
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n as usize) & (self.slots.len() - 1)];
        slot.seq.store(n.wrapping_mul(2) + 1, Ordering::Release);
        slot.micros.store(self.epoch.elapsed().as_micros() as u64, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.token.store(token, Ordering::Relaxed);
        slot.detail.store(detail, Ordering::Relaxed);
        slot.seq.store(n.wrapping_mul(2) + 2, Ordering::Release);
    }

    /// Snapshots the ring: stable events, oldest first. Admin-plane
    /// only (allocates the result vector).
    pub fn dump(&self) -> Vec<FlightEvent> {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // never written / mid-write
            }
            let micros = slot.micros.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let token = slot.token.load(Ordering::Relaxed);
            let detail = slot.detail.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != before {
                continue; // overwritten while reading
            }
            let Some(kind) = EventKind::from_u64(kind) else { continue };
            events.push(FlightEvent { index: before / 2 - 1, micros, kind, token, detail });
        }
        events.sort_unstable_by_key(|e| e.index);
        events
    }
}

/// One stable event out of [`FlightRecorder::dump`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone event number (0 = first event since process start).
    pub index: u64,
    /// Microseconds since the recorder was created.
    pub micros: u64,
    pub kind: EventKind,
    /// Peer token ([`peer_token`]); 0 when the session has no peer.
    pub token: u64,
    /// Kind-specific payload: error code for [`EventKind::Fail`], queued
    /// bytes for [`EventKind::Backpressure`], else 0.
    pub detail: u64,
}

impl std::fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{:06} +{}.{:06}s {:<12} peer={}",
            self.index,
            self.micros / 1_000_000,
            self.micros % 1_000_000,
            self.kind.name(),
            format_token(self.token),
        )?;
        if self.detail != 0 {
            write!(f, " detail={}", self.detail)?;
        }
        Ok(())
    }
}

/// Cumulative transport + codec-stage counters. All fields are relaxed
/// atomics on pre-allocated storage — cheap enough for per-chunk
/// increments on the hot path. Share by reference (the event loop takes
/// `&Metrics`) or wrap in an `Arc` for reporting threads and the admin
/// endpoint.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted by the event loop.
    pub accepted: AtomicU64,
    /// Accept-time failures (socket setup, upstream dial, handshake).
    pub accept_errors: AtomicU64,
    /// Sessions that finished cleanly.
    pub closed: AtomicU64,
    /// Sessions torn down by a typed transport error (hostile frames,
    /// socket failures).
    pub failed: AtomicU64,
    /// Messages decoded from transport bytes.
    pub messages_in: AtomicU64,
    /// Messages re-encoded onto transport bytes (relay: after transcode).
    pub messages_out: AtomicU64,
    /// Messages transcoded between codecs (compiled copy-program runs on
    /// the gateway relay / echo hot path). For a healthy relay this
    /// tracks `messages_in`; a lag means messages decoded but not yet
    /// re-expressed.
    pub transcodes: AtomicU64,
    /// Raw bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Raw bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// Idle backoff naps taken by event-loop workers on the readiness-
    /// scan fallback path (the epoll path sleeps in the kernel instead
    /// and never naps). High and climbing while traffic flows = workers
    /// starved of readiness, consider more workers; high while idle =
    /// normal.
    pub idle_naps: AtomicU64,
    /// Cumulative microseconds spent in idle backoff sleeps — with
    /// [`Metrics::idle_naps`], the full shape of the backoff envelope
    /// (many short naps vs. few capped ones).
    pub idle_nap_micros: AtomicU64,
    /// Wake-servicing latency in microseconds: for every event-loop wake
    /// that found work, the time from discovering readiness to having
    /// driven every ready session back to idle. The percentiles bound
    /// how long a ready connection waits for its worker — the C10K
    /// health metric (an O(n) readiness scan shows up here long before
    /// throughput collapses).
    pub wake_latency: LatencyHistogram,
    /// Stalls where a session's outbound cap paused its ingestion (the
    /// relay/echo read gate closed mid-pass; see the transport crate's
    /// `TransportError::Backpressure`). Edge-detected: a stall spanning
    /// many drives counts once.
    pub backpressure_events: AtomicU64,
    /// Covert-tunnel payload bytes recovered from inbound cover messages
    /// and handed to the local sink — tunnel *goodput*, as opposed to
    /// [`Metrics::bytes_in`] which counts the (much larger) cover wire.
    pub payload_bytes_in: AtomicU64,
    /// Covert-tunnel payload bytes consumed from the local source and
    /// folded into outbound cover messages. `bytes_out /
    /// payload_bytes_out` is the live overhead ratio.
    pub payload_bytes_out: AtomicU64,
    /// Distribution of decoded inbound frame lengths (payload bytes).
    /// With [`Metrics::frame_bytes_out`], the traffic-shape series the
    /// ScrambleSuit-style morphing roadmap item consumes.
    pub frame_bytes_in: LatencyHistogram,
    /// Distribution of encoded outbound frame lengths (wire bytes,
    /// length prefix included).
    pub frame_bytes_out: LatencyHistogram,
    /// Sampled per-stage codec latency (serialize / parse / transcode).
    pub stages: StageTimers,
    /// Connection lifecycle ring buffer, dumped at `/events`.
    pub recorder: FlightRecorder,
}

impl Metrics {
    /// Creates zeroed counters and an empty flight recorder.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// One relaxed increment — the idiom every hot-path call site uses.
    pub fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            messages_in: self.messages_in.load(Ordering::Relaxed),
            messages_out: self.messages_out.load(Ordering::Relaxed),
            transcodes: self.transcodes.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            idle_naps: self.idle_naps.load(Ordering::Relaxed),
            idle_nap_micros: self.idle_nap_micros.load(Ordering::Relaxed),
            wake_latency: self.wake_latency.snapshot(),
            backpressure_events: self.backpressure_events.load(Ordering::Relaxed),
            payload_bytes_in: self.payload_bytes_in.load(Ordering::Relaxed),
            payload_bytes_out: self.payload_bytes_out.load(Ordering::Relaxed),
            frame_bytes_in: self.frame_bytes_in.snapshot(),
            frame_bytes_out: self.frame_bytes_out.snapshot(),
            stages: self.stages.snapshot(),
        }
    }
}

/// A frozen copy of [`Metrics`], from [`Metrics::snapshot`] (the flight
/// recorder is dumped separately — events are not a counter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub accepted: u64,
    pub accept_errors: u64,
    pub closed: u64,
    pub failed: u64,
    pub messages_in: u64,
    pub messages_out: u64,
    pub transcodes: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub idle_naps: u64,
    pub idle_nap_micros: u64,
    /// Wake-servicing latency distribution (µs); see
    /// [`Metrics::wake_latency`].
    pub wake_latency: HistogramSnapshot,
    pub backpressure_events: u64,
    /// Tunnel payload goodput delivered to the local sink (bytes).
    pub payload_bytes_in: u64,
    /// Tunnel payload goodput taken from the local source (bytes).
    pub payload_bytes_out: u64,
    /// Inbound frame-length distribution (bytes).
    pub frame_bytes_in: HistogramSnapshot,
    /// Outbound frame-length distribution (bytes).
    pub frame_bytes_out: HistogramSnapshot,
    /// Sampled codec-stage latencies (ns).
    pub stages: StagesSnapshot,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conns {} accepted / {} closed / {} failed ({} accept errors); \
             msgs {} in / {} transcoded / {} out; bytes {} in / {} out; \
             payload {} in / {} out; \
             {} idle naps ({} µs); {} backpressure events; \
             wake latency p50/p95/p99 {}/{}/{} µs over {} wakes",
            self.accepted,
            self.closed,
            self.failed,
            self.accept_errors,
            self.messages_in,
            self.transcodes,
            self.messages_out,
            self.bytes_in,
            self.bytes_out,
            self.payload_bytes_in,
            self.payload_bytes_out,
            self.idle_naps,
            self.idle_nap_micros,
            self.backpressure_events,
            self.wake_latency.p50(),
            self.wake_latency.p95(),
            self.wake_latency.p99(),
            self.wake_latency.count(),
        )
    }
}

/// The unified observability registry behind the admin endpoint: one
/// [`Metrics`] (transport counters + stage timers + flight recorder)
/// plus any number of named [`CodecService`]s whose
/// [`crate::service::ServiceStats`] become per-service gauge/counter series. Renders
/// the whole lot as Prometheus text exposition (`/metrics`), a flight-
/// recorder dump (`/events`), or a human summary (the CLI's final
/// line). Cheap to build — services register as `Arc` clones.
#[derive(Debug)]
pub struct Telemetry {
    metrics: Arc<Metrics>,
    services: Vec<(String, Arc<CodecService>)>,
    started: Instant,
    /// Previous scrape's snapshot: `/metrics` reports *interval*
    /// percentiles (this scrape minus the last) next to cumulative
    /// ones, via [`HistogramSnapshot::delta`].
    last_scrape: Mutex<Option<MetricsSnapshot>>,
}

impl Telemetry {
    /// A registry over one shared metrics block.
    pub fn new(metrics: Arc<Metrics>) -> Telemetry {
        Telemetry {
            metrics,
            services: Vec::new(),
            started: Instant::now(),
            last_scrape: Mutex::new(None),
        }
    }

    /// Registers a named codec service. Re-registering the same service
    /// (by `Arc` identity) is a no-op — a symmetric gateway's four legs
    /// collapse to the two distinct services they share.
    pub fn register_service(&mut self, name: &str, service: &Arc<CodecService>) {
        if !self.services.iter().any(|(_, s)| Arc::ptr_eq(s, service)) {
            self.services.push((name.to_string(), Arc::clone(service)));
        }
    }

    /// The shared metrics block.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Registered `(name, service)` pairs, registration order.
    pub fn services(&self) -> &[(String, Arc<CodecService>)] {
        &self.services
    }

    /// The `/metrics` body: Prometheus text exposition format 0.0.4.
    /// Counters end in `_total`, latency summaries carry
    /// p50/p95/p99 `quantile` labels (cumulative and `_interval_` since
    /// the previous scrape), frame sizes are cumulative `le` histograms,
    /// and every registered service contributes labeled series.
    pub fn render_prometheus(&self) -> String {
        let snap = self.metrics.snapshot();
        let prev = {
            let mut last = self.last_scrape.lock().unwrap_or_else(|e| e.into_inner());
            last.replace(snap)
        };

        let mut out = String::with_capacity(4096);
        let counters: [(&str, &str, u64); 14] = [
            ("accepted", "Connections accepted by the event loop", snap.accepted),
            ("accept_errors", "Accept-time failures", snap.accept_errors),
            ("closed", "Sessions finished cleanly", snap.closed),
            ("failed", "Sessions torn down by a transport error", snap.failed),
            ("messages_in", "Messages decoded from transport bytes", snap.messages_in),
            ("messages_out", "Messages re-encoded onto transport bytes", snap.messages_out),
            ("transcodes", "Messages transcoded between codecs", snap.transcodes),
            ("bytes_in", "Raw bytes read off sockets", snap.bytes_in),
            ("bytes_out", "Raw bytes written to sockets", snap.bytes_out),
            (
                "payload_bytes_in",
                "Tunnel payload goodput delivered to the local sink",
                snap.payload_bytes_in,
            ),
            (
                "payload_bytes_out",
                "Tunnel payload goodput taken from the local source",
                snap.payload_bytes_out,
            ),
            ("idle_naps", "Idle backoff naps (scan backend)", snap.idle_naps),
            ("idle_nap_micros", "Microseconds slept in idle backoff", snap.idle_nap_micros),
            (
                "backpressure_events",
                "Outbound-cap read-gate stalls (edge-detected)",
                snap.backpressure_events,
            ),
        ];
        for (name, help, value) in counters {
            use std::fmt::Write;
            let _ = writeln!(out, "# HELP protoobf_{name}_total {help}");
            let _ = writeln!(out, "# TYPE protoobf_{name}_total counter");
            let _ = writeln!(out, "protoobf_{name}_total {value}");
        }

        render_summary(&mut out, "protoobf_wake_latency_micros", "", &snap.wake_latency);
        if let Some(prev) = &prev {
            render_summary(
                &mut out,
                "protoobf_wake_latency_interval_micros",
                "",
                &snap.wake_latency.delta(&prev.wake_latency),
            );
        }

        for (stage, cur, old) in [
            ("serialize", &snap.stages.serialize, prev.as_ref().map(|p| &p.stages.serialize)),
            ("parse", &snap.stages.parse, prev.as_ref().map(|p| &p.stages.parse)),
            ("transcode", &snap.stages.transcode, prev.as_ref().map(|p| &p.stages.transcode)),
        ] {
            use std::fmt::Write;
            let _ = writeln!(out, "protoobf_stage_calls_total{{stage=\"{stage}\"}} {}", cur.calls);
            let label = format!("{{stage=\"{stage}\"}}");
            render_summary(&mut out, "protoobf_stage_latency_nanos", &label, &cur.latency);
            if let Some(old) = old {
                render_summary(
                    &mut out,
                    "protoobf_stage_latency_interval_nanos",
                    &label,
                    &cur.latency.delta(&old.latency),
                );
            }
        }

        render_histogram(&mut out, "protoobf_frame_bytes", "in", &snap.frame_bytes_in);
        render_histogram(&mut out, "protoobf_frame_bytes", "out", &snap.frame_bytes_out);

        for (name, service) in &self.services {
            use std::fmt::Write;
            let s = service.stats();
            let label = format!("{{service=\"{name}\"}}");
            let _ = writeln!(out, "protoobf_service_shards{label} {}", s.shards);
            let _ = writeln!(
                out,
                "protoobf_service_pooled_serializers{label} {}",
                s.pooled_serializers
            );
            let _ = writeln!(out, "protoobf_service_pooled_parsers{label} {}", s.pooled_parsers);
            let _ = writeln!(
                out,
                "protoobf_service_pooled_serializers_peak{label} {}",
                s.pooled_serializer_peak
            );
            let _ = writeln!(
                out,
                "protoobf_service_pooled_parsers_peak{label} {}",
                s.pooled_parser_peak
            );
            let _ =
                writeln!(out, "protoobf_service_serialized_total{label} {}", s.serialized_messages);
            let _ = writeln!(out, "protoobf_service_parsed_total{label} {}", s.parsed_messages);
            let _ = writeln!(
                out,
                "protoobf_service_pool_contention_total{label} {}",
                s.pool_contention
            );
        }

        {
            use std::fmt::Write;
            let _ =
                writeln!(out, "protoobf_flight_events_total {}", self.metrics.recorder.recorded());
            let _ = writeln!(out, "protoobf_uptime_seconds {}", self.started.elapsed().as_secs());
        }
        out
    }

    /// The `/events` body: the flight-recorder dump, oldest first, one
    /// event per line, prefixed by a `#` header describing the window.
    pub fn render_events(&self) -> String {
        use std::fmt::Write;
        let events = self.metrics.recorder.dump();
        let mut out = String::with_capacity(64 + events.len() * 64);
        let _ = writeln!(
            out,
            "# flight recorder: {} events recorded, showing {} (capacity {})",
            self.metrics.recorder.recorded(),
            events.len(),
            self.metrics.recorder.capacity(),
        );
        for e in events {
            let _ = writeln!(out, "{e}");
        }
        out
    }

    /// The unified human summary every networked CLI subcommand prints
    /// at exit (unless `--quiet`): the transport snapshot line plus
    /// frame-shape, stage-latency, per-service, and flight-recorder
    /// lines — one place to read a run's whole story.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let snap = self.metrics.snapshot();
        let mut out = String::with_capacity(512);
        let _ = writeln!(out, "{snap}");
        let fin = &snap.frame_bytes_in;
        let fout = &snap.frame_bytes_out;
        let _ = writeln!(
            out,
            "  frames: in p50/p99 {}/{} B over {}; out p50/p99 {}/{} B over {}",
            fin.p50(),
            fin.p99(),
            fin.count(),
            fout.p50(),
            fout.p99(),
            fout.count(),
        );
        let stage_line = |s: &StageSnapshot| {
            format!(
                "p50/p99 {}/{} ns ({} calls, {} sampled)",
                s.latency.p50(),
                s.latency.p99(),
                s.calls,
                s.latency.count()
            )
        };
        let _ = writeln!(
            out,
            "  stages: serialize {}; parse {}; transcode {}",
            stage_line(&snap.stages.serialize),
            stage_line(&snap.stages.parse),
            stage_line(&snap.stages.transcode),
        );
        for (name, service) in &self.services {
            let s = service.stats();
            let _ = writeln!(
                out,
                "  service {name}: {} serialized / {} parsed; pooled {}+{} (peak {}+{}); contention {}",
                s.serialized_messages,
                s.parsed_messages,
                s.pooled_serializers,
                s.pooled_parsers,
                s.pooled_serializer_peak,
                s.pooled_parser_peak,
                s.pool_contention,
            );
        }
        let _ = write!(
            out,
            "  flight recorder: {} events (capacity {})",
            self.metrics.recorder.recorded(),
            self.metrics.recorder.capacity(),
        );
        out
    }
}

/// Emits a Prometheus summary: p50/p95/p99 `quantile` series plus
/// `_sum`/`_count`. `labels` is either empty or `{k="v"}` (merged with
/// the quantile label as needed).
fn render_summary(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    use std::fmt::Write;
    let base = labels.trim_start_matches('{').trim_end_matches('}');
    let sep = if base.is_empty() { "" } else { "," };
    if labels.is_empty() {
        let _ = writeln!(out, "# TYPE {name} summary");
    }
    for (q, p) in [("0.5", 50u8), ("0.95", 95), ("0.99", 99)] {
        let _ = writeln!(out, "{name}{{{base}{sep}quantile=\"{q}\"}} {}", snap.percentile(p));
    }
    let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum);
    let _ = writeln!(out, "{name}_count{labels} {}", snap.count());
}

/// Emits a Prometheus histogram with cumulative `le` buckets from the
/// log₂ bucket ceilings (only buckets up to the last non-empty one,
/// plus `+Inf`), labeled by `direction`.
fn render_histogram(out: &mut String, name: &str, direction: &str, snap: &HistogramSnapshot) {
    use std::fmt::Write;
    if direction == "in" {
        let _ = writeln!(out, "# TYPE {name} histogram");
    }
    let last = snap.buckets.iter().rposition(|&n| n != 0);
    let mut cumulative = 0u64;
    if let Some(last) = last {
        for (i, &n) in snap.buckets.iter().enumerate().take(last + 1) {
            cumulative += n;
            let _ = writeln!(
                out,
                "{name}_bucket{{direction=\"{direction}\",le=\"{}\"}} {cumulative}",
                LatencyHistogram::bucket_ceiling(i),
            );
        }
    }
    let _ =
        writeln!(out, "{name}_bucket{{direction=\"{direction}\",le=\"+Inf\"}} {}", snap.count());
    let _ = writeln!(out, "{name}_sum{{direction=\"{direction}\"}} {}", snap.sum);
    let _ = writeln!(out, "{name}_count{{direction=\"{direction}\"}} {}", snap.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented bucket boundaries, pinned: bucket 0 is exactly 0,
    /// bucket i covers [2^(i-1), 2^i - 1], and everything ≥ 2^38 lands in
    /// the clamp bucket.
    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(LatencyHistogram::bucket_of(lo), i, "lower edge of bucket {i}");
            assert_eq!(LatencyHistogram::bucket_of(hi), i, "upper edge of bucket {i}");
            assert_eq!(LatencyHistogram::bucket_ceiling(i), hi);
        }
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_ceiling(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every representable value has a bucket and its ceiling bounds it.
        for v in [0u64, 1, 2, 5, 50, 1600, 123_456, 1 << 37, 1 << 38, u64::MAX] {
            let b = LatencyHistogram::bucket_of(v);
            assert!(v <= LatencyHistogram::bucket_ceiling(b), "value {v} above its ceiling");
        }
    }

    #[test]
    fn histogram_percentiles_report_bucket_ceilings() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(40); // bucket 6 (32..63), ceiling 63
        }
        for _ in 0..10 {
            h.record(5000); // bucket 13 (4096..8191), ceiling 8191
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.sum, 90 * 40 + 10 * 5000);
        assert_eq!(snap.p50(), 63);
        assert_eq!(snap.percentile(90), 63);
        assert_eq!(snap.p95(), 8191);
        assert_eq!(snap.p99(), 8191);
        assert_eq!(snap.percentile(0), 63, "p0 reports the first non-empty bucket");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.sum, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.percentile(0), 0);
        assert_eq!(snap.percentile(255), 0, "p>100 on empty stays 0");
    }

    /// Satellite-pinned percentile edges: p0 on a single sample reports
    /// that sample's bucket; values past the last boundary saturate into
    /// the clamp bucket (ceiling u64::MAX); p>100 clamps to p100.
    #[test]
    fn percentile_edge_cases() {
        let h = LatencyHistogram::new();
        h.record(7);
        let one = h.snapshot();
        assert_eq!(one.percentile(0), 7, "p0 on a single sample is its bucket ceiling");
        assert_eq!(one.percentile(100), 7);
        assert_eq!(one.percentile(101), 7, "p>100 clamps to p100");
        assert_eq!(one.percentile(255), 7);

        let h = LatencyHistogram::new();
        h.record(1u64 << 39); // beyond the last finite boundary
        h.record(u64::MAX);
        let sat = h.snapshot();
        assert_eq!(sat.buckets[HISTOGRAM_BUCKETS - 1], 2, "saturates into the clamp bucket");
        assert_eq!(sat.p50(), u64::MAX);
        assert_eq!(sat.percentile(200), u64::MAX);
    }

    #[test]
    fn merge_folds_snapshot_counts_in() {
        let a = LatencyHistogram::new();
        a.record(10);
        a.record(100);
        let b = LatencyHistogram::new();
        b.record(100);
        b.record(1000);
        a.merge(&b.snapshot());
        let merged = a.snapshot();
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.sum, 10 + 100 + 100 + 1000);
        assert_eq!(merged.buckets[LatencyHistogram::bucket_of(100)], 2);
        // Merging an empty snapshot is the identity.
        a.merge(&HistogramSnapshot::default());
        assert_eq!(a.snapshot(), merged);
    }

    #[test]
    fn delta_reports_the_interval() {
        let h = LatencyHistogram::new();
        h.record(50);
        h.record(50);
        let prev = h.snapshot();
        h.record(50);
        h.record(7000);
        let delta = h.snapshot().delta(&prev);
        assert_eq!(delta.count(), 2, "only the post-prev records");
        assert_eq!(delta.sum, 50 + 7000);
        assert_eq!(delta.p99(), 8191, "interval percentiles see only new samples");
        // Deltaing against a *newer* snapshot saturates to empty rather
        // than wrapping.
        let stale = prev.delta(&h.snapshot());
        assert_eq!(stale.count(), 0);
        assert_eq!(stale.sum, 0);
    }

    #[test]
    fn display_includes_percentiles() {
        let m = Metrics::new();
        m.wake_latency.record(100);
        let rendered = m.snapshot().to_string();
        assert!(rendered.contains("wake latency"), "{rendered}");
        assert!(rendered.contains("over 1 wakes"), "{rendered}");
    }

    #[test]
    fn stage_timer_samples_every_nth_call() {
        let t = StageTimer::new();
        for _ in 0..(STAGE_SAMPLE_PERIOD * 3) {
            let armed = t.start();
            t.finish(armed);
        }
        let snap = t.snapshot();
        assert_eq!(snap.calls, STAGE_SAMPLE_PERIOD * 3);
        assert_eq!(snap.latency.count(), 3, "exactly one sample per period");
        // Call 0 arms (0 & mask == 0); dropping an armed instant only
        // under-samples.
        let t = StageTimer::new();
        let armed = t.start();
        assert!(armed.is_some());
        let _ = armed;
        assert_eq!(t.snapshot().latency.count(), 0);
    }

    #[test]
    fn flight_recorder_keeps_most_recent_events_in_order() {
        let r = FlightRecorder::with_capacity(8);
        assert_eq!(r.capacity(), 8);
        for i in 0..20u64 {
            r.record(EventKind::Accept, i, 0);
        }
        let events = r.dump();
        assert_eq!(r.recorded(), 20);
        assert_eq!(events.len(), 8, "ring keeps the last `capacity` events");
        let tokens: Vec<u64> = events.iter().map(|e| e.token).collect();
        assert_eq!(tokens, (12..20).collect::<Vec<u64>>(), "oldest first, wrapped");
        let indices: Vec<u64> = events.iter().map(|e| e.index).collect();
        assert_eq!(indices, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn flight_recorder_survives_concurrent_writers() {
        let r = FlightRecorder::with_capacity(64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let r = &r;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        r.record(EventKind::Close, t * 1000 + i, i);
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 2000);
        let events = r.dump();
        assert!(events.len() <= 64);
        assert!(!events.is_empty());
        // Quiescent dump: every surviving slot is stable and ordered.
        for pair in events.windows(2) {
            assert!(pair[0].index < pair[1].index);
        }
        for e in &events {
            assert_eq!(e.kind, EventKind::Close);
            assert_eq!(e.token % 1000, e.detail, "fields from one write, not torn");
        }
    }

    #[test]
    fn peer_tokens_round_trip_v4_and_mark_v6() {
        let v4: SocketAddr = "192.168.1.9:4433".parse().unwrap();
        let tok = peer_token(&v4);
        assert_eq!(format_token(tok), "192.168.1.9:4433");
        let v6: SocketAddr = "[::1]:80".parse().unwrap();
        let tok6 = peer_token(&v6);
        assert!(tok6 >> 63 == 1, "v6 tokens carry the high bit");
        assert!(format_token(tok6).starts_with("0x"));
        assert_eq!(format_token(0), "0x0000000000000000");
    }

    fn tiny_service() -> Arc<CodecService> {
        use crate::graph::{Boundary, GraphBuilder};
        let mut b = GraphBuilder::new("t");
        let root = b.root_sequence("m", Boundary::End);
        b.uint_be(root, "id", 2);
        let graph = b.build().unwrap();
        let codec = crate::engine::Obfuscator::new(&graph).seed(1).obfuscate().unwrap();
        Arc::new(CodecService::with_shards(codec, 1))
    }

    #[test]
    fn registry_dedups_services_and_renders_prometheus() {
        let metrics = Arc::new(Metrics::new());
        Metrics::add(&metrics.messages_in, 3);
        metrics.wake_latency.record(100);
        metrics.frame_bytes_in.record(64);
        metrics.stages.parse.finish(metrics.stages.parse.start());
        metrics.recorder.record(EventKind::Accept, 7, 0);

        let svc = tiny_service();
        let mut telemetry = Telemetry::new(Arc::clone(&metrics));
        telemetry.register_service("down", &svc);
        telemetry.register_service("up", &svc); // same Arc: dropped
        telemetry.register_service("other", &tiny_service());
        assert_eq!(telemetry.services().len(), 2);
        assert_eq!(telemetry.services()[0].0, "down");

        let text = telemetry.render_prometheus();
        assert!(text.contains("protoobf_messages_in_total 3"), "{text}");
        assert!(text.contains("# TYPE protoobf_accepted_total counter"), "{text}");
        assert!(text.contains("protoobf_wake_latency_micros{quantile=\"0.5\"} 127"), "{text}");
        assert!(text.contains("protoobf_wake_latency_micros_count 1"), "{text}");
        assert!(text.contains("protoobf_stage_calls_total{stage=\"parse\"} 1"), "{text}");
        assert!(
            text.contains("protoobf_frame_bytes_bucket{direction=\"in\",le=\"127\"} 1"),
            "{text}"
        );
        assert!(text.contains("protoobf_frame_bytes_sum{direction=\"in\"} 64"), "{text}");
        assert!(text.contains("protoobf_service_shards{service=\"down\"} 1"), "{text}");
        assert!(text.contains("protoobf_flight_events_total 1"), "{text}");
        // First scrape has no interval series; the second does.
        assert!(!text.contains("interval"), "{text}");
        metrics.wake_latency.record(100_000);
        let text2 = telemetry.render_prometheus();
        assert!(
            text2.contains("protoobf_wake_latency_interval_micros{quantile=\"0.5\"} 131071"),
            "only the new sample is in the interval: {text2}"
        );

        let events = telemetry.render_events();
        assert!(events.starts_with("# flight recorder: 1 events"), "{events}");
        assert!(events.contains("accept"), "{events}");

        let summary = telemetry.summary();
        assert!(summary.contains("frames: in"), "{summary}");
        assert!(summary.contains("service down:"), "{summary}");
        assert!(summary.contains("flight recorder: 1 events"), "{summary}");
    }
}

//! Covert payload tunneling inside grammar-perfect cover traffic.
//!
//! The obfuscator rewrites *how* one protocol's messages look on the wire;
//! this module carries *arbitrary byte streams* inside sampled, grammar-
//! valid messages of any specified protocol (in the spirit of Fu et al.'s
//! covert data transport protocol). Three pieces:
//!
//! 1. **Capacity analysis** — [`ChannelMap::analyze`] walks the plain
//!    specification (cross-checked against the compiled [`crate::plan::
//!    CodecPlan`]) and classifies each terminal: fixed-width, enum-like,
//!    numeric, delimited and auto-computed slots are *cover-only* (their
//!    values are structural, constrained, or recomputed by the
//!    serializer), while free `bytes` slots bounded by `rest` or by an
//!    auto length prefix are *carriers* — any byte string round-trips
//!    through them without breaking grammar validity or auto-field
//!    consistency. Carriers guarded by optional branches contribute
//!    *pins* ([`ChannelMap::pins`]): enabling subject values lifted from
//!    the grammar's own predicates that steer the sampler toward
//!    carrier-bearing shapes (e.g. `method = "POST"` so an HTTP request
//!    has a body, `function = 0x0F` so a Modbus request has coil data).
//!
//! 2. **Codec** — [`TunnelEncoder`] chunks a payload stream into framed
//!    slices written across the carrier slots of sampler-generated cover
//!    messages; every non-carrier slot keeps its sampled value, and
//!    carrier *lengths* keep their sampled distribution (only the byte
//!    *contents* change), so tunnel traffic is grammar-perfect and
//!    length-distributed like plain cover traffic. [`TunnelDecoder`]
//!    reassembles the stream with out-of-order tolerance and surfaces
//!    every corruption as a typed [`TunnelError`] — never a panic, never
//!    silently wrong bytes.
//!
//! 3. The `protoobf-transport` crate adds the socket half: a tunnel
//!    session pumps stdin through an ordinary framed connection as cover
//!    messages and back, riding the existing event loop, backpressure and
//!    telemetry (`payload_bytes_in`/`payload_bytes_out` goodput
//!    counters).
//!
//! Each cover message carries at most one frame laid out across its
//! carrier bytes in document order:
//!
//! ```text
//! magic(1) flags(1) seq(4 BE) len(2 BE) crc(4 BE) payload(len) padding…
//! ```
//!
//! `crc` is FNV-1a over flags/seq/len/payload folded to 32 bits — an
//! integrity check against transport corruption, *not* an authenticator
//! (the channel inherits its secrecy from the obfuscation profile, not
//! from the frame header). The final frame (`flags & FIN`) carries the
//! total stream length so the receiver knows when the stream is whole.
//! Messages whose capacity cannot even hold a header are classified
//! [`Accepted::Cover`] and ignored — the encoder resamples past them too.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::Codec;
use crate::error::BuildError;
use crate::graph::{AutoValue, Boundary, FormatGraph, NodeId, NodeType, Predicate};
use crate::message::Message;
use crate::sample::random_message_pinned;
use crate::value::{TerminalKind, Value};

/// First channel byte of every tunnel frame.
pub const FRAME_MAGIC: u8 = 0xC7;
/// Fixed frame header size: magic, flags, seq, len, crc.
pub const FRAME_HEADER_LEN: usize = 12;
/// FIN payload size (total stream length, u64 BE).
pub const FIN_PAYLOAD_LEN: usize = 8;
/// Flag bit marking the final frame of a stream.
const FLAG_FIN: u8 = 0x01;
/// How many cover messages the encoder samples before giving up on
/// finding one with enough carrier capacity for the next frame.
pub const DEFAULT_MAX_RESAMPLE: usize = 4096;
/// How many out-of-order frames the decoder buffers before refusing more.
pub const DEFAULT_REORDER_WINDOW: usize = 4096;

/// Everything that can go wrong while tunneling. Corrupt input surfaces
/// here — decoding must never panic and never deliver wrong bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TunnelError {
    /// The specification has no carrier slots at all: every terminal is
    /// fixed, numeric, delimited, auto-computed or a condition subject.
    NoCarriers {
        /// Name of the carrier-free specification.
        spec: String,
    },
    /// The sampler could not produce a cover message with enough carrier
    /// capacity after the configured number of attempts.
    CapacityExhausted {
        /// Bytes the next frame needs (header + at least one byte).
        needed: usize,
        /// Samples tried.
        attempts: usize,
    },
    /// `write_channel` was handed a byte string that does not exactly
    /// fill the message's carrier capacity.
    ChannelMismatch {
        /// Carrier capacity of the message.
        expected: usize,
        /// Bytes offered.
        got: usize,
    },
    /// A carrier path failed to resolve or accept its value (a message
    /// from a different specification, or an internal inconsistency).
    Build(BuildError),
    /// The channel starts with the wrong magic byte: not a tunnel frame.
    BadMagic {
        /// The byte found where [`FRAME_MAGIC`] was expected.
        got: u8,
    },
    /// The declared payload length exceeds the carrier bytes present —
    /// the frame was truncated in transit.
    Truncated {
        /// Declared payload length.
        declared: usize,
        /// Payload bytes actually available.
        available: usize,
    },
    /// The frame checksum does not match its contents.
    ChecksumMismatch {
        /// Sequence number of the corrupt frame.
        seq: u32,
    },
    /// A FIN frame with a malformed payload (must be exactly 8 bytes).
    BadFin {
        /// Payload length found.
        len: usize,
    },
    /// Two FIN frames declared different stream lengths.
    ConflictingFin {
        /// First declared total.
        expected: u64,
        /// Second, conflicting total.
        got: u64,
    },
    /// The same sequence number arrived twice with different payloads.
    ConflictingFrame {
        /// The duplicated sequence number.
        seq: u32,
    },
    /// Too many out-of-order frames buffered; the stream has a hole the
    /// peer is not filling.
    ReorderOverflow {
        /// The configured buffering window (frames).
        window: usize,
    },
    /// More payload bytes arrived than the FIN frame declared.
    LengthExceeded {
        /// Declared stream total.
        expected: u64,
        /// Bytes actually delivered.
        delivered: u64,
    },
    /// The stream ended (no more cover messages) before it was whole.
    Incomplete {
        /// In-order bytes delivered.
        delivered: u64,
        /// Declared total, if a FIN arrived at all.
        expected: Option<u64>,
    },
}

impl fmt::Display for TunnelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TunnelError::NoCarriers { spec } => {
                write!(f, "specification '{spec}' has no carrier slots to tunnel through")
            }
            TunnelError::CapacityExhausted { needed, attempts } => write!(
                f,
                "no sampled cover message reached {needed} carrier bytes in {attempts} attempts"
            ),
            TunnelError::ChannelMismatch { expected, got } => {
                write!(f, "channel write of {got} bytes does not fill capacity {expected}")
            }
            TunnelError::Build(e) => write!(f, "carrier slot access failed: {e}"),
            TunnelError::BadMagic { got } => {
                write!(f, "bad tunnel frame magic {got:#04x} (expected {FRAME_MAGIC:#04x})")
            }
            TunnelError::Truncated { declared, available } => {
                write!(f, "truncated frame: declares {declared} payload bytes, {available} present")
            }
            TunnelError::ChecksumMismatch { seq } => {
                write!(f, "checksum mismatch on frame {seq}")
            }
            TunnelError::BadFin { len } => {
                write!(f, "FIN frame payload must be {FIN_PAYLOAD_LEN} bytes, got {len}")
            }
            TunnelError::ConflictingFin { expected, got } => {
                write!(f, "conflicting FIN totals: {expected} then {got}")
            }
            TunnelError::ConflictingFrame { seq } => {
                write!(f, "frame {seq} arrived twice with different payloads")
            }
            TunnelError::ReorderOverflow { window } => {
                write!(f, "more than {window} out-of-order frames buffered")
            }
            TunnelError::LengthExceeded { expected, delivered } => {
                write!(f, "stream declared {expected} bytes but {delivered} were delivered")
            }
            TunnelError::Incomplete { delivered, expected } => match expected {
                Some(t) => write!(f, "stream incomplete: {delivered} of {t} bytes delivered"),
                None => write!(f, "stream incomplete: {delivered} bytes delivered, no FIN seen"),
            },
        }
    }
}

impl std::error::Error for TunnelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TunnelError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for TunnelError {
    fn from(e: BuildError) -> Self {
        TunnelError::Build(e)
    }
}

fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

/// FNV-1a over the frame header fields and payload, folded to 32 bits.
fn frame_crc(flags: u8, seq: u32, payload: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    eat(flags);
    seq.to_be_bytes().iter().for_each(|&b| eat(b));
    (payload.len() as u16).to_be_bytes().iter().for_each(|&b| eat(b));
    payload.iter().for_each(|&b| eat(b));
    ((h >> 32) ^ (h & 0xffff_ffff)) as u32
}

/// Which slots of one specification can carry attacker-chosen bytes.
///
/// Classification runs over the *plain* graph, so both tunnel endpoints —
/// whatever their obfuscation levels — derive the identical carrier set;
/// the compiled plan of the analyzed codec is only consulted to verify
/// each carrier's value channel survives the wire round-trip.
///
/// A terminal is a carrier iff it is application-set raw `bytes`, is not
/// the subject of any optional-presence condition, and is bounded either
/// by `rest` ([`Boundary::End`]) or by a length prefix that is itself
/// auto-computed from it (`sized_by` an `= len(...)` field). Everything
/// else — fixed-width, delimited, numeric, auto — stays cover-only: those
/// values are structural, constrained, or recomputed by the serializer.
#[derive(Debug, Clone)]
pub struct ChannelMap<'g> {
    plain: &'g FormatGraph,
    carrier: Vec<bool>,
    carriers: Vec<NodeId>,
    pins: Vec<(NodeId, Value)>,
}

impl<'g> ChannelMap<'g> {
    /// Classifies `codec`'s plain specification (see the type docs).
    pub fn analyze(codec: &'g Codec) -> ChannelMap<'g> {
        let plain = codec.plain();
        let plan = codec.plan();
        let n = plain.ids().count();
        let mut is_subject = vec![false; n];
        for id in plain.ids() {
            if let NodeType::Optional(cond) = plain.node(id).node_type() {
                is_subject[cond.subject.index()] = true;
            }
        }
        let mut carrier = vec![false; n];
        let mut carriers = Vec::new();
        for id in plain.preorder() {
            let node = plain.node(id);
            if !matches!(node.node_type(), NodeType::Terminal(TerminalKind::Bytes)) {
                continue;
            }
            if node.auto().is_auto() || is_subject[id.index()] {
                continue;
            }
            let free = match node.boundary() {
                Boundary::End => true,
                Boundary::Length(l) => {
                    matches!(plain.node(*l).auto(), AutoValue::LengthOf(t) if *t == id)
                }
                _ => false,
            };
            // A carrier must also own a value channel in the compiled
            // plan, or its bytes would not survive the wire round-trip.
            if !free || plan.holder_slot(id).is_none() {
                continue;
            }
            carrier[id.index()] = true;
            carriers.push(id);
        }
        // Carriers behind optional branches contribute sampler pins: the
        // enabling subject value straight out of the grammar's predicate.
        // Carriers whose requirements conflict with already-chosen pins
        // (e.g. the four mutually exclusive Modbus response bodies) stay
        // unpinned — they are still read when present, just not steered.
        let mut pins: Vec<(NodeId, Value)> = Vec::new();
        'carrier: for &c in &carriers {
            let mut wanted: Vec<(NodeId, Value)> = Vec::new();
            let mut cur = plain.node(c).parent();
            while let Some(p) = cur {
                if let NodeType::Optional(cond) = plain.node(p).node_type() {
                    match &cond.predicate {
                        Predicate::Equals(v) => wanted.push((cond.subject, v.clone())),
                        Predicate::OneOf(vs) => {
                            if let Some(v) = vs.first() {
                                wanted.push((cond.subject, v.clone()));
                            }
                        }
                        // A sample collides with the single excluded
                        // value rarely enough that resampling covers it.
                        Predicate::NotEquals(_) => {}
                    }
                }
                cur = plain.node(p).parent();
            }
            for (s, v) in &wanted {
                if pins.iter().any(|(ps, pv)| ps == s && pv != v) {
                    continue 'carrier;
                }
            }
            for (s, v) in wanted {
                if !pins.iter().any(|(ps, _)| *ps == s) {
                    pins.push((s, v));
                }
            }
        }
        ChannelMap { plain, carrier, carriers, pins }
    }

    /// The carrier terminals, in document order.
    pub fn carriers(&self) -> &[NodeId] {
        &self.carriers
    }

    /// True when `id` is a carrier terminal.
    pub fn is_carrier(&self, id: NodeId) -> bool {
        self.carrier.get(id.index()).copied().unwrap_or(false)
    }

    /// Sampler pins that steer cover messages toward carrier-bearing
    /// shapes (see [`crate::sample::random_message_pinned`]).
    pub fn pins(&self) -> &[(NodeId, Value)] {
        &self.pins
    }

    /// True when the specification has no carriers at all.
    pub fn is_empty(&self) -> bool {
        self.carriers.is_empty()
    }

    /// Name of the analyzed specification.
    pub fn spec(&self) -> &str {
        self.plain.name()
    }

    /// Concrete carrier instance paths of `msg`, in document order —
    /// presence and element counts come from the message itself.
    fn paths(&self, msg: &Message<'_>) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(msg, self.plain.root(), String::new(), &mut out);
        out
    }

    fn visit(&self, msg: &Message<'_>, id: NodeId, path: String, out: &mut Vec<String>) {
        let node = self.plain.node(id);
        match node.node_type() {
            NodeType::Terminal(_) => {
                if self.carrier[id.index()] {
                    out.push(path);
                }
            }
            NodeType::Sequence => {
                for &c in node.children() {
                    let p = join(&path, self.plain.node(c).name());
                    self.visit(msg, c, p, out);
                }
            }
            NodeType::Optional(_) => {
                if msg.is_present(&path) {
                    let child = node.children()[0];
                    let p = join(&path, self.plain.node(child).name());
                    self.visit(msg, child, p, out);
                }
            }
            NodeType::Repetition(_) | NodeType::Tabular => {
                let child = node.children()[0];
                let name = self.plain.node(child).name();
                for i in 0..msg.element_count(&path) {
                    self.visit(msg, child, format!("{path}[{i}].{name}"), out);
                }
            }
        }
    }

    /// Channel capacity of one concrete message: the summed byte length
    /// of its carrier instances.
    pub fn capacity(&self, msg: &Message<'_>) -> usize {
        self.paths(msg).iter().map(|p| msg.get(p).map(|v| v.len()).unwrap_or(0)).sum()
    }

    /// Appends the message's channel bytes (carrier instance values in
    /// document order) to `out`.
    pub fn read_channel(&self, msg: &Message<'_>, out: &mut Vec<u8>) {
        for p in self.paths(msg) {
            if let Ok(v) = msg.get(&p) {
                out.extend_from_slice(v.as_bytes());
            }
        }
    }

    /// Overwrites the message's channel with `bytes`, keeping every
    /// carrier instance's sampled *length* (so the wire length
    /// distribution stays that of plain cover traffic — only the byte
    /// contents change). `bytes` must exactly fill the capacity.
    pub fn write_channel(&self, msg: &mut Message<'_>, bytes: &[u8]) -> Result<(), TunnelError> {
        let mut off = 0usize;
        for p in self.paths(msg) {
            let len = msg.get(&p).map(|v| v.len()).unwrap_or(0);
            let end = off + len;
            let Some(chunk) = bytes.get(off..end) else {
                return Err(TunnelError::ChannelMismatch {
                    expected: self.capacity(msg),
                    got: bytes.len(),
                });
            };
            msg.set(&p, Value::from_bytes(chunk.to_vec()))?;
            off = end;
        }
        if off != bytes.len() {
            return Err(TunnelError::ChannelMismatch { expected: off, got: bytes.len() });
        }
        Ok(())
    }
}

/// One cover message produced by [`TunnelEncoder::next_cover`].
#[derive(Debug)]
pub struct CoverFrame<'c> {
    /// The grammar-valid cover message, channel bytes written.
    pub message: Message<'c>,
    /// The frame's sequence number.
    pub seq: u32,
    /// Payload bytes consumed from the stream by this frame (0 for FIN).
    pub payload_len: usize,
    /// True when this is the stream's final (FIN) frame.
    pub fin: bool,
}

/// Chunks an arbitrary byte stream into the carrier slots of sampled
/// cover messages. Feed with [`push`](TunnelEncoder::push), signal end of
/// stream with [`finish`](TunnelEncoder::finish), and drain with
/// [`next_cover`](TunnelEncoder::next_cover) until it returns `None`.
#[derive(Debug)]
pub struct TunnelEncoder<'c> {
    codec: &'c Codec,
    map: ChannelMap<'c>,
    rng: StdRng,
    pending: VecDeque<u8>,
    chunk: Vec<u8>,
    seq: u32,
    total: u64,
    finished: bool,
    fin_emitted: bool,
    max_resample: usize,
}

impl<'c> TunnelEncoder<'c> {
    /// Builds an encoder over `codec`, seeding the cover sampler.
    pub fn new(codec: &'c Codec, seed: u64) -> Result<TunnelEncoder<'c>, TunnelError> {
        let map = ChannelMap::analyze(codec);
        if map.is_empty() {
            return Err(TunnelError::NoCarriers { spec: codec.plain().name().to_string() });
        }
        Ok(TunnelEncoder {
            codec,
            map,
            rng: StdRng::seed_from_u64(seed),
            pending: VecDeque::new(),
            chunk: Vec::new(),
            seq: 0,
            total: 0,
            finished: false,
            fin_emitted: false,
            max_resample: DEFAULT_MAX_RESAMPLE,
        })
    }

    /// The carrier classification this encoder writes through.
    pub fn map(&self) -> &ChannelMap<'c> {
        &self.map
    }

    /// Queues payload bytes for transmission.
    pub fn push(&mut self, data: &[u8]) {
        debug_assert!(!self.finished, "push after finish");
        self.pending.extend(data);
        self.total += data.len() as u64;
    }

    /// Declares the payload stream complete: once the queue drains, one
    /// FIN frame carrying the total stream length is emitted.
    pub fn finish(&mut self) {
        self.finished = true;
    }

    /// Payload bytes queued but not yet encoded.
    pub fn pending_payload(&self) -> usize {
        self.pending.len()
    }

    /// True once the whole stream — including the FIN frame — has been
    /// handed out as cover messages.
    pub fn is_drained(&self) -> bool {
        self.finished && self.pending.is_empty() && self.fin_emitted
    }

    /// Produces the next cover message, or `None` when there is nothing
    /// to send right now (queue empty and either the stream is still
    /// open or FIN already went out).
    ///
    /// Samples cover messages (with the map's pins applied) until one has
    /// enough carrier capacity, writes the frame plus random padding into
    /// the channel, and leaves every cover slot as sampled.
    pub fn next_cover(&mut self) -> Result<Option<CoverFrame<'c>>, TunnelError> {
        let fin_frame = self.pending.is_empty();
        if fin_frame && (!self.finished || self.fin_emitted) {
            return Ok(None);
        }
        let need = FRAME_HEADER_LEN + if fin_frame { FIN_PAYLOAD_LEN } else { 1 };
        for _ in 0..self.max_resample {
            let mut msg = random_message_pinned(self.codec, &mut self.rng, self.map.pins());
            let cap = self.map.capacity(&msg);
            if cap < need {
                continue;
            }
            let (flags, payload): (u8, Vec<u8>) = if fin_frame {
                (FLAG_FIN, self.total.to_be_bytes().to_vec())
            } else {
                let take = self.pending.len().min(cap - FRAME_HEADER_LEN).min(u16::MAX as usize);
                (0, self.pending.drain(..take).collect())
            };
            self.chunk.clear();
            self.chunk.push(FRAME_MAGIC);
            self.chunk.push(flags);
            self.chunk.extend_from_slice(&self.seq.to_be_bytes());
            self.chunk.extend_from_slice(&(payload.len() as u16).to_be_bytes());
            self.chunk.extend_from_slice(&frame_crc(flags, self.seq, &payload).to_be_bytes());
            self.chunk.extend_from_slice(&payload);
            while self.chunk.len() < cap {
                self.chunk.push(self.rng.gen());
            }
            self.map.write_channel(&mut msg, &self.chunk)?;
            let seq = self.seq;
            self.seq = self.seq.wrapping_add(1);
            if fin_frame {
                self.fin_emitted = true;
            }
            return Ok(Some(CoverFrame {
                message: msg,
                seq,
                payload_len: if fin_frame { 0 } else { payload.len() },
                fin: fin_frame,
            }));
        }
        Err(TunnelError::CapacityExhausted { needed: need, attempts: self.max_resample })
    }
}

/// What [`TunnelDecoder::accept`] made of one cover message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accepted {
    /// In-order payload: `bytes` new in-order bytes became readable
    /// (includes any out-of-order frames this one unblocked).
    Data {
        /// Newly readable in-order bytes.
        bytes: usize,
    },
    /// A valid frame ahead of the stream cursor, buffered for later.
    Buffered {
        /// Its sequence number.
        seq: u32,
    },
    /// The stream-terminating frame; `total` is the declared length.
    Fin {
        /// Declared total stream length.
        total: u64,
    },
    /// A frame already seen (identical re-delivery); ignored.
    Duplicate {
        /// Its sequence number.
        seq: u32,
    },
    /// Not a tunnel frame: the message's carrier capacity cannot even
    /// hold a header. Plain cover traffic; ignored.
    Cover {
        /// The message's carrier capacity.
        capacity: usize,
    },
}

/// Reassembles a payload stream from decoded cover messages, tolerating
/// out-of-order and duplicated delivery. Corruption surfaces as typed
/// [`TunnelError`]s; bytes are released strictly in order.
#[derive(Debug)]
pub struct TunnelDecoder<'c> {
    map: ChannelMap<'c>,
    chunk: Vec<u8>,
    next_seq: u32,
    ahead: BTreeMap<u32, Vec<u8>>,
    ready: Vec<u8>,
    delivered: u64,
    expected: Option<u64>,
    reorder_window: usize,
}

impl<'c> TunnelDecoder<'c> {
    /// Builds a decoder over the receiving side's codec.
    pub fn new(codec: &'c Codec) -> Result<TunnelDecoder<'c>, TunnelError> {
        let map = ChannelMap::analyze(codec);
        if map.is_empty() {
            return Err(TunnelError::NoCarriers { spec: codec.plain().name().to_string() });
        }
        Ok(TunnelDecoder {
            map,
            chunk: Vec::new(),
            next_seq: 0,
            ahead: BTreeMap::new(),
            ready: Vec::new(),
            delivered: 0,
            expected: None,
            reorder_window: DEFAULT_REORDER_WINDOW,
        })
    }

    /// The carrier classification this decoder reads through.
    pub fn map(&self) -> &ChannelMap<'c> {
        &self.map
    }

    /// Ingests one decoded cover message.
    pub fn accept(&mut self, msg: &Message<'_>) -> Result<Accepted, TunnelError> {
        self.chunk.clear();
        let mut chunk = std::mem::take(&mut self.chunk);
        self.map.read_channel(msg, &mut chunk);
        let r = self.accept_channel_inner(&chunk);
        self.chunk = chunk;
        r
    }

    /// Ingests raw channel bytes (the carrier concatenation) directly.
    pub fn accept_channel(&mut self, chunk: &[u8]) -> Result<Accepted, TunnelError> {
        self.accept_channel_inner(chunk)
    }

    fn accept_channel_inner(&mut self, chunk: &[u8]) -> Result<Accepted, TunnelError> {
        if chunk.len() < FRAME_HEADER_LEN {
            return Ok(Accepted::Cover { capacity: chunk.len() });
        }
        if chunk[0] != FRAME_MAGIC {
            return Err(TunnelError::BadMagic { got: chunk[0] });
        }
        let flags = chunk[1];
        let seq = u32::from_be_bytes(chunk[2..6].try_into().expect("4 bytes"));
        let len = u16::from_be_bytes(chunk[6..8].try_into().expect("2 bytes")) as usize;
        let crc = u32::from_be_bytes(chunk[8..12].try_into().expect("4 bytes"));
        let available = chunk.len() - FRAME_HEADER_LEN;
        if len > available {
            return Err(TunnelError::Truncated { declared: len, available });
        }
        let payload = &chunk[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        if frame_crc(flags, seq, payload) != crc {
            return Err(TunnelError::ChecksumMismatch { seq });
        }
        if flags & FLAG_FIN != 0 {
            if len != FIN_PAYLOAD_LEN {
                return Err(TunnelError::BadFin { len });
            }
            let total = u64::from_be_bytes(payload.try_into().expect("8 bytes"));
            if let Some(t) = self.expected {
                if t != total {
                    return Err(TunnelError::ConflictingFin { expected: t, got: total });
                }
                return Ok(Accepted::Duplicate { seq });
            }
            if self.delivered > total {
                return Err(TunnelError::LengthExceeded {
                    expected: total,
                    delivered: self.delivered,
                });
            }
            self.expected = Some(total);
            return Ok(Accepted::Fin { total });
        }
        if seq < self.next_seq {
            return Ok(Accepted::Duplicate { seq });
        }
        if seq > self.next_seq {
            if let Some(prev) = self.ahead.get(&seq) {
                return if prev.as_slice() == payload {
                    Ok(Accepted::Duplicate { seq })
                } else {
                    Err(TunnelError::ConflictingFrame { seq })
                };
            }
            if self.ahead.len() >= self.reorder_window {
                return Err(TunnelError::ReorderOverflow { window: self.reorder_window });
            }
            self.ahead.insert(seq, payload.to_vec());
            return Ok(Accepted::Buffered { seq });
        }
        let mut appended = payload.len();
        self.ready.extend_from_slice(payload);
        self.next_seq = self.next_seq.wrapping_add(1);
        while let Some(p) = self.ahead.remove(&self.next_seq) {
            appended += p.len();
            self.ready.extend_from_slice(&p);
            self.next_seq = self.next_seq.wrapping_add(1);
        }
        self.delivered += appended as u64;
        if let Some(t) = self.expected {
            if self.delivered > t {
                return Err(TunnelError::LengthExceeded { expected: t, delivered: self.delivered });
            }
        }
        Ok(Accepted::Data { bytes: appended })
    }

    /// Moves all in-order bytes into `out`; returns how many.
    pub fn take_ready(&mut self, out: &mut Vec<u8>) -> usize {
        let n = self.ready.len();
        out.extend_from_slice(&self.ready);
        self.ready.clear();
        n
    }

    /// In-order bytes waiting to be taken.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// In-order payload bytes delivered so far (taken or waiting).
    pub fn bytes_delivered(&self) -> u64 {
        self.delivered
    }

    /// The total stream length declared by the FIN frame, if seen.
    pub fn total_expected(&self) -> Option<u64> {
        self.expected
    }

    /// True once every declared payload byte has arrived in order.
    pub fn is_complete(&self) -> bool {
        self.expected == Some(self.delivered)
    }
}

/// Encodes a whole payload into a sequence of cover messages (one-shot
/// convenience over [`TunnelEncoder`]).
pub fn encode_stream<'c>(
    codec: &'c Codec,
    payload: &[u8],
    seed: u64,
) -> Result<Vec<Message<'c>>, TunnelError> {
    let mut enc = TunnelEncoder::new(codec, seed)?;
    enc.push(payload);
    enc.finish();
    let mut out = Vec::new();
    while let Some(f) = enc.next_cover()? {
        out.push(f.message);
    }
    Ok(out)
}

/// Reassembles a payload from a complete sequence of cover messages
/// (one-shot convenience over [`TunnelDecoder`]).
pub fn decode_stream(codec: &Codec, msgs: &[Message<'_>]) -> Result<Vec<u8>, TunnelError> {
    let mut dec = TunnelDecoder::new(codec)?;
    for m in msgs {
        dec.accept(m)?;
    }
    if !dec.is_complete() {
        return Err(TunnelError::Incomplete {
            delivered: dec.bytes_delivered(),
            expected: dec.total_expected(),
        });
    }
    let mut out = Vec::new();
    dec.take_ready(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Obfuscator;
    use crate::graph::{Condition, GraphBuilder};

    /// A gadget spec covering every carrier class: an auto length-prefixed
    /// bytes field, an optional `rest` body behind an equality predicate,
    /// a delimited ascii field (cover-only), and a numeric subject.
    fn gadget() -> FormatGraph {
        let mut b = GraphBuilder::new("gadget");
        let root = b.root_sequence("m", Boundary::End);
        let dlen = b.uint_be(root, "dlen", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(dlen));
        b.set_auto(dlen, AutoValue::LengthOf(data));
        b.terminal(root, "tag", TerminalKind::Ascii, Boundary::Delimited(b"|".to_vec()));
        let kind = b.uint_be(root, "kind", 1);
        let opt = b.optional(
            root,
            "body",
            Condition { subject: kind, predicate: Predicate::Equals(Value::from_bytes(vec![7])) },
        );
        b.terminal(opt, "content", TerminalKind::Bytes, Boundary::End);
        b.build().unwrap()
    }

    #[test]
    fn classification_finds_carriers_and_pins() {
        let g = gadget();
        let codec = Codec::identity(&g);
        let map = ChannelMap::analyze(&codec);
        let names: Vec<&str> = map.carriers().iter().map(|&id| g.node(id).name()).collect();
        assert_eq!(names, vec!["data", "content"]);
        // The optional body's subject is pinned to its enabling value.
        assert_eq!(map.pins().len(), 1);
        let (subject, v) = &map.pins()[0];
        assert_eq!(g.node(*subject).name(), "kind");
        assert_eq!(v.as_bytes(), &[7]);
    }

    #[test]
    fn cover_only_slots_are_never_carriers() {
        let g = gadget();
        let codec = Codec::identity(&g);
        let map = ChannelMap::analyze(&codec);
        for id in g.ids() {
            let n = g.node(id);
            if ["dlen", "tag", "kind"].contains(&n.name()) {
                assert!(!map.is_carrier(id), "{} must stay cover-only", n.name());
            }
        }
    }

    #[test]
    fn round_trip_plain_and_obfuscated() {
        let g = gadget();
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        for level in [0u64, 1, 2] {
            let codec = if level == 0 {
                Codec::identity(&g)
            } else {
                Obfuscator::new(&g).seed(level).max_per_node(2).obfuscate().unwrap()
            };
            let msgs = encode_stream(&codec, &payload, 42 + level).unwrap();
            // Through the real wire: serialize then parse each cover.
            let mut wires = Vec::new();
            for m in &msgs {
                wires.push(codec.serialize(m).unwrap());
            }
            let parsed: Vec<Message<'_>> = wires.iter().map(|w| codec.parse(w).unwrap()).collect();
            let back = decode_stream(&codec, &parsed).unwrap();
            assert_eq!(back, payload, "level {level}");
        }
    }

    #[test]
    fn empty_stream_is_one_fin_frame() {
        let g = gadget();
        let codec = Codec::identity(&g);
        let msgs = encode_stream(&codec, &[], 7).unwrap();
        assert_eq!(msgs.len(), 1);
        let back = decode_stream(&codec, &msgs).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn reordered_frames_reassemble() {
        let g = gadget();
        let codec = Codec::identity(&g);
        let payload: Vec<u8> = (0..2000u32).map(|i| (i % 256) as u8).collect();
        let mut msgs = encode_stream(&codec, &payload, 9).unwrap();
        // Reverse everything: worst-case reordering, FIN first.
        msgs.reverse();
        let mut dec = TunnelDecoder::new(&codec).unwrap();
        for m in &msgs {
            dec.accept(m).unwrap();
        }
        assert!(dec.is_complete());
        let mut out = Vec::new();
        dec.take_ready(&mut out);
        assert_eq!(out, payload);
    }

    #[test]
    fn duplicates_are_ignored() {
        let g = gadget();
        let codec = Codec::identity(&g);
        let payload = b"duplicate delivery is idempotent".to_vec();
        let msgs = encode_stream(&codec, &payload, 3).unwrap();
        let mut dec = TunnelDecoder::new(&codec).unwrap();
        for m in msgs.iter().chain(msgs.iter()) {
            dec.accept(m).unwrap();
        }
        assert!(dec.is_complete());
        let mut out = Vec::new();
        dec.take_ready(&mut out);
        assert_eq!(out, payload);
    }

    #[test]
    fn corruption_yields_typed_errors_never_wrong_bytes() {
        let g = gadget();
        let codec = Codec::identity(&g);
        let payload: Vec<u8> = (0..512u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut enc = TunnelEncoder::new(&codec, 11).unwrap();
        enc.push(&payload);
        enc.finish();
        let mut channels = Vec::new();
        while let Some(f) = enc.next_cover().unwrap() {
            let mut ch = Vec::new();
            enc.map().read_channel(&f.message, &mut ch);
            channels.push(ch);
        }
        // Flip every byte position of the first frame in turn: each
        // corruption must be a typed error or a detected non-frame; a
        // reassembled stream differing from the payload is the only
        // failure.
        for pos in 0..channels[0].len() {
            let mut dec = TunnelDecoder::new(&codec).unwrap();
            let mut bad = channels.clone();
            bad[0][pos] ^= 0xA5;
            let mut failed = false;
            for ch in &bad {
                if dec.accept_channel(ch).is_err() {
                    failed = true;
                    break;
                }
            }
            if !failed && dec.is_complete() {
                let mut out = Vec::new();
                dec.take_ready(&mut out);
                // Padding corruption is invisible — and harmless.
                assert_eq!(out, payload, "flip at {pos} delivered wrong bytes");
            }
        }
    }

    #[test]
    fn truncated_declared_length_is_typed() {
        let g = gadget();
        let codec = Codec::identity(&g);
        let mut dec = TunnelDecoder::new(&codec).unwrap();
        // Hand-build a frame whose declared length exceeds the channel.
        let payload = b"xx";
        let mut ch = vec![FRAME_MAGIC, 0];
        ch.extend_from_slice(&0u32.to_be_bytes());
        ch.extend_from_slice(&200u16.to_be_bytes());
        ch.extend_from_slice(&frame_crc(0, 0, payload).to_be_bytes());
        ch.extend_from_slice(payload);
        match dec.accept_channel(&ch) {
            Err(TunnelError::Truncated { declared: 200, .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn incomplete_stream_is_typed() {
        let g = gadget();
        let codec = Codec::identity(&g);
        let payload: Vec<u8> = vec![1; 600];
        let msgs = encode_stream(&codec, &payload, 5).unwrap();
        assert!(msgs.len() > 2);
        // Drop a middle frame: the stream must refuse to complete.
        let mut dec = TunnelDecoder::new(&codec).unwrap();
        for (i, m) in msgs.iter().enumerate() {
            if i != 1 {
                dec.accept(m).unwrap();
            }
        }
        assert!(!dec.is_complete());
        assert!(dec.total_expected().is_some());
        assert!(dec.bytes_delivered() < payload.len() as u64);
    }

    #[test]
    fn wire_length_distribution_matches_plain_cover() {
        // Tunnel covers keep sampled structure and value lengths; only
        // carrier *contents* change. Same sampler seed => same wire
        // lengths as plain sampled traffic.
        let g = gadget();
        let codec = Codec::identity(&g);
        let mut enc = TunnelEncoder::new(&codec, 77).unwrap();
        enc.push(&[0xAB; 300]);
        enc.finish();
        while let Some(mut f) = enc.next_cover().unwrap() {
            let wire = codec.serialize(&f.message).unwrap();
            let cap = enc.map().capacity(&f.message);
            assert!(cap >= FRAME_HEADER_LEN);
            // Overwriting the channel must not change the wire length:
            // re-serializing after zeroing every carrier gives equal
            // length, because write_channel preserves instance lengths.
            enc.map().write_channel(&mut f.message, &vec![0u8; cap]).unwrap();
            assert_eq!(codec.serialize(&f.message).unwrap().len(), wire.len());
        }
    }
}

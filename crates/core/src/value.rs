//! Field values and the invertible byte arithmetic used by the aggregation
//! transformations.
//!
//! The canonical representation of every field value is a byte string
//! ([`Value`]). Numeric fields additionally carry a [`TerminalKind`]
//! describing how to interpret those bytes as an unsigned integer.
//!
//! The arithmetic used by `SplitAdd`/`ConstAdd` and friends is **byte-wise
//! modulo 256** (no carry). This makes every operation trivially invertible
//! on values of any length — binary numbers and ASCII text alike — which is
//! the property the paper requires of all aggregation transformations
//! (τ⁻¹ ∘ τ = id).

use std::fmt;

/// Byte order of an unsigned-integer terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endian {
    /// Most significant byte first (network order).
    Big,
    /// Least significant byte first.
    Little,
}

/// Interpretation of a terminal field's bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TerminalKind {
    /// Raw bytes with no further interpretation.
    Bytes,
    /// Unsigned integer of `width` bytes in the given byte order.
    UInt { width: usize, endian: Endian },
    /// ASCII/UTF-8 text. Structurally identical to `Bytes`; kept distinct
    /// so generated code and diagnostics can render it as text.
    Ascii,
}

impl TerminalKind {
    /// Big-endian unsigned integer of `width` bytes.
    pub fn uint_be(width: usize) -> Self {
        TerminalKind::UInt { width, endian: Endian::Big }
    }

    /// Little-endian unsigned integer of `width` bytes.
    pub fn uint_le(width: usize) -> Self {
        TerminalKind::UInt { width, endian: Endian::Little }
    }

    /// Returns the fixed width implied by the kind, if any.
    pub fn implied_width(&self) -> Option<usize> {
        match self {
            TerminalKind::UInt { width, .. } => Some(*width),
            _ => None,
        }
    }

    /// True if the kind can carry a length/counter quantity.
    pub fn is_numeric(&self) -> bool {
        matches!(self, TerminalKind::UInt { .. })
    }
}

/// A field value: an owned byte string.
///
/// `Value` is deliberately a thin newtype over `Vec<u8>` so the rest of the
/// crate can attach protocol semantics without committing to a
/// representation.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Value(Vec<u8>);

impl Value {
    /// Creates an empty value.
    pub fn new() -> Self {
        Value(Vec::new())
    }

    /// Wraps a byte vector.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Value(bytes.into())
    }

    /// Encodes an unsigned integer according to `width`/`endian`.
    ///
    /// Returns `None` if `v` does not fit in `width` bytes.
    pub fn from_uint(v: u64, width: usize, endian: Endian) -> Option<Self> {
        if width == 0 || width > 8 {
            return None;
        }
        if width < 8 && v >= 1u64 << (8 * width) {
            return None;
        }
        let be = v.to_be_bytes();
        let mut out = be[8 - width..].to_vec();
        if endian == Endian::Little {
            out.reverse();
        }
        Some(Value(out))
    }

    /// Decodes the value as an unsigned integer.
    ///
    /// Returns `None` if the value is longer than 8 bytes.
    pub fn to_uint(&self, endian: Endian) -> Option<u64> {
        if self.0.len() > 8 {
            return None;
        }
        let mut acc: u64 = 0;
        match endian {
            Endian::Big => {
                for &b in &self.0 {
                    acc = (acc << 8) | u64::from(b);
                }
            }
            Endian::Little => {
                for &b in self.0.iter().rev() {
                    acc = (acc << 8) | u64::from(b);
                }
            }
        }
        Some(acc)
    }

    /// Borrows the underlying bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the value, returning the underlying bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the value has no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a mirrored (byte-reversed) copy; its own inverse.
    pub fn mirrored(&self) -> Value {
        let mut v = self.0.clone();
        v.reverse();
        Value(v)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value(")?;
        if self.0.iter().all(|b| b.is_ascii_graphic() || *b == b' ') && !self.0.is_empty() {
            write!(f, "{:?}", String::from_utf8_lossy(&self.0))?;
        } else {
            for (i, b) in self.0.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{b:02x}")?;
            }
        }
        write!(f, ")")
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value(v)
    }
}

impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value(v.to_vec())
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value(v.as_bytes().to_vec())
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// The byte-wise operator used by arithmetic transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteOp {
    /// Byte-wise addition modulo 256.
    Add,
    /// Byte-wise subtraction modulo 256.
    Sub,
    /// Byte-wise exclusive or.
    Xor,
}

impl ByteOp {
    /// The operator that undoes this one: `inverse(op)(op(a, b), b) == a`.
    pub fn inverse(self) -> ByteOp {
        match self {
            ByteOp::Add => ByteOp::Sub,
            ByteOp::Sub => ByteOp::Add,
            ByteOp::Xor => ByteOp::Xor,
        }
    }

    /// Short lowercase name, used in generated code and plan listings.
    pub fn name(self) -> &'static str {
        match self {
            ByteOp::Add => "add",
            ByteOp::Sub => "sub",
            ByteOp::Xor => "xor",
        }
    }
}

/// Applies `op` byte-wise: `out[i] = a[i] op b[i mod b.len()]`.
///
/// The right operand is cycled, so a short constant can transform a long
/// value (this is how `ConstAdd` handles variable-length fields). The output
/// always has the length of `a`.
///
/// An empty left operand yields an empty result without touching `b`.
///
/// # Panics
///
/// Panics if `a` is non-empty while `b` is empty (callers must validate
/// constants/partners first).
pub fn apply_op(op: ByteOp, a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() {
        return Vec::new();
    }
    assert!(!b.is_empty(), "right operand of a byte operation must not be empty");
    a.iter()
        .enumerate()
        .map(|(i, &x)| {
            let y = b[i % b.len()];
            match op {
                ByteOp::Add => x.wrapping_add(y),
                ByteOp::Sub => x.wrapping_sub(y),
                ByteOp::Xor => x ^ y,
            }
        })
        .collect()
}

/// Applies `op` to two [`Value`]s (right operand cycled).
pub fn apply_op_value(op: ByteOp, a: &Value, b: &Value) -> Value {
    Value(apply_op(op, a.as_bytes(), b.as_bytes()))
}

/// Where a `SplitCat` transformation cuts a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitAt {
    /// Cut after `n` bytes (static position; only valid on fixed-size
    /// fields).
    Byte(usize),
    /// Cut at `floor(len / 2)` — usable on fields whose plain length is
    /// recoverable at parse time.
    Half,
}

impl SplitAt {
    /// Resolves the cut position for a value of `len` bytes.
    pub fn position(self, len: usize) -> usize {
        match self {
            SplitAt::Byte(n) => n.min(len),
            SplitAt::Half => len / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_roundtrip_big_endian() {
        let v = Value::from_uint(0x1234, 2, Endian::Big).unwrap();
        assert_eq!(v.as_bytes(), &[0x12, 0x34]);
        assert_eq!(v.to_uint(Endian::Big), Some(0x1234));
    }

    #[test]
    fn uint_roundtrip_little_endian() {
        let v = Value::from_uint(0x1234, 2, Endian::Little).unwrap();
        assert_eq!(v.as_bytes(), &[0x34, 0x12]);
        assert_eq!(v.to_uint(Endian::Little), Some(0x1234));
    }

    #[test]
    fn uint_overflow_detected() {
        assert!(Value::from_uint(256, 1, Endian::Big).is_none());
        assert!(Value::from_uint(255, 1, Endian::Big).is_some());
        assert!(Value::from_uint(1, 0, Endian::Big).is_none());
        assert!(Value::from_uint(1, 9, Endian::Big).is_none());
    }

    #[test]
    fn uint_full_width() {
        let v = Value::from_uint(u64::MAX, 8, Endian::Big).unwrap();
        assert_eq!(v.to_uint(Endian::Big), Some(u64::MAX));
    }

    #[test]
    fn ops_are_invertible() {
        let a = b"hello world".as_slice();
        let k = b"\x03\x07".as_slice();
        for op in [ByteOp::Add, ByteOp::Sub, ByteOp::Xor] {
            let enc = apply_op(op, a, k);
            let dec = apply_op(op.inverse(), &enc, k);
            assert_eq!(dec, a, "{op:?} not inverted");
        }
    }

    #[test]
    fn op_cycles_short_operand() {
        let out = apply_op(ByteOp::Add, &[1, 1, 1, 1], &[1, 2]);
        assert_eq!(out, vec![2, 3, 2, 3]);
    }

    #[test]
    fn op_output_length_follows_left() {
        let out = apply_op(ByteOp::Xor, &[0xff; 3], &[0xff; 10]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    #[should_panic(expected = "right operand")]
    fn op_empty_right_panics() {
        apply_op(ByteOp::Add, &[1], &[]);
    }

    #[test]
    fn split_add_paper_identity() {
        // Paper Table II: choose X1 random, X2 = X + X1; parse X = X2 - X1.
        let x = Value::from("payload");
        let x1 = Value::from_bytes(vec![9, 250, 3, 0, 77, 128, 255]);
        let x2 = apply_op_value(ByteOp::Add, &x, &x1);
        let back = apply_op_value(ByteOp::Sub, &x2, &x1);
        assert_eq!(back, x);
    }

    #[test]
    fn mirror_is_involutive() {
        let v = Value::from_bytes(vec![1, 2, 3, 4, 5]);
        assert_eq!(v.mirrored().mirrored(), v);
    }

    #[test]
    fn split_at_resolution() {
        assert_eq!(SplitAt::Byte(3).position(10), 3);
        assert_eq!(SplitAt::Byte(30).position(10), 10);
        assert_eq!(SplitAt::Half.position(9), 4);
        assert_eq!(SplitAt::Half.position(0), 0);
    }

    #[test]
    fn debug_renders_text_and_hex() {
        assert_eq!(format!("{:?}", Value::from("GET")), "Value(\"GET\")");
        let s = format!("{:?}", Value::from_bytes(vec![0x00, 0xff]));
        assert!(s.contains("00") && s.contains("ff"));
    }

    #[test]
    fn kind_helpers() {
        assert_eq!(TerminalKind::uint_be(2).implied_width(), Some(2));
        assert!(TerminalKind::uint_le(4).is_numeric());
        assert!(!TerminalKind::Bytes.is_numeric());
        assert_eq!(TerminalKind::Ascii.implied_width(), None);
    }
}

//! Error types for specification validation, transformation, serialization
//! and parsing.
//!
//! Every fallible public operation in this crate returns one of these types.
//! They all implement [`std::error::Error`] and are `Send + Sync + 'static`
//! so they compose with standard error-handling machinery.

use std::fmt;

/// Error raised while building or validating a [`FormatGraph`].
///
/// [`FormatGraph`]: crate::graph::FormatGraph
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The graph has no root node.
    EmptyGraph,
    /// A node identifier did not resolve to a node of this graph.
    UnknownNode(u32),
    /// Two siblings share the same name, making paths ambiguous.
    DuplicateSiblingName { parent: String, name: String },
    /// The boundary attribute is not consistent with the node type
    /// (paper §V-A: e.g. a Terminal cannot have a Counter boundary).
    InconsistentBoundary { node: String, detail: String },
    /// A `Length`, `Counter` or `Optional` reference points at a node that
    /// is not parsed before its user (forward reference) or is inside the
    /// referencing subtree.
    ForwardReference { node: String, referenced: String },
    /// A `Length`/`Counter` reference target is not an unsigned-integer
    /// terminal and therefore cannot carry a size.
    NonNumericReference { node: String, referenced: String },
    /// A delimiter byte string is empty.
    EmptyDelimiter { node: String },
    /// A fixed-size terminal's declared width disagrees with its kind
    /// (e.g. `u16` with `Fixed(3)`).
    WidthMismatch { node: String, expected: usize, found: usize },
    /// A node that must have exactly one child (Optional, Repetition,
    /// Tabular) has zero or several.
    ChildArity { node: String, expected: &'static str, found: usize },
    /// A node kind that cannot carry children (Terminal) has children.
    TerminalWithChildren { node: String },
    /// A cycle was detected in the parent/child structure.
    NotATree { node: String },
    /// An auto-computed field (length-of / counter-of) references an
    /// incompatible target.
    BadAutoTarget { node: String, detail: String },
    /// Repetition/tabular nesting exceeds the supported depth
    /// ([`crate::message::MAX_SCOPE`]): element scopes are stored inline,
    /// so the engine bounds the nesting instead of spilling to the heap.
    NestingTooDeep { node: String, depth: usize, max: usize },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyGraph => write!(f, "format graph has no root node"),
            SpecError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            SpecError::DuplicateSiblingName { parent, name } => {
                write!(f, "duplicate sibling name {name:?} under {parent:?}")
            }
            SpecError::InconsistentBoundary { node, detail } => {
                write!(f, "inconsistent boundary on node {node:?}: {detail}")
            }
            SpecError::ForwardReference { node, referenced } => {
                write!(f, "node {node:?} references {referenced:?} which is not parsed before it")
            }
            SpecError::NonNumericReference { node, referenced } => write!(
                f,
                "node {node:?} references {referenced:?} which is not an unsigned integer terminal"
            ),
            SpecError::EmptyDelimiter { node } => {
                write!(f, "node {node:?} declares an empty delimiter")
            }
            SpecError::WidthMismatch { node, expected, found } => write!(
                f,
                "node {node:?} kind implies width {expected} but boundary declares {found}"
            ),
            SpecError::ChildArity { node, expected, found } => {
                write!(f, "node {node:?} must have {expected} children, found {found}")
            }
            SpecError::TerminalWithChildren { node } => {
                write!(f, "terminal node {node:?} cannot have children")
            }
            SpecError::NotATree { node } => {
                write!(f, "node {node:?} participates in a parent/child cycle")
            }
            SpecError::BadAutoTarget { node, detail } => {
                write!(f, "auto field {node:?} has an invalid target: {detail}")
            }
            SpecError::NestingTooDeep { node, depth, max } => write!(
                f,
                "node {node:?} is nested {depth} repetition/tabular levels deep (max {max})"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Error raised when applying a generic transformation to an obfuscation
/// graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The transformation's applicability constraints are not met on the
    /// targeted node (paper Table II "Constraints" row).
    NotApplicable { transform: &'static str, node: String, reason: String },
    /// The targeted node does not exist.
    UnknownNode(u32),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotApplicable { transform, node, reason } => {
                write!(f, "{transform} is not applicable to node {node:?}: {reason}")
            }
            TransformError::UnknownNode(id) => write!(f, "unknown obfuscation node id {id}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Error raised while building a message through the accessor interface or
/// while serializing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The path does not resolve to a node of the plain specification.
    UnknownPath(String),
    /// The path resolves to a non-terminal node and therefore cannot hold a
    /// value.
    NotATerminal(String),
    /// The value length is incompatible with the field's boundary
    /// (e.g. 3 bytes into a `Fixed(2)` field).
    BadValueLength { path: String, expected: usize, found: usize },
    /// The value contains the field's delimiter, which would make the
    /// serialized message ambiguous.
    ValueContainsDelimiter { path: String },
    /// The field is auto-computed (length-of / counter-of) and cannot be
    /// set by the application.
    AutoField(String),
    /// A required field was never set.
    MissingField(String),
    /// An optional subtree's presence contradicts the value of its
    /// condition subject.
    OptionalMismatch { path: String, detail: String },
    /// An integer does not fit in the field's width.
    IntegerOverflow { path: String, width: usize, value: u64 },
    /// Tabular/repetition elements were set with a gap in their indices.
    NonContiguousElements { path: String, missing: usize },
    /// A manually-set length/counter field disagrees with the actual plain
    /// quantity it must describe.
    LengthInconsistent { path: String, declared: u64, actual: u64 },
    /// A derived quantity (length prefix, auto length field) does not fit
    /// in its field width.
    DerivedOverflow { path: String, width: usize, value: u64 },
    /// An integer accessor was used on a field that is not an unsigned
    /// integer.
    NotNumeric(String),
    /// A message was transcoded into a codec whose plain specification does
    /// not match the one the message was built for.
    GraphMismatch { expected: String, found: String },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownPath(p) => write!(f, "unknown field path {p:?}"),
            BuildError::NotATerminal(p) => write!(f, "path {p:?} is not a terminal field"),
            BuildError::BadValueLength { path, expected, found } => {
                write!(f, "field {path:?} expects {expected} bytes, got {found}")
            }
            BuildError::ValueContainsDelimiter { path } => {
                write!(f, "value for field {path:?} contains the field delimiter")
            }
            BuildError::AutoField(p) => {
                write!(f, "field {p:?} is auto-computed and cannot be set")
            }
            BuildError::MissingField(p) => write!(f, "required field {p:?} was not set"),
            BuildError::OptionalMismatch { path, detail } => {
                write!(f, "optional {path:?} presence is inconsistent: {detail}")
            }
            BuildError::IntegerOverflow { path, width, value } => {
                write!(f, "value {value} does not fit in {width} byte(s) for field {path:?}")
            }
            BuildError::NonContiguousElements { path, missing } => {
                write!(f, "elements of {path:?} are not contiguous: index {missing} missing")
            }
            BuildError::LengthInconsistent { path, declared, actual } => write!(
                f,
                "field {path:?} declares {declared} but the described quantity is {actual}"
            ),
            BuildError::DerivedOverflow { path, width, value } => {
                write!(f, "derived value {value} does not fit in {width} byte(s) for {path:?}")
            }
            BuildError::NotNumeric(p) => {
                write!(f, "field {p:?} is not an unsigned integer")
            }
            BuildError::GraphMismatch { expected, found } => {
                write!(
                    f,
                    "cannot transcode: message is bound to plain spec {found:?}, \
                     destination expects {expected:?}"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Error raised while parsing an (obfuscated) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer ended before the structure was complete.
    UnexpectedEnd { node: String, needed: usize, available: usize },
    /// A delimiter was not found within the current window.
    DelimiterNotFound { node: String },
    /// Trailing bytes remained after a window that must be consumed
    /// exactly.
    TrailingBytes { node: String, remaining: usize },
    /// An auto length/counter sanity check failed: the recovered value does
    /// not match the recomputed plain quantity.
    AutoMismatch { node: String, stored: u64, computed: u64 },
    /// The count recovered for a split repetition does not match its
    /// sibling half (copy-language check, paper Table II RepSplit).
    CountMismatch { node: String, left: usize, right: usize },
    /// A reference needed during parsing (length, counter, condition or
    /// split partner) was not yet recovered. Indicates a corrupted message
    /// or a mismatched obfuscation plan.
    UnresolvedReference { node: String, referenced: String },
    /// A value recovered during parsing is structurally impossible
    /// (e.g. a length that overflows the window).
    Malformed { node: String, detail: String },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEnd { node, needed, available } => write!(
                f,
                "unexpected end of message in {node:?}: needed {needed} byte(s), {available} available"
            ),
            ParseError::DelimiterNotFound { node } => {
                write!(f, "delimiter for node {node:?} not found")
            }
            ParseError::TrailingBytes { node, remaining } => {
                write!(f, "{remaining} trailing byte(s) after exactly-bounded node {node:?}")
            }
            ParseError::AutoMismatch { node, stored, computed } => write!(
                f,
                "auto field {node:?} sanity check failed: stored {stored}, computed {computed}"
            ),
            ParseError::CountMismatch { node, left, right } => write!(
                f,
                "split repetition {node:?} halves disagree on count: {left} vs {right}"
            ),
            ParseError::UnresolvedReference { node, referenced } => write!(
                f,
                "node {node:?} needs {referenced:?} which was not recovered yet"
            ),
            ParseError::Malformed { node, detail } => {
                write!(f, "malformed message at node {node:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpecError>();
        assert_send_sync::<TransformError>();
        assert_send_sync::<BuildError>();
        assert_send_sync::<ParseError>();
    }

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let samples: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(SpecError::EmptyGraph),
            Box::new(TransformError::UnknownNode(3)),
            Box::new(BuildError::UnknownPath("a.b".into())),
            Box::new(ParseError::DelimiterNotFound { node: "uri".into() }),
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric(), "{s}");
        }
    }

    #[test]
    fn parse_error_display_mentions_node() {
        let e = ParseError::UnexpectedEnd { node: "pdu".into(), needed: 4, available: 1 };
        let s = e.to_string();
        assert!(s.contains("pdu") && s.contains('4') && s.contains('1'));
    }
}

//! The obfuscation engine: random transformation selection (paper §VI).
//!
//! "Each node of the graph is analyzed to identify compatible generic
//! transformations. A transformation is randomly chosen among them and
//! applied to the node. This routine is applied as many times as indicated
//! by a parameter specified in the framework."
//!
//! The engine makes passes over the graph. In each pass, every node whose
//! per-node budget is not exhausted receives one randomly chosen applicable
//! transformation; nodes created by a transformation inherit budget
//! `target + 1` and participate in later passes. Candidate rewrites that
//! fail the global soundness checks ([`crate::transform::post_check`]) are
//! rolled back and another transformation is tried.

use rand::rngs::StdRng;

use rand::SeedableRng;

use crate::codec::Codec;
use crate::error::SpecError;
use crate::graph::FormatGraph;
use crate::obf::ObfGraph;
use crate::transform::{self, TransformKind, TransformRecord};

/// Builder for obfuscated codecs.
///
/// ```
/// use protoobf_core::graph::{Boundary, GraphBuilder};
/// use protoobf_core::engine::Obfuscator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("demo");
/// let root = b.root_sequence("msg", Boundary::End);
/// b.uint_be(root, "id", 2);
/// let graph = b.build()?;
/// let codec = Obfuscator::new(&graph).seed(7).max_per_node(2).obfuscate()?;
/// assert!(codec.transform_count() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Obfuscator<'g> {
    graph: &'g FormatGraph,
    seed: u64,
    max_per_node: u32,
    allowed: Vec<TransformKind>,
}

impl<'g> Obfuscator<'g> {
    /// Starts an obfuscator for a validated specification.
    pub fn new(graph: &'g FormatGraph) -> Self {
        Obfuscator { graph, seed: 0, max_per_node: 1, allowed: TransformKind::ALL.to_vec() }
    }

    /// Sets the raw RNG seed. Both communicating peers must use the same
    /// seed (and specification) to derive identical codecs.
    ///
    /// Deprecated shim: a bare `u64` is awkward to distribute and keep in
    /// sync across every layer of a deployment. Prefer
    /// [`Obfuscator::key`] (a string/byte secret, stretched into the seed)
    /// or, at the endpoint level, a [`crate::profile::Profile`] — the one
    /// object both peers share.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the shared secret: an arbitrary byte/string key stretched into
    /// the per-graph RNG seed ([`crate::profile::stretch_key`]). Both
    /// communicating peers must use the same key (and specification) to
    /// derive identical codecs. Supersedes [`Obfuscator::seed`].
    pub fn key(mut self, key: impl AsRef<[u8]>) -> Self {
        self.seed = crate::profile::stretch_key(key.as_ref());
        self
    }

    /// Applies a whole [`crate::profile::ObfConfig`] — key, per-node
    /// budget and allowed transformation set — in one step. This is how
    /// [`crate::profile::Profile::build_with`] drives the engine.
    pub fn config(mut self, cfg: &crate::profile::ObfConfig) -> Self {
        self.seed = cfg.rng_seed();
        self.max_per_node = cfg.level;
        self.allowed = cfg.allowed.clone();
        self
    }

    /// Maximum number of transformations per node (the paper's experiment
    /// parameter, 0–4). Zero yields the identity codec.
    pub fn max_per_node(mut self, max: u32) -> Self {
        self.max_per_node = max;
        self
    }

    /// Restricts the set of candidate transformations (all thirteen by
    /// default).
    pub fn allowed(mut self, kinds: impl IntoIterator<Item = TransformKind>) -> Self {
        self.allowed = kinds.into_iter().collect();
        self
    }

    /// Runs the selection loop and produces the codec.
    ///
    /// # Errors
    ///
    /// [`SpecError`] if the input graph fails validation.
    pub fn obfuscate(&self) -> Result<Codec, SpecError> {
        self.graph.validate()?;
        let mut g = ObfGraph::from_plain(self.graph);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut records: Vec<TransformRecord> = Vec::new();

        if self.max_per_node == 0 || self.allowed.is_empty() {
            return Ok(Codec::from_parts(g, records));
        }

        // One pass per level: every node existing at the start of a pass
        // receives at most one randomly chosen applicable transformation;
        // nodes created by a rewrite participate in later passes only.
        // This reproduces the paper's growth curve (the number of applied
        // transformations grows superlinearly with the level because the
        // graph itself grows between passes, Tables III/IV).
        for _pass in 0..self.max_per_node {
            let snapshot = g.preorder();
            for id in snapshot {
                if g.get(id).is_none() {
                    continue;
                }
                // Skip nodes detached during this pass (replaced targets).
                if !g.is_descendant(id, g.root()) {
                    continue;
                }
                let mut kinds: Vec<TransformKind> = self
                    .allowed
                    .iter()
                    .copied()
                    .filter(|&k| transform::applicable(&g, id, k).is_ok())
                    .collect();
                weighted_shuffle(&mut kinds, &mut rng);
                for kind in kinds {
                    let backup = g.clone();
                    match transform::apply(&mut g, id, kind, &mut rng) {
                        Ok(record) => {
                            if transform::post_check(&g).is_ok() {
                                records.push(record);
                                break;
                            }
                            g = backup; // sound rollback: try the next kind
                        }
                        Err(_) => {
                            g = backup;
                        }
                    }
                }
            }
        }
        Ok(Codec::from_parts(g, records))
    }
}

/// Orders candidates by repeated weighted draws (first element is a
/// weighted random choice; the rest act as soundness-check fallbacks).
fn weighted_shuffle<R: rand::Rng + ?Sized>(kinds: &mut Vec<TransformKind>, rng: &mut R) {
    let mut ordered = Vec::with_capacity(kinds.len());
    while !kinds.is_empty() {
        let total: u32 = kinds.iter().map(|k| k.weight()).sum();
        let mut pick = rng.gen_range(0..total);
        let mut chosen = 0usize;
        for (i, k) in kinds.iter().enumerate() {
            if pick < k.weight() {
                chosen = i;
                break;
            }
            pick -= k.weight();
        }
        ordered.push(kinds.remove(chosen));
    }
    *kinds = ordered;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, Condition, GraphBuilder, Predicate, StopRule};
    use crate::transform::post_check;
    use crate::value::{TerminalKind, Value};

    fn rich_graph() -> FormatGraph {
        let mut b = GraphBuilder::new("rich");
        let root = b.root_sequence("m", Boundary::End);
        let tid = b.uint_be(root, "tid", 2);
        let _ = tid;
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        let flag = b.uint_be(root, "flag", 1);
        let opt = b.optional(
            root,
            "extra",
            Condition { subject: flag, predicate: Predicate::Equals(Value::from_bytes(vec![1])) },
        );
        b.uint_be(opt, "ev", 4);
        let count = b.uint_be(root, "count", 1);
        let tab = b.tabular(root, "items", count);
        b.set_auto(count, AutoValue::CounterOf(tab));
        let item = b.sequence(tab, "item", Boundary::Delegated);
        b.uint_be(item, "addr", 2);
        b.uint_be(item, "val", 2);
        let rep = b.repetition(
            root,
            "headers",
            StopRule::Terminator(b"\r\n".to_vec()),
            Boundary::Delegated,
        );
        let h = b.sequence(rep, "header", Boundary::Delegated);
        b.terminal(h, "name", TerminalKind::Ascii, Boundary::Delimited(b": ".to_vec()));
        b.terminal(h, "hv", TerminalKind::Ascii, Boundary::Delimited(b"\r\n".to_vec()));
        b.terminal(root, "body", TerminalKind::Bytes, Boundary::End);
        b.build().unwrap()
    }

    #[test]
    fn level_zero_is_identity() {
        let g = rich_graph();
        let codec = Obfuscator::new(&g).seed(1).max_per_node(0).obfuscate().unwrap();
        assert_eq!(codec.transform_count(), 0);
    }

    #[test]
    fn level_one_applies_roughly_one_per_node() {
        let g = rich_graph();
        let codec = Obfuscator::new(&g).seed(1).max_per_node(1).obfuscate().unwrap();
        let n = codec.transform_count();
        // Not every node admits a transformation, but most do.
        assert!(n >= g.len() / 3, "applied {n} on {} nodes", g.len());
        assert!(post_check(codec.obf_graph()).is_ok());
    }

    #[test]
    fn transform_count_grows_superlinearly_with_level() {
        let g = rich_graph();
        let counts: Vec<usize> = (1..=4)
            .map(|lvl| {
                Obfuscator::new(&g)
                    .seed(42)
                    .max_per_node(lvl)
                    .obfuscate()
                    .unwrap()
                    .transform_count()
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "{counts:?}");
        // Level 4 should comfortably exceed 4x level 1 (new nodes also get
        // obfuscated), matching the paper's Tables III/IV shape.
        assert!(counts[3] > counts[0] * 3, "{counts:?}");
    }

    #[test]
    fn same_seed_same_plan() {
        let g = rich_graph();
        let a = Obfuscator::new(&g).seed(99).max_per_node(2).obfuscate().unwrap();
        let b = Obfuscator::new(&g).seed(99).max_per_node(2).obfuscate().unwrap();
        let names_a: Vec<String> = a.records().iter().map(|r| r.to_string()).collect();
        let names_b: Vec<String> = b.records().iter().map(|r| r.to_string()).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = rich_graph();
        let a = Obfuscator::new(&g).seed(1).max_per_node(2).obfuscate().unwrap();
        let b = Obfuscator::new(&g).seed(2).max_per_node(2).obfuscate().unwrap();
        let names_a: Vec<String> = a.records().iter().map(|r| r.to_string()).collect();
        let names_b: Vec<String> = b.records().iter().map(|r| r.to_string()).collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn restricted_transform_set_is_respected() {
        let g = rich_graph();
        let codec = Obfuscator::new(&g)
            .seed(5)
            .max_per_node(2)
            .allowed([TransformKind::ConstAdd, TransformKind::ConstXor])
            .obfuscate()
            .unwrap();
        assert!(codec.transform_count() > 0);
        for r in codec.records() {
            assert!(matches!(r.kind, TransformKind::ConstAdd | TransformKind::ConstXor));
        }
    }
}

//! The concurrent codec service: one compiled plan, N worker sessions.
//!
//! A [`crate::codec::Codec`] compiles its [`crate::plan::CodecPlan`] once;
//! the plan is immutable and every session interprets it with private
//! scratch state. [`CodecService`] exploits that split at scale: it owns
//! the codec and a **sharded pool** of warmed-up session scratch states,
//! so any number of threads can check out a serializer or parser without
//! per-message setup and without contending on a single lock.
//!
//! ```text
//!                      ┌──────────────── CodecService ────────────────┐
//!   thread A ── checkout ─▶ shard 0 [scratch, scratch]   Codec        │
//!   thread B ── checkout ─▶ shard 1 [scratch]            └─ CodecPlan │ (shared, immutable)
//!   thread C ── checkout ─▶ shard 2 []  → fresh scratch                │
//!                      └───────────────────────────────────────────────┘
//! ```
//!
//! Checkout hands back a [`PooledSerializer`] / [`PooledParser`] guard
//! that derefs to the underlying session; dropping the guard returns the
//! scratch (stores, recovery/distribution buffers, message capacity) to a
//! shard, so the next checkout — on any thread — starts warm. Each shard
//! is a **lock-free Treiber-stack free list** ([`crate::pool::FreeList`]):
//! checkout and checkin are single-CAS operations, shard selection is
//! round-robin with fallback scanning of the other shards, and no thread
//! ever blocks (or even spins against) another — a worker preempted
//! mid-checkout cannot stall its siblings the way the earlier
//! `Mutex<Vec<_>>` shards could. The contention counters in
//! [`ServiceStats`] remain for compatibility and observability: under the
//! lock-free pools they are structurally zero.
//!
//! Wrap the service in an [`std::sync::Arc`] to share it:
//!
//! ```
//! use std::sync::Arc;
//! use protoobf_core::graph::{Boundary, GraphBuilder};
//! use protoobf_core::{Codec, CodecService};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new("demo");
//! let root = b.root_sequence("msg", Boundary::End);
//! b.uint_be(root, "id", 2);
//! let service = Arc::new(CodecService::new(Codec::identity(&b.build()?)));
//!
//! let handles: Vec<_> = (0..4u64)
//!     .map(|t| {
//!         let svc = Arc::clone(&service);
//!         std::thread::spawn(move || {
//!             let mut serializer = svc.serializer();
//!             let mut parser = svc.parser();
//!             let mut wire = Vec::new();
//!             let mut msg = svc.codec().message_seeded(t);
//!             msg.set_uint("id", t).unwrap();
//!             serializer.serialize_into(&msg, &mut wire).unwrap();
//!             parser.parse_in_place(&wire).unwrap().get_uint("id").unwrap()
//!         })
//!     })
//!     .collect();
//! for (t, h) in handles.into_iter().enumerate() {
//!     assert_eq!(h.join().unwrap(), t as u64);
//! }
//! # Ok(())
//! # }
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::codec::Codec;
use crate::error::{BuildError, ParseError};
use crate::framing::{FrameBuffer, FrameError, MAX_FRAME};
use crate::message::Message;
use crate::parse::{ParseScratch, ParseSession};
use crate::pool::FreeList;
use crate::serialize::{SerializeScratch, SerializeSession};

/// Default upper bound of pooled scratch states kept per shard. Checkins
/// beyond the cap drop the scratch instead of growing the pool without
/// bound under bursty checkout patterns. Tunable per service with
/// [`CodecService::pool_capacity`].
const MAX_POOLED_PER_SHARD: usize = 32;

/// A thread-safe codec front end: one shared [`Codec`] (and compiled
/// plan) behind sharded pools of reusable serializer/parser scratch.
///
/// See the [module docs](self) for the concurrency model. All methods
/// take `&self`; share the service across threads with an
/// [`std::sync::Arc`].
#[derive(Debug)]
pub struct CodecService {
    codec: Codec,
    shards: Vec<Shard>,
    /// Round-robin checkout cursor (shard selection hint, not a lock).
    next: AtomicUsize,
    max_frame: usize,
    serialized: AtomicU64,
    parsed: AtomicU64,
    /// Checkout-side contention. The shards are lock-free Treiber stacks,
    /// so nothing can be contended in the blocking sense any more — this
    /// counter is kept for [`ServiceStats`] compatibility and as the
    /// observable proof of that property: it stays zero by construction.
    contended_checkout: AtomicU64,
    /// Checkin-side contention; structurally zero, as above.
    contended_checkin: AtomicU64,
}

/// One pool shard: a lock-free bounded free list per scratch kind.
#[derive(Debug)]
struct Shard {
    serializers: FreeList<SerializeScratch>,
    parsers: FreeList<ParseScratch>,
}

impl Shard {
    fn new(cap: usize) -> Shard {
        Shard { serializers: FreeList::new(cap), parsers: FreeList::new(cap) }
    }
}

/// Point-in-time service counters, from [`CodecService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Number of pool shards.
    pub shards: usize,
    /// Messages serialized through the batch/framing entry points.
    pub serialized_messages: u64,
    /// Messages parsed through the batch/framing entry points.
    pub parsed_messages: u64,
    /// Serializer scratch states currently parked in the pools.
    pub pooled_serializers: usize,
    /// Parser scratch states currently parked in the pools.
    pub pooled_parsers: usize,
    /// Peak serializer pool occupancy across all shards (sum of each
    /// shard's high-water mark) — the gauge that tells whether
    /// `MAX_POOLED_PER_SHARD` is sized right for the offered load.
    pub pooled_serializer_peak: usize,
    /// Peak parser pool occupancy, as above.
    pub pooled_parser_peak: usize,
    /// Checkout-side pool contention. Historically this counted
    /// `try_lock` misses while scanning the old `Mutex<Vec<_>>` shards;
    /// the shards are now lock-free Treiber stacks
    /// ([`crate::pool::FreeList`]), so there is no lock to miss and this
    /// is **zero by construction** — kept so dashboards that alerted on
    /// it keep working (and now read a structural guarantee).
    pub checkout_contention: u64,
    /// Checkin-side pool contention; zero by construction, as above.
    pub checkin_contention: u64,
    /// Aggregate of both sides: `checkout_contention +
    /// checkin_contention` — the quantity the pre-split
    /// `checkout_contention` field used to report. Zero by construction
    /// under the lock-free pools.
    pub pool_contention: u64,
}

impl CodecService {
    /// Wraps a codec with one pool shard per available CPU.
    pub fn new(codec: Codec) -> Self {
        let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8);
        CodecService::with_shards(codec, shards)
    }

    /// Wraps a codec with an explicit shard count (≥ 1). More shards mean
    /// less checkout contention; scratch memory scales with the number of
    /// concurrently live sessions either way.
    pub fn with_shards(codec: Codec, shards: usize) -> Self {
        // Compile eagerly: the first request should not pay for it.
        let _ = codec.plan();
        CodecService {
            codec,
            shards: (0..shards.max(1)).map(|_| Shard::new(MAX_POOLED_PER_SHARD)).collect(),
            next: AtomicUsize::new(0),
            max_frame: MAX_FRAME,
            serialized: AtomicU64::new(0),
            parsed: AtomicU64::new(0),
            contended_checkout: AtomicU64::new(0),
            contended_checkin: AtomicU64::new(0),
        }
    }

    /// Sets the maximum frame size accepted/emitted by the framing entry
    /// points (default [`MAX_FRAME`]).
    pub fn max_frame(mut self, limit: usize) -> Self {
        self.max_frame = limit;
        self
    }

    /// Sets how many warmed scratch states each shard may park (default
    /// 32). Lower caps bound memory on bursty workloads; zero disables
    /// pooling entirely (every checkout starts a fresh session). The
    /// lock-free free lists size their slabs up front, so this is a
    /// construction-time builder: the (still empty) shards are rebuilt at
    /// the new capacity.
    pub fn pool_capacity(mut self, cap: usize) -> Self {
        let shards = self.shards.len();
        self.shards = (0..shards).map(|_| Shard::new(cap)).collect();
        self
    }

    /// The underlying codec (for building messages and inspecting the
    /// obfuscation plan).
    pub fn codec(&self) -> &Codec {
        &self.codec
    }

    /// The frame-size limit enforced by the framing entry points (set with
    /// [`CodecService::max_frame`]). Transport layers stacking their own
    /// [`FrameBuffer`]s on this service should adopt the same bound.
    pub fn frame_limit(&self) -> usize {
        self.max_frame
    }

    /// Checks a serializer session out of the pool (or starts a fresh one
    /// when every pooled scratch is in use). Dropping the guard returns
    /// the warmed-up scratch to a shard.
    pub fn serializer(&self) -> PooledSerializer<'_> {
        let home = self.shard_hint();
        let session = match self.checkout_serializer(home) {
            Some(scratch) => {
                SerializeSession::from_scratch(self.codec.obf_graph(), self.codec.plan(), scratch)
            }
            None => self.codec.serializer(),
        };
        PooledSerializer { svc: self, home, session: Some(session) }
    }

    /// Checks a parser session out of the pool (or starts a fresh one when
    /// every pooled scratch is in use). Dropping the guard returns the
    /// warmed-up scratch to a shard.
    pub fn parser(&self) -> PooledParser<'_> {
        let home = self.shard_hint();
        let session = match self.checkout_parser(home) {
            Some(scratch) => {
                ParseSession::from_scratch(self.codec.obf_graph(), self.codec.plan(), scratch)
            }
            None => self.codec.parser(),
        };
        PooledParser { svc: self, home, session: Some(session) }
    }

    /// An empty message of this service's codec pre-armed as a reusable
    /// transcode destination for messages parsed by `src` — the relay
    /// target of an obfuscating gateway leg. The compiled copy program
    /// for the (src, self) pairing is cached on the codec and shared by
    /// every target (and thus every relay connection), so per-connection
    /// setup is an `Arc` clone, and per-message transcoding runs the
    /// allocation-free compiled path from the first frame on.
    ///
    /// # Errors
    ///
    /// [`BuildError::GraphMismatch`] when the two services do not share a
    /// structurally identical plain specification (a misconfigured
    /// gateway pair — caught here, before any traffic flows).
    pub fn transcode_target(&self, src: &CodecService) -> Result<Message<'_>, BuildError> {
        self.codec.transcode_target(src.codec())
    }

    /// Serializes a batch of messages through one pooled session,
    /// returning one wire per message.
    ///
    /// # Errors
    ///
    /// The first [`BuildError`] aborts the batch.
    pub fn serialize_batch(&self, msgs: &[Message<'_>]) -> Result<Vec<Vec<u8>>, BuildError> {
        let mut session = self.serializer();
        let mut wires = Vec::with_capacity(msgs.len());
        for msg in msgs {
            let mut wire = Vec::new();
            session.serialize_into(msg, &mut wire)?;
            wires.push(wire);
        }
        self.serialized.fetch_add(msgs.len() as u64, Ordering::Relaxed);
        Ok(wires)
    }

    /// Parses a batch of wires through one pooled session, returning one
    /// recovered message per wire.
    ///
    /// # Errors
    ///
    /// The first [`ParseError`] aborts the batch.
    pub fn parse_batch<'s, B: AsRef<[u8]>>(
        &'s self,
        wires: &[B],
    ) -> Result<Vec<Message<'s>>, ParseError> {
        let mut session = self.parser();
        let mut msgs = Vec::with_capacity(wires.len());
        for wire in wires {
            session.parse_in_place(wire.as_ref())?;
            msgs.push(session.take_message());
        }
        self.parsed.fetch_add(wires.len() as u64, Ordering::Relaxed);
        Ok(msgs)
    }

    /// Serializes one message and appends it to `out` as a length-framed
    /// record (the format of [`crate::framing::FrameWriter`]): the body is
    /// written straight into `out` after a backfilled 4-byte prefix — no
    /// intermediate copy. On error, `out` is left exactly as it was.
    ///
    /// # Errors
    ///
    /// [`FrameError::Build`] for serialization failures,
    /// [`FrameError::TooLarge`] when the body exceeds the service's frame
    /// limit.
    pub fn serialize_framed(&self, msg: &Message<'_>, out: &mut Vec<u8>) -> Result<(), FrameError> {
        let mut session = self.serializer();
        crate::framing::append_frame(&mut session, msg, out, self.max_frame)?;
        self.serialized.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Pops every complete frame buffered in `buf` (fed by the caller's
    /// transport) and parses each through one pooled session.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] for hostile length prefixes,
    /// [`FrameError::Parse`] when a frame does not decode. Earlier frames
    /// of the batch are dropped with the error; the stream should be torn
    /// down anyway.
    pub fn parse_framed<'s>(
        &'s self,
        buf: &mut FrameBuffer,
    ) -> Result<Vec<Message<'s>>, FrameError> {
        let mut session = self.parser();
        let mut msgs = Vec::new();
        while let Some(frame) = buf.peek()? {
            // The buffer enforces its own limit at the length prefix; the
            // service's limit also applies on the receive side, so one
            // misconfigured FrameBuffer cannot bypass it. The offending
            // frame is consumed with the error (as below) so a retry does
            // not re-fail on it.
            if frame.len() > self.max_frame {
                let got = frame.len();
                buf.consume();
                return Err(FrameError::TooLarge { limit: self.max_frame, got });
            }
            // Parse straight out of the buffer (no per-frame copy), then
            // advance the buffer's cursor past the frame. The cursor moves
            // even when the frame does not decode — matching the previous
            // pop()-based contract — so a caller that treats the error as
            // recoverable does not spin on the same poison frame forever.
            let parsed = session.parse_in_place(frame).map_err(FrameError::Parse);
            buf.consume();
            parsed?;
            msgs.push(session.take_message());
        }
        self.parsed.fetch_add(msgs.len() as u64, Ordering::Relaxed);
        Ok(msgs)
    }

    /// Current counters and pool occupancy.
    pub fn stats(&self) -> ServiceStats {
        let count = |f: fn(&Shard) -> usize| self.shards.iter().map(f).sum();
        let out = self.contended_checkout.load(Ordering::Relaxed);
        let inn = self.contended_checkin.load(Ordering::Relaxed);
        ServiceStats {
            shards: self.shards.len(),
            serialized_messages: self.serialized.load(Ordering::Relaxed),
            parsed_messages: self.parsed.load(Ordering::Relaxed),
            pooled_serializers: count(|s| s.serializers.len()),
            pooled_parsers: count(|s| s.parsers.len()),
            pooled_serializer_peak: count(|s| s.serializers.high_water()),
            pooled_parser_peak: count(|s| s.parsers.high_water()),
            checkout_contention: out,
            checkin_contention: inn,
            pool_contention: out + inn,
        }
    }

    fn shard_hint(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len()
    }

    /// Scans the shards starting at `home`, popping the first parked
    /// scratch. Every probe is one lock-free [`FreeList::pop`] — a
    /// concurrent checkout on the same shard costs a CAS retry, never a
    /// wait. `None` means every pool is empty — the caller starts a fresh
    /// session instead.
    fn checkout<T>(&self, home: usize, pool_of: impl Fn(&Shard) -> &FreeList<T>) -> Option<T> {
        let n = self.shards.len();
        (0..n).find_map(|i| pool_of(&self.shards[(home + i) % n]).pop())
    }

    /// Parks `item` in the first shard with a free slot, scanning from
    /// `home`; when every shard is at capacity the scratch is dropped —
    /// the pools' memory bound holds even under a burst of returns.
    fn checkin<T>(&self, home: usize, item: T, pool_of: impl Fn(&Shard) -> &FreeList<T>) {
        let n = self.shards.len();
        let mut item = item;
        for i in 0..n {
            match pool_of(&self.shards[(home + i) % n]).push(item) {
                Ok(()) => return,
                Err(bounced) => item = bounced,
            }
        }
    }

    fn checkout_serializer(&self, home: usize) -> Option<SerializeScratch> {
        self.checkout(home, |s| &s.serializers)
    }

    fn checkout_parser(&self, home: usize) -> Option<ParseScratch> {
        self.checkout(home, |s| &s.parsers)
    }

    fn checkin_serializer(&self, home: usize, scratch: SerializeScratch) {
        self.checkin(home, scratch, |s| &s.serializers);
    }

    fn checkin_parser(&self, home: usize, scratch: ParseScratch) {
        self.checkin(home, scratch, |s| &s.parsers);
    }
}

/// A pooled serialization session checked out of a [`CodecService`].
/// Derefs to [`SerializeSession`]; dropping it returns the scratch state
/// to the service.
#[derive(Debug)]
pub struct PooledSerializer<'s> {
    svc: &'s CodecService,
    home: usize,
    session: Option<SerializeSession<'s>>,
}

impl<'s> Deref for PooledSerializer<'s> {
    type Target = SerializeSession<'s>;

    fn deref(&self) -> &SerializeSession<'s> {
        self.session.as_ref().expect("present until drop")
    }
}

impl<'s> DerefMut for PooledSerializer<'s> {
    fn deref_mut(&mut self) -> &mut SerializeSession<'s> {
        self.session.as_mut().expect("present until drop")
    }
}

impl Drop for PooledSerializer<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.svc.checkin_serializer(self.home, session.into_scratch());
        }
    }
}

/// A pooled parse session checked out of a [`CodecService`]. Derefs to
/// [`ParseSession`]; dropping it returns the scratch state to the service.
#[derive(Debug)]
pub struct PooledParser<'s> {
    svc: &'s CodecService,
    home: usize,
    session: Option<ParseSession<'s>>,
}

impl<'s> Deref for PooledParser<'s> {
    type Target = ParseSession<'s>;

    fn deref(&self) -> &ParseSession<'s> {
        self.session.as_ref().expect("present until drop")
    }
}

impl<'s> DerefMut for PooledParser<'s> {
    fn deref_mut(&mut self) -> &mut ParseSession<'s> {
        self.session.as_mut().expect("present until drop")
    }
}

impl Drop for PooledParser<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.svc.checkin_parser(self.home, session.into_scratch());
        }
    }
}

/// Compile-time audit that the shared pieces really cross threads: the
/// codec (graph + cached plan) must be shareable, sessions and messages
/// must be movable to worker threads.
#[allow(dead_code)]
fn assert_thread_safety() {
    fn shared<T: Send + Sync>() {}
    fn movable<T: Send>() {}
    shared::<Codec>();
    shared::<crate::plan::CodecPlan>();
    shared::<crate::obf::ObfGraph>();
    shared::<CodecService>();
    movable::<SerializeSession<'_>>();
    movable::<ParseSession<'_>>();
    movable::<Message<'_>>();
    movable::<PooledSerializer<'_>>();
    movable::<PooledParser<'_>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Obfuscator;
    use crate::graph::{AutoValue, Boundary, GraphBuilder};
    use crate::sample::random_message;
    use crate::value::TerminalKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn obfuscated_codec() -> Codec {
        let mut b = GraphBuilder::new("svc");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        b.uint_be(root, "code", 4);
        let g = b.build().unwrap();
        Obfuscator::new(&g).seed(5).max_per_node(2).obfuscate().unwrap()
    }

    #[test]
    fn pooled_sessions_roundtrip_and_are_reused() {
        let svc = CodecService::with_shards(obfuscated_codec(), 2);
        for round in 0..5u64 {
            let mut s = svc.serializer();
            let mut p = svc.parser();
            let mut msg = svc.codec().message_seeded(round);
            msg.set("data", b"hello".as_slice()).unwrap();
            msg.set_uint("code", round).unwrap();
            let mut wire = Vec::new();
            s.serialize_into(&msg, &mut wire).unwrap();
            let back = p.parse_in_place(&wire).unwrap();
            assert_eq!(back.get("data").unwrap().as_bytes(), b"hello");
            assert_eq!(back.get_uint("code").unwrap(), round);
        }
        let stats = svc.stats();
        assert_eq!(stats.pooled_serializers, 1, "scratch returned to the pool and reused");
        assert_eq!(stats.pooled_parsers, 1);
    }

    #[test]
    fn pooled_wire_matches_direct_session_wire() {
        let svc = CodecService::with_shards(obfuscated_codec(), 2);
        let mut msg = svc.codec().message_seeded(1);
        msg.set("data", b"determinism".as_slice()).unwrap();
        msg.set_uint("code", 9).unwrap();
        let mut pooled = Vec::new();
        svc.serializer().serialize_into_seeded(&msg, &mut pooled, 42).unwrap();
        let direct = svc.codec().serialize_seeded(&msg, 42).unwrap();
        assert_eq!(pooled, direct);
    }

    #[test]
    fn batch_apis_roundtrip() {
        let svc = CodecService::with_shards(obfuscated_codec(), 4);
        let mut rng = StdRng::seed_from_u64(3);
        let msgs: Vec<_> = (0..16).map(|_| random_message(svc.codec(), &mut rng)).collect();
        let wires = svc.serialize_batch(&msgs).unwrap();
        assert_eq!(wires.len(), msgs.len());
        let back = svc.parse_batch(&wires).unwrap();
        assert_eq!(back.len(), msgs.len());
        for (orig, parsed) in msgs.iter().zip(&back) {
            assert_eq!(
                crate::serialize::serialize_seeded(svc.codec().obf_graph(), orig, 0).unwrap(),
                crate::serialize::serialize_seeded(svc.codec().obf_graph(), parsed, 0).unwrap(),
                "batch roundtrip must preserve message structure"
            );
        }
        let stats = svc.stats();
        assert_eq!(stats.serialized_messages, 16);
        assert_eq!(stats.parsed_messages, 16);
    }

    #[test]
    fn framed_entry_points_roundtrip() {
        let svc = CodecService::with_shards(obfuscated_codec(), 2);
        let mut stream = Vec::new();
        for i in 0..3u64 {
            let mut msg = svc.codec().message_seeded(i);
            msg.set("data", format!("payload {i}").into_bytes()).unwrap();
            msg.set_uint("code", i).unwrap();
            svc.serialize_framed(&msg, &mut stream).unwrap();
        }
        let mut fb = FrameBuffer::new();
        fb.feed(&stream);
        let msgs = svc.parse_framed(&mut fb).unwrap();
        assert_eq!(msgs.len(), 3);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.get_string("data").unwrap(), format!("payload {i}"));
        }
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn framed_respects_service_frame_limit() {
        let svc = CodecService::with_shards(obfuscated_codec(), 1).max_frame(4);
        let mut msg = svc.codec().message_seeded(1);
        msg.set("data", vec![7u8; 64]).unwrap();
        msg.set_uint("code", 1).unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            svc.serialize_framed(&msg, &mut out),
            Err(FrameError::TooLarge { limit: 4, .. })
        ));
        assert!(out.is_empty(), "nothing written for rejected frames");
    }

    /// A codec that draws random material at serialize time: the auto
    /// length's holder is split with xor, so materialization generates a
    /// fresh share per message.
    fn random_material_codec() -> Codec {
        let mut b = GraphBuilder::new("svc-rng");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        let mut g = crate::obf::ObfGraph::from_plain(&b.build().unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let lp = g.plain().resolve_names(&["len"]).unwrap();
        let holder = g.holder_of(lp).unwrap();
        crate::transform::apply(
            &mut g,
            holder,
            crate::transform::TransformKind::SplitXor,
            &mut rng,
        )
        .unwrap();
        Codec::from_parts(g, Vec::new())
    }

    #[test]
    fn pooled_rng_does_not_leak_across_checkouts() {
        let svc = CodecService::with_shards(random_material_codec(), 1);
        let mut msg = svc.codec().message_seeded(1);
        msg.set("data", b"rng".as_slice()).unwrap();
        // Precondition: the plan draws random material at serialize time
        // (otherwise this test cannot distinguish RNG streams).
        assert_ne!(
            svc.codec().serialize_seeded(&msg, 1).unwrap(),
            svc.codec().serialize_seeded(&msg, 2).unwrap(),
            "fixture must have serialize-time randomness"
        );
        // Park scratch whose RNG sits at a known position (seed 42).
        {
            let mut s = svc.serializer();
            s.reseed(42);
        }
        // The wire an attacker would predict if the pooled session simply
        // continued the seed-42 stream.
        let mut predicted = Vec::new();
        let mut direct = svc.codec().serializer();
        direct.reseed(42);
        direct.serialize_into(&msg, &mut predicted).unwrap();
        // A fresh checkout must NOT reproduce it: from_scratch reseeds.
        let mut got = Vec::new();
        svc.serializer().serialize_into(&msg, &mut got).unwrap();
        assert_ne!(got, predicted, "pooled session continued a caller-seeded RNG stream");
    }

    #[test]
    fn parse_framed_enforces_service_limit() {
        // Even when the caller's FrameBuffer is permissive, the service's
        // own max_frame applies on the receive side.
        let svc = CodecService::with_shards(obfuscated_codec(), 1).max_frame(8);
        let mut fb = FrameBuffer::new(); // default (much larger) limit
        let mut frame = 16u32.to_be_bytes().to_vec();
        frame.extend_from_slice(&[0xAB; 16]);
        fb.feed(&frame);
        assert!(matches!(
            svc.parse_framed(&mut fb),
            Err(FrameError::TooLarge { limit: 8, got: 16 })
        ));
        // The oversized frame was consumed with the error: a retry must
        // not re-fail on it forever.
        assert_eq!(fb.pending(), 0);
        assert!(svc.parse_framed(&mut fb).unwrap().is_empty());
    }

    #[test]
    fn parse_framed_drops_undecodable_frame_instead_of_poisoning() {
        let svc = CodecService::with_shards(obfuscated_codec(), 1);
        let mut fb = FrameBuffer::new();
        // One garbage frame queued ahead of one valid frame.
        let mut garbage = 8u32.to_be_bytes().to_vec();
        garbage.extend_from_slice(&[0xFF; 8]);
        fb.feed(&garbage);
        let mut msg = svc.codec().message_seeded(1);
        msg.set("data", b"ok".as_slice()).unwrap();
        msg.set_uint("code", 1).unwrap();
        let mut valid = Vec::new();
        svc.serialize_framed(&msg, &mut valid).unwrap();
        fb.feed(&valid);
        assert!(matches!(svc.parse_framed(&mut fb), Err(FrameError::Parse(_))));
        // The bad frame was consumed with the error: a retry must deliver
        // the valid frame behind it, not the same error forever.
        let msgs = svc.parse_framed(&mut fb).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].get_uint("code").unwrap(), 1);
        assert_eq!(fb.pending(), 0);
    }

    /// The lock-free pools' headline property, observed through the
    /// legacy counters: 8 threads hammering checkout/checkin on a single
    /// shard record **zero** contention — there is no lock left to miss.
    /// (Under the old `Mutex<Vec<_>>` shards this workload reliably drove
    /// the counters up.)
    #[test]
    fn contention_counters_stay_zero_under_concurrent_hammer() {
        let svc = std::sync::Arc::new(CodecService::with_shards(obfuscated_codec(), 1));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let svc = std::sync::Arc::clone(&svc);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let s = svc.serializer();
                        let p = svc.parser();
                        drop(p);
                        drop(s);
                    }
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.checkout_contention, 0, "lock-free checkout cannot contend");
        assert_eq!(stats.checkin_contention, 0, "lock-free checkin cannot contend");
        assert_eq!(stats.pool_contention, 0, "legacy aggregate stays the sum (0 + 0)");
        // The scratch itself still pools and reuses across the churn.
        assert!(stats.pooled_serializers >= 1, "scratch returned to the pool");
    }

    /// The capacity bound is structural: a burst of returns beyond the
    /// per-shard cap drops the excess scratch instead of growing the pool.
    #[test]
    fn pool_capacity_bounds_parked_scratch() {
        let svc = CodecService::with_shards(obfuscated_codec(), 1).pool_capacity(2);
        let guards: Vec<_> = (0..5).map(|_| svc.serializer()).collect();
        drop(guards);
        assert_eq!(svc.stats().pooled_serializers, 2, "checkins beyond the cap are dropped");
        // Zero disables pooling entirely.
        let svc = CodecService::with_shards(obfuscated_codec(), 1).pool_capacity(0);
        drop(svc.serializer());
        drop(svc.parser());
        let stats = svc.stats();
        assert_eq!(stats.pooled_serializers, 0);
        assert_eq!(stats.pooled_parsers, 0);
    }

    #[test]
    fn transcode_target_runs_the_shared_program() {
        let clear = CodecService::with_shards(Codec::identity(obfuscated_codec().plain()), 1);
        let obf = CodecService::with_shards(obfuscated_codec(), 1);
        let mut msg = clear.codec().message_seeded(1);
        msg.set("data", b"via service".as_slice()).unwrap();
        msg.set_uint("code", 4).unwrap();
        let mut target = obf.transcode_target(&clear).unwrap();
        msg.transcode_into(&mut target).unwrap();
        assert_eq!(target.get("data").unwrap().as_bytes(), b"via service");
        assert_eq!(target.get_uint("code").unwrap(), 4);
    }

    #[test]
    fn concurrent_smoke() {
        let svc = std::sync::Arc::new(CodecService::new(obfuscated_codec()));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let svc = std::sync::Arc::clone(&svc);
                std::thread::spawn(move || {
                    let mut s = svc.serializer();
                    let mut p = svc.parser();
                    let mut wire = Vec::new();
                    for round in 0..50u64 {
                        let mut msg = svc.codec().message_seeded(t * 1000 + round);
                        msg.set("data", format!("t{t} r{round}").into_bytes()).unwrap();
                        msg.set_uint("code", t ^ round).unwrap();
                        s.serialize_into(&msg, &mut wire).unwrap();
                        let back = p.parse_in_place(&wire).unwrap();
                        assert_eq!(back.get_uint("code").unwrap(), t ^ round);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}

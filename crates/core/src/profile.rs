//! The endpoint profile: **one serializable object drives the whole
//! obfuscated stack**.
//!
//! The paper's deployment model requires both peers to derive the *same*
//! obfuscated grammar from a shared secret. Earlier layers exposed that
//! secret as a bare `u64` seed that callers had to plumb — by hand, kept
//! in sync — through the [`crate::engine::Obfuscator`], the
//! [`crate::service::CodecService`], every transport connection and the
//! CLI. A [`Profile`] replaces all of that plumbing with a single value
//! (ScrambleSuit and CDTP use the same shape: one keyed configuration
//! object from which each peer independently derives its polymorphic
//! stack):
//!
//! * the **spec sources** — one per direction, so a connection can run
//!   asymmetric request/response formats (e.g. `builtin:dns-query`
//!   initiator→responder and `builtin:dns-response` back);
//! * the **obfuscation config** ([`ObfConfig`]) — the shared **key** (a
//!   string/byte secret stretched into the per-graph RNG seed by
//!   [`stretch_key`]), the per-node budget (*level*) and the allowed
//!   transformation set;
//! * the **service tuning** ([`Tuning`]) — frame limit, pool shards and
//!   per-shard pool capacity.
//!
//! A profile serializes to a human-readable text format
//! ([`Profile::to_text`], round-tripped by [`Profile::parse`]); both
//! peers hold a copy of the same file. [`Profile::build_with`] resolves
//! the spec sources (the caller supplies a [`SpecResolver`]; the
//! `protoobf` facade crate wires the DSL parser and the builtin protocol
//! table) and compiles everything into an [`Endpoint`]: the obfuscated
//! and clear codec services for both directions, plus a
//! [`Fingerprint`] — a stable digest over the compiled
//! [`crate::plan::CodecPlan`]s. Peers exchange fingerprints (they reveal
//! neither key nor grammar) to verify they derived identical stacks
//! *before* any traffic flows:
//!
//! ```text
//!   profile file ──parse──▶ Profile ──build_with──▶ Endpoint
//!                                                   ├─ fingerprint()   (compare with peer)
//!                                                   ├─ tx/rx_service() (obfuscated stacks)
//!                                                   └─ clear_*()       (identity stacks)
//! ```

use std::fmt;
use std::sync::Arc;

use crate::codec::Codec;
use crate::error::SpecError;
use crate::framing::MAX_FRAME;
use crate::graph::FormatGraph;
use crate::plan::StableHasher;
use crate::service::CodecService;
use crate::transform::TransformKind;

/// Stretches an arbitrary byte/string secret into the `u64` RNG seed the
/// obfuscation engine consumes: FNV-1a over a domain tag and the key,
/// finished with a splitmix64 avalanche so single-bit key changes flip
/// roughly half the seed bits.
///
/// This is a *derivation*, not a cryptographic KDF — the paper's threat
/// model is grammar obscurity, not key recovery resistance. Deterministic
/// across processes and platforms by construction.
pub fn stretch_key(key: &[u8]) -> u64 {
    let mut h = StableHasher::new(0xcbf2_9ce4_8422_2325);
    h.update(b"protoobf-key/1");
    h.update(key);
    let mut z = h.finish().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Where a profile half's plain specification comes from.
///
/// Sources must not contain whitespace or `#` (the text format is
/// line-and-token based with `#` comments; [`SpecSource::from_str`]
/// rejects both so every parseable source round-trips). `builtin:NAME`
/// names a bundled protocol; any other token is a DSL file path.
/// Constructing the enum variants directly bypasses that check — only do
/// so for sources that never pass through the text format (e.g. the
/// CLI's verbatim positional paths).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpecSource {
    /// A bundled experiment protocol (`builtin:dns-query`, …). Resolution
    /// lives in the resolver; core attaches no meaning to the name.
    Builtin(String),
    /// Path of a specification DSL file.
    File(String),
}

impl fmt::Display for SpecSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecSource::Builtin(name) => write!(f, "builtin:{name}"),
            SpecSource::File(path) => write!(f, "{path}"),
        }
    }
}

impl std::str::FromStr for SpecSource {
    type Err = ProfileError;

    fn from_str(s: &str) -> Result<SpecSource, ProfileError> {
        if s.is_empty() {
            return Err(ProfileError::parse(0, "empty spec source"));
        }
        if s.chars().any(char::is_whitespace) {
            return Err(ProfileError::parse(0, format!("spec source {s:?} contains whitespace")));
        }
        // '#' starts a comment in the text format, so a source containing
        // it could never round-trip — reject it up front instead of
        // silently truncating on re-parse.
        if s.contains('#') {
            return Err(ProfileError::parse(0, format!("spec source {s:?} contains '#'")));
        }
        match s.strip_prefix("builtin:") {
            Some("") => Err(ProfileError::parse(0, "empty builtin name")),
            Some(name) => Ok(SpecSource::Builtin(name.to_string())),
            None => Ok(SpecSource::File(s.to_string())),
        }
    }
}

/// The keyed obfuscation parameters shared by both peers (extracted from
/// the old `Obfuscator` builder flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObfConfig {
    /// The shared secret, stretched into the RNG seed by [`stretch_key`].
    /// An empty key is permitted (a keyless deployment obscures against
    /// passive observers only).
    pub key: Vec<u8>,
    /// Maximum transformations per node (the paper's level parameter,
    /// 0–4 in the experiments). Zero yields the identity codec.
    pub level: u32,
    /// Candidate transformation kinds (all thirteen by default).
    pub allowed: Vec<TransformKind>,
}

impl Default for ObfConfig {
    fn default() -> Self {
        ObfConfig { key: Vec::new(), level: 1, allowed: TransformKind::ALL.to_vec() }
    }
}

impl ObfConfig {
    /// The RNG seed this config derives ([`stretch_key`] over the key).
    pub fn rng_seed(&self) -> u64 {
        stretch_key(&self.key)
    }
}

/// Service-level tuning carried by the profile so both peers (and every
/// layer of one endpoint) agree on limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuning {
    /// Frame-size limit enforced by services and connections.
    pub max_frame: usize,
    /// Pool shard count (`None`: one per available CPU).
    pub shards: Option<usize>,
    /// Pooled scratch states kept per shard (`None`: service default).
    pub pool_capacity: Option<usize>,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning { max_frame: MAX_FRAME, shards: None, pool_capacity: None }
    }
}

/// The single source of truth for one obfuscated endpoint; see the
/// [module docs](self).
///
/// Direction naming follows the connection initiator: **`tx`** is the
/// initiator→responder spec (what a client sends), **`rx`** is the
/// responder→initiator spec. Symmetric protocols use the same source for
/// both ([`Profile::symmetric`]); the text format then prints one `spec`
/// line instead of `tx`/`rx`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    tx: SpecSource,
    rx: SpecSource,
    obf: ObfConfig,
    tuning: Tuning,
}

impl Profile {
    /// A profile whose both directions speak `spec`.
    pub fn symmetric(spec: SpecSource) -> Profile {
        Profile { tx: spec.clone(), rx: spec, obf: ObfConfig::default(), tuning: Tuning::default() }
    }

    /// A profile with distinct request (`tx`, initiator→responder) and
    /// response (`rx`) specs.
    pub fn asymmetric(tx: SpecSource, rx: SpecSource) -> Profile {
        Profile { tx, rx, obf: ObfConfig::default(), tuning: Tuning::default() }
    }

    /// Sets the shared secret.
    pub fn key(mut self, key: impl AsRef<[u8]>) -> Profile {
        self.obf.key = key.as_ref().to_vec();
        self
    }

    /// Sets the obfuscation level (max transformations per node).
    pub fn level(mut self, level: u32) -> Profile {
        self.obf.level = level;
        self
    }

    /// Restricts the allowed transformation kinds.
    pub fn transforms(mut self, kinds: impl IntoIterator<Item = TransformKind>) -> Profile {
        self.obf.allowed = kinds.into_iter().collect();
        self
    }

    /// Sets the frame-size limit.
    pub fn max_frame(mut self, limit: usize) -> Profile {
        self.tuning.max_frame = limit;
        self
    }

    /// Sets the service pool shard count.
    pub fn shards(mut self, shards: usize) -> Profile {
        self.tuning.shards = Some(shards);
        self
    }

    /// Sets the per-shard session pool capacity.
    pub fn pool_capacity(mut self, cap: usize) -> Profile {
        self.tuning.pool_capacity = Some(cap);
        self
    }

    /// Initiator→responder spec source.
    pub fn tx(&self) -> &SpecSource {
        &self.tx
    }

    /// Responder→initiator spec source.
    pub fn rx(&self) -> &SpecSource {
        &self.rx
    }

    /// The keyed obfuscation parameters.
    pub fn obf(&self) -> &ObfConfig {
        &self.obf
    }

    /// The service tuning.
    pub fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// True when both directions speak the same spec.
    pub fn is_symmetric(&self) -> bool {
        self.tx == self.rx
    }

    /// Canonical text form; [`Profile::parse`] round-trips it exactly
    /// (`parse(to_text(p)) == p`).
    pub fn to_text(&self) -> String {
        let mut out = String::from("profile protoobf/1\n");
        if self.is_symmetric() {
            out.push_str(&format!("spec {}\n", self.tx));
        } else {
            out.push_str(&format!("tx {}\n", self.tx));
            out.push_str(&format!("rx {}\n", self.rx));
        }
        out.push_str(&format!("key \"{}\"\n", escape_key(&self.obf.key)));
        out.push_str(&format!("level {}\n", self.obf.level));
        if self.obf.allowed == TransformKind::ALL {
            out.push_str("transforms all\n");
        } else if self.obf.allowed.is_empty() {
            out.push_str("transforms none\n");
        } else {
            let names: Vec<&str> = self.obf.allowed.iter().map(|k| k.name()).collect();
            out.push_str(&format!("transforms {}\n", names.join(",")));
        }
        out.push_str(&format!("max-frame {}\n", self.tuning.max_frame));
        if let Some(s) = self.tuning.shards {
            out.push_str(&format!("shards {s}\n"));
        }
        if let Some(c) = self.tuning.pool_capacity {
            out.push_str(&format!("pool-capacity {c}\n"));
        }
        out
    }

    /// Parses the text format emitted by [`Profile::to_text`] (order of
    /// the non-header lines is free; `#` starts a comment outside
    /// quotes; unknown or repeated keywords are errors naming the line).
    ///
    /// # Errors
    ///
    /// [`ProfileError::Parse`] with the offending line and token.
    pub fn parse(text: &str) -> Result<Profile, ProfileError> {
        Parser::new(text).run()
    }

    /// Resolves the spec sources and derives the per-direction codecs
    /// plus the [`Fingerprint`] — **without building services**. The
    /// cheap path for one-shot inspection (`protoobf check`/`dot`/`gen`/
    /// `demo`, offline fingerprint diffing); [`Profile::build_with`]
    /// layers the pooled services on top for serving traffic.
    ///
    /// # Errors
    ///
    /// See [`Profile::build_with`].
    pub fn derive_with<R: SpecResolver + ?Sized>(
        &self,
        resolver: &R,
    ) -> Result<Derivation, ProfileError> {
        let tx_graph = resolver
            .resolve(&self.tx)
            .map_err(|e| ProfileError::Resolve { source: self.tx.to_string(), reason: e })?;
        let tx = self.obfuscate(&tx_graph)?;
        let rx = if self.is_symmetric() {
            None
        } else {
            let rx_graph = resolver
                .resolve(&self.rx)
                .map_err(|e| ProfileError::Resolve { source: self.rx.to_string(), reason: e })?;
            Some(self.obfuscate(&rx_graph)?)
        };
        let fingerprint = match &rx {
            Some(rx) => Fingerprint::derive(self, tx.plan(), rx.plan()),
            None => Fingerprint::derive(self, tx.plan(), tx.plan()),
        };
        Ok(Derivation { tx, rx, fingerprint })
    }

    fn obfuscate(&self, graph: &FormatGraph) -> Result<Codec, ProfileError> {
        if self.obf.level == 0 {
            graph.validate().map_err(ProfileError::Spec)?;
            return Ok(Codec::identity(graph));
        }
        crate::engine::Obfuscator::new(graph)
            .config(&self.obf)
            .obfuscate()
            .map_err(ProfileError::Spec)
    }

    /// Compiles the whole endpoint: obfuscated and clear (identity) codec
    /// services for both directions, plus the [`Fingerprint`]. The
    /// resolver maps [`SpecSource`]s to validated [`FormatGraph`]s — use
    /// the `protoobf` facade's standard resolver, or any closure
    /// `Fn(&SpecSource) -> Result<FormatGraph, String>`.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Resolve`] when a source cannot be resolved,
    /// [`ProfileError::Spec`] when a resolved graph fails validation.
    pub fn build_with<R: SpecResolver + ?Sized>(
        &self,
        resolver: &R,
    ) -> Result<Endpoint, ProfileError> {
        let Derivation { tx: tx_codec, rx: rx_codec, fingerprint } = self.derive_with(resolver)?;
        let identity = self.obf.level == 0;
        let clear_tx = self.service(Codec::identity(tx_codec.plain()));
        let tx = if identity { Arc::clone(&clear_tx) } else { self.service(tx_codec) };
        let (rx, clear_rx) = match rx_codec {
            None => (Arc::clone(&tx), Arc::clone(&clear_tx)),
            Some(codec) => {
                let clear = self.service(Codec::identity(codec.plain()));
                let obf = if identity { Arc::clone(&clear) } else { self.service(codec) };
                (obf, clear)
            }
        };
        Ok(Endpoint { profile: self.clone(), fingerprint, tx, rx, clear_tx, clear_rx })
    }

    /// Derives only the [`Fingerprint`] (compiles the codecs but no
    /// services) — enough to compare two endpoints' derivations without
    /// sending traffic.
    ///
    /// # Errors
    ///
    /// See [`Profile::build_with`].
    pub fn fingerprint_with<R: SpecResolver + ?Sized>(
        &self,
        resolver: &R,
    ) -> Result<Fingerprint, ProfileError> {
        Ok(self.derive_with(resolver)?.fingerprint)
    }

    fn service(&self, codec: Codec) -> Arc<CodecService> {
        let svc = match self.tuning.shards {
            Some(n) => CodecService::with_shards(codec, n),
            None => CodecService::new(codec),
        };
        let svc = svc.max_frame(self.tuning.max_frame);
        let svc = match self.tuning.pool_capacity {
            Some(cap) => svc.pool_capacity(cap),
            None => svc,
        };
        Arc::new(svc)
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl std::str::FromStr for Profile {
    type Err = ProfileError;

    fn from_str(s: &str) -> Result<Profile, ProfileError> {
        Profile::parse(s)
    }
}

/// Maps [`SpecSource`]s to validated plain graphs for
/// [`Profile::build_with`]. Implemented for any
/// `Fn(&SpecSource) -> Result<FormatGraph, String>`; the `protoobf`
/// facade provides the standard implementation (builtin protocol table +
/// DSL file parser).
pub trait SpecResolver {
    /// Resolves one source; the error string is wrapped into
    /// [`ProfileError::Resolve`].
    fn resolve(&self, src: &SpecSource) -> Result<FormatGraph, String>;
}

impl<F: Fn(&SpecSource) -> Result<FormatGraph, String>> SpecResolver for F {
    fn resolve(&self, src: &SpecSource) -> Result<FormatGraph, String> {
        self(src)
    }
}

/// Stable digest of an endpoint's derived stacks (both directions'
/// compiled [`crate::plan::CodecPlan`]s plus the frame limit). Equal
/// profiles yield equal fingerprints; any divergence — key, level,
/// transform set, spec, frame limit — changes it. Cheap to compare.
///
/// The digest does not expose the key or grammar directly, but the
/// derivation is deterministic and fast, so an observer who knows the
/// spec sources can brute-force **low-entropy** keys offline by
/// re-deriving candidate fingerprints (consistent with [`stretch_key`]
/// being a derivation, not a KDF). Treat the fingerprint like a
/// password hash: fine to compare over a trusted channel, and safe to
/// publish only when the key has real entropy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    bits: [u64; 2],
}

impl Fingerprint {
    fn derive(profile: &Profile, tx: &crate::plan::CodecPlan, rx: &crate::plan::CodecPlan) -> Self {
        let tx_digest = tx.digest();
        let rx_digest = rx.digest();
        let half = |init: u64| {
            let mut h = StableHasher::new(init);
            h.update(b"protoobf-fingerprint/1");
            // The spec sources participate alongside the plans:
            // structurally identical grammars under different names must
            // still be distinguishable when diffing two endpoints.
            h.update(profile.tx.to_string().as_bytes());
            h.update(&[0]);
            h.update(profile.rx.to_string().as_bytes());
            h.update(&[0]);
            h.update(&tx_digest.to_be_bytes());
            h.update(&rx_digest.to_be_bytes());
            h.update(&(profile.tuning.max_frame as u64).to_be_bytes());
            h.finish()
        };
        Fingerprint { bits: [half(0xcbf2_9ce4_8422_2325), half(0x9e37_79b9_7f4a_7c15)] }
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.bits[0], self.bits[1])
    }
}

/// The codec-level result of [`Profile::derive_with`]: the derived
/// per-direction codecs and their fingerprint, with no service pools
/// built. Enough for inspection, code generation and offline
/// fingerprint diffing.
#[derive(Debug)]
pub struct Derivation {
    /// Obfuscated codec of the initiator→responder direction.
    pub tx: Codec,
    /// Obfuscated codec of the responder→initiator direction (`None`
    /// for symmetric profiles — use `tx`).
    pub rx: Option<Codec>,
    /// The derivation fingerprint (same value [`Endpoint::fingerprint`]
    /// reports after a full build).
    pub fingerprint: Fingerprint,
}

/// A compiled endpoint: what [`Profile::build_with`] returns. Owns the
/// obfuscated and clear codec services for both directions (symmetric
/// profiles share one service per side) and the derivation
/// [`Fingerprint`].
///
/// Direction naming matches the profile: `tx` carries
/// initiator→responder traffic, `rx` the reverse. A responder simply
/// uses them swapped (parse inbound with `tx`'s codec, reply with
/// `rx`'s) — both peers build from the same profile file.
#[derive(Debug)]
pub struct Endpoint {
    profile: Profile,
    fingerprint: Fingerprint,
    tx: Arc<CodecService>,
    rx: Arc<CodecService>,
    clear_tx: Arc<CodecService>,
    clear_rx: Arc<CodecService>,
}

impl Endpoint {
    /// The profile this endpoint was built from.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The derivation fingerprint. Two endpoints built from copies of the
    /// same profile report equal fingerprints; compare them (out of band,
    /// or logged on both sides) before sending traffic.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Obfuscated service for initiator→responder traffic.
    pub fn tx_service(&self) -> &Arc<CodecService> {
        &self.tx
    }

    /// Obfuscated service for responder→initiator traffic.
    pub fn rx_service(&self) -> &Arc<CodecService> {
        &self.rx
    }

    /// Clear (identity-plan) service over the `tx` spec — what an
    /// unmodified client emits and a gateway's clear leg parses.
    pub fn clear_tx_service(&self) -> &Arc<CodecService> {
        &self.clear_tx
    }

    /// Clear (identity-plan) service over the `rx` spec.
    pub fn clear_rx_service(&self) -> &Arc<CodecService> {
        &self.clear_rx
    }

    /// True when both directions share one spec (and one service).
    pub fn is_symmetric(&self) -> bool {
        Arc::ptr_eq(&self.tx, &self.rx)
    }

    /// Human-readable derivation summary for logs and `protoobf print
    /// --profile`: per-direction spec, transformation count and plan
    /// shape, then the fingerprint operators diff across endpoints.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let dir = |label: &str, src: &SpecSource, svc: &CodecService| {
            let codec = svc.codec();
            format!(
                "{label} {src}: {} nodes -> {} slots, {} transformations, plan digest {:016x}\n",
                codec.plain().len(),
                codec.plan().slots(),
                codec.transform_count(),
                codec.plan().digest(),
            )
        };
        out.push_str(&dir("tx", &self.profile.tx, &self.tx));
        if self.is_symmetric() {
            out.push_str("rx = tx (symmetric profile)\n");
        } else {
            out.push_str(&dir("rx", &self.profile.rx, &self.rx));
        }
        out.push_str(&format!(
            "key {} bytes, level {}, transforms {}; max-frame {}\n",
            self.profile.obf.key.len(),
            self.profile.obf.level,
            if self.profile.obf.allowed == TransformKind::ALL {
                "all".to_string()
            } else {
                self.profile.obf.allowed.len().to_string()
            },
            self.profile.tuning.max_frame,
        ));
        out.push_str(&format!("fingerprint {}\n", self.fingerprint));
        out
    }
}

/// Errors of profile parsing and endpoint building.
#[derive(Debug)]
pub enum ProfileError {
    /// The text format did not parse; `line` is 1-based (0 when the
    /// failure is not tied to a line).
    Parse {
        /// Offending line number.
        line: usize,
        /// What went wrong, naming the offending token.
        msg: String,
    },
    /// A spec source could not be resolved to a graph.
    Resolve {
        /// The source as written in the profile.
        source: String,
        /// Resolver error.
        reason: String,
    },
    /// A resolved specification failed validation.
    Spec(SpecError),
}

impl ProfileError {
    fn parse(line: usize, msg: impl Into<String>) -> ProfileError {
        ProfileError::Parse { line, msg: msg.into() }
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Parse { line: 0, msg } => write!(f, "profile: {msg}"),
            ProfileError::Parse { line, msg } => write!(f, "profile line {line}: {msg}"),
            ProfileError::Resolve { source, reason } => {
                write!(f, "cannot resolve spec {source}: {reason}")
            }
            ProfileError::Spec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Escapes key bytes for the quoted text form: printable ASCII passes
/// through, `"` and `\` are backslash-escaped, everything else becomes
/// `\xNN`.
fn escape_key(key: &[u8]) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key {
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            0x20..=0x7e => out.push(b as char),
            _ => out.push_str(&format!("\\x{b:02x}")),
        }
    }
    out
}

/// Line-oriented parser of the profile text format.
struct Parser<'t> {
    lines: std::iter::Enumerate<std::str::Lines<'t>>,
    spec: Option<SpecSource>,
    tx: Option<SpecSource>,
    rx: Option<SpecSource>,
    key: Option<Vec<u8>>,
    level: Option<u32>,
    allowed: Option<Vec<TransformKind>>,
    max_frame: Option<usize>,
    shards: Option<usize>,
    pool_capacity: Option<usize>,
}

impl<'t> Parser<'t> {
    fn new(text: &'t str) -> Parser<'t> {
        Parser {
            lines: text.lines().enumerate(),
            spec: None,
            tx: None,
            rx: None,
            key: None,
            level: None,
            allowed: None,
            max_frame: None,
            shards: None,
            pool_capacity: None,
        }
    }

    fn run(mut self) -> Result<Profile, ProfileError> {
        self.header()?;
        for (idx, raw) in self.lines.by_ref() {
            let no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (keyword, rest) = match line.split_once(char::is_whitespace) {
                Some((k, r)) => (k, r.trim()),
                None => return Err(ProfileError::parse(no, format!("{line:?} has no value"))),
            };
            if keyword == "key" {
                // The key value is quoted and may contain '#' and
                // spaces, so it gets its own scanner (comments are only
                // recognized after the closing quote).
                set(no, "key", &mut self.key, parse_quoted(no, rest)?)?;
                continue;
            }
            let value = strip_comment(rest);
            if value.is_empty() {
                return Err(ProfileError::parse(no, format!("{keyword:?} has no value")));
            }
            match keyword {
                "spec" => set(no, "spec", &mut self.spec, source(no, value)?)?,
                "tx" => set(no, "tx", &mut self.tx, source(no, value)?)?,
                "rx" => set(no, "rx", &mut self.rx, source(no, value)?)?,
                "level" => set(no, "level", &mut self.level, number(no, "level", value)?)?,
                "transforms" => {
                    set(no, "transforms", &mut self.allowed, transforms(no, value)?)?;
                }
                "max-frame" => {
                    set(no, "max-frame", &mut self.max_frame, number(no, "max-frame", value)?)?;
                }
                "shards" => set(no, "shards", &mut self.shards, number(no, "shards", value)?)?,
                "pool-capacity" => {
                    set(
                        no,
                        "pool-capacity",
                        &mut self.pool_capacity,
                        number(no, "pool-capacity", value)?,
                    )?;
                }
                other => {
                    return Err(ProfileError::parse(no, format!("unknown keyword {other:?}")));
                }
            }
        }
        let (tx, rx) = match (self.spec, self.tx, self.rx) {
            (Some(s), None, None) => (s.clone(), s),
            (None, Some(tx), Some(rx)) => (tx, rx),
            (None, Some(_), None) => {
                return Err(ProfileError::parse(0, "\"tx\" given without \"rx\""));
            }
            (None, None, Some(_)) => {
                return Err(ProfileError::parse(0, "\"rx\" given without \"tx\""));
            }
            (Some(_), _, _) => {
                return Err(ProfileError::parse(0, "\"spec\" excludes \"tx\"/\"rx\""));
            }
            (None, None, None) => {
                return Err(ProfileError::parse(0, "missing \"spec\" (or \"tx\" and \"rx\")"));
            }
        };
        let defaults = (ObfConfig::default(), Tuning::default());
        Ok(Profile {
            tx,
            rx,
            obf: ObfConfig {
                key: self.key.unwrap_or(defaults.0.key),
                level: self.level.unwrap_or(defaults.0.level),
                allowed: self.allowed.unwrap_or(defaults.0.allowed),
            },
            tuning: Tuning {
                max_frame: self.max_frame.unwrap_or(defaults.1.max_frame),
                shards: self.shards,
                pool_capacity: self.pool_capacity,
            },
        })
    }

    /// Consumes blank/comment lines until the mandatory header.
    fn header(&mut self) -> Result<(), ProfileError> {
        for (idx, raw) in self.lines.by_ref() {
            let line = strip_comment(raw.trim());
            if line.is_empty() {
                continue;
            }
            if line == "profile protoobf/1" {
                return Ok(());
            }
            return Err(ProfileError::parse(
                idx + 1,
                format!("expected header \"profile protoobf/1\", found {line:?}"),
            ));
        }
        Err(ProfileError::parse(0, "empty profile (missing \"profile protoobf/1\" header)"))
    }
}

/// Stores `value` into `slot`, rejecting repeated keywords.
fn set<T>(line: usize, keyword: &str, slot: &mut Option<T>, value: T) -> Result<(), ProfileError> {
    if slot.is_some() {
        return Err(ProfileError::parse(line, format!("repeated keyword {keyword:?}")));
    }
    *slot = Some(value);
    Ok(())
}

fn strip_comment(s: &str) -> &str {
    match s.find('#') {
        Some(i) => s[..i].trim_end(),
        None => s,
    }
}

fn source(line: usize, value: &str) -> Result<SpecSource, ProfileError> {
    value.parse().map_err(|e| match e {
        ProfileError::Parse { msg, .. } => ProfileError::parse(line, msg),
        other => other,
    })
}

fn number<T: std::str::FromStr>(line: usize, kw: &str, value: &str) -> Result<T, ProfileError> {
    value.parse().map_err(|_| ProfileError::parse(line, format!("{kw}: invalid number {value:?}")))
}

fn transforms(line: usize, value: &str) -> Result<Vec<TransformKind>, ProfileError> {
    if value == "all" {
        return Ok(TransformKind::ALL.to_vec());
    }
    if value == "none" {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(|name| {
            let name = name.trim();
            TransformKind::from_name(name).ok_or_else(|| {
                ProfileError::parse(line, format!("unknown transformation {name:?}"))
            })
        })
        .collect()
}

/// Parses a double-quoted, backslash-escaped key value; only whitespace
/// or a comment may follow the closing quote.
fn parse_quoted(line: usize, value: &str) -> Result<Vec<u8>, ProfileError> {
    let inner = value
        .strip_prefix('"')
        .ok_or_else(|| ProfileError::parse(line, format!("key must be quoted, found {value:?}")))?;
    let mut out = Vec::new();
    let mut bytes = inner.bytes().enumerate();
    while let Some((i, b)) = bytes.next() {
        match b {
            b'"' => {
                let rest = strip_comment(inner[i + 1..].trim());
                if !rest.is_empty() {
                    return Err(ProfileError::parse(
                        line,
                        format!("unexpected {rest:?} after key"),
                    ));
                }
                return Ok(out);
            }
            b'\\' => match bytes.next() {
                Some((_, b'"')) => out.push(b'"'),
                Some((_, b'\\')) => out.push(b'\\'),
                Some((_, b'x')) => {
                    let hi = bytes.next();
                    let lo = bytes.next();
                    match (hi, lo) {
                        (Some((_, h)), Some((_, l))) => {
                            let hex = [h, l];
                            let s = std::str::from_utf8(&hex).unwrap_or("??");
                            let v = u8::from_str_radix(s, 16).map_err(|_| {
                                ProfileError::parse(line, format!("bad \\x escape \\x{s}"))
                            })?;
                            out.push(v);
                        }
                        _ => return Err(ProfileError::parse(line, "truncated \\x escape")),
                    }
                }
                Some((_, other)) => {
                    return Err(ProfileError::parse(
                        line,
                        format!("unknown escape \\{}", other as char),
                    ));
                }
                None => return Err(ProfileError::parse(line, "truncated escape at end of key")),
            },
            _ => out.push(b),
        }
    }
    Err(ProfileError::parse(line, "unterminated key (missing closing quote)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, GraphBuilder};
    use crate::value::TerminalKind;

    fn demo_graph(name: &str) -> FormatGraph {
        let mut b = GraphBuilder::new(name);
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        b.uint_be(root, "code", 4);
        b.build().unwrap()
    }

    /// Test resolver: `builtin:a` / `builtin:b` map to two distinct
    /// builder graphs; files are unknown.
    fn resolver(src: &SpecSource) -> Result<FormatGraph, String> {
        match src {
            SpecSource::Builtin(n) if n == "a" => Ok(demo_graph("a")),
            SpecSource::Builtin(n) if n == "b" => Ok(demo_graph("b")),
            other => Err(format!("unknown test source {other}")),
        }
    }

    fn sym() -> Profile {
        Profile::symmetric("builtin:a".parse().unwrap()).key("secret").level(2)
    }

    fn asym() -> Profile {
        Profile::asymmetric("builtin:a".parse().unwrap(), "builtin:b".parse().unwrap())
            .key("secret")
            .level(2)
    }

    #[test]
    fn text_round_trips_symmetric_and_asymmetric() {
        for p in [sym(), asym()] {
            let text = p.to_text();
            assert_eq!(Profile::parse(&text).unwrap(), p, "{text}");
        }
    }

    #[test]
    fn text_round_trips_every_field() {
        let p = asym()
            .key(b"\x00weird \"key\"\\ \xff".as_slice())
            .level(4)
            .transforms([TransformKind::ConstXor, TransformKind::SplitCat])
            .max_frame(4096)
            .shards(3)
            .pool_capacity(7);
        let text = p.to_text();
        assert_eq!(Profile::parse(&text).unwrap(), p, "{text}");
    }

    #[test]
    fn parse_accepts_comments_blanks_and_any_order() {
        let text = "\n# a comment\nprofile protoobf/1\nlevel 3   # trailing\n\nspec builtin:a\nkey \"k # not a comment\"\n";
        let p = Profile::parse(text).unwrap();
        assert_eq!(p.obf().level, 3);
        assert_eq!(p.obf().key, b"k # not a comment");
        assert!(p.is_symmetric());
    }

    #[test]
    fn parse_errors_name_line_and_token() {
        let cases: &[(&str, &str)] = &[
            ("spec builtin:a\n", "profile protoobf/1"), // missing header
            ("profile protoobf/1\nbogus 1\n", "bogus"), // unknown keyword
            ("profile protoobf/1\nspec builtin:a\nlevel x\n", "x"), // bad number
            ("profile protoobf/1\nspec builtin:a\nlevel 1\nlevel 2\n", "repeated"),
            ("profile protoobf/1\ntx builtin:a\n", "rx"), // half a pair
            ("profile protoobf/1\nspec builtin:a\ntx builtin:b\nrx builtin:b\n", "excludes"),
            ("profile protoobf/1\nspec builtin:a\nkey nope\n", "quoted"),
            ("profile protoobf/1\nspec builtin:a\nkey \"open\n", "unterminated"),
            ("profile protoobf/1\nspec builtin:a\ntransforms Bogus\n", "Bogus"),
            ("profile protoobf/1\n", "missing \"spec\""),
        ];
        for (text, needle) in cases {
            let err = Profile::parse(text).unwrap_err().to_string();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn sources_that_cannot_round_trip_are_rejected() {
        // Whitespace collides with tokenization, '#' with comment syntax:
        // a source containing either would serialize fine but re-parse
        // differently, so FromStr refuses both up front.
        for bad in ["specs/a b.pobf", "specs/a#1.pobf", "builtin:", ""] {
            assert!(bad.parse::<SpecSource>().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn stretch_key_is_deterministic_and_sensitive() {
        assert_eq!(stretch_key(b"secret"), stretch_key(b"secret"));
        assert_ne!(stretch_key(b"secret"), stretch_key(b"secres"));
        assert_ne!(stretch_key(b""), stretch_key(b"\x00"));
        // The decimal-string mapping the CLI uses for legacy --seed.
        assert_ne!(stretch_key(b"1"), stretch_key(b"2"));
    }

    #[test]
    fn equal_profiles_equal_fingerprints() {
        let a = sym().build_with(&resolver).unwrap();
        let b = Profile::parse(&sym().to_text()).unwrap().build_with(&resolver).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().to_string().len(), 32);
    }

    #[test]
    fn differing_keys_differ_in_fingerprint() {
        let good = sym().build_with(&resolver).unwrap();
        let bad = sym().key("wrong").build_with(&resolver).unwrap();
        assert_ne!(good.fingerprint(), bad.fingerprint(), "key mismatch must be detectable");
        // ... and so do level, transforms, spec and frame-limit changes.
        for variant in [
            sym().level(3),
            sym().transforms([TransformKind::ConstXor]),
            sym().max_frame(1024),
            Profile::asymmetric("builtin:a".parse().unwrap(), "builtin:b".parse().unwrap())
                .key("secret")
                .level(2),
        ] {
            let other = variant.build_with(&resolver).unwrap();
            assert_ne!(good.fingerprint(), other.fingerprint(), "{variant:?}");
        }
    }

    #[test]
    fn fingerprint_with_matches_full_build() {
        let p = asym();
        assert_eq!(
            p.fingerprint_with(&resolver).unwrap(),
            p.build_with(&resolver).unwrap().fingerprint()
        );
    }

    #[test]
    fn symmetric_endpoint_shares_services() {
        let ep = sym().build_with(&resolver).unwrap();
        assert!(ep.is_symmetric());
        assert!(Arc::ptr_eq(ep.tx_service(), ep.rx_service()));
        assert!(Arc::ptr_eq(ep.clear_tx_service(), ep.clear_rx_service()));
        assert!(!Arc::ptr_eq(ep.tx_service(), ep.clear_tx_service()));
    }

    #[test]
    fn asymmetric_endpoint_builds_distinct_stacks() {
        let ep = asym().build_with(&resolver).unwrap();
        assert!(!ep.is_symmetric());
        assert!(!Arc::ptr_eq(ep.tx_service(), ep.rx_service()));
        assert_eq!(ep.tx_service().codec().plain().name(), "a");
        assert_eq!(ep.rx_service().codec().plain().name(), "b");
        assert!(ep.tx_service().codec().transform_count() > 0);
    }

    #[test]
    fn level_zero_shares_clear_and_obf_services() {
        let ep = sym().level(0).build_with(&resolver).unwrap();
        assert!(Arc::ptr_eq(ep.tx_service(), ep.clear_tx_service()));
        assert_eq!(ep.tx_service().codec().transform_count(), 0);
    }

    #[test]
    fn tuning_reaches_the_services() {
        let ep = sym().max_frame(2048).shards(3).build_with(&resolver).unwrap();
        assert_eq!(ep.tx_service().frame_limit(), 2048);
        assert_eq!(ep.tx_service().stats().shards, 3);
        assert_eq!(ep.clear_tx_service().frame_limit(), 2048);
    }

    #[test]
    fn unresolvable_source_reports_the_source() {
        let p = Profile::symmetric("builtin:nope".parse().unwrap());
        let err = p.build_with(&resolver).unwrap_err().to_string();
        assert!(err.contains("builtin:nope"), "{err}");
    }

    #[test]
    fn summary_names_both_directions_and_fingerprint() {
        let ep = asym().build_with(&resolver).unwrap();
        let s = ep.summary();
        assert!(s.contains("tx builtin:a"), "{s}");
        assert!(s.contains("rx builtin:b"), "{s}");
        assert!(s.contains(&ep.fingerprint().to_string()), "{s}");
        let sym_s = sym().build_with(&resolver).unwrap().summary();
        assert!(sym_s.contains("symmetric"), "{sym_s}");
    }
}

//! The compiled codec plan: the obfuscation graph lowered into a flat,
//! index-addressed execution program.
//!
//! The paper's framework *generates* a specialized serializer/parser pair
//! from the specification and the obfuscation plan (§V). The seed
//! implementation instead re-interpreted the [`ObfGraph`] per message,
//! paying `HashMap<(ObfId, Scope), Value>` lookups, per-visit node clones
//! and per-node output buffers. [`CodecPlan::compile`] performs that
//! interpretation **once**:
//!
//! * every node becomes a [`PlanOp`] in a dense table indexed by the raw
//!   [`ObfId`] value (the node's *slot*), with children flattened into one
//!   contiguous array;
//! * every plain-graph lookup the interpreters used to perform per message
//!   (reference targets, container depths, byte orders, auto-field
//!   encodings) is resolved to plain `u32` indices at compile time;
//! * the inverse-aggregation walk [`crate::runtime::recover`] runs per
//!   holder is lowered into a [`RecStep`] program: a post-order,
//!   stack-machine byte program evaluated by [`RecEval`] against reusable
//!   scratch buffers — no allocation, no recursion, no hashing;
//! * auto-field sanity checks are collected into a flat
//!   [`AutoCheck`] list walked after parsing.
//!
//! The plan interpreters live in [`crate::serialize`]
//! ([`crate::serialize::SerializeSession`]) and [`crate::parse`]
//! ([`crate::parse::ParseSession`]); [`crate::codec::Codec`] compiles the
//! plan lazily and caches it.

use rand::Rng;

use crate::graph::{NodeId, Predicate};
use crate::obf::{
    Base, ConstOp, LenStep, ObfGraph, ObfId, ObfKind, Recombine, RepStop, SeqBoundary, TermBoundary,
};
use crate::runtime;
use crate::value::{ByteOp, Endian, SplitAt, TerminalKind, Value};

/// Sentinel for "no node" in the plan's dense `u32` index space.
pub(crate) const NONE: u32 = u32::MAX;

/// A range into one of the plan's flat pools: `(start, len)`.
pub(crate) type PoolRange = (u32, u32);

/// Compiled terminal boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TermB {
    /// Exactly `n` bytes.
    Fixed(u32),
    /// Scan for the pooled delimiter; consumed, not part of the value.
    Delim(u32),
    /// `steps(plain_len(reference))` bytes.
    PlainLen {
        /// Plain index of the numeric terminal carrying the plain length.
        r: u32,
        /// Container depth of the reference (scope truncation).
        r_depth: u8,
        /// Byte order of the reference.
        r_endian: Endian,
        /// Split derivation steps (pool range).
        steps: PoolRange,
    },
    /// The rest of the enclosing window.
    End,
}

/// Compiled sequence boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SeqB {
    /// Sum of the children's extents.
    Delegated,
    /// The rest of the enclosing window.
    End,
    /// Exactly `n` bytes.
    Fixed(u32),
    /// Window given by the plain `Length` reference `r`.
    PlainLen {
        /// Plain index of the reference target.
        r: u32,
        /// Its container depth.
        r_depth: u8,
        /// Its byte order.
        r_endian: Endian,
    },
}

/// Compiled input-value source of a terminal / split sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BaseOp {
    /// Application-set plain field (plain index kept for error naming).
    Source {
        /// Plain node index.
        plain: u32,
    },
    /// `k` random pad bytes per serialization.
    Pad {
        /// Pad width.
        k: u32,
    },
    /// Auto-computed plain length of the target subtree.
    AutoLen {
        /// Plain target index.
        target: u32,
        /// Target container depth.
        depth: u8,
        /// Encoded width in bytes.
        width: u8,
        /// Encoded byte order.
        endian: Endian,
    },
    /// Auto-computed element count of the target container.
    AutoCount {
        /// Plain target index.
        target: u32,
        /// Target container depth.
        depth: u8,
        /// Encoded width in bytes.
        width: u8,
        /// Encoded byte order.
        endian: Endian,
    },
    /// Protocol constant (pool index).
    Const {
        /// Index into [`CodecPlan::consts`].
        pool: u32,
    },
    /// Handed down by the enclosing split sequence.
    Inherit,
}

impl BaseOp {
    /// True for bases materialized by the serializer (never application
    /// set).
    pub(crate) fn is_materialized(&self) -> bool {
        matches!(self, BaseOp::AutoLen { .. } | BaseOp::AutoCount { .. } | BaseOp::Const { .. })
    }
}

/// Compiled repetition stop rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RepStopC {
    /// Pooled terminator byte string.
    Terminator(u32),
    /// Until the window is exhausted.
    Exhausted,
    /// Exactly as many elements as the linked repetition slot parsed.
    CountOf(u32),
}

/// One compiled node of the plan. The variant mirrors [`ObfKind`] with all
/// graph lookups pre-resolved.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PlanOp {
    /// Allocated but detached node (replaced by a transformation).
    Dead,
    /// Wire-carrying leaf.
    Term {
        /// Input source.
        base: BaseOp,
        /// Extent rule.
        boundary: TermB,
    },
    /// Split sequence: materializes its base, then serializes children.
    Split {
        /// The replaced terminal's compiled base.
        base: BaseOp,
        /// First terminal slot of the subtree (materialization guard).
        first_term: u32,
    },
    /// Ordered children with a window rule.
    Seq {
        /// Window rule.
        boundary: SeqB,
    },
    /// Conditional subtree.
    Opt {
        /// Plain index of the condition subject.
        subject: u32,
        /// Subject container depth.
        subject_depth: u8,
        /// Index into [`CodecPlan::preds`].
        pred: u32,
        /// Plain index of the optional node itself (presence key).
        origin: u32,
        /// Its container depth.
        origin_depth: u8,
    },
    /// Repeated single child.
    Rep {
        /// Stop rule.
        stop: RepStopC,
        /// Plain origin (count key), [`NONE`] if the node has none.
        origin: u32,
        /// Origin container depth.
        origin_depth: u8,
    },
    /// Counted single child.
    Tab {
        /// Plain index of the counter terminal.
        counter: u32,
        /// Counter container depth.
        counter_depth: u8,
        /// Counter byte order.
        counter_endian: Endian,
        /// Plain origin (count key), [`NONE`] if absent.
        origin: u32,
        /// Origin container depth.
        origin_depth: u8,
    },
    /// Byte-reversed subtree.
    Mirror,
    /// Length-prefixed subtree.
    Prefixed {
        /// Prefix width in bytes.
        width: u8,
        /// Prefix byte order.
        endian: Endian,
    },
}

/// One compiled node: operation plus flattened child range.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PlanNode {
    /// The operation.
    pub(crate) op: PlanOp,
    /// Range into [`CodecPlan::children`].
    pub(crate) children: PoolRange,
}

/// One step of a compiled recovery program (post-order stack machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecStep {
    /// Push the wire bytes of slot `obf`, undoing its constant-op stack.
    Load {
        /// Wire slot.
        obf: u32,
        /// Constant ops to undo (pool range).
        ops: PoolRange,
    },
    /// Pop two values, concatenate, undo the split expression's ops.
    Concat {
        /// Split-expression ops to undo (pool range).
        ops: PoolRange,
    },
    /// Pop share and combined value, invert `op`, undo the split
    /// expression's ops.
    Op {
        /// The forward recombination operator (inverted during eval).
        op: ByteOp,
        /// Split-expression ops to undo (pool range).
        ops: PoolRange,
    },
}

/// One step of a compiled distribution program: the **forward** mirror of
/// [`RecStep`], lowered from [`runtime::distribute`]. Steps run in
/// pre-order against a stack of byte ranges; each split pops its input
/// range and pushes the two child ranges (left on top), each store pops
/// one range and emits it as a terminal's wire value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DistStep {
    /// Pop a value, validate it against the terminal's boundary, apply the
    /// constant-op stack forward, and emit it as slot `obf`'s wire.
    Store {
        /// Wire slot.
        obf: u32,
        /// Constant ops to apply (pool range).
        ops: PoolRange,
        /// Boundary validation.
        check: DistCheck,
    },
    /// Pop a value, apply the split expression's ops forward, split it by
    /// `rule`, and push the two halves (left half on top).
    Split {
        /// Split-expression ops to apply (pool range).
        ops: PoolRange,
        /// How the value is cut / shared.
        rule: SplitRuleC,
    },
}

/// Boundary validation of a distribution store (mirrors the checks of
/// [`runtime::distribute`], performed on the **input** value before the
/// constant-op stack is applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DistCheck {
    /// No constraint.
    None,
    /// The value must be exactly `n` bytes.
    Fixed(u32),
    /// The value must not contain the pooled delimiter.
    Delim(u32),
}

/// Compiled split rule of a distribution step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SplitRuleC {
    /// Cut at byte `n` (clamped to the value length).
    At(u32),
    /// Cut at `len / 2`.
    Half,
    /// Left half is a fresh random share, right half is `value ⟨op⟩ share`.
    Op(ByteOp),
}

/// A compiled distribution program: range into [`CodecPlan::dist_steps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DistProg(pub(crate) PoolRange);

/// Distribution failure, mapped to a named [`crate::error::BuildError`] by
/// the session (the plan layer has no node names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DistErr {
    /// A fixed-width terminal received a value of the wrong length.
    BadLen {
        /// Offending wire slot.
        obf: u32,
        /// Expected byte length.
        expected: u32,
        /// Actual byte length.
        found: u32,
    },
    /// A delimited terminal's value contains its own delimiter.
    Delim {
        /// Offending wire slot.
        obf: u32,
    },
}

/// One step of a compiled transcode **copy program** (see
/// [`CopyProgram`]): a slot-to-slot mapping over the plain specification
/// two codecs share. Steps run in plain pre-order against the source
/// message's stores; loops and optionals carry relative jump widths so
/// the whole program is one flat array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CopyStep {
    /// Recover plain terminal `plain`'s value from the source message
    /// through the **source** plan's recovery program, then distribute it
    /// into the destination message through the **destination** plan's
    /// distribution program. A value missing from the source (unset
    /// field, absent optional) is skipped, exactly like the reference
    /// walk.
    Value {
        /// Plain node index (shared by both specs).
        plain: u32,
        /// Recovery program in the source plan.
        rec: RecProg,
        /// Distribution program in the destination plan.
        dist: DistProg,
    },
    /// [`CopyStep::Value`] specialized for the dominant case of an unsplit
    /// source holder (the whole clear leg of a gateway, and every
    /// terminal whose value channel no aggregation split touched): the
    /// recovery program is a single `Load`, so the source wire is read
    /// straight into the distribution scratch — no recovery stack, one
    /// byte copy fewer per value.
    ValueDirect {
        /// Source wire slot.
        src_obf: u32,
        /// Source constant-op stack to undo (pool range in the source
        /// plan).
        src_ops: PoolRange,
        /// Distribution program in the destination plan.
        dist: DistProg,
    },
    /// Copy the presence flag of optional `plain`. When the source marks
    /// it absent, the next `skip` steps (its subtree) are jumped over.
    Optional {
        /// Plain node index of the optional.
        plain: u32,
        /// Steps to skip when absent.
        skip: u32,
    },
    /// Copy the element count of repetition/tabular `plain`, then run the
    /// next `body` steps once per element with the element index appended
    /// to the scope.
    Loop {
        /// Plain node index of the container.
        plain: u32,
        /// Steps forming one element's body.
        body: u32,
    },
}

/// A compiled transcode program for one ordered (source plan, destination
/// plan) pair over a shared plain specification — the gateway relay's
/// per-message step ([`crate::message::Message::transcode_into`]) lowered
/// into flat slot-to-slot copies, the same way [`CodecPlan::compile`]
/// lowered serialize/parse.
///
/// Structural validation of the two specifications is folded into
/// [`CopyProgram::compile`]: a program only exists for matching specs, so
/// executing it performs no per-message checks at all. The step indices
/// reference the two plans it was compiled from; callers key cached
/// programs on the graphs' uids (refreshed on every mutation), which
/// makes a stale program unreachable.
#[derive(Debug, Clone)]
pub struct CopyProgram {
    pub(crate) steps: Vec<CopyStep>,
}

impl CopyProgram {
    /// Lowers the transcode walk for messages of `src` being copied into
    /// messages of `dst`. Returns `None` when the two graphs' plain
    /// specifications are not structurally identical — the compile-time
    /// form of the reference walk's per-pairing validation.
    pub fn compile(src: &ObfGraph, dst: &ObfGraph) -> Option<CopyProgram> {
        if !runtime::plains_match(src.plain(), dst.plain()) {
            return None;
        }
        let (sp, dp) = (src.plan(), dst.plan());
        let mut steps = Vec::new();
        lower_copy(src.plain(), src.plain().root(), sp, dp, &mut steps);
        Some(CopyProgram { steps })
    }

    /// Number of compiled copy steps.
    pub fn steps(&self) -> usize {
        self.steps.len()
    }
}

/// Emits the copy steps of the plain subtree rooted at `x` (pre-order,
/// the traversal of the reference walk `Message::transcode_into_walk`).
fn lower_copy(
    plain: &crate::graph::FormatGraph,
    x: NodeId,
    sp: &CodecPlan,
    dp: &CodecPlan,
    out: &mut Vec<CopyStep>,
) {
    use crate::graph::NodeType;
    let node = plain.node(x);
    match node.node_type() {
        NodeType::Terminal(_) => {
            // Auto fields are rematerialized by the destination serializer;
            // copying them would only re-assert what it recomputes anyway.
            if node.auto().is_auto() {
                return;
            }
            let rec = sp.rec[x.index()];
            let holder = dp.holder[x.index()];
            let dist = (holder != NONE).then(|| dp.dist[holder as usize]).flatten();
            // Terminals without a value channel on either side carry
            // nothing to copy (the walk skips them the same way).
            if let (Some(rec), Some(dist)) = (rec, dist) {
                out.push(match sp.rec_prog(rec) {
                    [RecStep::Load { obf, ops }] => {
                        CopyStep::ValueDirect { src_obf: *obf, src_ops: *ops, dist }
                    }
                    _ => CopyStep::Value { plain: x.0, rec, dist },
                });
            }
        }
        NodeType::Sequence => {
            for &c in node.children() {
                lower_copy(plain, c, sp, dp, out);
            }
        }
        NodeType::Optional(_) => {
            let at = out.len();
            out.push(CopyStep::Optional { plain: x.0, skip: 0 });
            lower_copy(plain, node.children()[0], sp, dp, out);
            let skip = (out.len() - at - 1) as u32;
            out[at] = CopyStep::Optional { plain: x.0, skip };
        }
        NodeType::Repetition(_) | NodeType::Tabular => {
            let at = out.len();
            out.push(CopyStep::Loop { plain: x.0, body: 0 });
            lower_copy(plain, node.children()[0], sp, dp, out);
            let body = (out.len() - at - 1) as u32;
            out[at] = CopyStep::Loop { plain: x.0, body };
        }
    }
}

/// A compiled auto-field sanity check (run after parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum AutoCheckKind {
    /// The recovered bytes must equal the pooled constant.
    Literal(u32),
    /// The recovered integer must equal the plain length of `target`.
    LengthOf {
        /// Plain target index.
        target: u32,
        /// Target container depth.
        depth: u8,
    },
    /// The recovered integer must equal the element count of `target`.
    CounterOf {
        /// Plain target index.
        target: u32,
        /// Target container depth.
        depth: u8,
    },
}

/// One auto field to verify after parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AutoCheck {
    /// Plain index of the auto field.
    pub(crate) plain: u32,
    /// First terminal slot of its holder subtree (instance discovery).
    pub(crate) first_term: u32,
    /// What to verify.
    pub(crate) kind: AutoCheckKind,
}

/// A compiled recovery program: range into [`CodecPlan::rec_steps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RecProg(pub(crate) PoolRange);

/// The compiled execution plan of one codec.
///
/// Immutable once built; sessions interpret it with their own scratch
/// state. All cross-references are dense `u32` indices — the hot paths of
/// [`crate::serialize::SerializeSession`] and
/// [`crate::parse::ParseSession`] perform no hashing.
#[derive(Debug, Clone)]
pub struct CodecPlan {
    /// Dense node table, indexed by raw [`ObfId`].
    pub(crate) nodes: Vec<PlanNode>,
    /// Flattened child lists.
    pub(crate) children: Vec<u32>,
    /// Root slot.
    pub(crate) root: u32,
    /// plain index → holder slot ([`NONE`] when the plain node carries no
    /// value channel).
    pub(crate) holder: Vec<u32>,
    /// plain index → container depth.
    pub(crate) plain_depth: Vec<u8>,
    /// plain index → byte order of numeric terminals (Big otherwise).
    pub(crate) plain_endian: Vec<Endian>,
    /// plain index → compiled recovery program over the holder subtree.
    pub(crate) rec: Vec<Option<RecProg>>,
    /// Recovery step pool.
    pub(crate) rec_steps: Vec<RecStep>,
    /// slot → compiled distribution program (materializable subtree roots
    /// only: terminals / split sequences with auto, const or pad bases).
    pub(crate) dist: Vec<Option<DistProg>>,
    /// Distribution step pool.
    pub(crate) dist_steps: Vec<DistStep>,
    /// Constant-op pool (terminal stacks and split expressions).
    pub(crate) ops: Vec<ConstOp>,
    /// Delimiter / terminator byte-string pool.
    pub(crate) bytes: Vec<Vec<u8>>,
    /// Constant-value pool.
    pub(crate) consts: Vec<Value>,
    /// Predicate pool.
    pub(crate) preds: Vec<Predicate>,
    /// Length-derivation step pool.
    pub(crate) steps: Vec<LenStep>,
    /// Auto-field checks, in plain-graph order.
    pub(crate) autos: Vec<AutoCheck>,
}

impl CodecPlan {
    /// Number of wire slots (== allocated obfuscation nodes).
    pub fn slots(&self) -> usize {
        self.nodes.len()
    }

    /// Number of plain nodes.
    pub fn plain_len(&self) -> usize {
        self.holder.len()
    }

    /// Number of compiled recovery steps (all programs together).
    pub fn recovery_steps(&self) -> usize {
        self.rec_steps.len()
    }

    /// Wire slot holding the value channel of the plain terminal `plain`,
    /// or `None` when the node carries no value channel in this plan
    /// (const-folded, container, or pad). The covert tunnel's capacity
    /// analysis ([`crate::tunnel::ChannelMap`]) uses this to verify that a
    /// candidate carrier's bytes actually survive the compiled round-trip
    /// before committing payload to them.
    pub fn holder_slot(&self, plain: NodeId) -> Option<u32> {
        let h = *self.holder.get(plain.index())?;
        (h != NONE).then_some(h)
    }

    /// Borrow a pooled op range.
    pub(crate) fn ops(&self, r: PoolRange) -> &[ConstOp] {
        &self.ops[r.0 as usize..(r.0 + r.1) as usize]
    }

    /// Borrow a pooled recovery program.
    pub(crate) fn rec_prog(&self, p: RecProg) -> &[RecStep] {
        &self.rec_steps[p.0 .0 as usize..(p.0 .0 + p.0 .1) as usize]
    }

    /// Borrow a pooled distribution program.
    pub(crate) fn dist_prog(&self, p: DistProg) -> &[DistStep] {
        &self.dist_steps[p.0 .0 as usize..(p.0 .0 + p.0 .1) as usize]
    }

    /// Number of compiled distribution steps (all programs together).
    pub fn distribution_steps(&self) -> usize {
        self.dist_steps.len()
    }

    /// Borrow a node's children.
    pub(crate) fn kids(&self, n: &PlanNode) -> &[u32] {
        &self.children[n.children.0 as usize..(n.children.0 + n.children.1) as usize]
    }

    /// Lowers the final obfuscation graph into a flat plan. One pass over
    /// the graph; everything per-message afterwards is index arithmetic.
    pub fn compile(g: &ObfGraph) -> CodecPlan {
        Compiler::new(g).run()
    }

    /// Stable 64-bit digest of the compiled plan.
    ///
    /// Two peers that derived their codecs from the same specification and
    /// obfuscation key compile byte-for-byte identical plans, so comparing
    /// digests (see `crate::profile::Fingerprint`) verifies the shared
    /// secret **before any traffic flows** — without revealing the key or
    /// the plan itself. The digest is FNV-1a over an explicit, versioned
    /// byte encoding of every structural field (slots, pools, indices):
    /// it does not depend on `Debug` formatting, field names, or any
    /// other incidental text, so builds of different crate or toolchain
    /// versions agree as long as the plan semantics agree.
    pub fn digest(&self) -> u64 {
        let mut h = StableHasher::new(0xcbf2_9ce4_8422_2325);
        // /2: distribution programs now cover every holder root (the
        // transcode copy-program stage), so identical specs compile more
        // `dist`/`dist_steps` content than /1 plans did.
        h.update(b"protoobf-plan-digest/2");
        self.digest_into(&mut h);
        h.finish()
    }
}

/// Explicit structural hashing of the plan component types. Every
/// variant gets a fixed tag byte and every collection a length prefix,
/// so distinct structures cannot collide by concatenation ambiguity.
/// This is the **fingerprint interop contract**: changing an encoding
/// here changes every deployed profile's fingerprint — bump the version
/// tag in [`CodecPlan::digest`] when that is intended.
pub(crate) trait Digest {
    fn digest_into(&self, h: &mut StableHasher);
}

impl Digest for u8 {
    fn digest_into(&self, h: &mut StableHasher) {
        h.update(&[*self]);
    }
}

impl Digest for u32 {
    fn digest_into(&self, h: &mut StableHasher) {
        h.update(&self.to_be_bytes());
    }
}

impl Digest for u64 {
    fn digest_into(&self, h: &mut StableHasher) {
        h.update(&self.to_be_bytes());
    }
}

impl<T: Digest> Digest for [T] {
    fn digest_into(&self, h: &mut StableHasher) {
        (self.len() as u64).digest_into(h);
        for item in self {
            item.digest_into(h);
        }
    }
}

impl<T: Digest> Digest for Vec<T> {
    fn digest_into(&self, h: &mut StableHasher) {
        self.as_slice().digest_into(h);
    }
}

impl<T: Digest> Digest for Option<T> {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            None => h.update(&[0]),
            Some(x) => {
                h.update(&[1]);
                x.digest_into(h);
            }
        }
    }
}

impl Digest for (u32, u32) {
    fn digest_into(&self, h: &mut StableHasher) {
        self.0.digest_into(h);
        self.1.digest_into(h);
    }
}

impl Digest for Endian {
    fn digest_into(&self, h: &mut StableHasher) {
        h.update(&[match self {
            Endian::Big => 0,
            Endian::Little => 1,
        }]);
    }
}

impl Digest for ByteOp {
    fn digest_into(&self, h: &mut StableHasher) {
        h.update(&[match self {
            ByteOp::Add => 0,
            ByteOp::Sub => 1,
            ByteOp::Xor => 2,
        }]);
    }
}

impl Digest for LenStep {
    fn digest_into(&self, h: &mut StableHasher) {
        h.update(&[match self {
            LenStep::HalfLo => 0,
            LenStep::HalfHi => 1,
        }]);
    }
}

impl Digest for ConstOp {
    fn digest_into(&self, h: &mut StableHasher) {
        self.op.digest_into(h);
        self.k.digest_into(h);
    }
}

impl Digest for Value {
    fn digest_into(&self, h: &mut StableHasher) {
        (self.as_bytes().len() as u64).digest_into(h);
        h.update(self.as_bytes());
    }
}

impl Digest for Predicate {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            Predicate::Equals(v) => {
                h.update(&[0]);
                v.digest_into(h);
            }
            Predicate::NotEquals(v) => {
                h.update(&[1]);
                v.digest_into(h);
            }
            Predicate::OneOf(vs) => {
                h.update(&[2]);
                vs.digest_into(h);
            }
        }
    }
}

impl Digest for TermB {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            TermB::Fixed(n) => {
                h.update(&[0]);
                n.digest_into(h);
            }
            TermB::Delim(d) => {
                h.update(&[1]);
                d.digest_into(h);
            }
            TermB::PlainLen { r, r_depth, r_endian, steps } => {
                h.update(&[2]);
                r.digest_into(h);
                r_depth.digest_into(h);
                r_endian.digest_into(h);
                steps.digest_into(h);
            }
            TermB::End => h.update(&[3]),
        }
    }
}

impl Digest for SeqB {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            SeqB::Delegated => h.update(&[0]),
            SeqB::End => h.update(&[1]),
            SeqB::Fixed(n) => {
                h.update(&[2]);
                n.digest_into(h);
            }
            SeqB::PlainLen { r, r_depth, r_endian } => {
                h.update(&[3]);
                r.digest_into(h);
                r_depth.digest_into(h);
                r_endian.digest_into(h);
            }
        }
    }
}

impl Digest for BaseOp {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            BaseOp::Source { plain } => {
                h.update(&[0]);
                plain.digest_into(h);
            }
            BaseOp::Pad { k } => {
                h.update(&[1]);
                k.digest_into(h);
            }
            BaseOp::AutoLen { target, depth, width, endian } => {
                h.update(&[2]);
                target.digest_into(h);
                depth.digest_into(h);
                width.digest_into(h);
                endian.digest_into(h);
            }
            BaseOp::AutoCount { target, depth, width, endian } => {
                h.update(&[3]);
                target.digest_into(h);
                depth.digest_into(h);
                width.digest_into(h);
                endian.digest_into(h);
            }
            BaseOp::Const { pool } => {
                h.update(&[4]);
                pool.digest_into(h);
            }
            BaseOp::Inherit => h.update(&[5]),
        }
    }
}

impl Digest for RepStopC {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            RepStopC::Terminator(t) => {
                h.update(&[0]);
                t.digest_into(h);
            }
            RepStopC::Exhausted => h.update(&[1]),
            RepStopC::CountOf(s) => {
                h.update(&[2]);
                s.digest_into(h);
            }
        }
    }
}

impl Digest for PlanOp {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            PlanOp::Dead => h.update(&[0]),
            PlanOp::Term { base, boundary } => {
                h.update(&[1]);
                base.digest_into(h);
                boundary.digest_into(h);
            }
            PlanOp::Split { base, first_term } => {
                h.update(&[2]);
                base.digest_into(h);
                first_term.digest_into(h);
            }
            PlanOp::Seq { boundary } => {
                h.update(&[3]);
                boundary.digest_into(h);
            }
            PlanOp::Opt { subject, subject_depth, pred, origin, origin_depth } => {
                h.update(&[4]);
                subject.digest_into(h);
                subject_depth.digest_into(h);
                pred.digest_into(h);
                origin.digest_into(h);
                origin_depth.digest_into(h);
            }
            PlanOp::Rep { stop, origin, origin_depth } => {
                h.update(&[5]);
                stop.digest_into(h);
                origin.digest_into(h);
                origin_depth.digest_into(h);
            }
            PlanOp::Tab { counter, counter_depth, counter_endian, origin, origin_depth } => {
                h.update(&[6]);
                counter.digest_into(h);
                counter_depth.digest_into(h);
                counter_endian.digest_into(h);
                origin.digest_into(h);
                origin_depth.digest_into(h);
            }
            PlanOp::Mirror => h.update(&[7]),
            PlanOp::Prefixed { width, endian } => {
                h.update(&[8]);
                width.digest_into(h);
                endian.digest_into(h);
            }
        }
    }
}

impl Digest for PlanNode {
    fn digest_into(&self, h: &mut StableHasher) {
        self.op.digest_into(h);
        self.children.digest_into(h);
    }
}

impl Digest for RecStep {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            RecStep::Load { obf, ops } => {
                h.update(&[0]);
                obf.digest_into(h);
                ops.digest_into(h);
            }
            RecStep::Concat { ops } => {
                h.update(&[1]);
                ops.digest_into(h);
            }
            RecStep::Op { op, ops } => {
                h.update(&[2]);
                op.digest_into(h);
                ops.digest_into(h);
            }
        }
    }
}

impl Digest for DistCheck {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            DistCheck::None => h.update(&[0]),
            DistCheck::Fixed(n) => {
                h.update(&[1]);
                n.digest_into(h);
            }
            DistCheck::Delim(d) => {
                h.update(&[2]);
                d.digest_into(h);
            }
        }
    }
}

impl Digest for SplitRuleC {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            SplitRuleC::At(n) => {
                h.update(&[0]);
                n.digest_into(h);
            }
            SplitRuleC::Half => h.update(&[1]),
            SplitRuleC::Op(op) => {
                h.update(&[2]);
                op.digest_into(h);
            }
        }
    }
}

impl Digest for DistStep {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            DistStep::Store { obf, ops, check } => {
                h.update(&[0]);
                obf.digest_into(h);
                ops.digest_into(h);
                check.digest_into(h);
            }
            DistStep::Split { ops, rule } => {
                h.update(&[1]);
                ops.digest_into(h);
                rule.digest_into(h);
            }
        }
    }
}

impl Digest for RecProg {
    fn digest_into(&self, h: &mut StableHasher) {
        self.0.digest_into(h);
    }
}

impl Digest for DistProg {
    fn digest_into(&self, h: &mut StableHasher) {
        self.0.digest_into(h);
    }
}

impl Digest for AutoCheckKind {
    fn digest_into(&self, h: &mut StableHasher) {
        match self {
            AutoCheckKind::Literal(v) => {
                h.update(&[0]);
                v.digest_into(h);
            }
            AutoCheckKind::LengthOf { target, depth } => {
                h.update(&[1]);
                target.digest_into(h);
                depth.digest_into(h);
            }
            AutoCheckKind::CounterOf { target, depth } => {
                h.update(&[2]);
                target.digest_into(h);
                depth.digest_into(h);
            }
        }
    }
}

impl Digest for AutoCheck {
    fn digest_into(&self, h: &mut StableHasher) {
        self.plain.digest_into(h);
        self.first_term.digest_into(h);
        self.kind.digest_into(h);
    }
}

impl Digest for CodecPlan {
    fn digest_into(&self, h: &mut StableHasher) {
        self.nodes.digest_into(h);
        self.children.digest_into(h);
        self.root.digest_into(h);
        self.holder.digest_into(h);
        self.plain_depth.digest_into(h);
        self.plain_endian.digest_into(h);
        self.rec.digest_into(h);
        self.rec_steps.digest_into(h);
        self.dist.digest_into(h);
        self.dist_steps.digest_into(h);
        self.ops.digest_into(h);
        self.bytes.digest_into(h);
        self.consts.digest_into(h);
        self.preds.digest_into(h);
        self.steps.digest_into(h);
        self.autos.digest_into(h);
    }
}

/// FNV-1a accumulator with a caller-chosen initial state; deterministic
/// across processes and platforms (unlike [`std::collections::hash_map::
/// RandomState`], which is seeded per process).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StableHasher(u64);

impl StableHasher {
    pub(crate) fn new(init: u64) -> Self {
        StableHasher(init)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

struct Compiler<'g> {
    g: &'g ObfGraph,
    plan: CodecPlan,
    live: Vec<bool>,
}

impl<'g> Compiler<'g> {
    fn new(g: &'g ObfGraph) -> Self {
        let n_obf = g.allocated();
        let plain = g.plain();
        let n_plain = plain.len();
        let mut live = vec![false; n_obf];
        for id in g.preorder() {
            live[id.index()] = true;
        }
        Compiler {
            g,
            live,
            plan: CodecPlan {
                nodes: Vec::with_capacity(n_obf),
                children: Vec::new(),
                root: g.root().0,
                holder: vec![NONE; n_plain],
                plain_depth: vec![0; n_plain],
                plain_endian: vec![Endian::Big; n_plain],
                rec: vec![None; n_plain],
                rec_steps: Vec::new(),
                dist: vec![None; n_obf],
                dist_steps: Vec::new(),
                ops: Vec::new(),
                bytes: Vec::new(),
                consts: Vec::new(),
                preds: Vec::new(),
                steps: Vec::new(),
                autos: Vec::new(),
            },
        }
    }

    fn run(mut self) -> CodecPlan {
        let plain = self.g.plain();
        for x in plain.ids() {
            let i = x.index();
            self.plan.plain_depth[i] = runtime::container_depth(plain, x) as u8;
            if let Some(TerminalKind::UInt { endian, .. }) = plain.node(x).terminal_kind() {
                self.plan.plain_endian[i] = *endian;
            }
            if let Some(h) = self.g.holder_of(x) {
                self.plan.holder[i] = h.0;
            }
        }
        for idx in 0..self.g.allocated() {
            let node = self.compile_node(ObfId(idx as u32));
            self.plan.nodes.push(node);
        }
        for x in plain.ids() {
            if self.plan.holder[x.index()] != NONE {
                let prog = self.compile_rec(ObfId(self.plan.holder[x.index()]));
                self.plan.rec[x.index()] = prog;
            }
        }
        for idx in 0..self.g.allocated() {
            let id = ObfId(idx as u32);
            if self.live[idx] && self.materializable(id) {
                self.plan.dist[idx] = self.compile_dist(id);
            }
        }
        // Distribution programs for every remaining holder root: the
        // transcode copy programs ([`CopyProgram`]) distribute recovered
        // source values into *application-set* fields too, not just the
        // auto/const/pad bases the serializer materializes itself.
        for x in plain.ids() {
            let h = self.plan.holder[x.index()];
            if h != NONE && self.live[h as usize] && self.plan.dist[h as usize].is_none() {
                self.plan.dist[h as usize] = self.compile_dist(ObfId(h));
            }
        }
        self.compile_autos();
        self.plan
    }

    /// True when the serializer may have to materialize the subtree rooted
    /// at `id` itself (auto-computed, constant or pad base).
    fn materializable(&self, id: ObfId) -> bool {
        let base = match self.g.node(id).kind() {
            ObfKind::Terminal { base, .. } => base,
            ObfKind::SplitSeq { expr, .. } => &expr.base,
            _ => return false,
        };
        matches!(base, Base::AutoLen(_) | Base::AutoCount(_) | Base::Const(_) | Base::Pad(_))
    }

    fn pool_ops(&mut self, ops: &[ConstOp]) -> PoolRange {
        let start = self.plan.ops.len() as u32;
        self.plan.ops.extend_from_slice(ops);
        (start, ops.len() as u32)
    }

    fn pool_bytes(&mut self, b: &[u8]) -> u32 {
        if let Some(i) = self.plan.bytes.iter().position(|x| x == b) {
            return i as u32;
        }
        self.plan.bytes.push(b.to_vec());
        (self.plan.bytes.len() - 1) as u32
    }

    fn pool_const(&mut self, v: &Value) -> u32 {
        self.plan.consts.push(v.clone());
        (self.plan.consts.len() - 1) as u32
    }

    fn pool_steps(&mut self, s: &[LenStep]) -> PoolRange {
        let start = self.plan.steps.len() as u32;
        self.plan.steps.extend_from_slice(s);
        (start, s.len() as u32)
    }

    fn depth_of(&self, x: NodeId) -> u8 {
        self.plan.plain_depth[x.index()]
    }

    fn endian_of(&self, x: NodeId) -> Endian {
        self.plan.plain_endian[x.index()]
    }

    /// Compiled width/endian an auto value is encoded with: the terminal's
    /// own kind, or (for split sequences) the replaced terminal's plain
    /// kind.
    fn auto_encoding(&self, id: ObfId) -> (u8, Endian) {
        if let ObfKind::Terminal { kind: TerminalKind::UInt { width, endian }, .. } =
            &self.g.node(id).kind()
        {
            return (*width as u8, *endian);
        }
        if let Some(origin) = self.g.node(id).origin() {
            if let Some(TerminalKind::UInt { width, endian }) =
                self.g.plain().node(origin).terminal_kind()
            {
                return (*width as u8, *endian);
            }
        }
        (8, Endian::Big)
    }

    fn compile_base(&mut self, id: ObfId, base: &Base) -> BaseOp {
        match base {
            Base::Source(x) => BaseOp::Source { plain: x.0 },
            Base::Pad(k) => BaseOp::Pad { k: *k as u32 },
            Base::AutoLen(t) => {
                let (width, endian) = self.auto_encoding(id);
                BaseOp::AutoLen { target: t.0, depth: self.depth_of(*t), width, endian }
            }
            Base::AutoCount(t) => {
                let (width, endian) = self.auto_encoding(id);
                BaseOp::AutoCount { target: t.0, depth: self.depth_of(*t), width, endian }
            }
            Base::Const(v) => BaseOp::Const { pool: self.pool_const(v) },
            Base::Inherit => BaseOp::Inherit,
        }
    }

    /// Plain `Length` reference of plain node `p`, resolved.
    fn plain_ref(&self, p: NodeId) -> (u32, u8, Endian) {
        let r = self
            .g
            .plain()
            .node(p)
            .boundary()
            .reference()
            .expect("validated PlainLen nodes carry Length/Counter boundaries");
        (r.0, self.depth_of(r), self.endian_of(r))
    }

    fn first_term(&self, id: ObfId) -> u32 {
        self.g
            .subtree(id)
            .into_iter()
            .find(|&n| self.g.node(n).is_terminal())
            .map(|t| t.0)
            .unwrap_or(NONE)
    }

    fn compile_node(&mut self, id: ObfId) -> PlanNode {
        if !self.live[id.index()] {
            return PlanNode { op: PlanOp::Dead, children: (0, 0) };
        }
        let node = self.g.node(id);
        let op = match node.kind() {
            ObfKind::Terminal { base, boundary, .. } => {
                let base = self.compile_base(id, base);
                let boundary = match boundary {
                    TermBoundary::Fixed(n) => TermB::Fixed(*n as u32),
                    TermBoundary::Delimited(d) => TermB::Delim(self.pool_bytes(d)),
                    TermBoundary::PlainLen { source, steps } => {
                        let (r, r_depth, r_endian) = self.plain_ref(*source);
                        TermB::PlainLen { r, r_depth, r_endian, steps: self.pool_steps(steps) }
                    }
                    TermBoundary::End => TermB::End,
                };
                PlanOp::Term { base, boundary }
            }
            ObfKind::SplitSeq { expr, .. } => PlanOp::Split {
                base: self.compile_base(id, &expr.base),
                first_term: self.first_term(id),
            },
            ObfKind::Sequence { boundary } => {
                let boundary = match boundary {
                    SeqBoundary::Delegated => SeqB::Delegated,
                    SeqBoundary::End => SeqB::End,
                    SeqBoundary::Fixed(n) => SeqB::Fixed(*n as u32),
                    SeqBoundary::PlainLen(p) => {
                        let (r, r_depth, r_endian) = self.plain_ref(*p);
                        SeqB::PlainLen { r, r_depth, r_endian }
                    }
                };
                PlanOp::Seq { boundary }
            }
            ObfKind::Optional { condition } => {
                let origin = node.origin().expect("optionals always have plain origins");
                self.plan.preds.push(condition.predicate.clone());
                PlanOp::Opt {
                    subject: condition.subject.0,
                    subject_depth: self.depth_of(condition.subject),
                    pred: (self.plan.preds.len() - 1) as u32,
                    origin: origin.0,
                    origin_depth: self.depth_of(origin),
                }
            }
            ObfKind::Repetition { stop } => {
                let stop = match stop {
                    RepStop::Terminator(t) => RepStopC::Terminator(self.pool_bytes(t)),
                    RepStop::Exhausted => RepStopC::Exhausted,
                    RepStop::CountOf(first) => RepStopC::CountOf(first.0),
                };
                let (origin, origin_depth) = match node.origin() {
                    Some(o) => (o.0, self.depth_of(o)),
                    None => (NONE, 0),
                };
                PlanOp::Rep { stop, origin, origin_depth }
            }
            ObfKind::Tabular { counter } => {
                let (origin, origin_depth) = match node.origin() {
                    Some(o) => (o.0, self.depth_of(o)),
                    None => (NONE, 0),
                };
                PlanOp::Tab {
                    counter: counter.0,
                    counter_depth: self.depth_of(*counter),
                    counter_endian: self.endian_of(*counter),
                    origin,
                    origin_depth,
                }
            }
            ObfKind::Mirror => PlanOp::Mirror,
            ObfKind::Prefixed { width, endian } => {
                PlanOp::Prefixed { width: *width as u8, endian: *endian }
            }
        };
        let start = self.plan.children.len() as u32;
        self.plan.children.extend(node.children().iter().map(|c| c.0));
        PlanNode { op, children: (start, node.children().len() as u32) }
    }

    /// Lowers the holder subtree of one plain terminal into a post-order
    /// recovery program (the compiled form of [`runtime::recover`]).
    fn compile_rec(&mut self, holder: ObfId) -> Option<RecProg> {
        let mut steps = Vec::new();
        self.rec_of(holder, &mut steps)?;
        let start = self.plan.rec_steps.len() as u32;
        let len = steps.len() as u32;
        self.plan.rec_steps.extend(steps);
        Some(RecProg((start, len)))
    }

    fn rec_of(&mut self, id: ObfId, out: &mut Vec<RecStep>) -> Option<()> {
        let node = self.g.node(id);
        match node.kind() {
            ObfKind::Terminal { ops, .. } => {
                let ops = self.pool_ops(&ops.clone());
                out.push(RecStep::Load { obf: id.0, ops });
                Some(())
            }
            ObfKind::SplitSeq { expr, recombine } => {
                let (c0, c1) = (node.children()[0], node.children()[1]);
                let expr_ops = expr.ops.clone();
                self.rec_of(c0, out)?;
                self.rec_of(c1, out)?;
                let ops = self.pool_ops(&expr_ops);
                out.push(match recombine {
                    Recombine::Concat(_) => RecStep::Concat { ops },
                    Recombine::Op(op) => RecStep::Op { op: *op, ops },
                });
                Some(())
            }
            ObfKind::Mirror | ObfKind::Prefixed { .. } => self.rec_of(node.children()[0], out),
            _ => None,
        }
    }

    /// Lowers the holder subtree of one materializable node into a
    /// pre-order distribution program (the compiled, forward mirror of
    /// [`runtime::distribute`]).
    fn compile_dist(&mut self, root: ObfId) -> Option<DistProg> {
        let mut steps = Vec::new();
        self.dist_of(root, &mut steps)?;
        let start = self.plan.dist_steps.len() as u32;
        let len = steps.len() as u32;
        self.plan.dist_steps.extend(steps);
        Some(DistProg((start, len)))
    }

    fn dist_of(&mut self, id: ObfId, out: &mut Vec<DistStep>) -> Option<()> {
        let node = self.g.node(id);
        match node.kind() {
            ObfKind::Terminal { ops, boundary, .. } => {
                let check = match boundary {
                    TermBoundary::Fixed(k) => DistCheck::Fixed(*k as u32),
                    TermBoundary::Delimited(d) => DistCheck::Delim(self.pool_bytes(&d.clone())),
                    TermBoundary::PlainLen { .. } | TermBoundary::End => DistCheck::None,
                };
                let ops = self.pool_ops(&ops.clone());
                out.push(DistStep::Store { obf: id.0, ops, check });
                Some(())
            }
            ObfKind::SplitSeq { expr, recombine } => {
                let (c0, c1) = (node.children()[0], node.children()[1]);
                let rule = match recombine {
                    Recombine::Concat(SplitAt::Byte(n)) => SplitRuleC::At(*n as u32),
                    Recombine::Concat(SplitAt::Half) => SplitRuleC::Half,
                    Recombine::Op(op) => SplitRuleC::Op(*op),
                };
                let ops = self.pool_ops(&expr.ops.clone());
                out.push(DistStep::Split { ops, rule });
                self.dist_of(c0, out)?;
                self.dist_of(c1, out)
            }
            ObfKind::Mirror | ObfKind::Prefixed { .. } => self.dist_of(node.children()[0], out),
            _ => None,
        }
    }

    fn compile_autos(&mut self) {
        let plain = self.g.plain();
        for x in plain.ids() {
            let node = plain.node(x);
            let kind = match node.auto() {
                crate::graph::AutoValue::None => continue,
                crate::graph::AutoValue::Literal(v) => AutoCheckKind::Literal(self.pool_const(v)),
                crate::graph::AutoValue::LengthOf(t) => {
                    AutoCheckKind::LengthOf { target: t.0, depth: self.depth_of(*t) }
                }
                crate::graph::AutoValue::CounterOf(t) => {
                    AutoCheckKind::CounterOf { target: t.0, depth: self.depth_of(*t) }
                }
            };
            let holder = match self.g.holder_of(x) {
                Some(h) => h,
                None => continue,
            };
            let first_term = self.first_term(holder);
            if first_term == NONE {
                continue;
            }
            self.plan.autos.push(AutoCheck { plain: x.0, first_term, kind });
        }
    }
}

// ---------------------------------------------------------------------------
// recovery evaluation
// ---------------------------------------------------------------------------

/// Applies one byte of an invertible operation.
#[inline]
pub(crate) fn apply1(op: ByteOp, a: u8, k: u8) -> u8 {
    match op {
        ByteOp::Add => a.wrapping_add(k),
        ByteOp::Sub => a.wrapping_sub(k),
        ByteOp::Xor => a ^ k,
    }
}

/// Undoes a constant-op stack in place (reverse order, inverse operators).
pub(crate) fn undo_ops_in_place(ops: &[ConstOp], bytes: &mut [u8]) {
    for op in ops.iter().rev() {
        let inv = op.op.inverse();
        let k = &op.k;
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = apply1(inv, *b, k[i % k.len()]);
        }
    }
}

/// Wire-loader callback of [`RecEval::eval`]: appends the wire bytes of a
/// slot (at the given scope) to the scratch buffer and returns `true`, or
/// returns `false` when the wire is missing.
pub(crate) type WireLoader<'a> = dyn FnMut(u32, &[u32], &mut Vec<u8>) -> bool + 'a;

/// Reusable scratch state for recovery-program evaluation. Buffers grow to
/// a steady-state size and are then reused allocation-free.
#[derive(Debug, Default, Clone)]
pub(crate) struct RecEval {
    /// Value stack: contiguous `(start, len)` ranges into `buf`.
    stack: Vec<(usize, usize)>,
    /// The byte scratch all stack values live in.
    pub(crate) buf: Vec<u8>,
}

impl RecEval {
    /// Runs `prog` against wire values supplied by `load`.
    ///
    /// Returns the byte range of the recovered value inside
    /// [`RecEval::buf`], or `None` when a required wire was missing.
    pub(crate) fn eval(
        &mut self,
        plan: &CodecPlan,
        prog: RecProg,
        scope: &[u32],
        load: &mut WireLoader<'_>,
    ) -> Option<(usize, usize)> {
        self.stack.clear();
        self.buf.clear();
        for step in plan.rec_prog(prog) {
            match *step {
                RecStep::Load { obf, ops } => {
                    let start = self.buf.len();
                    if !load(obf, scope, &mut self.buf) {
                        return None;
                    }
                    let len = self.buf.len() - start;
                    undo_ops_in_place(plan.ops(ops), &mut self.buf[start..]);
                    self.stack.push((start, len));
                }
                RecStep::Concat { ops } => {
                    let (_, bl) = self.stack.pop()?;
                    let (a, al) = self.stack.pop()?;
                    // Stack values are contiguous: concat is a range merge.
                    let merged = (a, al + bl);
                    undo_ops_in_place(plan.ops(ops), &mut self.buf[merged.0..merged.0 + merged.1]);
                    self.stack.push(merged);
                }
                RecStep::Op { op, ops } => {
                    let (b, bl) = self.stack.pop()?;
                    let (a, al) = self.stack.pop()?;
                    let inv = op.inverse();
                    // combined ⟨inv⟩ share, share cycled (empty share ⇒
                    // inert 1-byte operand, matching `runtime::pad_one`).
                    let (left, right) = self.buf.split_at_mut(b);
                    let share = &left[a..a + al];
                    let combined = &mut right[..bl];
                    for (i, c) in combined.iter_mut().enumerate() {
                        let k = if al == 0 { 0 } else { share[i % al] };
                        *c = apply1(inv, *c, k);
                    }
                    // Compact: move the result down over the share so the
                    // stack stays contiguous.
                    self.buf.copy_within(b..b + bl, a);
                    self.buf.truncate(a + bl);
                    undo_ops_in_place(plan.ops(ops), &mut self.buf[a..a + bl]);
                    self.stack.push((a, bl));
                }
            }
        }
        self.stack.pop()
    }
}

/// Applies a constant-op stack in place (forward direction, constants
/// cycled — the compiled form of the `apply_ops` closure inside
/// [`runtime::distribute`]).
pub(crate) fn apply_ops_in_place(ops: &[ConstOp], bytes: &mut [u8]) {
    for op in ops {
        let k = &op.k;
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = apply1(op.op, *b, k[i % k.len()]);
        }
    }
}

// ---------------------------------------------------------------------------
// distribution evaluation
// ---------------------------------------------------------------------------

/// Reusable scratch state for distribution-program evaluation: the forward
/// counterpart of [`RecEval`]. Buffers grow to a steady-state size and are
/// then reused allocation-free, which is what lets
/// [`crate::serialize::SerializeSession::materialize`] run without routing
/// through the allocating [`runtime::distribute`].
#[derive(Debug, Default, Clone)]
pub(crate) struct DistEval {
    /// Work stack: contiguous `(start, len)` ranges into `buf`.
    stack: Vec<(usize, usize)>,
    /// The byte scratch all ranges live in.
    buf: Vec<u8>,
}

impl DistEval {
    /// Clears the scratch and returns the input buffer; the caller writes
    /// the raw base value into it before calling [`DistEval::eval`].
    pub(crate) fn input(&mut self) -> &mut Vec<u8> {
        self.buf.clear();
        self.stack.clear();
        &mut self.buf
    }

    /// Runs `prog` over the previously written input, emitting each
    /// terminal's wire bytes through `emit`. Random shares are drawn from
    /// `rng` byte-by-byte, in exactly the order of the reference
    /// [`runtime::distribute`] walk, so both paths produce identical wires
    /// for identical seeds.
    pub(crate) fn eval<R: Rng + ?Sized>(
        &mut self,
        plan: &CodecPlan,
        prog: DistProg,
        rng: &mut R,
        emit: &mut dyn FnMut(u32, &[u8]),
    ) -> Result<(), DistErr> {
        self.stack.clear();
        self.stack.push((0, self.buf.len()));
        for step in plan.dist_prog(prog) {
            match *step {
                DistStep::Store { obf, ops, check } => {
                    let (s, l) = self.stack.pop().expect("distribution programs are balanced");
                    match check {
                        DistCheck::Fixed(k) if l != k as usize => {
                            return Err(DistErr::BadLen { obf, expected: k, found: l as u32 });
                        }
                        DistCheck::Delim(d)
                            if runtime::contains(&self.buf[s..s + l], &plan.bytes[d as usize]) =>
                        {
                            return Err(DistErr::Delim { obf });
                        }
                        _ => {}
                    }
                    apply_ops_in_place(plan.ops(ops), &mut self.buf[s..s + l]);
                    emit(obf, &self.buf[s..s + l]);
                }
                DistStep::Split { ops, rule } => {
                    let (s, l) = self.stack.pop().expect("distribution programs are balanced");
                    apply_ops_in_place(plan.ops(ops), &mut self.buf[s..s + l]);
                    match rule {
                        SplitRuleC::At(n) => {
                            let p = (n as usize).min(l);
                            self.stack.push((s + p, l - p));
                            self.stack.push((s, p));
                        }
                        SplitRuleC::Half => {
                            let p = l / 2;
                            self.stack.push((s + p, l - p));
                            self.stack.push((s, p));
                        }
                        SplitRuleC::Op(op) => {
                            // Left half: fresh random share appended to the
                            // scratch; right half: `value ⟨op⟩ share`
                            // computed in place.
                            let e = self.buf.len();
                            for _ in 0..l {
                                self.buf.push(rng.gen::<u8>());
                            }
                            let (head, share) = self.buf.split_at_mut(e);
                            for i in 0..l {
                                head[s + i] = apply1(op, head[s + i], share[i]);
                            }
                            self.stack.push((s, l));
                            self.stack.push((e, l));
                        }
                    }
                }
            }
        }
        debug_assert!(self.stack.is_empty(), "distribution program left values unconsumed");
        Ok(())
    }
}

/// Decodes a recovered big/little-endian unsigned integer from raw bytes.
/// Returns `None` for values wider than 8 bytes.
pub(crate) fn bytes_to_uint(bytes: &[u8], endian: Endian) -> Option<u64> {
    if bytes.len() > 8 {
        return None;
    }
    let mut acc = 0u64;
    match endian {
        Endian::Big => {
            for &b in bytes {
                acc = (acc << 8) | u64::from(b);
            }
        }
        Endian::Little => {
            for &b in bytes.iter().rev() {
                acc = (acc << 8) | u64::from(b);
            }
        }
    }
    Some(acc)
}

/// Evaluates a predicate directly over recovered bytes (no `Value`
/// construction on the parse hot path).
pub(crate) fn pred_eval(pred: &Predicate, bytes: &[u8]) -> bool {
    match pred {
        Predicate::Equals(v) => v.as_bytes() == bytes,
        Predicate::NotEquals(v) => v.as_bytes() != bytes,
        Predicate::OneOf(vs) => vs.iter().any(|v| v.as_bytes() == bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, Condition, GraphBuilder, Predicate};
    use crate::transform::{apply, TransformKind};
    use crate::value::TerminalKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> ObfGraph {
        let mut b = GraphBuilder::new("s");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        let flag = b.uint_be(root, "flag", 1);
        let opt = b.optional(
            root,
            "extra",
            Condition { subject: flag, predicate: Predicate::Equals(Value::from_bytes(vec![1])) },
        );
        b.uint_be(opt, "ev", 2);
        ObfGraph::from_plain(&b.build().unwrap())
    }

    #[test]
    fn compile_covers_every_slot() {
        let g = sample();
        let plan = CodecPlan::compile(&g);
        assert_eq!(plan.slots(), g.allocated());
        assert_eq!(plan.root as usize, g.root().index());
        // Every live node has a non-dead op.
        for id in g.preorder() {
            assert!(
                !matches!(plan.nodes[id.index()].op, PlanOp::Dead),
                "live node {} compiled dead",
                g.node(id).name()
            );
        }
    }

    #[test]
    fn holders_and_recovery_programs_compiled() {
        let g = sample();
        let plan = CodecPlan::compile(&g);
        let data = g.plain().resolve_names(&["data"]).unwrap();
        assert_ne!(plan.holder[data.index()], NONE);
        assert!(plan.rec[data.index()].is_some());
        // Identity graph: one Load step per terminal program.
        let prog = plan.rec[data.index()].unwrap();
        assert_eq!(plan.rec_prog(prog).len(), 1);
    }

    #[test]
    fn autos_collected() {
        let g = sample();
        let plan = CodecPlan::compile(&g);
        assert_eq!(plan.autos.len(), 1);
        assert!(matches!(plan.autos[0].kind, AutoCheckKind::LengthOf { .. }));
    }

    #[test]
    fn rec_eval_inverts_split_stack() {
        // Build a transformed graph and check the compiled program agrees
        // with the reference recovery walk.
        let mut g = sample();
        let mut rng = StdRng::seed_from_u64(11);
        let data_plain = g.plain().resolve_names(&["data"]).unwrap();
        let h = g.holder_of(data_plain).unwrap();
        apply(&mut g, h, TransformKind::ConstAdd, &mut rng).unwrap();
        let h = g.holder_of(data_plain).unwrap();
        apply(&mut g, h, TransformKind::SplitXor, &mut rng).unwrap();
        let h = g.holder_of(data_plain).unwrap();

        // Distribute a value, then recover it through the compiled program.
        let mut store: std::collections::HashMap<(ObfId, Vec<u32>), Value> =
            std::collections::HashMap::new();
        runtime::distribute(
            &g,
            h,
            Value::from_bytes(b"plan layer".to_vec()),
            &[],
            &mut rng,
            &mut |id, sc, v| {
                store.insert((id, sc.to_vec()), v);
            },
        )
        .unwrap();

        let plan = CodecPlan::compile(&g);
        let prog = plan.rec[data_plain.index()].expect("data has a program");
        let mut ev = RecEval::default();
        let range = ev
            .eval(&plan, prog, &[], &mut |obf, sc, buf| match store.get(&(ObfId(obf), sc.to_vec()))
            {
                Some(v) => {
                    buf.extend_from_slice(v.as_bytes());
                    true
                }
                None => false,
            })
            .expect("all wires present");
        assert_eq!(&ev.buf[range.0..range.0 + range.1], b"plan layer");
    }

    #[test]
    fn dist_eval_matches_runtime_distribute() {
        // A transformed holder subtree must distribute identically through
        // the compiled program and the reference walk, including the random
        // share stream (same seed ⇒ same wires).
        let mut g = sample();
        let mut rng = StdRng::seed_from_u64(11);
        let data_plain = g.plain().resolve_names(&["data"]).unwrap();
        let h = g.holder_of(data_plain).unwrap();
        apply(&mut g, h, TransformKind::ConstAdd, &mut rng).unwrap();
        let h = g.holder_of(data_plain).unwrap();
        let rec = apply(&mut g, h, TransformKind::SplitXor, &mut rng).unwrap();
        apply(&mut g, rec.created[1], TransformKind::ConstSub, &mut rng).unwrap();
        apply(&mut g, rec.created[2], TransformKind::SplitCat, &mut rng).unwrap();
        let h = g.holder_of(data_plain).unwrap();

        let mut reference: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut walk_rng = StdRng::seed_from_u64(77);
        runtime::distribute(
            &g,
            h,
            Value::from_bytes(b"dist layer".to_vec()),
            &[],
            &mut walk_rng,
            &mut |id, _, v| reference.push((id.0, v.into_bytes())),
        )
        .unwrap();

        // The holder root is not auto/pad-based in this fixture; lower its
        // program directly through the same compiler (the partially built
        // plan carries the pools the program indexes into).
        let mut c = Compiler::new(&g);
        let prog = c.compile_dist(h).expect("subtree lowers");
        let plan = c.plan;

        let mut ev = DistEval::default();
        ev.input().extend_from_slice(b"dist layer");
        let mut compiled: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut plan_rng = StdRng::seed_from_u64(77);
        ev.eval(&plan, prog, &mut plan_rng, &mut |obf, bytes| {
            compiled.push((obf, bytes.to_vec()));
        })
        .unwrap();
        assert_eq!(compiled, reference, "compiled distribution diverged from the walk");
    }

    #[test]
    fn dist_programs_compiled_for_every_holder_root() {
        let g = sample();
        let plan = CodecPlan::compile(&g);
        let len = g.plain().resolve_names(&["len"]).unwrap();
        let holder = g.holder_of(len).unwrap();
        assert!(plan.dist[holder.index()].is_some(), "auto len holder needs a program");
        // Source fields are never materialized by the serializer, but the
        // transcode copy programs distribute recovered values into them,
        // so their holder roots compile programs too.
        let data = g.plain().resolve_names(&["data"]).unwrap();
        let dh = g.holder_of(data).unwrap();
        assert!(plan.dist[dh.index()].is_some(), "copy programs need source-holder programs");
    }

    #[test]
    fn copy_program_lowers_the_plain_tree() {
        let g = sample();
        let obf = {
            let plain = g.plain().clone();
            let mut t = ObfGraph::from_plain(&plain);
            let mut rng = StdRng::seed_from_u64(4);
            let data = plain.resolve_names(&["data"]).unwrap();
            let h = t.holder_of(data).unwrap();
            apply(&mut t, h, TransformKind::SplitXor, &mut rng).unwrap();
            t
        };
        let prog = CopyProgram::compile(&g, &obf).expect("same plain spec");
        // One value step per settable terminal, one Optional for
        // `extra`; auto fields (len) never copy. The identity source
        // side has single-Load recovery programs throughout, so every
        // value step takes the direct form.
        let values = prog
            .steps
            .iter()
            .filter(|s| matches!(s, CopyStep::Value { .. } | CopyStep::ValueDirect { .. }))
            .count();
        assert_eq!(values, 3, "data, flag, extra.ev");
        assert!(prog.steps.iter().all(|s| !matches!(s, CopyStep::Value { .. })));
        assert!(prog.steps.iter().any(|s| matches!(s, CopyStep::Optional { .. })));
        assert!(prog.steps() >= 4);
        // The reverse direction recovers through the split: `data`'s
        // program needs the full recovery machine.
        let back = CopyProgram::compile(&obf, &g).expect("same plain spec");
        assert!(back.steps.iter().any(|s| matches!(s, CopyStep::Value { .. })));
    }

    #[test]
    fn copy_program_rejects_foreign_specs() {
        let g = sample();
        let mut b = GraphBuilder::new("other");
        let root = b.root_sequence("m", Boundary::End);
        b.uint_be(root, "x", 2);
        let other = ObfGraph::from_plain(&b.build().unwrap());
        assert!(CopyProgram::compile(&g, &other).is_none());
    }

    #[test]
    fn dist_eval_validates_boundaries() {
        let mut b = GraphBuilder::new("v");
        let root = b.root_sequence("m", Boundary::End);
        let k = b.uint_be(root, "k", 2);
        b.set_auto(k, AutoValue::Literal(Value::from_bytes(vec![1, 2])));
        let g = ObfGraph::from_plain(&b.build().unwrap());
        let plan = CodecPlan::compile(&g);
        let holder = g.holder_of(b_resolve(&g, "k")).unwrap();
        let prog = plan.dist[holder.index()].expect("literal const is materializable");
        let mut ev = DistEval::default();
        ev.input().extend_from_slice(&[1, 2, 3]); // wrong width
        let mut rng = StdRng::seed_from_u64(0);
        let r = ev.eval(&plan, prog, &mut rng, &mut |_, _| {});
        assert!(matches!(r, Err(DistErr::BadLen { expected: 2, found: 3, .. })));
    }

    fn b_resolve(g: &ObfGraph, name: &str) -> NodeId {
        g.plain().resolve_names(&[name]).unwrap()
    }

    #[test]
    fn uint_and_pred_helpers() {
        assert_eq!(bytes_to_uint(&[1, 2], Endian::Big), Some(0x0102));
        assert_eq!(bytes_to_uint(&[1, 2], Endian::Little), Some(0x0201));
        assert_eq!(bytes_to_uint(&[0; 9], Endian::Big), None);
        let p = Predicate::OneOf(vec![Value::from_bytes(vec![3]), Value::from_bytes(vec![5])]);
        assert!(pred_eval(&p, &[5]));
        assert!(!pred_eval(&p, &[4]));
    }
}

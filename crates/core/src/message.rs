//! The accessor interface and the *intermediate AST* (paper §VI).
//!
//! A [`Message`] is the in-memory representation of one protocol message.
//! Following the paper's design, it does **not** store the plain abstract
//! syntax tree: setters run the aggregation transformations on the fly and
//! store the already-transformed wire values of every obfuscated terminal
//! (the "intermediate representation … after the application of aggregation
//! transformations and before the application of ordering
//! transformations"). Getters invert them on the fly. The interface —
//! plain-spec field paths — is stable regardless of the obfuscation plan.
//!
//! # Storage
//!
//! Values live in **slot-backed dense stores** ([`WireStore`] /
//! [`MetaStore`]), indexed by the raw node index (the plan's *slot*) with
//! per-instance element scopes as inline [`ScopeKey`]s and value bytes in
//! one shared arena. Lookups are an index plus a short linear scan — no
//! hashing — and clearing a store keeps its capacity, which is what lets
//! the codec sessions ([`crate::serialize::SerializeSession`],
//! [`crate::parse::ParseSession`]) run without steady-state allocation.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::BuildError;
use crate::graph::{AutoValue, Boundary, NodeId, NodeType, StopRule};
use crate::obf::{ObfGraph, ObfId};
use crate::path::{self, Path};
use crate::plan::{
    CodecPlan, CopyProgram, CopyStep, DistErr, DistEval, DistProg, RecEval, RecProg,
};
use crate::runtime::{self, Scope};
use crate::value::{Endian, TerminalKind, Value};

/// Maximum supported repetition/tabular nesting depth. Element scopes are
/// stored inline (allocation-free) up to this depth;
/// [`crate::graph::FormatGraph::validate`] rejects deeper specifications.
pub const MAX_SCOPE: usize = 8;

/// An element-index scope stored inline: one index per repetition/tabular
/// crossed, outermost first. The derived ordering (depth, then
/// lexicographic indices) matches traversal order, so store entries pushed
/// during a message walk are naturally sorted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub(crate) struct ScopeKey {
    len: u8,
    idx: [u32; MAX_SCOPE],
}

impl ScopeKey {
    pub(crate) fn from_slice(scope: &[u32]) -> ScopeKey {
        assert!(
            scope.len() <= MAX_SCOPE,
            "element scope deeper than the supported nesting of {MAX_SCOPE}"
        );
        let mut idx = [0u32; MAX_SCOPE];
        idx[..scope.len()].copy_from_slice(scope);
        ScopeKey { len: scope.len() as u8, idx }
    }

    pub(crate) fn as_slice(&self) -> &[u32] {
        &self.idx[..self.len as usize]
    }
}

/// Dense per-slot wire-value storage: value bytes live in one arena,
/// instances are `(scope, range)` entries per slot.
#[derive(Debug, Clone, Default)]
pub(crate) struct WireStore {
    per_slot: Vec<Vec<(ScopeKey, u32, u32)>>,
    data: Vec<u8>,
}

impl WireStore {
    pub(crate) fn with_slots(n: usize) -> WireStore {
        WireStore { per_slot: vec![Vec::new(); n], data: Vec::new() }
    }

    /// Clears all entries, keeping every capacity (session reuse).
    pub(crate) fn clear(&mut self) {
        for v in &mut self.per_slot {
            v.clear();
        }
        self.data.clear();
    }

    pub(crate) fn get(&self, slot: usize, scope: &[u32]) -> Option<&[u8]> {
        let key = ScopeKey::from_slice(scope);
        let entries = self.per_slot.get(slot)?;
        let i = entries.binary_search_by(|(k, _, _)| k.cmp(&key)).ok()?;
        let (_, start, end) = entries[i];
        Some(&self.data[start as usize..end as usize])
    }

    pub(crate) fn contains(&self, slot: usize, scope: &[u32]) -> bool {
        self.get(slot, scope).is_some()
    }

    /// Inserts or replaces the value at `(slot, scope)`. Bytes are appended
    /// to the arena; a replaced value's old bytes are reclaimed on the next
    /// [`WireStore::clear`]. Entries stay sorted by scope — message walks
    /// insert in order, so the common case is an O(1) tail push (checked
    /// before falling back to a binary search).
    pub(crate) fn set(&mut self, slot: usize, scope: &[u32], bytes: &[u8]) {
        let start = self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        let end = self.data.len() as u32;
        let key = ScopeKey::from_slice(scope);
        let entries = &mut self.per_slot[slot];
        match entries.last_mut() {
            Some(last) if last.0 < key => entries.push((key, start, end)),
            Some(last) if last.0 == key => {
                last.1 = start;
                last.2 = end;
            }
            None => entries.push((key, start, end)),
            Some(_) => match entries.binary_search_by(|(k, _, _)| k.cmp(&key)) {
                Ok(i) => {
                    entries[i].1 = start;
                    entries[i].2 = end;
                }
                Err(i) => entries.insert(i, (key, start, end)),
            },
        }
    }

    /// [`WireStore::get`] with a **sequential cursor**: when the caller
    /// visits a slot's instances in scope order (the transcode copy
    /// programs do — plain pre-order is exactly the stores' sort order),
    /// each lookup is one equality check instead of a binary search. A
    /// cursor miss falls back to the search and re-synchronizes the
    /// cursor, so out-of-order access is merely slower, never wrong.
    pub(crate) fn get_seq(&self, slot: usize, scope: &[u32], cursor: &mut u32) -> Option<&[u8]> {
        let key = ScopeKey::from_slice(scope);
        let entries = self.per_slot.get(slot)?;
        let c = *cursor as usize;
        if let Some(&(k, start, end)) = entries.get(c) {
            if k == key {
                *cursor = (c + 1) as u32;
                return Some(&self.data[start as usize..end as usize]);
            }
        }
        let i = entries.binary_search_by(|(k, _, _)| k.cmp(&key)).ok()?;
        *cursor = (i + 1) as u32;
        let (_, start, end) = entries[i];
        Some(&self.data[start as usize..end as usize])
    }

    /// The scopes at which `slot` holds a value.
    pub(crate) fn scopes_of(&self, slot: usize) -> impl Iterator<Item = &[u32]> + '_ {
        self.per_slot[slot].iter().map(|(k, _, _)| k.as_slice())
    }

    /// Number of slots this store was sized for.
    pub(crate) fn slots(&self) -> usize {
        self.per_slot.len()
    }

    /// All stored values, in slot order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (usize, &[u32], &[u8])> + '_ {
        self.per_slot.iter().enumerate().flat_map(move |(slot, entries)| {
            entries.iter().map(move |&(ref k, start, end)| {
                (slot, k.as_slice(), &self.data[start as usize..end as usize])
            })
        })
    }
}

/// Dense per-slot metadata storage (presence flags, element counts).
#[derive(Debug, Clone, Default)]
pub(crate) struct MetaStore<T: Copy> {
    per_slot: Vec<Vec<(ScopeKey, T)>>,
}

impl<T: Copy> MetaStore<T> {
    pub(crate) fn with_slots(n: usize) -> MetaStore<T> {
        MetaStore { per_slot: vec![Vec::new(); n] }
    }

    pub(crate) fn clear(&mut self) {
        for v in &mut self.per_slot {
            v.clear();
        }
    }

    pub(crate) fn get(&self, slot: usize, scope: &[u32]) -> Option<T> {
        let key = ScopeKey::from_slice(scope);
        let entries = self.per_slot.get(slot)?;
        let i = entries.binary_search_by(|(k, _)| k.cmp(&key)).ok()?;
        Some(entries[i].1)
    }

    pub(crate) fn set(&mut self, slot: usize, scope: &[u32], value: T) {
        let key = ScopeKey::from_slice(scope);
        let entries = &mut self.per_slot[slot];
        match entries.last_mut() {
            // In-order inserts (message walks) are an O(1) tail push.
            Some(last) if last.0 < key => entries.push((key, value)),
            Some(last) if last.0 == key => last.1 = value,
            None => entries.push((key, value)),
            Some(_) => match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => entries[i].1 = value,
                Err(i) => entries.insert(i, (key, value)),
            },
        }
    }

    /// Read-modify-write without an entry clone.
    pub(crate) fn update(
        &mut self,
        slot: usize,
        scope: &[u32],
        default: T,
        f: impl FnOnce(T) -> T,
    ) {
        let key = ScopeKey::from_slice(scope);
        let entries = &mut self.per_slot[slot];
        match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => entries[i].1 = f(entries[i].1),
            Err(i) => entries.insert(i, (key, f(default))),
        }
    }
}

/// A message under construction (or recovered by the parser), exposing the
/// stable setter/getter interface over plain-specification field paths.
#[derive(Debug)]
pub struct Message<'c> {
    graph: &'c ObfGraph,
    pub(crate) wires: WireStore,
    pub(crate) presence: MetaStore<bool>,
    pub(crate) counts: MetaStore<usize>,
    rng: StdRng,
    /// Uid of the last source graph this message was structurally
    /// validated against as a transcode destination (0 = none). Lets a
    /// reusable relay target skip the per-message [`plains_match`] walk;
    /// graph uids are process-unique and refreshed on mutation, so the
    /// cache cannot be fooled by allocator address reuse.
    validated_src: u64,
    /// Compiled transcode state of a reusable relay target: the copy
    /// program for the last source graph plus warmed recovery /
    /// distribution scratch. `None` until the first
    /// [`Message::transcode_into`] (or until armed by
    /// [`crate::service::CodecService::transcode_target`]).
    transcode: Option<TranscodeCache>,
}

/// The compiled-transcode state a destination [`Message`] caches across
/// relayed messages: which source graph the program was compiled for
/// (uid, refreshed on every graph mutation), the shared program, and the
/// reusable evaluation scratch. Once warm, running the program allocates
/// nothing.
#[derive(Debug)]
pub(crate) struct TranscodeCache {
    src_uid: u64,
    prog: Arc<CopyProgram>,
    ev: RecEval,
    dist: DistEval,
    /// Per-source-slot sequential read cursors (see
    /// [`WireStore::get_seq`]); reset per message, reused capacity.
    cursors: Vec<u32>,
}

impl TranscodeCache {
    fn new(src_uid: u64, prog: Arc<CopyProgram>) -> TranscodeCache {
        TranscodeCache {
            src_uid,
            prog,
            ev: RecEval::default(),
            dist: DistEval::default(),
            cursors: Vec::new(),
        }
    }
}

/// The lifetime-free owned state of a [`Message`]: its stores and RNG
/// without the graph borrow. Lets session scratch (and through it the
/// [`crate::service::CodecService`] pools) carry warmed-up message
/// capacity across checkouts.
#[derive(Debug)]
pub(crate) struct MessageState {
    wires: WireStore,
    presence: MetaStore<bool>,
    counts: MetaStore<usize>,
    transcode: Option<TranscodeCache>,
}

impl<'c> Message<'c> {
    /// Creates an empty message for the given obfuscation graph, seeding
    /// the share-generation RNG from the OS.
    pub fn new(graph: &'c ObfGraph) -> Self {
        Message::with_seed(graph, rand::random())
    }

    /// Creates an empty message with a deterministic RNG seed (reproducible
    /// random shares and pads).
    pub fn with_seed(graph: &'c ObfGraph, seed: u64) -> Self {
        let n_obf = graph.allocated();
        let n_plain = graph.plain().len();
        Message {
            graph,
            wires: WireStore::with_slots(n_obf),
            presence: MetaStore::with_slots(n_plain),
            counts: MetaStore::with_slots(n_plain),
            rng: StdRng::seed_from_u64(seed),
            validated_src: 0,
            transcode: None,
        }
    }

    /// Clears all stored values, keeping capacity (session reuse).
    pub(crate) fn reset(&mut self) {
        self.wires.clear();
        self.presence.clear();
        self.counts.clear();
    }

    /// Clears every field, presence flag and element count, keeping all
    /// allocated capacity — a long-lived message (e.g. the reusable
    /// transcode target of a gateway relay) can be refilled without
    /// reallocating its stores.
    pub fn clear(&mut self) {
        self.reset();
    }

    /// Rebinds pooled message state to the graph it was created for,
    /// cleared but with all capacities intact. The setter RNG is reseeded
    /// from ambient entropy so a pooled message never continues the
    /// (possibly caller-seeded, predictable) stream of its previous owner.
    pub(crate) fn from_state(graph: &'c ObfGraph, state: MessageState) -> Self {
        debug_assert_eq!(state.wires.slots(), graph.allocated(), "state from a different graph");
        let mut m = Message {
            graph,
            wires: state.wires,
            presence: state.presence,
            counts: state.counts,
            rng: StdRng::seed_from_u64(rand::random()),
            validated_src: 0,
            transcode: state.transcode,
        };
        m.reset();
        m
    }

    /// Takes the owned state back out for pooling (the RNG is dropped —
    /// see [`Message::from_state`]). The compiled transcode cache travels
    /// with the state: it is keyed on the source graph's uid, so a stale
    /// pairing can never be replayed against the wrong graph.
    pub(crate) fn into_state(self) -> MessageState {
        MessageState {
            wires: self.wires,
            presence: self.presence,
            counts: self.counts,
            transcode: self.transcode,
        }
    }

    pub(crate) fn from_parts(
        graph: &'c ObfGraph,
        wires: HashMap<(ObfId, Scope), Value>,
        presence: HashMap<(NodeId, Scope), bool>,
        counts: HashMap<(NodeId, Scope), usize>,
    ) -> Self {
        let mut m = Message::with_seed(graph, rand::random());
        for ((id, scope), v) in &wires {
            m.wires.set(id.index(), scope, v.as_bytes());
        }
        for ((x, scope), p) in &presence {
            m.presence.set(x.index(), scope, *p);
        }
        for ((x, scope), n) in &counts {
            m.counts.set(x.index(), scope, *n);
        }
        m
    }

    /// The obfuscation graph this message is bound to.
    pub fn graph(&self) -> &'c ObfGraph {
        self.graph
    }

    /// Every populated wire value: `(slot, scope, bytes)` in slot order.
    /// Feeds the fuzzer's plan-slot coverage signatures ([`crate::fuzz`]).
    pub(crate) fn populated_wires(&self) -> impl Iterator<Item = (usize, &[u32], &[u8])> + '_ {
        self.wires.iter()
    }

    fn resolve(&self, path: &str) -> Result<(NodeId, Scope), BuildError> {
        let parsed: Path = path.parse().map_err(|_| BuildError::UnknownPath(path.to_string()))?;
        let resolved = path::resolve(self.graph.plain(), &parsed)?;
        let scope: Scope = resolved.scope.iter().map(|&i| i as u32).collect();
        Ok((resolved.node, scope))
    }

    /// Sets a field to a byte value, applying every aggregation
    /// transformation of the obfuscation plan on the fly.
    ///
    /// Setting a field inside an optional subtree marks it present; setting
    /// `items[i]...` extends the element count of `items` to at least
    /// `i + 1`.
    ///
    /// # Errors
    ///
    /// * [`BuildError::UnknownPath`] / [`BuildError::NotATerminal`] for bad
    ///   paths;
    /// * [`BuildError::AutoField`] when the field is auto-computed;
    /// * [`BuildError::BadValueLength`], [`BuildError::IntegerOverflow`],
    ///   [`BuildError::ValueContainsDelimiter`] for invalid values.
    pub fn set(&mut self, path: &str, value: impl Into<Value>) -> Result<(), BuildError> {
        let value = value.into();
        let (x, scope) = self.resolve(path)?;
        let plain = self.graph.plain();
        let node = plain.node(x);
        let kind = match node.node_type() {
            NodeType::Terminal(k) => k,
            _ => return Err(BuildError::NotATerminal(path.to_string())),
        };
        if node.auto().is_auto() {
            return Err(BuildError::AutoField(path.to_string()));
        }
        if let Some(w) = kind.implied_width() {
            if value.len() != w {
                return Err(BuildError::BadValueLength {
                    path: path.to_string(),
                    expected: w,
                    found: value.len(),
                });
            }
        }
        if let Boundary::Delimited(d) = node.boundary() {
            if runtime::contains(value.as_bytes(), d) {
                return Err(BuildError::ValueContainsDelimiter { path: path.to_string() });
            }
        }
        self.mark_ancestors(x, &scope);
        let holder =
            self.graph.holder_of(x).ok_or_else(|| BuildError::UnknownPath(path.to_string()))?;
        let wires = &mut self.wires;
        runtime::distribute(self.graph, holder, value, &scope, &mut self.rng, &mut |id, sc, v| {
            wires.set(id.index(), sc, v.as_bytes());
        })
    }

    /// Sets an unsigned-integer field, encoding it with the field's
    /// declared width and byte order.
    ///
    /// # Errors
    ///
    /// [`BuildError::NotNumeric`] if the field is not an unsigned integer;
    /// [`BuildError::IntegerOverflow`] if the value does not fit.
    pub fn set_uint(&mut self, path: &str, v: u64) -> Result<(), BuildError> {
        let (x, _) = self.resolve(path)?;
        let (width, endian) = self.numeric_kind(x, path)?;
        let value = Value::from_uint(v, width, endian).ok_or(BuildError::IntegerOverflow {
            path: path.to_string(),
            width,
            value: v,
        })?;
        self.set(path, value)
    }

    /// Sets a text field.
    pub fn set_str(&mut self, path: &str, v: &str) -> Result<(), BuildError> {
        self.set(path, Value::from(v))
    }

    /// Marks an optional subtree present without setting any of its fields
    /// (useful when the subtree only contains auto-computed fields).
    pub fn mark_present(&mut self, path: &str) -> Result<(), BuildError> {
        let (x, scope) = self.resolve(path)?;
        if !matches!(self.graph.plain().node(x).node_type(), NodeType::Optional(_)) {
            return Err(BuildError::UnknownPath(format!("{path} is not an optional node")));
        }
        self.mark_ancestors(x, &scope);
        self.presence.set(x.index(), &scope, true);
        Ok(())
    }

    /// True if the optional subtree at `path` is present.
    pub fn is_present(&self, path: &str) -> bool {
        match self.resolve(path) {
            Ok((x, scope)) => self.presence.get(x.index(), &scope).unwrap_or(false),
            Err(_) => false,
        }
    }

    /// Number of elements of the repetition/tabular node at `path`.
    pub fn element_count(&self, path: &str) -> usize {
        match self.resolve(path) {
            Ok((x, scope)) => self.counts.get(x.index(), &scope).unwrap_or(0),
            Err(_) => 0,
        }
    }

    /// Recovers a field's plain value, inverting every aggregation
    /// transformation on the fly.
    ///
    /// # Errors
    ///
    /// [`BuildError::MissingField`] if the field was never set (or, after
    /// parsing, is inside an absent optional).
    pub fn get(&self, path: &str) -> Result<Value, BuildError> {
        let (x, scope) = self.resolve(path)?;
        if !self.graph.plain().node(x).is_terminal() {
            return Err(BuildError::NotATerminal(path.to_string()));
        }
        self.value_at(x, &scope).ok_or_else(|| BuildError::MissingField(path.to_string()))
    }

    /// Recovers an unsigned-integer field.
    ///
    /// # Errors
    ///
    /// As [`Message::get`], plus [`BuildError::NotNumeric`].
    pub fn get_uint(&self, path: &str) -> Result<u64, BuildError> {
        let (x, _) = self.resolve(path)?;
        let (_, endian) = self.numeric_kind(x, path)?;
        let v = self.get(path)?;
        v.to_uint(endian).ok_or_else(|| BuildError::NotNumeric(path.to_string()))
    }

    /// Recovers a text field (lossy UTF-8).
    ///
    /// # Errors
    ///
    /// As [`Message::get`].
    pub fn get_string(&self, path: &str) -> Result<String, BuildError> {
        Ok(String::from_utf8_lossy(self.get(path)?.as_bytes()).into_owned())
    }

    fn numeric_kind(&self, x: NodeId, path: &str) -> Result<(usize, Endian), BuildError> {
        match self.graph.plain().node(x).terminal_kind() {
            Some(TerminalKind::UInt { width, endian }) => Ok((*width, *endian)),
            _ => Err(BuildError::NotNumeric(path.to_string())),
        }
    }

    /// Sets the plain value of terminal `x` at `scope` without path
    /// resolution or value validation — the transcoding fast path ([`
    /// Message::transcode_into`]): values come from an already-validated
    /// message over the same plain specification.
    fn set_value_at(&mut self, x: NodeId, scope: &[u32], value: Value) -> Result<(), BuildError> {
        self.mark_ancestors(x, scope);
        let holder = self.graph.holder_of(x).ok_or_else(|| {
            BuildError::UnknownPath(self.graph.plain().node(x).name().to_string())
        })?;
        let wires = &mut self.wires;
        runtime::distribute(self.graph, holder, value, scope, &mut self.rng, &mut |id, sc, v| {
            wires.set(id.index(), sc, v.as_bytes());
        })
    }

    /// Copies every plain field value, presence flag and element count of
    /// `self` into `dst` (cleared first, capacity kept) — the transcoding
    /// primitive of the obfuscating gateway: a message parsed under one
    /// codec is re-expressed under another codec that shares the **same
    /// plain specification** but a different obfuscation plan (e.g. clear ↔
    /// obfuscated). Auto-computed fields are skipped; the destination codec
    /// rematerializes them at serialization time.
    ///
    /// The copy runs a compiled [`CopyProgram`] — a flat slot-to-slot
    /// mapping chaining the source plan's recovery programs into the
    /// destination plan's distribution programs — compiled (with the
    /// structural validation folded in) on the first use of a (source
    /// graph, destination message) pairing and cached in `dst`. Once
    /// warm, a reusable relay target transcodes with **zero heap
    /// allocation**, byte-identically to the reference graph walk
    /// ([`Message::transcode_into_walk`]).
    ///
    /// # Errors
    ///
    /// [`BuildError::GraphMismatch`] when the two messages' plain
    /// specifications are not structurally identical.
    pub fn transcode_into(&self, dst: &mut Message<'_>) -> Result<(), BuildError> {
        // Compilation (and the structural validation inside it) runs once
        // per pairing; a reusable relay target then fast-paths on the
        // source graph's uid — process-unique and refreshed on every
        // rewrite — so the steady-state per-message cost starts at one
        // integer compare, not a per-node revalidation.
        let src_uid = self.graph.uid();
        if dst.transcode.as_ref().is_none_or(|c| c.src_uid != src_uid) {
            let prog = CopyProgram::compile(self.graph, dst.graph)
                .ok_or_else(|| self.transcode_mismatch(dst))?;
            dst.arm_transcode(src_uid, Arc::new(prog));
        }
        dst.reset();
        // Take the cache out so its scratch can be borrowed mutably next
        // to the destination stores; a plain move, no allocation.
        let mut cache = dst.transcode.take().expect("armed above");
        let r = self.run_copy(dst, &mut cache);
        dst.transcode = Some(cache);
        r
    }

    /// **Reference implementation** of [`Message::transcode_into`]: the
    /// direct recursive walk over the shared plain specification, copying
    /// one field at a time through the allocating graph-walk runtime
    /// ([`runtime::recover`] / [`runtime::distribute`]). Kept as the
    /// executable specification the compiled copy-program path is
    /// differentially tested against (`tests/transcode_differential.rs`);
    /// production relays use `transcode_into`.
    ///
    /// # Errors
    ///
    /// See [`Message::transcode_into`].
    pub fn transcode_into_walk(&self, dst: &mut Message<'_>) -> Result<(), BuildError> {
        let a = self.graph.plain();
        if dst.validated_src != self.graph.uid() {
            if !runtime::plains_match(a, dst.graph.plain()) {
                return Err(self.transcode_mismatch(dst));
            }
            dst.validated_src = self.graph.uid();
        }
        dst.reset();
        let mut scope = Vec::new();
        self.copy_subtree(dst, a.root(), &mut scope)
    }

    fn transcode_mismatch(&self, dst: &Message<'_>) -> BuildError {
        let (a, b) = (self.graph.plain(), dst.graph.plain());
        BuildError::GraphMismatch {
            expected: format!("{} ({} nodes)", b.name(), b.len()),
            found: format!("{} ({} nodes)", a.name(), a.len()),
        }
    }

    /// Pre-arms this message as a transcode destination for sources bound
    /// to the graph with uid `src_uid`, sharing an already-compiled copy
    /// program (see [`crate::codec::Codec::copy_program_from`]). Existing
    /// warmed scratch is kept.
    pub(crate) fn arm_transcode(&mut self, src_uid: u64, prog: Arc<CopyProgram>) {
        match &mut self.transcode {
            Some(c) => {
                c.src_uid = src_uid;
                c.prog = prog;
            }
            None => self.transcode = Some(TranscodeCache::new(src_uid, prog)),
        }
    }

    /// Executes the compiled copy program against `dst`'s stores.
    fn run_copy(
        &self,
        dst: &mut Message<'_>,
        cache: &mut TranscodeCache,
    ) -> Result<(), BuildError> {
        let TranscodeCache { prog, ev, dist, cursors, .. } = cache;
        let sp = self.graph.plan();
        cursors.clear();
        cursors.resize(sp.slots(), 0);
        let mut run = CopyRun {
            src: self,
            sp,
            dp: dst.graph.plan(),
            dst_graph: dst.graph,
            wires: &mut dst.wires,
            presence: &mut dst.presence,
            counts: &mut dst.counts,
            rng: &mut dst.rng,
            ev,
            dist,
            cursors,
            scope: [0; MAX_SCOPE],
        };
        run.exec(&prog.steps, 0)
    }

    /// Convenience form of [`Message::transcode_into`] that allocates a
    /// fresh destination message for `graph`. Relays on a hot path should
    /// hold a reusable destination and call `transcode_into` instead.
    ///
    /// # Errors
    ///
    /// See [`Message::transcode_into`].
    pub fn transcode<'d>(&self, graph: &'d ObfGraph) -> Result<Message<'d>, BuildError> {
        let mut dst = Message::new(graph);
        self.transcode_into(&mut dst)?;
        Ok(dst)
    }

    fn copy_subtree(
        &self,
        dst: &mut Message<'_>,
        x: NodeId,
        scope: &mut Vec<u32>,
    ) -> Result<(), BuildError> {
        let plain = self.graph.plain();
        let node = plain.node(x);
        match node.node_type() {
            NodeType::Terminal(_) => {
                // Auto fields are derived from structure at serialization
                // time; copying them would only re-assert what the
                // destination recomputes anyway.
                if !node.auto().is_auto() {
                    if let Some(v) = self.value_at(x, scope) {
                        dst.set_value_at(x, scope, v)?;
                    }
                }
                Ok(())
            }
            NodeType::Sequence => {
                for &c in node.children() {
                    self.copy_subtree(dst, c, scope)?;
                }
                Ok(())
            }
            NodeType::Optional(_) => {
                if self.presence.get(x.index(), scope).unwrap_or(false) {
                    dst.presence.set(x.index(), scope, true);
                    self.copy_subtree(dst, node.children()[0], scope)?;
                }
                Ok(())
            }
            NodeType::Repetition(_) | NodeType::Tabular => {
                let n = self.counts.get(x.index(), scope).unwrap_or(0);
                dst.counts.set(x.index(), scope, n);
                let child = node.children()[0];
                for i in 0..n {
                    scope.push(i as u32);
                    self.copy_subtree(dst, child, scope)?;
                    scope.pop();
                }
                Ok(())
            }
        }
    }

    /// Marks presence/counts for every optional / repetition / tabular
    /// ancestor of `x` under the given scope.
    fn mark_ancestors(&mut self, x: NodeId, scope: &[u32]) {
        let plain = self.graph.plain();
        let mut d = scope.len();
        let mut cur = plain.node(x).parent();
        while let Some(a) = cur {
            match plain.node(a).node_type() {
                NodeType::Repetition(_) | NodeType::Tabular => {
                    debug_assert!(d > 0, "scope shallower than container nesting");
                    let idx = scope[d - 1] as usize;
                    d -= 1;
                    self.counts.update(a.index(), &scope[..d], 0, |n| n.max(idx + 1));
                }
                NodeType::Optional(_) => {
                    self.presence.set(a.index(), &scope[..d], true);
                }
                _ => {}
            }
            cur = plain.node(a).parent();
        }
    }

    /// Plain value of terminal `x` at `scope`: recovered from stored wires,
    /// or computed for auto fields that were never materialized.
    pub(crate) fn value_at(&self, x: NodeId, scope: &[u32]) -> Option<Value> {
        let holder = self.graph.holder_of(x)?;
        let recovered = runtime::recover(self.graph, holder, scope, &|id, sc| {
            self.wires.get(id.index(), sc).map(|b| Value::from_bytes(b.to_vec()))
        });
        if recovered.is_some() {
            return recovered;
        }
        // Auto fields can be computed from structure before serialization.
        self.auto_value(x, scope)
    }

    fn auto_value(&self, x: NodeId, scope: &[u32]) -> Option<Value> {
        let plain = self.graph.plain();
        let node = plain.node(x);
        let (width, endian) = match node.terminal_kind() {
            Some(TerminalKind::UInt { width, endian }) => (*width, *endian),
            _ => return None,
        };
        let quantity = match node.auto() {
            AutoValue::None => return None,
            AutoValue::Literal(v) => return Some(v.clone()),
            AutoValue::LengthOf(t) => {
                let tscope = runtime::scoped(plain, *t, scope);
                self.plain_len(*t, &tscope)?
            }
            AutoValue::CounterOf(t) => {
                let tscope = runtime::scoped(plain, *t, scope);
                self.counts.get(t.index(), &tscope).unwrap_or(0)
            }
        };
        Value::from_uint(quantity as u64, width, endian)
    }

    /// Length in bytes of the **plain** serialization of the plain subtree
    /// `p` at `scope` (delimiters and terminators included). This is the
    /// quantity auto length fields carry, exactly as in the non-obfuscated
    /// protocol.
    pub(crate) fn plain_len(&self, p: NodeId, scope: &[u32]) -> Option<usize> {
        let plain = self.graph.plain();
        let node = plain.node(p);
        match node.node_type() {
            NodeType::Terminal(kind) => {
                let body = match node.boundary() {
                    Boundary::Fixed(k) => *k,
                    _ => match kind.implied_width() {
                        Some(w) => w,
                        None => self.value_len_at(p, scope)?,
                    },
                };
                let delim = match node.boundary() {
                    Boundary::Delimited(d) => d.len(),
                    _ => 0,
                };
                Some(body + delim)
            }
            NodeType::Sequence => {
                let mut total = 0;
                for &c in node.children() {
                    total += self.plain_len(c, scope)?;
                }
                Some(total)
            }
            NodeType::Optional(_) => {
                if self.presence.get(p.index(), scope).unwrap_or(false) {
                    self.plain_len(node.children()[0], scope)
                } else {
                    Some(0)
                }
            }
            NodeType::Repetition(stop) => {
                let mut total = self.elements_len(p, scope)?;
                if let StopRule::Terminator(t) = stop {
                    total += t.len();
                }
                Some(total)
            }
            NodeType::Tabular => self.elements_len(p, scope),
        }
    }

    /// Byte length of terminal `x`'s plain value, computed structurally
    /// from stored wire lengths without materializing the value: the
    /// aggregation transformations are length-transparent (constant ops
    /// byte-wise, concat splits additive, op splits length-preserving), so
    /// the recovered length follows from the holder subtree's shape. Falls
    /// back to full recovery for values only an auto rule can supply.
    pub(crate) fn value_len_at(&self, x: NodeId, scope: &[u32]) -> Option<usize> {
        if let Some(holder) = self.graph.holder_of(x) {
            if let Some(len) = self.holder_len(holder, scope) {
                return Some(len);
            }
        }
        self.value_at(x, scope).map(|v| v.len())
    }

    fn holder_len(&self, id: ObfId, scope: &[u32]) -> Option<usize> {
        use crate::obf::{ObfKind, Recombine};
        let node = self.graph.node(id);
        match node.kind() {
            ObfKind::Terminal { .. } => self.wires.get(id.index(), scope).map(<[u8]>::len),
            ObfKind::SplitSeq { recombine, .. } => {
                let (c0, c1) = (node.children()[0], node.children()[1]);
                match recombine {
                    Recombine::Concat(_) => {
                        Some(self.holder_len(c0, scope)? + self.holder_len(c1, scope)?)
                    }
                    // The combined half has the original value's length.
                    Recombine::Op(_) => self.holder_len(c1, scope),
                }
            }
            ObfKind::Mirror | ObfKind::Prefixed { .. } => {
                self.holder_len(node.children()[0], scope)
            }
            _ => None,
        }
    }

    /// Summed plain length of a container's elements, with the element
    /// index appended to an inline scope buffer (no per-call allocation —
    /// [`Message::plain_len`] runs on the serializer's steady-state path).
    fn elements_len(&self, p: NodeId, scope: &[u32]) -> Option<usize> {
        if scope.len() >= MAX_SCOPE {
            return None; // deeper nesting is rejected at validation
        }
        let child = self.graph.plain().node(p).children()[0];
        let m = self.counts.get(p.index(), scope).unwrap_or(0);
        let mut sc = [0u32; MAX_SCOPE];
        sc[..scope.len()].copy_from_slice(scope);
        let mut total = 0;
        for i in 0..m {
            sc[scope.len()] = i as u32;
            total += self.plain_len(child, &sc[..scope.len() + 1])?;
        }
        Some(total)
    }

    pub(crate) fn wire(&self, id: ObfId, scope: &[u32]) -> Option<&[u8]> {
        self.wires.get(id.index(), scope)
    }

    pub(crate) fn presence_of(&self, x: NodeId, scope: &[u32]) -> bool {
        self.presence.get(x.index(), scope).unwrap_or(false)
    }

    pub(crate) fn count_of(&self, x: NodeId, scope: &[u32]) -> usize {
        self.counts.get(x.index(), scope).unwrap_or(0)
    }
}

/// One execution of a compiled [`CopyProgram`]: the source message plus
/// disjoint mutable borrows of the destination's stores, RNG and the
/// cached evaluation scratch. The element scope lives in an inline array
/// (containers deeper than [`MAX_SCOPE`] are rejected at validation), so
/// steady-state execution performs no heap allocation at all.
struct CopyRun<'a, 'c> {
    src: &'a Message<'c>,
    /// Source plan (recovery programs).
    sp: &'a CodecPlan,
    /// Destination plan (distribution programs).
    dp: &'a CodecPlan,
    /// Destination graph, for error naming only.
    dst_graph: &'a ObfGraph,
    wires: &'a mut WireStore,
    presence: &'a mut MetaStore<bool>,
    counts: &'a mut MetaStore<usize>,
    rng: &'a mut StdRng,
    ev: &'a mut RecEval,
    dist: &'a mut DistEval,
    /// Sequential read cursors, one per source slot.
    cursors: &'a mut [u32],
    scope: [u32; MAX_SCOPE],
}

impl CopyRun<'_, '_> {
    /// Runs a step range at the given container depth. Loops recurse with
    /// their body sub-slice; recursion depth is bounded by the validated
    /// [`MAX_SCOPE`] nesting.
    fn exec(&mut self, steps: &[CopyStep], depth: usize) -> Result<(), BuildError> {
        let mut i = 0;
        while i < steps.len() {
            match steps[i] {
                CopyStep::Value { rec, dist, .. } => {
                    self.value(rec, dist, depth)?;
                    i += 1;
                }
                CopyStep::ValueDirect { src_obf, src_ops, dist } => {
                    self.value_direct(src_obf, src_ops, dist, depth)?;
                    i += 1;
                }
                CopyStep::Optional { plain, skip } => {
                    let sc = &self.scope[..depth];
                    if self.src.presence.get(plain as usize, sc).unwrap_or(false) {
                        self.presence.set(plain as usize, sc, true);
                        i += 1;
                    } else {
                        i += 1 + skip as usize;
                    }
                }
                CopyStep::Loop { plain, body } => {
                    debug_assert!(depth < MAX_SCOPE, "validated nesting exceeded");
                    let n = {
                        let sc = &self.scope[..depth];
                        let n = self.src.counts.get(plain as usize, sc).unwrap_or(0);
                        self.counts.set(plain as usize, sc, n);
                        n
                    };
                    let inner = &steps[i + 1..i + 1 + body as usize];
                    for e in 0..n {
                        self.scope[depth] = e as u32;
                        self.exec(inner, depth + 1)?;
                    }
                    i += 1 + body as usize;
                }
            }
        }
        Ok(())
    }

    /// Copies one terminal instance: recover through the source plan's
    /// program, distribute through the destination plan's program. A
    /// value missing from the source (unset field) is skipped, exactly
    /// like the reference walk.
    fn value(&mut self, rec: RecProg, dprog: DistProg, depth: usize) -> Result<(), BuildError> {
        let sc = &self.scope[..depth];
        let src_wires = &self.src.wires;
        let cursors = &mut *self.cursors;
        let Some((s, l)) = self.ev.eval(self.sp, rec, sc, &mut |obf, scope, buf| match src_wires
            .get_seq(obf as usize, scope, &mut cursors[obf as usize])
        {
            Some(b) => {
                buf.extend_from_slice(b);
                true
            }
            None => false,
        }) else {
            return Ok(());
        };
        let input = self.dist.input();
        input.extend_from_slice(&self.ev.buf[s..s + l]);
        self.distribute(dprog, depth)
    }

    /// The single-`Load` fast path: the source wire goes straight into
    /// the distribution scratch (constant ops undone in place), skipping
    /// the recovery stack machine and one byte copy.
    fn value_direct(
        &mut self,
        src_obf: u32,
        src_ops: (u32, u32),
        dprog: DistProg,
        depth: usize,
    ) -> Result<(), BuildError> {
        let sc = &self.scope[..depth];
        let cursor = &mut self.cursors[src_obf as usize];
        let Some(bytes) = self.src.wires.get_seq(src_obf as usize, sc, cursor) else {
            return Ok(());
        };
        let input = self.dist.input();
        input.extend_from_slice(bytes);
        crate::plan::undo_ops_in_place(self.sp.ops(src_ops), input);
        self.distribute(dprog, depth)
    }

    /// Runs the destination distribution program over the value already
    /// written into the distribution scratch.
    fn distribute(&mut self, dprog: DistProg, depth: usize) -> Result<(), BuildError> {
        let sc = &self.scope[..depth];
        let wires = &mut *self.wires;
        self.dist
            .eval(self.dp, dprog, &mut *self.rng, &mut |obf, bytes| {
                wires.set(obf as usize, sc, bytes);
            })
            .map_err(|e| {
                let name = |o: u32| self.dst_graph.node(ObfId(o)).name().to_string();
                match e {
                    DistErr::BadLen { obf, expected, found } => BuildError::BadValueLength {
                        path: name(obf),
                        expected: expected as usize,
                        found: found as usize,
                    },
                    DistErr::Delim { obf } => {
                        BuildError::ValueContainsDelimiter { path: name(obf) }
                    }
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Condition, GraphBuilder, Predicate};
    use crate::transform::{apply, TransformKind};

    fn sample_graph() -> crate::graph::FormatGraph {
        let mut b = GraphBuilder::new("s");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        let flag = b.uint_be(root, "flag", 1);
        let opt = b.optional(
            root,
            "extra",
            Condition { subject: flag, predicate: Predicate::Equals(Value::from_bytes(vec![1])) },
        );
        b.uint_be(opt, "extra_val", 2);
        let count = b.uint_be(root, "count", 1);
        let tab = b.tabular(root, "items", count);
        b.set_auto(count, AutoValue::CounterOf(tab));
        let item = b.sequence(tab, "item", Boundary::Delegated);
        b.uint_be(item, "v", 2);
        b.build().unwrap()
    }

    #[test]
    fn set_get_roundtrip_plain() {
        let g = ObfGraph::from_plain(&sample_graph());
        let mut m = Message::with_seed(&g, 1);
        m.set("data", b"abc".as_slice()).unwrap();
        m.set_uint("flag", 0).unwrap();
        assert_eq!(m.get("data").unwrap().as_bytes(), b"abc");
        assert_eq!(m.get_uint("flag").unwrap(), 0);
    }

    #[test]
    fn set_get_roundtrip_under_transforms() {
        let mut g = ObfGraph::from_plain(&sample_graph());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let data_plain = g.plain().resolve_names(&["data"]).unwrap();
        let holder = g.holder_of(data_plain).unwrap();
        apply(&mut g, holder, TransformKind::SplitAdd, &mut rng).unwrap();
        let holder2 = g.holder_of(data_plain).unwrap();
        apply(&mut g, holder2, TransformKind::ReadFromEnd, &mut rng).unwrap();

        let mut m = Message::with_seed(&g, 2);
        m.set("data", b"obfuscate me".as_slice()).unwrap();
        assert_eq!(m.get("data").unwrap().as_bytes(), b"obfuscate me");
        // The stored wires are NOT the plain value (aggregation applied).
        let stored: Vec<&[u8]> = m.wires.iter().map(|(_, _, b)| b).collect();
        assert_eq!(stored.len(), 2, "split produced two shares");
        assert!(stored.iter().all(|v| *v != b"obfuscate me"));
    }

    #[test]
    fn auto_fields_cannot_be_set_but_can_be_read() {
        let g = ObfGraph::from_plain(&sample_graph());
        let mut m = Message::with_seed(&g, 1);
        assert!(matches!(m.set_uint("len", 5), Err(BuildError::AutoField(_))));
        m.set("data", b"12345".as_slice()).unwrap();
        assert_eq!(m.get_uint("len").unwrap(), 5);
    }

    #[test]
    fn counter_auto_field_tracks_elements() {
        let g = ObfGraph::from_plain(&sample_graph());
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("items[0].v", 10).unwrap();
        m.set_uint("items[2].v", 30).unwrap();
        assert_eq!(m.element_count("items"), 3);
        assert_eq!(m.get_uint("count").unwrap(), 3);
        assert_eq!(m.get_uint("items[2].v").unwrap(), 30);
    }

    #[test]
    fn presence_marked_by_setting_inside_optional() {
        let g = ObfGraph::from_plain(&sample_graph());
        let mut m = Message::with_seed(&g, 1);
        assert!(!m.is_present("extra"));
        m.set_uint("extra.extra_val", 7).unwrap();
        assert!(m.is_present("extra"));
    }

    #[test]
    fn mark_present_requires_optional() {
        let g = ObfGraph::from_plain(&sample_graph());
        let mut m = Message::with_seed(&g, 1);
        assert!(m.mark_present("extra").is_ok());
        assert!(m.mark_present("flag").is_err());
    }

    #[test]
    fn value_validation() {
        let g = ObfGraph::from_plain(&sample_graph());
        let mut m = Message::with_seed(&g, 1);
        assert!(matches!(
            m.set("flag", b"toolong".as_slice()),
            Err(BuildError::BadValueLength { .. })
        ));
        assert!(matches!(m.set_uint("flag", 300), Err(BuildError::IntegerOverflow { .. })));
        assert!(matches!(m.set_uint("data", 1), Err(BuildError::NotNumeric(_))));
        assert!(matches!(m.get("nope"), Err(BuildError::UnknownPath(_))));
        assert!(matches!(m.get("data"), Err(BuildError::MissingField(_))));
    }

    #[test]
    fn plain_len_counts_delimiters_and_elements() {
        let mut b = GraphBuilder::new("d");
        let root = b.root_sequence("m", Boundary::End);
        b.terminal(root, "word", TerminalKind::Ascii, Boundary::Delimited(b" ".to_vec()));
        b.uint_be(root, "n", 2);
        let plain = b.build().unwrap();
        let g = ObfGraph::from_plain(&plain);
        let mut m = Message::with_seed(&g, 1);
        m.set_str("word", "GET").unwrap();
        m.set_uint("n", 9).unwrap();
        let root_id = plain.root();
        assert_eq!(m.plain_len(root_id, &[]), Some(3 + 1 + 2));
    }

    #[test]
    fn delimiter_containment_rejected() {
        let mut b = GraphBuilder::new("d");
        let root = b.root_sequence("m", Boundary::End);
        b.terminal(root, "word", TerminalKind::Ascii, Boundary::Delimited(b" ".to_vec()));
        b.uint_be(root, "n", 2);
        let g = ObfGraph::from_plain(&b.build().unwrap());
        let mut m = Message::with_seed(&g, 1);
        assert!(matches!(
            m.set_str("word", "two words"),
            Err(BuildError::ValueContainsDelimiter { .. })
        ));
    }

    #[test]
    fn transcode_between_plans_preserves_every_field() {
        let plain = sample_graph();
        let clear = ObfGraph::from_plain(&plain);
        let obf =
            crate::engine::Obfuscator::new(&plain).seed(11).max_per_node(2).obfuscate().unwrap();

        let mut m = Message::with_seed(&clear, 1);
        m.set("data", b"payload".as_slice()).unwrap();
        m.set_uint("flag", 1).unwrap();
        m.set_uint("extra.extra_val", 0xBEEF).unwrap();
        m.set_uint("items[0].v", 10).unwrap();
        m.set_uint("items[1].v", 20).unwrap();

        // clear → obfuscated → clear: every plain field survives.
        let obfuscated = m.transcode(obf.obf_graph()).unwrap();
        assert_eq!(obfuscated.get("data").unwrap().as_bytes(), b"payload");
        assert_eq!(obfuscated.get_uint("extra.extra_val").unwrap(), 0xBEEF);
        let back = obfuscated.transcode(&clear).unwrap();
        assert_eq!(back.get("data").unwrap().as_bytes(), b"payload");
        assert_eq!(back.get_uint("flag").unwrap(), 1);
        assert!(back.is_present("extra"));
        assert_eq!(back.element_count("items"), 2);
        assert_eq!(back.get_uint("items[1].v").unwrap(), 20);
        // Auto fields are recomputed, not copied.
        assert_eq!(back.get_uint("len").unwrap(), 7);
        assert_eq!(back.get_uint("count").unwrap(), 2);
    }

    #[test]
    fn transcode_into_reuses_target_and_clears_stale_state() {
        let plain = sample_graph();
        let clear = ObfGraph::from_plain(&plain);
        let obf =
            crate::engine::Obfuscator::new(&plain).seed(3).max_per_node(1).obfuscate().unwrap();
        let mut dst = Message::with_seed(obf.obf_graph(), 9);

        let mut a = Message::with_seed(&clear, 1);
        a.set("data", b"first".as_slice()).unwrap();
        a.set_uint("flag", 1).unwrap();
        a.set_uint("extra.extra_val", 1).unwrap();
        a.transcode_into(&mut dst).unwrap();
        assert!(dst.is_present("extra"));

        // Second use of the same target: the absent optional of `b` must
        // not inherit `a`'s presence.
        let mut b = Message::with_seed(&clear, 2);
        b.set("data", b"second".as_slice()).unwrap();
        b.set_uint("flag", 0).unwrap();
        b.transcode_into(&mut dst).unwrap();
        assert_eq!(dst.get("data").unwrap().as_bytes(), b"second");
        assert!(!dst.is_present("extra"));
    }

    #[test]
    fn transcode_cache_rearms_when_the_source_graph_changes() {
        let plain = sample_graph();
        let clear = ObfGraph::from_plain(&plain);
        let obf1 =
            crate::engine::Obfuscator::new(&plain).seed(1).max_per_node(1).obfuscate().unwrap();
        let mut dst = Message::with_seed(&clear, 9);

        // Alternate two structurally identical but distinct source
        // graphs into one reusable target: the per-message uid check
        // must recompile (never replay the other pairing's program).
        for round in 0..3u64 {
            let mut a = Message::with_seed(&clear, round);
            a.set("data", b"from clear".as_slice()).unwrap();
            a.set_uint("flag", 0).unwrap();
            a.transcode_into(&mut dst).unwrap();
            assert_eq!(dst.get("data").unwrap().as_bytes(), b"from clear");

            let mut b = Message::with_seed(obf1.obf_graph(), round);
            b.set("data", b"from obf".as_slice()).unwrap();
            b.set_uint("flag", 0).unwrap();
            b.transcode_into(&mut dst).unwrap();
            assert_eq!(dst.get("data").unwrap().as_bytes(), b"from obf");
        }
    }

    #[test]
    fn transcode_rejects_foreign_graphs() {
        let g1 = ObfGraph::from_plain(&sample_graph());
        let mut other = GraphBuilder::new("other");
        let root = other.root_sequence("m", Boundary::End);
        other.uint_be(root, "x", 2);
        let g2 = ObfGraph::from_plain(&other.build().unwrap());
        let mut m = Message::with_seed(&g1, 1);
        m.set("data", b"x".as_slice()).unwrap();
        assert!(matches!(m.transcode(&g2), Err(BuildError::GraphMismatch { .. })));
    }

    #[test]
    fn clear_keeps_message_reusable() {
        let g = ObfGraph::from_plain(&sample_graph());
        let mut m = Message::with_seed(&g, 1);
        m.set("data", b"abc".as_slice()).unwrap();
        m.set_uint("items[0].v", 5).unwrap();
        m.clear();
        assert!(matches!(m.get("data"), Err(BuildError::MissingField(_))));
        assert_eq!(m.element_count("items"), 0);
        m.set("data", b"again".as_slice()).unwrap();
        assert_eq!(m.get("data").unwrap().as_bytes(), b"again");
    }

    #[test]
    fn wire_store_replaces_and_reuses() {
        let mut s = WireStore::with_slots(2);
        s.set(0, &[], b"aa");
        s.set(1, &[3], b"bb");
        s.set(0, &[], b"cc");
        assert_eq!(s.get(0, &[]), Some(b"cc".as_slice()));
        assert_eq!(s.get(1, &[3]), Some(b"bb".as_slice()));
        assert_eq!(s.get(1, &[4]), None);
        assert_eq!(s.iter().count(), 2);
        s.clear();
        assert_eq!(s.get(0, &[]), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn meta_store_update() {
        let mut s: MetaStore<usize> = MetaStore::with_slots(1);
        s.update(0, &[], 0, |n| n.max(3));
        s.update(0, &[], 0, |n| n.max(2));
        assert_eq!(s.get(0, &[]), Some(3));
    }
}

//! Stream framing: carrying obfuscated messages over byte streams.
//!
//! The paper's protocols run over TCP, where message boundaries must be
//! recovered from a stream. Obfuscated messages cannot rely on their own
//! delimiters (that is the point), so deployments frame them with an outer
//! length prefix — which leaks nothing beyond what the transport already
//! reveals through segment sizes.
//!
//! [`FrameWriter`]/[`FrameReader`] wrap any [`std::io::Write`]/[`Read`];
//! [`FrameBuffer`] supports feed-as-you-go reassembly for event-driven
//! code.

use std::io::{self, Read, Write};

use crate::codec::Codec;
use crate::error::{BuildError, ParseError};
use crate::message::Message;

/// Maximum frame size accepted by readers (sanity bound against corrupted
/// or hostile length prefixes).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Errors produced by the framing layer.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The message could not be serialized.
    Build(BuildError),
    /// The framed bytes did not parse under the codec.
    Parse(ParseError),
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized(usize),
    /// The stream ended inside a frame.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Build(e) => write!(f, "serialization error: {e}"),
            FrameError::Parse(e) => write!(f, "parse error: {e}"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds the limit"),
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Build(e) => Some(e),
            FrameError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes length-framed obfuscated messages to a byte stream.
#[derive(Debug)]
pub struct FrameWriter<'c, W> {
    codec: &'c Codec,
    inner: W,
}

impl<'c, W: Write> FrameWriter<'c, W> {
    /// Wraps a writer.
    pub fn new(codec: &'c Codec, inner: W) -> Self {
        FrameWriter { codec, inner }
    }

    /// Serializes and sends one message.
    ///
    /// # Errors
    ///
    /// [`FrameError::Build`] for serialization failures, [`FrameError::Io`]
    /// for transport failures.
    pub fn send(&mut self, msg: &Message<'_>) -> Result<(), FrameError> {
        let body = self.codec.serialize(msg).map_err(FrameError::Build)?;
        self.send_raw(&body)
    }

    /// Sends already-serialized bytes as one frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] / [`FrameError::Io`].
    pub fn send_raw(&mut self, body: &[u8]) -> Result<(), FrameError> {
        if body.len() > MAX_FRAME {
            return Err(FrameError::Oversized(body.len()));
        }
        let len = (body.len() as u32).to_be_bytes();
        self.inner.write_all(&len)?;
        self.inner.write_all(body)?;
        self.inner.flush()?;
        Ok(())
    }

    /// Consumes the writer, returning the underlying stream.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Reads length-framed obfuscated messages from a byte stream.
#[derive(Debug)]
pub struct FrameReader<'c, R> {
    codec: &'c Codec,
    inner: R,
}

impl<'c, R: Read> FrameReader<'c, R> {
    /// Wraps a reader.
    pub fn new(codec: &'c Codec, inner: R) -> Self {
        FrameReader { codec, inner }
    }

    /// Receives and parses one message. Returns `Ok(None)` on a clean end
    /// of stream (EOF exactly at a frame boundary).
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] when the stream ends inside a frame,
    /// [`FrameError::Parse`] when the frame does not decode.
    pub fn recv(&mut self) -> Result<Option<Message<'c>>, FrameError> {
        let body = match self.recv_raw()? {
            Some(b) => b,
            None => return Ok(None),
        };
        let msg = self.codec.parse(&body).map_err(FrameError::Parse)?;
        Ok(Some(msg))
    }

    /// Receives one raw frame body.
    ///
    /// # Errors
    ///
    /// See [`FrameReader::recv`].
    pub fn recv_raw(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(&mut self.inner, &mut len_buf)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => return Err(FrameError::Truncated),
            ReadOutcome::Full => {}
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(FrameError::Oversized(len));
        }
        let mut body = vec![0u8; len];
        match read_exact_or_eof(&mut self.inner, &mut body)? {
            ReadOutcome::Full => Ok(Some(body)),
            _ if len == 0 => Ok(Some(body)),
            _ => Err(FrameError::Truncated),
        }
    }

    /// Consumes the reader, returning the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 if filled == 0 => return Ok(ReadOutcome::Eof),
            0 => return Ok(ReadOutcome::Partial),
            n => filled += n,
        }
    }
    Ok(ReadOutcome::Full)
}

/// Incremental frame reassembly for event-driven code: feed arbitrary
/// chunks, pop complete frames.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame body, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] when a buffered length prefix exceeds the
    /// limit (the stream should be dropped).
    pub fn pop(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
            as usize;
        if len > MAX_FRAME {
            return Err(FrameError::Oversized(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let body = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(body))
    }

    /// Bytes currently buffered (incomplete frame data).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Obfuscator;
    use crate::graph::{Boundary, GraphBuilder};

    fn codec() -> Codec {
        let mut b = GraphBuilder::new("f");
        let root = b.root_sequence("m", Boundary::End);
        b.uint_be(root, "id", 2);
        b.terminal(root, "body", crate::value::TerminalKind::Bytes, Boundary::End);
        let g = b.build().unwrap();
        Obfuscator::new(&g).seed(3).max_per_node(2).obfuscate().unwrap()
    }

    fn sample_stream(codec: &Codec, ids: &[u64]) -> Vec<u8> {
        let mut out = Vec::new();
        {
            let mut w = FrameWriter::new(codec, &mut out);
            for &id in ids {
                let mut m = codec.message_seeded(id);
                m.set_uint("id", id).unwrap();
                m.set("body", format!("payload {id}").into_bytes()).unwrap();
                w.send(&m).unwrap();
            }
        }
        out
    }

    #[test]
    fn write_then_read_roundtrips_multiple_messages() {
        let c = codec();
        let stream = sample_stream(&c, &[1, 2, 3]);
        let mut r = FrameReader::new(&c, stream.as_slice());
        for expect in [1u64, 2, 3] {
            let m = r.recv().unwrap().expect("frame present");
            assert_eq!(m.get_uint("id").unwrap(), expect);
            assert_eq!(
                m.get_string("body").unwrap(),
                format!("payload {expect}")
            );
        }
        assert!(r.recv().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_stream_is_detected() {
        let c = codec();
        let stream = sample_stream(&c, &[7]);
        for cut in 1..stream.len() {
            let mut r = FrameReader::new(&c, &stream[..cut]);
            match r.recv() {
                Err(FrameError::Truncated) | Err(FrameError::Parse(_)) => {}
                Ok(None) => panic!("cut {cut} looked like clean EOF"),
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_prefix_rejected() {
        let c = codec();
        let bogus = [(MAX_FRAME as u32 + 1).to_be_bytes().to_vec(), vec![0; 8]].concat();
        let mut r = FrameReader::new(&c, bogus.as_slice());
        assert!(matches!(r.recv(), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let c = codec();
        let stream = sample_stream(&c, &[10, 20]);
        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        for &b in &stream {
            fb.feed(&[b]);
            while let Some(frame) = fb.pop().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(fb.pending(), 0);
        let m = c.parse(&frames[1]).unwrap();
        assert_eq!(m.get_uint("id").unwrap(), 20);
    }

    #[test]
    fn empty_frame_supported() {
        // A zero-length frame is legal at the framing layer (the codec
        // will reject it, but framing must not hang or mis-frame).
        let mut fb = FrameBuffer::new();
        fb.feed(&0u32.to_be_bytes());
        assert_eq!(fb.pop().unwrap(), Some(Vec::new()));
    }
}

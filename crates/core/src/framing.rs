//! Stream framing: carrying obfuscated messages over byte streams.
//!
//! The paper's protocols run over TCP, where message boundaries must be
//! recovered from a stream. Obfuscated messages cannot rely on their own
//! delimiters (that is the point), so deployments frame them with an outer
//! length prefix — which leaks nothing beyond what the transport already
//! reveals through segment sizes.
//!
//! [`FrameWriter`]/[`FrameReader`] wrap any [`std::io::Write`]/[`Read`];
//! [`FrameBuffer`] supports feed-as-you-go reassembly for event-driven
//! code. Writers and readers each hold **one codec session**
//! ([`crate::serialize::SerializeSession`] /
//! [`crate::parse::ParseSession`]) plus reusable frame buffers, so
//! steady-state streaming does not allocate per message. The frame-size
//! sanity bound defaults to [`MAX_FRAME`] and is configurable per reader /
//! buffer via `max_frame`.

use std::io::{self, Read, Write};

use crate::codec::Codec;
use crate::error::{BuildError, ParseError};
use crate::message::Message;
use crate::parse::ParseSession;
use crate::serialize::SerializeSession;

/// Default maximum frame size accepted by readers (sanity bound against
/// corrupted or hostile length prefixes). Override per reader/buffer with
/// [`FrameReader::max_frame`] / [`FrameBuffer::max_frame`].
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Errors produced by the framing layer.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The message could not be serialized.
    Build(BuildError),
    /// The framed bytes did not parse under the codec.
    Parse(ParseError),
    /// A frame exceeded the configured size limit.
    TooLarge {
        /// The configured limit of the rejecting reader/writer/buffer.
        limit: usize,
        /// The offending frame size.
        got: usize,
    },
    /// The stream ended inside a frame.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Build(e) => write!(f, "serialization error: {e}"),
            FrameError::Parse(e) => write!(f, "parse error: {e}"),
            FrameError::TooLarge { limit, got } => {
                write!(f, "frame of {got} bytes exceeds the limit of {limit}")
            }
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Build(e) => Some(e),
            FrameError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes length-framed obfuscated messages to a byte stream, reusing one
/// serialization session and one body buffer across messages.
#[derive(Debug)]
pub struct FrameWriter<'c, W> {
    session: SerializeSession<'c>,
    inner: W,
    body: Vec<u8>,
    max_frame: usize,
}

impl<'c, W: Write> FrameWriter<'c, W> {
    /// Wraps a writer.
    pub fn new(codec: &'c Codec, inner: W) -> Self {
        FrameWriter { session: codec.serializer(), inner, body: Vec::new(), max_frame: MAX_FRAME }
    }

    /// Sets the maximum frame size this writer will emit (default
    /// [`MAX_FRAME`]).
    pub fn max_frame(mut self, limit: usize) -> Self {
        self.max_frame = limit;
        self
    }

    /// Serializes and sends one message. The serialization session and the
    /// frame buffer are reused: steady-state sends do not allocate.
    ///
    /// # Errors
    ///
    /// [`FrameError::Build`] for serialization failures, [`FrameError::Io`]
    /// for transport failures.
    pub fn send(&mut self, msg: &Message<'_>) -> Result<(), FrameError> {
        let mut body = std::mem::take(&mut self.body);
        let r = self.session.serialize_into(msg, &mut body).map_err(FrameError::Build);
        let r = r.and_then(|()| write_frame(&mut self.inner, &body, self.max_frame));
        self.body = body;
        r
    }

    /// Sends already-serialized bytes as one frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] / [`FrameError::Io`].
    pub fn send_raw(&mut self, body: &[u8]) -> Result<(), FrameError> {
        write_frame(&mut self.inner, body, self.max_frame)
    }

    /// Consumes the writer, returning the underlying stream.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Serializes `msg` through an existing session and appends it to `out`
/// as one length-prefixed frame: the body is written straight into `out`
/// after a backfilled 4-byte prefix — no intermediate copy. On error,
/// `out` is left exactly as it was. This is the one framing routine
/// shared by [`crate::service::CodecService::serialize_framed`] and the
/// transport layer's per-connection encoders.
///
/// # Errors
///
/// [`FrameError::Build`] for serialization failures,
/// [`FrameError::TooLarge`] when the body exceeds `max_frame`.
pub fn append_frame(
    session: &mut SerializeSession<'_>,
    msg: &Message<'_>,
    out: &mut Vec<u8>,
    max_frame: usize,
) -> Result<(), FrameError> {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    if let Err(e) = session.serialize_append(msg, out) {
        out.truncate(start);
        return Err(FrameError::Build(e));
    }
    let body_len = out.len() - start - 4;
    // The 4-byte prefix caps frames at u32::MAX even if the configured
    // limit is larger; a truncated prefix would desynchronize the peer.
    let limit = max_frame.min(u32::MAX as usize);
    if body_len > limit {
        out.truncate(start);
        return Err(FrameError::TooLarge { limit, got: body_len });
    }
    out[start..start + 4].copy_from_slice(&(body_len as u32).to_be_bytes());
    Ok(())
}

fn write_frame<W: Write>(inner: &mut W, body: &[u8], max_frame: usize) -> Result<(), FrameError> {
    // The 4-byte prefix caps frames at u32::MAX even if the configured
    // limit is larger; a truncated prefix would desynchronize the peer.
    let limit = max_frame.min(u32::MAX as usize);
    if body.len() > limit {
        return Err(FrameError::TooLarge { limit, got: body.len() });
    }
    let len = (body.len() as u32).to_be_bytes();
    inner.write_all(&len)?;
    inner.write_all(body)?;
    inner.flush()?;
    Ok(())
}

/// Reads length-framed obfuscated messages from a byte stream, reusing one
/// parse session and one body buffer across messages.
///
/// The reader is **resumable**: partial progress through a frame (both the
/// 4-byte prefix and the body) survives transient I/O errors. When the
/// underlying stream is non-blocking and `read` fails with
/// [`io::ErrorKind::WouldBlock`], the resulting [`FrameError::Io`] leaves
/// the reader in a consistent state — call [`FrameReader::recv`] again when
/// the stream is readable and the frame continues where it stopped.
/// [`io::ErrorKind::Interrupted`] is retried internally.
#[derive(Debug)]
pub struct FrameReader<'c, R> {
    session: ParseSession<'c>,
    inner: R,
    body: Vec<u8>,
    max_frame: usize,
    /// Prefix bytes accumulated so far (resumption state).
    header: [u8; 4],
    header_filled: usize,
    /// `Some(len)` once the prefix is complete and the body is being read.
    body_target: Option<usize>,
    body_filled: usize,
}

impl<'c, R: Read> FrameReader<'c, R> {
    /// Wraps a reader.
    pub fn new(codec: &'c Codec, inner: R) -> Self {
        FrameReader {
            session: codec.parser(),
            inner,
            body: Vec::new(),
            max_frame: MAX_FRAME,
            header: [0u8; 4],
            header_filled: 0,
            body_target: None,
            body_filled: 0,
        }
    }

    /// Sets the maximum accepted frame size (default [`MAX_FRAME`]).
    pub fn max_frame(mut self, limit: usize) -> Self {
        self.max_frame = limit;
        self
    }

    /// Receives and parses one message. Returns `Ok(None)` on a clean end
    /// of stream (EOF exactly at a frame boundary).
    ///
    /// The returned message is owned; for allocation-free steady-state
    /// reading use [`FrameReader::recv_borrowed`].
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] when the stream ends inside a frame,
    /// [`FrameError::Parse`] when the frame does not decode,
    /// [`FrameError::TooLarge`] when a length prefix exceeds the limit.
    pub fn recv(&mut self) -> Result<Option<Message<'c>>, FrameError> {
        if !self.fill_body()? {
            return Ok(None);
        }
        self.session.parse_in_place(&self.body).map_err(FrameError::Parse)?;
        Ok(Some(self.session.take_message()))
    }

    /// Receives and parses one message, borrowing the session's internal
    /// message (overwritten by the next call). Steady-state reads through
    /// this entry point perform no per-message allocation.
    ///
    /// # Errors
    ///
    /// See [`FrameReader::recv`].
    pub fn recv_borrowed(&mut self) -> Result<Option<&Message<'c>>, FrameError> {
        if !self.fill_body()? {
            return Ok(None);
        }
        let msg = self.session.parse_in_place(&self.body).map_err(FrameError::Parse)?;
        Ok(Some(msg))
    }

    /// Receives one raw frame body.
    ///
    /// # Errors
    ///
    /// See [`FrameReader::recv`].
    pub fn recv_raw(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if !self.fill_body()? {
            return Ok(None);
        }
        Ok(Some(self.body.clone()))
    }

    /// Reads the next frame into the reusable body buffer, resuming any
    /// partially-read prefix/body from a previous errored call. Returns
    /// `false` on clean EOF (stream end exactly at a frame boundary).
    fn fill_body(&mut self) -> Result<bool, FrameError> {
        if self.body_target.is_none() {
            while self.header_filled < 4 {
                match self.inner.read(&mut self.header[self.header_filled..]) {
                    Ok(0) if self.header_filled == 0 => return Ok(false),
                    Ok(0) => return Err(FrameError::Truncated),
                    Ok(n) => self.header_filled += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(FrameError::Io(e)),
                }
            }
            let len = u32::from_be_bytes(self.header) as usize;
            if len > self.max_frame {
                return Err(FrameError::TooLarge { limit: self.max_frame, got: len });
            }
            self.body.clear();
            self.body.resize(len, 0);
            self.body_target = Some(len);
            self.body_filled = 0;
        }
        let target = self.body_target.unwrap_or(0);
        while self.body_filled < target {
            match self.inner.read(&mut self.body[self.body_filled..target]) {
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => self.body_filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        // Frame complete: reset the resumption state for the next one.
        self.header_filled = 0;
        self.body_target = None;
        self.body_filled = 0;
        Ok(true)
    }

    /// Consumes the reader, returning the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

/// Capacity (bytes) a long-lived [`FrameBuffer`] shrinks back to after an
/// oversized backlog drains (see [`FrameBuffer::shrink_capacity`]).
/// Large enough that typical bulk frames never trigger shrink/regrow
/// churn, small enough that one peer trickling a single near-limit frame
/// cannot pin megabytes per connection forever.
pub const FRAME_BUFFER_RETAIN: usize = 256 * 1024;

/// Incremental frame reassembly for event-driven code: feed arbitrary
/// chunks, pop (or peek) complete frames.
///
/// Consumed frames advance a read cursor instead of memmoving the whole
/// buffer, so draining a burst of pipelined frames is linear in the bytes
/// fed, not quadratic; the buffer compacts itself once the drained prefix
/// dominates the live bytes. Capacity is **bounded over time**: a peer
/// that trickles one maximum-size frame grows the buffer to the frame
/// limit, but once that backlog is consumed the buffer shrinks back to
/// [`FRAME_BUFFER_RETAIN`] (tunable via [`FrameBuffer::shrink_capacity`])
/// instead of holding the high-water allocation for the rest of a
/// long-lived gateway connection.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Read cursor: bytes before it were consumed and await compaction.
    start: usize,
    max_frame: usize,
    /// Capacity retained after draining an oversized backlog.
    retain: usize,
}

impl Default for FrameBuffer {
    fn default() -> Self {
        FrameBuffer { buf: Vec::new(), start: 0, max_frame: MAX_FRAME, retain: FRAME_BUFFER_RETAIN }
    }
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Sets the maximum accepted frame size (default [`MAX_FRAME`]).
    pub fn max_frame(mut self, limit: usize) -> Self {
        self.max_frame = limit;
        self
    }

    /// Sets the capacity the buffer shrinks back to after an oversized
    /// backlog drains (default [`FRAME_BUFFER_RETAIN`]). Pick a value
    /// comfortably above the connection's typical frame size — shrinking
    /// below the steady-state working set would just realloc every
    /// message.
    pub fn shrink_capacity(mut self, cap: usize) -> Self {
        self.retain = cap;
        self
    }

    /// Bytes of backing capacity currently held (buffered + spare).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        // Compact when the drained prefix is at least as large as the live
        // tail: amortized O(1) per byte over the buffer's lifetime.
        if self.start > 0 && self.start >= self.buf.len() - self.start {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Length of the next complete frame's body, or `None` if the buffered
    /// bytes do not yet hold a full frame.
    fn next_len(&self) -> Result<Option<usize>, FrameError> {
        let live = &self.buf[self.start..];
        if live.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([live[0], live[1], live[2], live[3]]) as usize;
        if len > self.max_frame {
            return Err(FrameError::TooLarge { limit: self.max_frame, got: len });
        }
        if live.len() < 4 + len {
            return Ok(None);
        }
        Ok(Some(len))
    }

    /// Borrows the next complete frame body without consuming it — the
    /// copy-free entry point for event-driven parsing: peek, parse in
    /// place, then [`FrameBuffer::consume`].
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] when a buffered length prefix exceeds the
    /// limit (the stream should be dropped).
    pub fn peek(&self) -> Result<Option<&[u8]>, FrameError> {
        Ok(self.next_len()?.map(|len| &self.buf[self.start + 4..self.start + 4 + len]))
    }

    /// Consumes the frame last returned by [`FrameBuffer::peek`]. No-op if
    /// no complete frame is buffered.
    pub fn consume(&mut self) {
        if let Ok(Some(len)) = self.next_len() {
            self.start += 4 + len;
            if self.start == self.buf.len() {
                self.buf.clear();
                self.start = 0;
            }
            self.bound_capacity(4 + len);
        }
    }

    /// Returns an oversized backing allocation to the retained cap once
    /// the traffic that grew it is gone, so a long-lived connection does
    /// not keep paying for one historic burst. The shrink threshold
    /// scales with the frame just consumed: steady traffic of any frame
    /// size keeps its working set (no shrink/regrow churn per message);
    /// only a buffer left several times larger than the current frames —
    /// a drained backlog — is returned, at one realloc per episode.
    fn bound_capacity(&mut self, consumed: usize) {
        let threshold = self.retain.max(4 * consumed);
        if self.buf.capacity() <= threshold || self.buf.len() - self.start > self.retain {
            return;
        }
        if self.start > 0 {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.start = 0;
        }
        self.buf.shrink_to(self.retain);
    }

    /// Pops the next complete frame body, if one is buffered.
    ///
    /// # Errors
    ///
    /// See [`FrameBuffer::peek`].
    pub fn pop(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let body = self.peek()?.map(<[u8]>::to_vec);
        if body.is_some() {
            self.consume();
        }
        Ok(body)
    }

    /// Bytes currently buffered and not yet consumed (complete or partial
    /// frame data).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Obfuscator;
    use crate::graph::{Boundary, GraphBuilder};

    fn codec() -> Codec {
        let mut b = GraphBuilder::new("f");
        let root = b.root_sequence("m", Boundary::End);
        b.uint_be(root, "id", 2);
        b.terminal(root, "body", crate::value::TerminalKind::Bytes, Boundary::End);
        let g = b.build().unwrap();
        Obfuscator::new(&g).seed(3).max_per_node(2).obfuscate().unwrap()
    }

    fn sample_stream(codec: &Codec, ids: &[u64]) -> Vec<u8> {
        let mut out = Vec::new();
        {
            let mut w = FrameWriter::new(codec, &mut out);
            for &id in ids {
                let mut m = codec.message_seeded(id);
                m.set_uint("id", id).unwrap();
                m.set("body", format!("payload {id}").into_bytes()).unwrap();
                w.send(&m).unwrap();
            }
        }
        out
    }

    #[test]
    fn write_then_read_roundtrips_multiple_messages() {
        let c = codec();
        let stream = sample_stream(&c, &[1, 2, 3]);
        let mut r = FrameReader::new(&c, stream.as_slice());
        for expect in [1u64, 2, 3] {
            let m = r.recv().unwrap().expect("frame present");
            assert_eq!(m.get_uint("id").unwrap(), expect);
            assert_eq!(m.get_string("body").unwrap(), format!("payload {expect}"));
        }
        assert!(r.recv().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn recv_borrowed_reuses_the_session_message() {
        let c = codec();
        let stream = sample_stream(&c, &[4, 5, 6]);
        let mut r = FrameReader::new(&c, stream.as_slice());
        for expect in [4u64, 5, 6] {
            let m = r.recv_borrowed().unwrap().expect("frame present");
            assert_eq!(m.get_uint("id").unwrap(), expect);
        }
        assert!(r.recv_borrowed().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_stream_is_detected() {
        let c = codec();
        let stream = sample_stream(&c, &[7]);
        for cut in 1..stream.len() {
            let mut r = FrameReader::new(&c, &stream[..cut]);
            match r.recv() {
                Err(FrameError::Truncated) | Err(FrameError::Parse(_)) => {}
                Ok(None) => panic!("cut {cut} looked like clean EOF"),
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_prefix_rejected() {
        let c = codec();
        let bogus = [(MAX_FRAME as u32 + 1).to_be_bytes().to_vec(), vec![0; 8]].concat();
        let mut r = FrameReader::new(&c, bogus.as_slice());
        match r.recv() {
            Err(FrameError::TooLarge { limit, got }) => {
                assert_eq!(limit, MAX_FRAME);
                assert_eq!(got, MAX_FRAME + 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn custom_reader_limit_applies() {
        let c = codec();
        let stream = sample_stream(&c, &[1]); // frame body well over 4 bytes
        let mut r = FrameReader::new(&c, stream.as_slice()).max_frame(4);
        assert!(matches!(r.recv(), Err(FrameError::TooLarge { limit: 4, .. })));
    }

    #[test]
    fn custom_writer_limit_applies() {
        let c = codec();
        let mut out = Vec::new();
        let mut w = FrameWriter::new(&c, &mut out).max_frame(4);
        match w.send_raw(&[0u8; 9]) {
            Err(FrameError::TooLarge { limit: 4, got: 9 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Delivers at most one byte per `read` call: the hardest legal split
    /// pattern a stream can produce (slow-loris trickle).
    struct OneBytePer<R>(R);

    impl<R: Read> Read for OneBytePer<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    /// Interleaves every delivered byte with a transient error: first
    /// `WouldBlock` (non-blocking readiness miss), then `Interrupted`
    /// (signal), then one real byte.
    struct Hostile<R> {
        inner: R,
        phase: u8,
    }

    impl<R: Read> Read for Hostile<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.phase = (self.phase + 1) % 3;
            match self.phase {
                1 => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                2 => Err(io::Error::from(io::ErrorKind::Interrupted)),
                _ => {
                    let n = buf.len().min(1);
                    self.inner.read(&mut buf[..n])
                }
            }
        }
    }

    #[test]
    fn reader_survives_one_byte_trickle() {
        // 1-byte reads split both the 4-byte prefix and every body
        // boundary: the reader must reassemble without loss.
        let c = codec();
        let stream = sample_stream(&c, &[40, 41, 42]);
        let mut r = FrameReader::new(&c, OneBytePer(stream.as_slice()));
        for expect in [40u64, 41, 42] {
            let m = r.recv().unwrap().expect("frame present");
            assert_eq!(m.get_uint("id").unwrap(), expect);
        }
        assert!(r.recv().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn reader_resumes_across_would_block() {
        // A non-blocking stream errors with WouldBlock mid-prefix and
        // mid-body; partial progress must survive so the next recv resumes
        // the same frame instead of desynchronizing.
        let c = codec();
        let stream = sample_stream(&c, &[50, 51]);
        let mut r = FrameReader::new(&c, Hostile { inner: stream.as_slice(), phase: 0 });
        let mut got = Vec::new();
        loop {
            match r.recv() {
                Ok(Some(m)) => got.push(m.get_uint("id").unwrap()),
                Ok(None) => break,
                Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(got, [50, 51]);
    }

    #[test]
    fn frame_buffer_peek_consume_matches_pop() {
        let c = codec();
        let stream = sample_stream(&c, &[60, 61, 62]);
        let mut by_pop = FrameBuffer::new();
        by_pop.feed(&stream);
        let mut by_peek = FrameBuffer::new();
        by_peek.feed(&stream);
        while let Some(frame) = by_pop.pop().unwrap() {
            let peeked = by_peek.peek().unwrap().expect("same frame boundary");
            assert_eq!(peeked, frame.as_slice());
            by_peek.consume();
        }
        assert!(by_peek.peek().unwrap().is_none());
        assert_eq!(by_peek.pending(), 0);
    }

    #[test]
    fn frame_buffer_split_feed_across_prefix_boundary() {
        // Feeding stops inside the 4-byte prefix, then inside the body:
        // pop must return None (not a bogus frame) until the frame
        // completes.
        let body = b"frame body".to_vec();
        let mut wire = (body.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&body);
        for cut1 in 1..4 {
            for cut2 in cut1..wire.len() {
                let mut fb = FrameBuffer::new();
                fb.feed(&wire[..cut1]);
                assert_eq!(fb.pop().unwrap(), None, "cut inside prefix at {cut1}");
                fb.feed(&wire[cut1..cut2]);
                if cut2 < wire.len() {
                    assert_eq!(fb.pop().unwrap(), None, "cut inside body at {cut2}");
                    fb.feed(&wire[cut2..]);
                }
                assert_eq!(fb.pop().unwrap(), Some(body.clone()));
                assert_eq!(fb.pending(), 0);
            }
        }
    }

    #[test]
    fn frame_buffer_cursor_compaction_keeps_frames_intact() {
        // Many small frames consumed interleaved with feeds: the cursor +
        // compaction bookkeeping must never corrupt frame boundaries.
        let mut fb = FrameBuffer::new();
        let mut fed = 0u32;
        let mut popped = 0u32;
        while popped < 300 {
            while fed < popped + 3 {
                let body = fed.to_be_bytes();
                fb.feed(&(body.len() as u32).to_be_bytes());
                fb.feed(&body);
                fed += 1;
            }
            let frame = fb.pop().unwrap().expect("frame buffered");
            assert_eq!(frame, popped.to_be_bytes());
            popped += 1;
        }
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let c = codec();
        let stream = sample_stream(&c, &[10, 20]);
        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        for &b in &stream {
            fb.feed(&[b]);
            while let Some(frame) = fb.pop().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(fb.pending(), 0);
        let m = c.parse(&frames[1]).unwrap();
        assert_eq!(m.get_uint("id").unwrap(), 20);
    }

    #[test]
    fn frame_buffer_custom_limit() {
        let mut fb = FrameBuffer::new().max_frame(2);
        fb.feed(&3u32.to_be_bytes());
        fb.feed(&[1, 2, 3]);
        assert!(matches!(fb.pop(), Err(FrameError::TooLarge { limit: 2, got: 3 })));
    }

    #[test]
    fn frame_buffer_returns_oversized_capacity_after_trickled_giant_frame() {
        // A peer trickles one near-limit frame a byte at a time: the
        // buffer must grow to hold it, but once that backlog is consumed
        // a long-lived gateway connection must not hold the high-water
        // allocation forever — the next (small) frame returns it to the
        // retained cap.
        let big = vec![0x5A; 2 * 1024 * 1024];
        let mut wire = (big.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&big);
        let mut fb = FrameBuffer::new();
        for b in &wire {
            fb.feed(std::slice::from_ref(b));
        }
        assert!(fb.capacity() >= big.len(), "buffer grew to the backlog");
        assert_eq!(fb.pop().unwrap(), Some(big));
        // Many small frames afterwards: the first consume shrinks, and
        // the capacity stays bounded while the frames stay intact.
        for i in 0..1000u32 {
            let body = i.to_be_bytes();
            fb.feed(&(body.len() as u32).to_be_bytes());
            fb.feed(&body);
            assert_eq!(fb.pop().unwrap(), Some(body.to_vec()));
            assert!(
                fb.capacity() <= FRAME_BUFFER_RETAIN,
                "capacity {} still above the retain cap after small frame {i}",
                fb.capacity()
            );
        }
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buffer_steady_large_frames_do_not_shrink_churn() {
        // Frames consistently larger than the retain cap are the
        // connection's real working set: consuming them must keep the
        // capacity (the shrink threshold scales with the frame size), not
        // realloc on every message.
        let body = vec![7u8; FRAME_BUFFER_RETAIN + 1024];
        let mut fb = FrameBuffer::new();
        let mut high_water = 0;
        for _ in 0..5 {
            fb.feed(&(body.len() as u32).to_be_bytes());
            fb.feed(&body);
            assert_eq!(fb.pop().unwrap().as_deref(), Some(body.as_slice()));
            high_water = high_water.max(fb.capacity());
            assert!(fb.capacity() > FRAME_BUFFER_RETAIN, "working set kept");
        }
        assert_eq!(fb.capacity(), high_water, "no shrink/regrow churn");
    }

    #[test]
    fn empty_frame_supported() {
        // A zero-length frame is legal at the framing layer (the codec
        // will reject it, but framing must not hang or mis-frame).
        let mut fb = FrameBuffer::new();
        fb.feed(&0u32.to_be_bytes());
        assert_eq!(fb.pop().unwrap(), Some(Vec::new()));
    }
}

//! The obfuscating serializer.
//!
//! Serialization walks the obfuscation graph depth-first, exactly as the
//! paper's generated serializer does: aggregation transformations were
//! already applied by the setters (the wire values live in the
//! [`Message`]), and the **ordering** transformations — child permutations,
//! split tabulars, mirrors, length prefixes, pads — are executed on the
//! fly during the traversal. Auto-computed fields (lengths, counters) are
//! evaluated here, because only the complete message determines them.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::BuildError;
use crate::message::Message;
use crate::obf::{Base, ObfGraph, ObfId, ObfKind, RepStop, SeqBoundary, TermBoundary};
use crate::runtime::{self, Scope};
use crate::value::{TerminalKind, Value};

/// Serializes `msg` into the obfuscated wire format.
///
/// Random material (pads, shares of auto-field splits) is drawn from an
/// OS-seeded RNG; use [`serialize_seeded`] for reproducible output.
///
/// # Errors
///
/// [`BuildError`] when required fields are missing, lengths/counters are
/// inconsistent, or derived values overflow their width.
pub fn serialize(g: &ObfGraph, msg: &Message<'_>) -> Result<Vec<u8>, BuildError> {
    serialize_seeded(g, msg, rand::random())
}

/// Serializes with a deterministic RNG seed for the serialization-time
/// random material.
///
/// # Errors
///
/// See [`serialize`].
pub fn serialize_seeded(g: &ObfGraph, msg: &Message<'_>, seed: u64) -> Result<Vec<u8>, BuildError> {
    let mut ctx = Ctx { g, msg, overlay: HashMap::new(), rng: StdRng::seed_from_u64(seed) };
    let mut scope = Vec::new();
    ctx.emit(g.root(), &mut scope)
}

struct Ctx<'a, 'c> {
    g: &'a ObfGraph,
    msg: &'a Message<'c>,
    /// Wire values computed at serialization time (auto-field subtrees,
    /// pads) — never stored back into the message.
    overlay: HashMap<(ObfId, Scope), Value>,
    rng: StdRng,
}

impl<'a, 'c> Ctx<'a, 'c> {
    fn emit(&mut self, id: ObfId, scope: &mut Scope) -> Result<Vec<u8>, BuildError> {
        let node = self.g.node(id);
        match &node.kind {
            ObfKind::Terminal { base, boundary, .. } => {
                let wire = self.wire_of(id, base, scope)?;
                let mut out = wire.into_bytes();
                if let TermBoundary::Delimited(d) = boundary {
                    out.extend_from_slice(d);
                }
                Ok(out)
            }
            ObfKind::SplitSeq { expr, .. } => {
                self.materialize_if_needed(id, &expr.base, scope)?;
                let mut out = Vec::new();
                for &c in node.children() {
                    out.extend_from_slice(&self.emit(c, scope)?);
                }
                Ok(out)
            }
            ObfKind::Sequence { boundary } => {
                let mut out = Vec::new();
                for &c in node.children() {
                    out.extend_from_slice(&self.emit(c, scope)?);
                }
                match boundary {
                    SeqBoundary::Fixed(k) => {
                        if out.len() != *k {
                            return Err(BuildError::LengthInconsistent {
                                path: node.name().to_string(),
                                declared: *k as u64,
                                actual: out.len() as u64,
                            });
                        }
                    }
                    SeqBoundary::PlainLen(p) => {
                        let declared = self.ref_uint_of(*p, scope)?;
                        if declared != out.len() as u64 {
                            return Err(BuildError::LengthInconsistent {
                                path: node.name().to_string(),
                                declared,
                                actual: out.len() as u64,
                            });
                        }
                    }
                    SeqBoundary::Delegated | SeqBoundary::End => {}
                }
                Ok(out)
            }
            ObfKind::Optional { condition } => {
                let origin = node.origin().expect("optionals always have plain origins");
                let oscope = runtime::scoped(self.g.plain(), origin, scope);
                let present = self.msg.presence_of(origin, &oscope);
                let subject_scope =
                    runtime::scoped(self.g.plain(), condition.subject, scope);
                let subject = self
                    .msg
                    .value_at(condition.subject, &subject_scope)
                    .ok_or_else(|| BuildError::MissingField(
                        self.g.plain().node(condition.subject).name().to_string(),
                    ))?;
                let implied = condition.predicate.eval(&subject);
                if implied != present {
                    return Err(BuildError::OptionalMismatch {
                        path: node.name().to_string(),
                        detail: format!(
                            "condition on {:?} implies present={implied} but message says {present}",
                            self.g.plain().node(condition.subject).name()
                        ),
                    });
                }
                if present {
                    self.emit(node.children()[0], scope)
                } else {
                    Ok(Vec::new())
                }
            }
            ObfKind::Repetition { stop } => {
                let origin = node.origin().expect("repetitions always have plain origins");
                let oscope = runtime::scoped(self.g.plain(), origin, scope);
                let m = self.msg.count_of(origin, &oscope);
                let mut out = Vec::new();
                for i in 0..m {
                    scope.push(i as u32);
                    let piece = self.emit(node.children()[0], scope);
                    scope.pop();
                    out.extend_from_slice(&piece?);
                }
                if let RepStop::Terminator(t) = stop {
                    out.extend_from_slice(t);
                }
                Ok(out)
            }
            ObfKind::Tabular { counter } => {
                let origin = node.origin().expect("tabulars always have plain origins");
                let oscope = runtime::scoped(self.g.plain(), origin, scope);
                let m = self.msg.count_of(origin, &oscope);
                let declared = self.ref_uint_of_counter(*counter, scope)?;
                if declared != m as u64 {
                    return Err(BuildError::LengthInconsistent {
                        path: node.name().to_string(),
                        declared,
                        actual: m as u64,
                    });
                }
                let mut out = Vec::new();
                for i in 0..m {
                    scope.push(i as u32);
                    let piece = self.emit(node.children()[0], scope);
                    scope.pop();
                    out.extend_from_slice(&piece?);
                }
                Ok(out)
            }
            ObfKind::Mirror => {
                let mut out = self.emit(node.children()[0], scope)?;
                out.reverse();
                Ok(out)
            }
            ObfKind::Prefixed { width, endian } => {
                let body = self.emit(node.children()[0], scope)?;
                let prefix = Value::from_uint(body.len() as u64, *width, *endian).ok_or(
                    BuildError::DerivedOverflow {
                        path: node.name().to_string(),
                        width: *width,
                        value: body.len() as u64,
                    },
                )?;
                let mut out = prefix.into_bytes();
                out.extend_from_slice(&body);
                Ok(out)
            }
        }
    }

    /// The wire value of a terminal: from the serialization overlay (auto
    /// subtrees), the message (set-time aggregation / parsed wires), or
    /// generated on the spot (pads).
    ///
    /// Auto-computed bases are **always** rematerialized: a parsed message
    /// may have been mutated through the accessors, so stored length/count
    /// wires can be stale. Pads reuse stored wires (their value is
    /// irrelevant but reuse keeps re-serialization stable).
    fn wire_of(&mut self, id: ObfId, base: &Base, scope: &[u32]) -> Result<Value, BuildError> {
        if let Some(v) = self.overlay.get(&(id, scope.to_vec())) {
            return Ok(v.clone());
        }
        match base {
            Base::AutoLen(_) | Base::AutoCount(_) | Base::Const(_) => {
                self.materialize_auto(id, base, scope)?;
                return self
                    .overlay
                    .get(&(id, scope.to_vec()))
                    .cloned()
                    .ok_or_else(|| BuildError::MissingField(self.g.node(id).name().to_string()));
            }
            Base::Pad(_) | Base::Source(_) | Base::Inherit => {}
        }
        if let Some(v) = self.msg.wire(id, scope) {
            return Ok(v.clone());
        }
        match base {
            Base::Pad(k) => {
                let bytes: Vec<u8> = (0..*k).map(|_| rand::Rng::gen(&mut self.rng)).collect();
                Ok(Value::from_bytes(bytes))
            }
            Base::Source(x) => Err(BuildError::MissingField(
                self.g.plain().node(*x).name().to_string(),
            )),
            Base::Inherit | Base::AutoLen(_) | Base::AutoCount(_) | Base::Const(_) => {
                Err(BuildError::MissingField(self.g.node(id).name().to_string()))
            }
        }
    }

    /// When a split sequence's base is auto-computed (or a pad), its
    /// children's wires are not in the message: distribute them into the
    /// overlay now. Auto bases always rematerialize (stored wires may be
    /// stale after mutation); split pads reuse stored wires when present.
    fn materialize_if_needed(
        &mut self,
        id: ObfId,
        base: &Base,
        scope: &[u32],
    ) -> Result<(), BuildError> {
        match base {
            Base::AutoLen(_) | Base::AutoCount(_) | Base::Const(_) => {
                self.materialize_auto(id, base, scope)
            }
            Base::Pad(_) => {
                let stored = self
                    .g
                    .subtree(id)
                    .into_iter()
                    .find(|&n| self.g.node(n).is_terminal())
                    .map(|t| self.msg.wire(t, scope).is_some())
                    .unwrap_or(false);
                if stored {
                    Ok(())
                } else {
                    self.materialize_auto(id, base, scope)
                }
            }
            Base::Source(_) | Base::Inherit => Ok(()),
        }
    }

    fn materialize_auto(
        &mut self,
        id: ObfId,
        base: &Base,
        scope: &[u32],
    ) -> Result<(), BuildError> {
        if self.overlay.contains_key(&(id, scope.to_vec()))
            || self
                .g
                .node(id)
                .children()
                .first()
                .map(|&c| self.overlay.contains_key(&(c, scope.to_vec())))
                .unwrap_or(false)
        {
            return Ok(());
        }
        let raw = match base {
            Base::AutoLen(t) => {
                let tscope = runtime::scoped(self.g.plain(), *t, scope);
                let len = self.msg.plain_len(*t, &tscope).ok_or_else(|| {
                    BuildError::MissingField(self.g.plain().node(*t).name().to_string())
                })?;
                self.encode_auto(id, len as u64)?
            }
            Base::AutoCount(t) => {
                let tscope = runtime::scoped(self.g.plain(), *t, scope);
                let count = self.msg.count_of(*t, &tscope);
                self.encode_auto(id, count as u64)?
            }
            Base::Pad(k) => {
                Value::from_bytes((0..*k).map(|_| rand::Rng::gen(&mut self.rng)).collect::<Vec<u8>>())
            }
            Base::Const(v) => v.clone(),
            _ => unreachable!("materialize_auto only handles auto/pad/const bases"),
        };
        let overlay = &mut self.overlay;
        runtime::distribute(self.g, id, raw, scope, &mut self.rng, &mut |nid, sc, v| {
            overlay.insert((nid, sc), v);
        })
    }

    /// Encodes an auto quantity with the width/endian of the obf terminal
    /// (or of the split expression's original terminal kind).
    fn encode_auto(&self, id: ObfId, quantity: u64) -> Result<Value, BuildError> {
        let (width, endian) = self.auto_encoding(id);
        Value::from_uint(quantity, width, endian).ok_or(BuildError::DerivedOverflow {
            path: self.g.node(id).name().to_string(),
            width,
            value: quantity,
        })
    }

    fn auto_encoding(&self, id: ObfId) -> (usize, crate::value::Endian) {
        // Walk to the original terminal kind: either this node is the
        // terminal, or it is a SplitSeq whose origin terminal kind was
        // preserved on the plain graph.
        if let ObfKind::Terminal { kind: TerminalKind::UInt { width, endian }, .. } =
            &self.g.node(id).kind
        {
            return (*width, *endian);
        }
        if let Some(origin) = self.g.node(id).origin() {
            if let Some(TerminalKind::UInt { width, endian }) =
                self.g.plain().node(origin).terminal_kind()
            {
                return (*width, *endian);
            }
        }
        // Fallback: 8-byte big-endian (never reached for validated specs).
        (8, crate::value::Endian::Big)
    }

    /// Plain value of the `Length` reference of plain node `p`, as an
    /// unsigned integer.
    fn ref_uint_of(&self, p: crate::graph::NodeId, scope: &[u32]) -> Result<u64, BuildError> {
        let r = self
            .g
            .plain()
            .node(p)
            .boundary()
            .reference()
            .expect("PlainLen sequences have Length boundaries");
        self.decode_plain_uint(r, scope)
    }

    fn ref_uint_of_counter(
        &self,
        counter: crate::graph::NodeId,
        scope: &[u32],
    ) -> Result<u64, BuildError> {
        self.decode_plain_uint(counter, scope)
    }

    fn decode_plain_uint(
        &self,
        x: crate::graph::NodeId,
        scope: &[u32],
    ) -> Result<u64, BuildError> {
        let xscope = runtime::scoped(self.g.plain(), x, scope);
        let v = self
            .msg
            .value_at(x, &xscope)
            .ok_or_else(|| BuildError::MissingField(self.g.plain().node(x).name().to_string()))?;
        let endian = match self.g.plain().node(x).terminal_kind() {
            Some(TerminalKind::UInt { endian, .. }) => *endian,
            _ => crate::value::Endian::Big,
        };
        v.to_uint(endian)
            .ok_or_else(|| BuildError::NotNumeric(self.g.plain().node(x).name().to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, Condition, GraphBuilder, Predicate, StopRule};
    use crate::value::TerminalKind;

    fn modbus_mini() -> ObfGraph {
        let mut b = GraphBuilder::new("mb");
        let root = b.root_sequence("frame", Boundary::End);
        let _tid = b.uint_be(root, "tid", 2);
        let len = b.uint_be(root, "len", 2);
        let pdu = b.sequence(root, "pdu", Boundary::Delegated);
        b.set_auto(len, AutoValue::LengthOf(pdu));
        let func = b.uint_be(pdu, "func", 1);
        let wr = b.optional(
            pdu,
            "write",
            Condition { subject: func, predicate: Predicate::Equals(Value::from_bytes(vec![6])) },
        );
        let wbody = b.sequence(wr, "write_body", Boundary::Delegated);
        b.uint_be(wbody, "addr", 2);
        b.uint_be(wbody, "value", 2);
        ObfGraph::from_plain(&b.build().unwrap())
    }

    #[test]
    fn plain_serialization_matches_classic_wire_format() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 0x0102).unwrap();
        m.set_uint("pdu.func", 6).unwrap();
        m.set_uint("pdu.write.addr", 0x0010).unwrap();
        m.set_uint("pdu.write.value", 0xBEEF).unwrap();
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        assert_eq!(
            wire,
            vec![0x01, 0x02, 0x00, 0x05, 0x06, 0x00, 0x10, 0xBE, 0xEF],
            "tid, auto len=5, func, addr, value"
        );
    }

    #[test]
    fn absent_optional_is_skipped_and_len_shrinks() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 1).unwrap();
        m.set_uint("pdu.func", 3).unwrap(); // not 6: optional absent
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        assert_eq!(wire, vec![0x00, 0x01, 0x00, 0x01, 0x03]);
    }

    #[test]
    fn optional_mismatch_detected() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 1).unwrap();
        m.set_uint("pdu.func", 3).unwrap();
        // Force presence although func != 6.
        m.set_uint("pdu.write.addr", 1).unwrap();
        m.set_uint("pdu.write.value", 1).unwrap();
        assert!(matches!(
            serialize_seeded(&g, &m, 9),
            Err(BuildError::OptionalMismatch { .. })
        ));
    }

    #[test]
    fn missing_required_field_reported_with_plain_name() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("pdu.func", 3).unwrap();
        match serialize_seeded(&g, &m, 9) {
            Err(BuildError::MissingField(f)) => assert_eq!(f, "tid"),
            other => panic!("expected MissingField, got {other:?}"),
        }
    }

    #[test]
    fn repetition_with_terminator_and_delimited_fields() {
        let mut b = GraphBuilder::new("http-ish");
        let root = b.root_sequence("m", Boundary::End);
        let rep = b.repetition(
            root,
            "headers",
            StopRule::Terminator(b"\r\n".to_vec()),
            Boundary::Delegated,
        );
        let h = b.sequence(rep, "header", Boundary::Delegated);
        b.terminal(h, "name", TerminalKind::Ascii, Boundary::Delimited(b": ".to_vec()));
        b.terminal(h, "value", TerminalKind::Ascii, Boundary::Delimited(b"\r\n".to_vec()));
        let g = ObfGraph::from_plain(&b.build().unwrap());

        let mut m = Message::with_seed(&g, 1);
        m.set_str("headers[0].name", "Host").unwrap();
        m.set_str("headers[0].value", "example.org").unwrap();
        m.set_str("headers[1].name", "Accept").unwrap();
        m.set_str("headers[1].value", "*/*").unwrap();
        let wire = serialize_seeded(&g, &m, 1).unwrap();
        assert_eq!(wire, b"Host: example.org\r\nAccept: */*\r\n\r\n");
    }

    #[test]
    fn tabular_serializes_counted_elements() {
        let mut b = GraphBuilder::new("tab");
        let root = b.root_sequence("m", Boundary::End);
        let count = b.uint_be(root, "count", 1);
        let tab = b.tabular(root, "vals", count);
        b.set_auto(count, AutoValue::CounterOf(tab));
        let item = b.sequence(tab, "val", Boundary::Delegated);
        b.uint_be(item, "v", 2);
        let g = ObfGraph::from_plain(&b.build().unwrap());

        let mut m = Message::with_seed(&g, 1);
        m.set_uint("vals[0].v", 0x0a0b).unwrap();
        m.set_uint("vals[1].v", 0x0c0d).unwrap();
        let wire = serialize_seeded(&g, &m, 1).unwrap();
        assert_eq!(wire, vec![2, 0x0a, 0x0b, 0x0c, 0x0d]);
    }
}

//! The obfuscating serializer.
//!
//! Two implementations share the same semantics:
//!
//! * [`SerializeSession`] — the production path: an interpreter over the
//!   compiled [`CodecPlan`](crate::plan::CodecPlan) that writes straight
//!   into a caller-supplied buffer and reuses all of its scratch state, so
//!   steady-state serialization performs no hashing and no per-message
//!   heap allocation on the hot path (auto-field materialization draws
//!   from reusable stores; only the aggregation-split of freshly computed
//!   auto values allocates transient intermediates).
//! * [`serialize`] / [`serialize_seeded`] — the **reference
//!   interpreter**: a direct recursive walk of the obfuscation graph,
//!   kept as the executable specification the plan path is
//!   differentially tested against (`tests/property.rs`,
//!   `tests/random_specs.rs`).
//!
//! Serialization walks the wire tree depth-first, exactly as the paper's
//! generated serializer does: aggregation transformations were already
//! applied by the setters (the wire values live in the [`Message`]), and
//! the **ordering** transformations — child permutations, split tabulars,
//! mirrors, length prefixes, pads — are executed on the fly. Auto-computed
//! fields (lengths, counters) are evaluated here, because only the
//! complete message determines them.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::BuildError;
use crate::graph::NodeId;
use crate::message::{Message, WireStore};
use crate::obf::{Base, ObfGraph, ObfId, ObfKind, RepStop, SeqBoundary, TermBoundary};
use crate::plan::{
    bytes_to_uint, pred_eval, BaseOp, CodecPlan, DistErr, DistEval, PlanOp, RecEval, RepStopC,
    SeqB, TermB, NONE,
};
use crate::runtime::{self, Scope};
use crate::value::{TerminalKind, Value};

// ---------------------------------------------------------------------------
// plan interpreter
// ---------------------------------------------------------------------------

/// The byte range a plan slot produced during one traced serialization
/// ([`SerializeSession::serialize_traced`]). Spans nest exactly like the
/// plan tree does: a parent's range contains its children's, and `depth`
/// is the repetition-scope depth at emit time. Inside a mirrored subtree
/// the coordinates are **pre-reversal** — still a faithful boundary map
/// for mutation purposes, just not display order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotSpan {
    /// Plan slot (node index) that produced the bytes.
    pub slot: u32,
    /// Start offset into the output buffer, inclusive.
    pub start: u32,
    /// End offset, exclusive. `start == end` for empty productions.
    pub end: u32,
    /// Repetition-scope depth at the time of emission.
    pub depth: u8,
}

impl SlotSpan {
    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether this slot produced no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A reusable serialization session over a compiled codec plan.
///
/// Obtain one from [`crate::codec::Codec::serializer`] and keep it for the
/// connection's lifetime: every scratch structure (auto-field overlay,
/// scope stack, recovery buffers) reaches a steady-state capacity after the
/// first few messages and is then reused allocation-free.
///
/// ```
/// use protoobf_core::graph::{Boundary, GraphBuilder};
/// use protoobf_core::Codec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("demo");
/// let root = b.root_sequence("msg", Boundary::End);
/// b.uint_be(root, "id", 2);
/// let codec = Codec::identity(&b.build()?);
///
/// let mut msg = codec.message();
/// msg.set_uint("id", 7)?;
/// let mut session = codec.serializer();
/// let mut wire = Vec::new();
/// session.serialize_into(&msg, &mut wire)?; // reuse `session` and `wire`
/// assert_eq!(wire, [0, 7]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SerializeSession<'c> {
    g: &'c ObfGraph,
    plan: &'c CodecPlan,
    scratch: SerializeScratch,
}

/// The lifetime-free scratch state of a [`SerializeSession`]: everything
/// the session owns besides its borrows of the graph and plan. Pooled by
/// [`crate::service::CodecService`] so worker sessions can be checked out
/// and in without losing their warmed-up capacities.
#[derive(Debug)]
pub(crate) struct SerializeScratch {
    /// Wire values computed at serialization time (auto-field subtrees,
    /// split pads) — never stored back into the message.
    overlay: WireStore,
    scope: Vec<u32>,
    ev: RecEval,
    dist: DistEval,
    rng: StdRng,
    /// Per-slot byte ranges recorded while `tracing` is set; stays empty
    /// (and costs one branch per node) on the production path.
    trace: Vec<SlotSpan>,
    tracing: bool,
}

impl SerializeScratch {
    pub(crate) fn for_plan(plan: &CodecPlan) -> Self {
        SerializeScratch {
            overlay: WireStore::with_slots(plan.slots()),
            scope: Vec::new(),
            ev: RecEval::default(),
            dist: DistEval::default(),
            rng: StdRng::seed_from_u64(rand::random()),
            trace: Vec::new(),
            tracing: false,
        }
    }
}

impl<'c> SerializeSession<'c> {
    pub(crate) fn new(g: &'c ObfGraph, plan: &'c CodecPlan) -> Self {
        SerializeSession::from_scratch(g, plan, SerializeScratch::for_plan(plan))
    }

    /// Rebinds pooled scratch state to the graph/plan it was created for.
    /// The RNG is reseeded from ambient entropy: a pooled session must not
    /// continue the (possibly caller-seeded, predictable) stream of its
    /// previous owner.
    pub(crate) fn from_scratch(
        g: &'c ObfGraph,
        plan: &'c CodecPlan,
        mut scratch: SerializeScratch,
    ) -> Self {
        debug_assert_eq!(scratch.overlay.slots(), plan.slots(), "scratch from a different plan");
        scratch.rng = StdRng::seed_from_u64(rand::random());
        SerializeSession { g, plan, scratch }
    }

    /// Takes the scratch state back out for pooling.
    pub(crate) fn into_scratch(self) -> SerializeScratch {
        self.scratch
    }

    /// Reseeds the session RNG that feeds pads and random split shares.
    /// Sessions seed themselves from ambient entropy at construction; use
    /// this (or [`SerializeSession::serialize_into_seeded`]) for
    /// reproducible output.
    pub fn reseed(&mut self, seed: u64) {
        self.scratch.rng = StdRng::seed_from_u64(seed);
    }

    /// Serializes `msg` into `out` (cleared first, capacity kept). Random
    /// material is drawn from the session's own RNG stream (seeded from
    /// ambient entropy at construction, or via
    /// [`SerializeSession::reseed`]); see
    /// [`SerializeSession::serialize_into_seeded`] for reproducible output.
    ///
    /// # Errors
    ///
    /// [`BuildError`] when required fields are missing, lengths/counters
    /// are inconsistent, or derived values overflow their width.
    pub fn serialize_into(
        &mut self,
        msg: &Message<'_>,
        out: &mut Vec<u8>,
    ) -> Result<(), BuildError> {
        out.clear();
        self.serialize_append(msg, out)
    }

    /// Serializes `msg` **appended** to `out` (existing content kept — for
    /// writing a message after a frame header without an intermediate
    /// copy). On error, `out` is truncated back to its original length.
    ///
    /// # Errors
    ///
    /// See [`SerializeSession::serialize_into`].
    pub fn serialize_append(
        &mut self,
        msg: &Message<'_>,
        out: &mut Vec<u8>,
    ) -> Result<(), BuildError> {
        self.scratch.overlay.clear();
        self.scratch.scope.clear();
        let start = out.len();
        let r = self.emit(self.plan.root, msg, out);
        if r.is_err() {
            out.truncate(start);
        }
        r
    }

    /// Serializes `msg` into `out` (cleared first) while recording the
    /// byte range every plan slot produced into `spans` (cleared first,
    /// pre-order). This is the plan-introspection feed for grammar-aware
    /// fuzzing ([`crate::fuzz`]): the spans mark exactly the field and
    /// scope boundaries the compiled plan committed to, so mutations can
    /// target them instead of random offsets.
    ///
    /// # Errors
    ///
    /// See [`SerializeSession::serialize_into`]. On error `spans` holds
    /// the prefix traced before the failure.
    pub fn serialize_traced(
        &mut self,
        msg: &Message<'_>,
        out: &mut Vec<u8>,
        spans: &mut Vec<SlotSpan>,
    ) -> Result<(), BuildError> {
        out.clear();
        self.scratch.trace.clear();
        self.scratch.tracing = true;
        let r = self.serialize_append(msg, out);
        self.scratch.tracing = false;
        spans.clear();
        spans.append(&mut self.scratch.trace);
        r
    }

    /// Serializes with a deterministic RNG seed for the serialization-time
    /// random material (pads, shares of auto-field splits).
    ///
    /// # Errors
    ///
    /// See [`SerializeSession::serialize_into`].
    pub fn serialize_into_seeded(
        &mut self,
        msg: &Message<'_>,
        out: &mut Vec<u8>,
        seed: u64,
    ) -> Result<(), BuildError> {
        self.reseed(seed);
        self.serialize_into(msg, out)
    }

    fn obf_name(&self, idx: u32) -> String {
        self.g.node(ObfId(idx)).name().to_string()
    }

    fn plain_name(&self, idx: u32) -> String {
        self.g.plain().node(NodeId(idx)).name().to_string()
    }

    fn emit(&mut self, idx: u32, msg: &Message<'_>, out: &mut Vec<u8>) -> Result<(), BuildError> {
        if !self.scratch.tracing {
            return self.emit_inner(idx, msg, out);
        }
        let at = self.scratch.trace.len();
        let start = out.len() as u32;
        let depth = self.scratch.scope.len() as u8;
        self.scratch.trace.push(SlotSpan { slot: idx, start, end: start, depth });
        let r = self.emit_inner(idx, msg, out);
        self.scratch.trace[at].end = out.len() as u32;
        r
    }

    fn emit_inner(
        &mut self,
        idx: u32,
        msg: &Message<'_>,
        out: &mut Vec<u8>,
    ) -> Result<(), BuildError> {
        let plan = self.plan;
        let node = &plan.nodes[idx as usize];
        match &node.op {
            PlanOp::Dead => Ok(()),
            PlanOp::Term { base, boundary } => {
                self.terminal_bytes(idx, base, msg, out)?;
                if let TermB::Delim(d) = boundary {
                    out.extend_from_slice(&plan.bytes[*d as usize]);
                }
                Ok(())
            }
            PlanOp::Split { base, first_term } => {
                self.materialize_if_needed(idx, base, *first_term, msg)?;
                for &c in plan.kids(node) {
                    self.emit(c, msg, out)?;
                }
                Ok(())
            }
            PlanOp::Seq { boundary } => {
                let start = out.len();
                for &c in plan.kids(node) {
                    self.emit(c, msg, out)?;
                }
                let emitted = (out.len() - start) as u64;
                match *boundary {
                    SeqB::Fixed(k) => {
                        if emitted != u64::from(k) {
                            return Err(BuildError::LengthInconsistent {
                                path: self.obf_name(idx),
                                declared: u64::from(k),
                                actual: emitted,
                            });
                        }
                    }
                    SeqB::PlainLen { r, r_depth, r_endian } => {
                        let declared = self.msg_uint(r, r_depth, r_endian, msg)?;
                        if declared != emitted {
                            return Err(BuildError::LengthInconsistent {
                                path: self.obf_name(idx),
                                declared,
                                actual: emitted,
                            });
                        }
                    }
                    SeqB::Delegated | SeqB::End => {}
                }
                Ok(())
            }
            PlanOp::Opt { subject, subject_depth, pred, origin, origin_depth } => {
                let od = (*origin_depth as usize).min(self.scratch.scope.len());
                let present = msg.presence_of(NodeId(*origin), &self.scratch.scope[..od]);
                let implied = self.subject_holds(*subject, *subject_depth, *pred, msg)?;
                if implied != present {
                    return Err(BuildError::OptionalMismatch {
                        path: self.obf_name(idx),
                        detail: format!(
                            "condition on {:?} implies present={implied} but message says {present}",
                            self.plain_name(*subject)
                        ),
                    });
                }
                if present {
                    self.emit(plan.kids(node)[0], msg, out)
                } else {
                    Ok(())
                }
            }
            PlanOp::Rep { stop, origin, origin_depth } => {
                assert_ne!(*origin, NONE, "repetitions always have plain origins");
                let od = (*origin_depth as usize).min(self.scratch.scope.len());
                let m = msg.count_of(NodeId(*origin), &self.scratch.scope[..od]);
                let child = plan.kids(node)[0];
                for i in 0..m {
                    self.scratch.scope.push(i as u32);
                    let piece = self.emit(child, msg, out);
                    self.scratch.scope.pop();
                    piece?;
                }
                if let RepStopC::Terminator(t) = stop {
                    out.extend_from_slice(&plan.bytes[*t as usize]);
                }
                Ok(())
            }
            PlanOp::Tab { counter, counter_depth, counter_endian, origin, origin_depth } => {
                assert_ne!(*origin, NONE, "tabulars always have plain origins");
                let od = (*origin_depth as usize).min(self.scratch.scope.len());
                let m = msg.count_of(NodeId(*origin), &self.scratch.scope[..od]);
                let declared = self.msg_uint(*counter, *counter_depth, *counter_endian, msg)?;
                if declared != m as u64 {
                    return Err(BuildError::LengthInconsistent {
                        path: self.obf_name(idx),
                        declared,
                        actual: m as u64,
                    });
                }
                let child = plan.kids(node)[0];
                for i in 0..m {
                    self.scratch.scope.push(i as u32);
                    let piece = self.emit(child, msg, out);
                    self.scratch.scope.pop();
                    piece?;
                }
                Ok(())
            }
            PlanOp::Mirror => {
                let start = out.len();
                self.emit(plan.kids(node)[0], msg, out)?;
                out[start..].reverse();
                Ok(())
            }
            PlanOp::Prefixed { width, endian } => {
                let w = *width as usize;
                let pstart = out.len();
                out.resize(pstart + w, 0);
                self.emit(plan.kids(node)[0], msg, out)?;
                let blen = out.len() - pstart - w;
                if !fill_uint(&mut out[pstart..pstart + w], blen as u64, *endian) {
                    return Err(BuildError::DerivedOverflow {
                        path: self.obf_name(idx),
                        width: w,
                        value: blen as u64,
                    });
                }
                Ok(())
            }
        }
    }

    /// Appends the wire bytes of a terminal: serialization overlay first
    /// (auto subtrees, split pads), then the message store, then generated
    /// pads. Auto-computed bases are **always** rematerialized: a parsed
    /// message may have been mutated through the accessors, so stored
    /// length/count wires can be stale.
    fn terminal_bytes(
        &mut self,
        idx: u32,
        base: &BaseOp,
        msg: &Message<'_>,
        out: &mut Vec<u8>,
    ) -> Result<(), BuildError> {
        if let Some(b) = self.scratch.overlay.get(idx as usize, &self.scratch.scope) {
            out.extend_from_slice(b);
            return Ok(());
        }
        if base.is_materialized() {
            self.materialize(idx, base, msg)?;
            let b = self
                .scratch
                .overlay
                .get(idx as usize, &self.scratch.scope)
                .ok_or_else(|| BuildError::MissingField(self.obf_name(idx)))?;
            out.extend_from_slice(b);
            return Ok(());
        }
        if let Some(b) = msg.wire(ObfId(idx), &self.scratch.scope) {
            out.extend_from_slice(b);
            return Ok(());
        }
        match base {
            BaseOp::Pad { k } => {
                out.extend((0..*k).map(|_| rand::Rng::gen::<u8>(&mut self.scratch.rng)));
                Ok(())
            }
            BaseOp::Source { plain } => Err(BuildError::MissingField(self.plain_name(*plain))),
            _ => Err(BuildError::MissingField(self.obf_name(idx))),
        }
    }

    /// When a split sequence's base is auto-computed (or a pad), its
    /// children's wires are not in the message: distribute them into the
    /// overlay now. Auto bases always rematerialize (stored wires may be
    /// stale after mutation); split pads reuse stored wires when present.
    fn materialize_if_needed(
        &mut self,
        idx: u32,
        base: &BaseOp,
        first_term: u32,
        msg: &Message<'_>,
    ) -> Result<(), BuildError> {
        match base {
            _ if base.is_materialized() => {
                if first_term != NONE
                    && self.scratch.overlay.contains(first_term as usize, &self.scratch.scope)
                {
                    return Ok(());
                }
                self.materialize(idx, base, msg)
            }
            BaseOp::Pad { .. } => {
                let stored = first_term != NONE
                    && msg.wire(ObfId(first_term), &self.scratch.scope).is_some();
                if stored {
                    Ok(())
                } else {
                    self.materialize(idx, base, msg)
                }
            }
            _ => Ok(()),
        }
    }

    /// Computes an auto/pad/const base value and distributes it through the
    /// subtree rooted at `idx` into the overlay, running the plan's
    /// compiled distribution program — no graph walk, no per-value heap
    /// allocation in steady state.
    fn materialize(
        &mut self,
        idx: u32,
        base: &BaseOp,
        msg: &Message<'_>,
    ) -> Result<(), BuildError> {
        let g = self.g;
        let plan = self.plan;
        let SerializeScratch { overlay, scope, dist, rng, .. } = &mut self.scratch;
        let plain_name = |p: u32| g.plain().node(NodeId(p)).name().to_string();
        let obf_name = |o: u32| g.node(ObfId(o)).name().to_string();
        let buf = dist.input();
        match base {
            BaseOp::AutoLen { target, depth, width, endian } => {
                let td = (*depth as usize).min(scope.len());
                let len = msg
                    .plain_len(NodeId(*target), &scope[..td])
                    .ok_or_else(|| BuildError::MissingField(plain_name(*target)))?;
                if !push_uint(buf, len as u64, *width as usize, *endian) {
                    return Err(BuildError::DerivedOverflow {
                        path: obf_name(idx),
                        width: *width as usize,
                        value: len as u64,
                    });
                }
            }
            BaseOp::AutoCount { target, depth, width, endian } => {
                let td = (*depth as usize).min(scope.len());
                let count = msg.count_of(NodeId(*target), &scope[..td]);
                if !push_uint(buf, count as u64, *width as usize, *endian) {
                    return Err(BuildError::DerivedOverflow {
                        path: obf_name(idx),
                        width: *width as usize,
                        value: count as u64,
                    });
                }
            }
            BaseOp::Const { pool } => {
                buf.extend_from_slice(plan.consts[*pool as usize].as_bytes());
            }
            BaseOp::Pad { k } => {
                for _ in 0..*k {
                    let b = rand::Rng::gen::<u8>(rng);
                    buf.push(b);
                }
            }
            _ => unreachable!("materialize only handles auto/pad/const bases"),
        };
        let prog = plan.dist[idx as usize]
            .expect("materializable bases always compile a distribution program");
        dist.eval(plan, prog, rng, &mut |obf, bytes| {
            overlay.set(obf as usize, scope, bytes);
        })
        .map_err(|e| match e {
            DistErr::BadLen { obf, expected, found } => BuildError::BadValueLength {
                path: obf_name(obf),
                expected: expected as usize,
                found: found as usize,
            },
            DistErr::Delim { obf } => BuildError::ValueContainsDelimiter { path: obf_name(obf) },
        })
    }

    /// Holds the subject predicate of an optional against the message.
    fn subject_holds(
        &mut self,
        subject: u32,
        depth: u8,
        pred: u32,
        msg: &Message<'_>,
    ) -> Result<bool, BuildError> {
        let plan = self.plan;
        let d = (depth as usize).min(self.scratch.scope.len());
        if let Some(prog) = plan.rec[subject as usize] {
            let SerializeScratch { ev, overlay, scope, .. } = &mut self.scratch;
            let xscope = &scope[..d];
            if let Some((s, l)) = ev.eval(plan, prog, xscope, &mut |obf, sc, buf| {
                if let Some(b) = overlay.get(obf as usize, sc) {
                    buf.extend_from_slice(b);
                    true
                } else if let Some(b) = msg.wire(ObfId(obf), sc) {
                    buf.extend_from_slice(b);
                    true
                } else {
                    false
                }
            }) {
                return Ok(pred_eval(&plan.preds[pred as usize], &ev.buf[s..s + l]));
            }
        }
        // Slow path: auto subjects (or unrecoverable wires) go through the
        // accessor recovery with its auto-value fallback.
        let v = msg
            .value_at(NodeId(subject), &self.scratch.scope[..d])
            .ok_or_else(|| BuildError::MissingField(self.plain_name(subject)))?;
        Ok(pred_eval(&plan.preds[pred as usize], v.as_bytes()))
    }

    /// Plain value of a referenced numeric field, as an unsigned integer
    /// (overlay first, then message wires, then the accessor fallback for
    /// never-materialized auto fields).
    fn msg_uint(
        &mut self,
        r: u32,
        depth: u8,
        endian: crate::value::Endian,
        msg: &Message<'_>,
    ) -> Result<u64, BuildError> {
        let plan = self.plan;
        let d = (depth as usize).min(self.scratch.scope.len());
        if let Some(prog) = plan.rec[r as usize] {
            let SerializeScratch { ev, overlay, scope, .. } = &mut self.scratch;
            let xscope = &scope[..d];
            if let Some((s, l)) = ev.eval(plan, prog, xscope, &mut |obf, sc, buf| {
                if let Some(b) = overlay.get(obf as usize, sc) {
                    buf.extend_from_slice(b);
                    true
                } else if let Some(b) = msg.wire(ObfId(obf), sc) {
                    buf.extend_from_slice(b);
                    true
                } else {
                    false
                }
            }) {
                return bytes_to_uint(&ev.buf[s..s + l], endian)
                    .ok_or_else(|| BuildError::NotNumeric(self.plain_name(r)));
            }
        }
        let v = msg
            .value_at(NodeId(r), &self.scratch.scope[..d])
            .ok_or_else(|| BuildError::MissingField(self.plain_name(r)))?;
        v.to_uint(endian).ok_or_else(|| BuildError::NotNumeric(self.plain_name(r)))
    }
}

/// Encodes an unsigned integer directly into `out` (the allocation-free
/// analogue of [`Value::from_uint`]). Returns `false` when `v` does not fit
/// in `width` bytes.
fn push_uint(out: &mut Vec<u8>, v: u64, width: usize, endian: crate::value::Endian) -> bool {
    if width == 0 || width > 8 {
        return false;
    }
    let start = out.len();
    out.resize(start + width, 0);
    fill_uint(&mut out[start..], v, endian)
}

/// Encodes an unsigned integer into an exact-width slice. Returns `false`
/// (leaving zeros) when `v` does not fit.
fn fill_uint(dst: &mut [u8], v: u64, endian: crate::value::Endian) -> bool {
    let width = dst.len();
    if width == 0 || width > 8 || (width < 8 && v >= 1u64 << (8 * width)) {
        return false;
    }
    match endian {
        crate::value::Endian::Big => {
            for (i, b) in dst.iter_mut().enumerate() {
                *b = (v >> (8 * (width - 1 - i))) as u8;
            }
        }
        crate::value::Endian::Little => {
            for (i, b) in dst.iter_mut().enumerate() {
                *b = (v >> (8 * i)) as u8;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// reference graph-walk interpreter
// ---------------------------------------------------------------------------

/// Serializes `msg` by directly interpreting the obfuscation graph — the
/// **reference implementation** the compiled-plan path is differentially
/// tested against. Production code should use
/// [`crate::codec::Codec::serialize`] (plan-based, cached).
///
/// # Errors
///
/// [`BuildError`] when required fields are missing, lengths/counters are
/// inconsistent, or derived values overflow their width.
pub fn serialize(g: &ObfGraph, msg: &Message<'_>) -> Result<Vec<u8>, BuildError> {
    serialize_seeded(g, msg, rand::random())
}

/// Reference graph-walk serializer with a deterministic RNG seed for the
/// serialization-time random material.
///
/// # Errors
///
/// See [`serialize`].
pub fn serialize_seeded(g: &ObfGraph, msg: &Message<'_>, seed: u64) -> Result<Vec<u8>, BuildError> {
    let mut ctx = Ctx { g, msg, overlay: HashMap::new(), rng: StdRng::seed_from_u64(seed) };
    let mut scope = Vec::new();
    ctx.emit(g.root(), &mut scope)
}

struct Ctx<'a, 'c> {
    g: &'a ObfGraph,
    msg: &'a Message<'c>,
    /// Wire values computed at serialization time (auto-field subtrees,
    /// pads) — never stored back into the message.
    overlay: HashMap<(ObfId, Scope), Value>,
    rng: StdRng,
}

impl<'a, 'c> Ctx<'a, 'c> {
    fn emit(&mut self, id: ObfId, scope: &mut Scope) -> Result<Vec<u8>, BuildError> {
        let node = self.g.node(id);
        match &node.kind {
            ObfKind::Terminal { base, boundary, .. } => {
                let wire = self.wire_of(id, base, scope)?;
                let mut out = wire.into_bytes();
                if let TermBoundary::Delimited(d) = boundary {
                    out.extend_from_slice(d);
                }
                Ok(out)
            }
            ObfKind::SplitSeq { expr, .. } => {
                self.materialize_if_needed(id, &expr.base, scope)?;
                let mut out = Vec::new();
                for &c in node.children() {
                    out.extend_from_slice(&self.emit(c, scope)?);
                }
                Ok(out)
            }
            ObfKind::Sequence { boundary } => {
                let mut out = Vec::new();
                for &c in node.children() {
                    out.extend_from_slice(&self.emit(c, scope)?);
                }
                match boundary {
                    SeqBoundary::Fixed(k) => {
                        if out.len() != *k {
                            return Err(BuildError::LengthInconsistent {
                                path: node.name().to_string(),
                                declared: *k as u64,
                                actual: out.len() as u64,
                            });
                        }
                    }
                    SeqBoundary::PlainLen(p) => {
                        let declared = self.ref_uint_of(*p, scope)?;
                        if declared != out.len() as u64 {
                            return Err(BuildError::LengthInconsistent {
                                path: node.name().to_string(),
                                declared,
                                actual: out.len() as u64,
                            });
                        }
                    }
                    SeqBoundary::Delegated | SeqBoundary::End => {}
                }
                Ok(out)
            }
            ObfKind::Optional { condition } => {
                let origin = node.origin().expect("optionals always have plain origins");
                let oscope = runtime::scoped(self.g.plain(), origin, scope);
                let present = self.msg.presence_of(origin, &oscope);
                let subject_scope = runtime::scoped(self.g.plain(), condition.subject, scope);
                let subject =
                    self.msg.value_at(condition.subject, &subject_scope).ok_or_else(|| {
                        BuildError::MissingField(
                            self.g.plain().node(condition.subject).name().to_string(),
                        )
                    })?;
                let implied = condition.predicate.eval(&subject);
                if implied != present {
                    return Err(BuildError::OptionalMismatch {
                        path: node.name().to_string(),
                        detail: format!(
                            "condition on {:?} implies present={implied} but message says {present}",
                            self.g.plain().node(condition.subject).name()
                        ),
                    });
                }
                if present {
                    self.emit(node.children()[0], scope)
                } else {
                    Ok(Vec::new())
                }
            }
            ObfKind::Repetition { stop } => {
                let origin = node.origin().expect("repetitions always have plain origins");
                let oscope = runtime::scoped(self.g.plain(), origin, scope);
                let m = self.msg.count_of(origin, &oscope);
                let mut out = Vec::new();
                for i in 0..m {
                    scope.push(i as u32);
                    let piece = self.emit(node.children()[0], scope);
                    scope.pop();
                    out.extend_from_slice(&piece?);
                }
                if let RepStop::Terminator(t) = stop {
                    out.extend_from_slice(t);
                }
                Ok(out)
            }
            ObfKind::Tabular { counter } => {
                let origin = node.origin().expect("tabulars always have plain origins");
                let oscope = runtime::scoped(self.g.plain(), origin, scope);
                let m = self.msg.count_of(origin, &oscope);
                let declared = self.ref_uint_of_counter(*counter, scope)?;
                if declared != m as u64 {
                    return Err(BuildError::LengthInconsistent {
                        path: node.name().to_string(),
                        declared,
                        actual: m as u64,
                    });
                }
                let mut out = Vec::new();
                for i in 0..m {
                    scope.push(i as u32);
                    let piece = self.emit(node.children()[0], scope);
                    scope.pop();
                    out.extend_from_slice(&piece?);
                }
                Ok(out)
            }
            ObfKind::Mirror => {
                let mut out = self.emit(node.children()[0], scope)?;
                out.reverse();
                Ok(out)
            }
            ObfKind::Prefixed { width, endian } => {
                let body = self.emit(node.children()[0], scope)?;
                let prefix = Value::from_uint(body.len() as u64, *width, *endian).ok_or(
                    BuildError::DerivedOverflow {
                        path: node.name().to_string(),
                        width: *width,
                        value: body.len() as u64,
                    },
                )?;
                let mut out = prefix.into_bytes();
                out.extend_from_slice(&body);
                Ok(out)
            }
        }
    }

    /// The wire value of a terminal: from the serialization overlay (auto
    /// subtrees), the message (set-time aggregation / parsed wires), or
    /// generated on the spot (pads).
    ///
    /// Auto-computed bases are **always** rematerialized: a parsed message
    /// may have been mutated through the accessors, so stored length/count
    /// wires can be stale. Pads reuse stored wires (their value is
    /// irrelevant but reuse keeps re-serialization stable).
    fn wire_of(&mut self, id: ObfId, base: &Base, scope: &[u32]) -> Result<Value, BuildError> {
        if let Some(v) = self.overlay.get(&(id, scope.to_vec())) {
            return Ok(v.clone());
        }
        match base {
            Base::AutoLen(_) | Base::AutoCount(_) | Base::Const(_) => {
                self.materialize_auto(id, base, scope)?;
                return self
                    .overlay
                    .get(&(id, scope.to_vec()))
                    .cloned()
                    .ok_or_else(|| BuildError::MissingField(self.g.node(id).name().to_string()));
            }
            Base::Pad(_) | Base::Source(_) | Base::Inherit => {}
        }
        if let Some(v) = self.msg.wire(id, scope) {
            return Ok(Value::from_bytes(v.to_vec()));
        }
        match base {
            Base::Pad(k) => {
                let bytes: Vec<u8> = (0..*k).map(|_| rand::Rng::gen(&mut self.rng)).collect();
                Ok(Value::from_bytes(bytes))
            }
            Base::Source(x) => {
                Err(BuildError::MissingField(self.g.plain().node(*x).name().to_string()))
            }
            Base::Inherit | Base::AutoLen(_) | Base::AutoCount(_) | Base::Const(_) => {
                Err(BuildError::MissingField(self.g.node(id).name().to_string()))
            }
        }
    }

    /// When a split sequence's base is auto-computed (or a pad), its
    /// children's wires are not in the message: distribute them into the
    /// overlay now. Auto bases always rematerialize (stored wires may be
    /// stale after mutation); split pads reuse stored wires when present.
    fn materialize_if_needed(
        &mut self,
        id: ObfId,
        base: &Base,
        scope: &[u32],
    ) -> Result<(), BuildError> {
        match base {
            Base::AutoLen(_) | Base::AutoCount(_) | Base::Const(_) => {
                self.materialize_auto(id, base, scope)
            }
            Base::Pad(_) => {
                let stored = self
                    .g
                    .subtree(id)
                    .into_iter()
                    .find(|&n| self.g.node(n).is_terminal())
                    .map(|t| self.msg.wire(t, scope).is_some())
                    .unwrap_or(false);
                if stored {
                    Ok(())
                } else {
                    self.materialize_auto(id, base, scope)
                }
            }
            Base::Source(_) | Base::Inherit => Ok(()),
        }
    }

    fn materialize_auto(
        &mut self,
        id: ObfId,
        base: &Base,
        scope: &[u32],
    ) -> Result<(), BuildError> {
        if self.overlay.contains_key(&(id, scope.to_vec()))
            || self
                .g
                .node(id)
                .children()
                .first()
                .map(|&c| self.overlay.contains_key(&(c, scope.to_vec())))
                .unwrap_or(false)
        {
            return Ok(());
        }
        let raw = match base {
            Base::AutoLen(t) => {
                let tscope = runtime::scoped(self.g.plain(), *t, scope);
                let len = self.msg.plain_len(*t, &tscope).ok_or_else(|| {
                    BuildError::MissingField(self.g.plain().node(*t).name().to_string())
                })?;
                self.encode_auto(id, len as u64)?
            }
            Base::AutoCount(t) => {
                let tscope = runtime::scoped(self.g.plain(), *t, scope);
                let count = self.msg.count_of(*t, &tscope);
                self.encode_auto(id, count as u64)?
            }
            Base::Pad(k) => Value::from_bytes(
                (0..*k).map(|_| rand::Rng::gen(&mut self.rng)).collect::<Vec<u8>>(),
            ),
            Base::Const(v) => v.clone(),
            _ => unreachable!("materialize_auto only handles auto/pad/const bases"),
        };
        let overlay = &mut self.overlay;
        runtime::distribute(self.g, id, raw, scope, &mut self.rng, &mut |nid, sc, v| {
            overlay.insert((nid, sc.to_vec()), v);
        })
    }

    /// Encodes an auto quantity with the width/endian of the obf terminal
    /// (or of the split expression's original terminal kind).
    fn encode_auto(&self, id: ObfId, quantity: u64) -> Result<Value, BuildError> {
        let (width, endian) = self.auto_encoding(id);
        Value::from_uint(quantity, width, endian).ok_or(BuildError::DerivedOverflow {
            path: self.g.node(id).name().to_string(),
            width,
            value: quantity,
        })
    }

    fn auto_encoding(&self, id: ObfId) -> (usize, crate::value::Endian) {
        // Walk to the original terminal kind: either this node is the
        // terminal, or it is a SplitSeq whose origin terminal kind was
        // preserved on the plain graph.
        if let ObfKind::Terminal { kind: TerminalKind::UInt { width, endian }, .. } =
            &self.g.node(id).kind
        {
            return (*width, *endian);
        }
        if let Some(origin) = self.g.node(id).origin() {
            if let Some(TerminalKind::UInt { width, endian }) =
                self.g.plain().node(origin).terminal_kind()
            {
                return (*width, *endian);
            }
        }
        // Fallback: 8-byte big-endian (never reached for validated specs).
        (8, crate::value::Endian::Big)
    }

    /// Plain value of the `Length` reference of plain node `p`, as an
    /// unsigned integer.
    fn ref_uint_of(&self, p: crate::graph::NodeId, scope: &[u32]) -> Result<u64, BuildError> {
        let r = self
            .g
            .plain()
            .node(p)
            .boundary()
            .reference()
            .expect("PlainLen sequences have Length boundaries");
        self.decode_plain_uint(r, scope)
    }

    fn ref_uint_of_counter(
        &self,
        counter: crate::graph::NodeId,
        scope: &[u32],
    ) -> Result<u64, BuildError> {
        self.decode_plain_uint(counter, scope)
    }

    fn decode_plain_uint(&self, x: crate::graph::NodeId, scope: &[u32]) -> Result<u64, BuildError> {
        let xscope = runtime::scoped(self.g.plain(), x, scope);
        let v = self
            .msg
            .value_at(x, &xscope)
            .ok_or_else(|| BuildError::MissingField(self.g.plain().node(x).name().to_string()))?;
        let endian = match self.g.plain().node(x).terminal_kind() {
            Some(TerminalKind::UInt { endian, .. }) => *endian,
            _ => crate::value::Endian::Big,
        };
        v.to_uint(endian)
            .ok_or_else(|| BuildError::NotNumeric(self.g.plain().node(x).name().to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, Condition, GraphBuilder, Predicate, StopRule};
    use crate::plan::CodecPlan;
    use crate::value::TerminalKind;

    fn modbus_mini() -> ObfGraph {
        let mut b = GraphBuilder::new("mb");
        let root = b.root_sequence("frame", Boundary::End);
        let _tid = b.uint_be(root, "tid", 2);
        let len = b.uint_be(root, "len", 2);
        let pdu = b.sequence(root, "pdu", Boundary::Delegated);
        b.set_auto(len, AutoValue::LengthOf(pdu));
        let func = b.uint_be(pdu, "func", 1);
        let wr = b.optional(
            pdu,
            "write",
            Condition { subject: func, predicate: Predicate::Equals(Value::from_bytes(vec![6])) },
        );
        let wbody = b.sequence(wr, "write_body", Boundary::Delegated);
        b.uint_be(wbody, "addr", 2);
        b.uint_be(wbody, "value", 2);
        ObfGraph::from_plain(&b.build().unwrap())
    }

    fn session_wire(g: &ObfGraph, m: &Message<'_>, seed: u64) -> Result<Vec<u8>, BuildError> {
        let plan = CodecPlan::compile(g);
        let mut s = SerializeSession::new(g, &plan);
        let mut out = Vec::new();
        s.serialize_into_seeded(m, &mut out, seed)?;
        Ok(out)
    }

    #[test]
    fn plain_serialization_matches_classic_wire_format() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 0x0102).unwrap();
        m.set_uint("pdu.func", 6).unwrap();
        m.set_uint("pdu.write.addr", 0x0010).unwrap();
        m.set_uint("pdu.write.value", 0xBEEF).unwrap();
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        assert_eq!(
            wire,
            vec![0x01, 0x02, 0x00, 0x05, 0x06, 0x00, 0x10, 0xBE, 0xEF],
            "tid, auto len=5, func, addr, value"
        );
        // The plan interpreter must agree byte-for-byte.
        assert_eq!(session_wire(&g, &m, 9).unwrap(), wire);
    }

    #[test]
    fn absent_optional_is_skipped_and_len_shrinks() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 1).unwrap();
        m.set_uint("pdu.func", 3).unwrap(); // not 6: optional absent
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        assert_eq!(wire, vec![0x00, 0x01, 0x00, 0x01, 0x03]);
        assert_eq!(session_wire(&g, &m, 9).unwrap(), wire);
    }

    #[test]
    fn optional_mismatch_detected() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 1).unwrap();
        m.set_uint("pdu.func", 3).unwrap();
        // Force presence although func != 6.
        m.set_uint("pdu.write.addr", 1).unwrap();
        m.set_uint("pdu.write.value", 1).unwrap();
        assert!(matches!(serialize_seeded(&g, &m, 9), Err(BuildError::OptionalMismatch { .. })));
        assert!(matches!(session_wire(&g, &m, 9), Err(BuildError::OptionalMismatch { .. })));
    }

    #[test]
    fn missing_required_field_reported_with_plain_name() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("pdu.func", 3).unwrap();
        match serialize_seeded(&g, &m, 9) {
            Err(BuildError::MissingField(f)) => assert_eq!(f, "tid"),
            other => panic!("expected MissingField, got {other:?}"),
        }
        match session_wire(&g, &m, 9) {
            Err(BuildError::MissingField(f)) => assert_eq!(f, "tid"),
            other => panic!("expected MissingField, got {other:?}"),
        }
    }

    #[test]
    fn repetition_with_terminator_and_delimited_fields() {
        let mut b = GraphBuilder::new("http-ish");
        let root = b.root_sequence("m", Boundary::End);
        let rep = b.repetition(
            root,
            "headers",
            StopRule::Terminator(b"\r\n".to_vec()),
            Boundary::Delegated,
        );
        let h = b.sequence(rep, "header", Boundary::Delegated);
        b.terminal(h, "name", TerminalKind::Ascii, Boundary::Delimited(b": ".to_vec()));
        b.terminal(h, "value", TerminalKind::Ascii, Boundary::Delimited(b"\r\n".to_vec()));
        let g = ObfGraph::from_plain(&b.build().unwrap());

        let mut m = Message::with_seed(&g, 1);
        m.set_str("headers[0].name", "Host").unwrap();
        m.set_str("headers[0].value", "example.org").unwrap();
        m.set_str("headers[1].name", "Accept").unwrap();
        m.set_str("headers[1].value", "*/*").unwrap();
        let wire = serialize_seeded(&g, &m, 1).unwrap();
        assert_eq!(wire, b"Host: example.org\r\nAccept: */*\r\n\r\n");
        assert_eq!(session_wire(&g, &m, 1).unwrap(), wire);
    }

    #[test]
    fn tabular_serializes_counted_elements() {
        let mut b = GraphBuilder::new("tab");
        let root = b.root_sequence("m", Boundary::End);
        let count = b.uint_be(root, "count", 1);
        let tab = b.tabular(root, "vals", count);
        b.set_auto(count, AutoValue::CounterOf(tab));
        let item = b.sequence(tab, "val", Boundary::Delegated);
        b.uint_be(item, "v", 2);
        let g = ObfGraph::from_plain(&b.build().unwrap());

        let mut m = Message::with_seed(&g, 1);
        m.set_uint("vals[0].v", 0x0a0b).unwrap();
        m.set_uint("vals[1].v", 0x0c0d).unwrap();
        let wire = serialize_seeded(&g, &m, 1).unwrap();
        assert_eq!(wire, vec![2, 0x0a, 0x0b, 0x0c, 0x0d]);
        assert_eq!(session_wire(&g, &m, 1).unwrap(), wire);
    }

    #[test]
    fn session_reuse_is_stable() {
        let g = modbus_mini();
        let plan = CodecPlan::compile(&g);
        let mut s = SerializeSession::new(&g, &plan);
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 5).unwrap();
        m.set_uint("pdu.func", 1).unwrap();
        let mut out = Vec::new();
        s.serialize_into_seeded(&m, &mut out, 3).unwrap();
        let first = out.clone();
        for _ in 0..10 {
            s.serialize_into_seeded(&m, &mut out, 3).unwrap();
            assert_eq!(out, first, "session reuse must be deterministic");
        }
    }
}

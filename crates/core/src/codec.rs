//! The [`Codec`]: a generated obfuscating serializer/parser pair.
//!
//! A codec is what the paper's framework emits as a C library: the product
//! of a message format specification and an obfuscation plan. Both
//! communicating peers construct the same codec from the same specification
//! and seed, so they agree on every transformation parameter.

use std::sync::{Arc, Mutex};

use crate::error::{BuildError, ParseError};
use crate::graph::FormatGraph;
use crate::message::Message;
use crate::obf::ObfGraph;
use crate::parse::ParseSession;
use crate::plan::{CodecPlan, CopyProgram};
use crate::serialize::SerializeSession;
use crate::transform::TransformRecord;

/// An obfuscating serializer/parser pair for one message format.
#[derive(Debug)]
pub struct Codec {
    graph: ObfGraph,
    records: Vec<TransformRecord>,
    /// Compiled transcode copy programs, keyed by the **source** graph's
    /// uid: one program per (source codec, this codec) pairing, shared by
    /// every relay target built from this codec
    /// ([`Codec::transcode_target`]). A handful of pairings per process
    /// (gateway legs), so a scanned `Vec` beats a hash map.
    copy_programs: Mutex<Vec<(u64, Arc<CopyProgram>)>>,
}

impl Clone for Codec {
    fn clone(&self) -> Self {
        // The graph clone carries the cached plan; copy programs reference
        // source graphs by uid and are re-derived on demand.
        Codec {
            graph: self.graph.clone(),
            records: self.records.clone(),
            copy_programs: Mutex::new(Vec::new()),
        }
    }
}

impl Codec {
    pub(crate) fn from_parts(graph: ObfGraph, records: Vec<TransformRecord>) -> Self {
        Codec { graph, records, copy_programs: Mutex::new(Vec::new()) }
    }

    /// A codec with zero transformations: the plain (classic) protocol.
    pub fn identity(plain: &FormatGraph) -> Self {
        Codec::from_parts(ObfGraph::from_plain(plain), Vec::new())
    }

    /// The compiled execution plan (built on first use, then cached on the
    /// graph). Both the one-shot entry points and the session
    /// constructors share it.
    pub fn plan(&self) -> &CodecPlan {
        self.graph.plan()
    }

    /// The compiled transcode copy program for messages of `src` being
    /// copied into messages of this codec — compiled once per pairing and
    /// cached, so every relay connection shares one program per
    /// direction.
    ///
    /// # Errors
    ///
    /// [`BuildError::GraphMismatch`] when the two codecs do not share a
    /// structurally identical plain specification.
    pub(crate) fn copy_program_from(&self, src: &Codec) -> Result<Arc<CopyProgram>, BuildError> {
        let uid = src.graph.uid();
        {
            let cache = self.copy_programs.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((_, prog)) = cache.iter().find(|(u, _)| *u == uid) {
                return Ok(Arc::clone(prog));
            }
        }
        // Compile outside the lock (it compiles both plans on first use);
        // a racing duplicate insert is harmless — same program content.
        let prog = CopyProgram::compile(&src.graph, &self.graph).ok_or_else(|| {
            let (a, b) = (src.graph.plain(), self.graph.plain());
            BuildError::GraphMismatch {
                expected: format!("{} ({} nodes)", b.name(), b.len()),
                found: format!("{} ({} nodes)", a.name(), a.len()),
            }
        })?;
        // Debug builds statically verify every freshly compiled transcode
        // program (jump nesting, plain/slot references, step shapes)
        // before it enters the per-pairing cache.
        #[cfg(debug_assertions)]
        {
            let diags = crate::verify::verify_copy_program(&src.graph, &self.graph, &prog);
            assert!(diags.is_empty(), "compiled copy program failed verification: {diags:#?}");
        }
        let prog = Arc::new(prog);
        let mut cache = self.copy_programs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, cached)) = cache.iter().find(|(u, _)| *u == uid) {
            return Ok(Arc::clone(cached));
        }
        cache.push((uid, Arc::clone(&prog)));
        Ok(prog)
    }

    /// An empty message of this codec pre-armed as a transcode
    /// destination for messages of `src`: the shared compiled
    /// [`CopyProgram`] is attached up front, so the target's very first
    /// [`Message::transcode_into`] already runs the compiled path without
    /// a per-connection compile.
    ///
    /// # Errors
    ///
    /// See [`Codec::copy_program_from`].
    pub fn transcode_target(&self, src: &Codec) -> Result<Message<'_>, BuildError> {
        let prog = self.copy_program_from(src)?;
        let mut msg = self.message();
        msg.arm_transcode(src.graph.uid(), prog);
        Ok(msg)
    }

    /// Starts a reusable serialization session over the compiled plan.
    /// Keep the session (and an output buffer) across messages for
    /// allocation-free steady-state serialization.
    pub fn serializer(&self) -> SerializeSession<'_> {
        SerializeSession::new(&self.graph, self.plan())
    }

    /// Starts a reusable parse session over the compiled plan. Keep the
    /// session across messages for allocation-free steady-state parsing.
    pub fn parser(&self) -> ParseSession<'_> {
        ParseSession::new(&self.graph, self.plan())
    }

    /// Wraps this codec in a concurrent [`crate::service::CodecService`]:
    /// one shared plan behind sharded pools of worker sessions.
    pub fn into_service(self) -> crate::service::CodecService {
        crate::service::CodecService::new(self)
    }

    /// The plain specification.
    pub fn plain(&self) -> &FormatGraph {
        self.graph.plain()
    }

    /// The obfuscation graph (`G_{n+1}`).
    pub fn obf_graph(&self) -> &ObfGraph {
        &self.graph
    }

    /// The applied transformations, in application order.
    pub fn records(&self) -> &[TransformRecord] {
        &self.records
    }

    /// Number of applied transformations (the paper's
    /// "Nb. transf. applied" metric).
    pub fn transform_count(&self) -> usize {
        self.records.len()
    }

    /// Human-readable plan summary: applied transformations by kind and
    /// category, plus graph growth. Useful for logs and the CLI.
    pub fn plan_summary(&self) -> String {
        use crate::transform::{Category, TransformKind};
        let mut by_kind: Vec<(TransformKind, usize)> =
            TransformKind::ALL.iter().map(|&k| (k, 0)).collect();
        for r in &self.records {
            if let Some(slot) = by_kind.iter_mut().find(|(k, _)| *k == r.kind) {
                slot.1 += 1;
            }
        }
        let agg: usize = by_kind
            .iter()
            .filter(|(k, _)| k.category() == Category::Aggregation)
            .map(|(_, n)| n)
            .sum();
        let ord: usize = self.records.len() - agg;
        let mut out = format!(
            "{} transformations ({agg} aggregation, {ord} ordering) on {:?}; graph {} -> {} nodes\n",
            self.records.len(),
            self.graph.plain().name(),
            self.graph.plain().len(),
            self.graph.len(),
        );
        for (k, n) in by_kind.into_iter().filter(|(_, n)| *n > 0) {
            out.push_str(&format!("  {:<16} x{n}\n", k.name()));
        }
        out
    }

    /// Starts an empty message bound to this codec.
    pub fn message(&self) -> Message<'_> {
        Message::new(&self.graph)
    }

    /// Starts an empty message with a deterministic RNG (reproducible
    /// random shares/pads).
    pub fn message_seeded(&self, seed: u64) -> Message<'_> {
        Message::with_seed(&self.graph, seed)
    }

    /// Serializes a message into the obfuscated wire format.
    ///
    /// Thin wrapper over a one-shot [`Codec::serializer`] session (the
    /// plan itself is cached). For steady-state traffic, hold a session
    /// and use [`SerializeSession::serialize_into`] instead.
    ///
    /// # Errors
    ///
    /// [`BuildError`] for missing fields or inconsistent structure.
    pub fn serialize(&self, msg: &Message<'_>) -> Result<Vec<u8>, BuildError> {
        self.serialize_seeded(msg, rand::random())
    }

    /// Serializes with a deterministic seed for serialization-time random
    /// material (pads, auto-field shares).
    ///
    /// # Errors
    ///
    /// See [`Codec::serialize`].
    pub fn serialize_seeded(&self, msg: &Message<'_>, seed: u64) -> Result<Vec<u8>, BuildError> {
        let mut out = Vec::new();
        self.serializer().serialize_into_seeded(msg, &mut out, seed)?;
        Ok(out)
    }

    /// Parses an obfuscated message back into plain field values.
    ///
    /// Thin wrapper over a one-shot [`Codec::parser`] session (the plan
    /// itself is cached). For steady-state traffic, hold a session and use
    /// [`ParseSession::parse_in_place`] instead.
    ///
    /// # Errors
    ///
    /// [`ParseError`] when the bytes are not a valid message of this codec.
    pub fn parse(&self, bytes: &[u8]) -> Result<Message<'_>, ParseError> {
        let mut session = self.parser();
        session.parse_in_place(bytes)?;
        Ok(session.into_message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Boundary, GraphBuilder};

    fn tiny() -> FormatGraph {
        let mut b = GraphBuilder::new("tiny");
        let root = b.root_sequence("msg", Boundary::End);
        b.uint_be(root, "a", 2);
        b.uint_be(root, "b", 1);
        b.build().unwrap()
    }

    #[test]
    fn identity_codec_roundtrip() {
        let c = Codec::identity(&tiny());
        assert_eq!(c.transform_count(), 0);
        let mut m = c.message_seeded(1);
        m.set_uint("a", 513).unwrap();
        m.set_uint("b", 7).unwrap();
        let wire = c.serialize_seeded(&m, 2).unwrap();
        assert_eq!(wire, vec![2, 1, 7]);
        let back = c.parse(&wire).unwrap();
        assert_eq!(back.get_uint("a").unwrap(), 513);
        assert_eq!(back.get_uint("b").unwrap(), 7);
    }

    #[test]
    fn codec_is_cloneable_and_debuggable() {
        let c = Codec::identity(&tiny());
        let c2 = c.clone();
        assert_eq!(c2.plain().name(), "tiny");
        assert!(!format!("{c:?}").is_empty());
    }

    #[test]
    fn transcode_targets_share_one_cached_program() {
        let g = tiny();
        let clear = Codec::identity(&g);
        let obf = crate::engine::Obfuscator::new(&g).seed(3).max_per_node(2).obfuscate().unwrap();
        let p1 = obf.copy_program_from(&clear).unwrap();
        let p2 = obf.copy_program_from(&clear).unwrap();
        assert!(std::sync::Arc::ptr_eq(&p1, &p2), "one compile per (src, dst) pairing");

        // An armed target transcodes straight through the shared program.
        let mut m = clear.message_seeded(1);
        m.set_uint("a", 513).unwrap();
        m.set_uint("b", 7).unwrap();
        let mut dst = obf.transcode_target(&clear).unwrap();
        m.transcode_into(&mut dst).unwrap();
        assert_eq!(dst.get_uint("a").unwrap(), 513);
        assert_eq!(dst.get_uint("b").unwrap(), 7);

        // Foreign specs are rejected at target construction, before any
        // traffic could flow through a mis-paired relay.
        let mut other = GraphBuilder::new("other");
        let root = other.root_sequence("m", Boundary::End);
        other.uint_be(root, "x", 1);
        let foreign = Codec::identity(&other.build().unwrap());
        assert!(matches!(obf.transcode_target(&foreign), Err(BuildError::GraphMismatch { .. })));
    }

    #[test]
    fn plan_summary_reports_counts() {
        let g = tiny();
        let identity = Codec::identity(&g);
        assert!(identity.plan_summary().starts_with("0 transformations"));
        let codec = crate::engine::Obfuscator::new(&g).seed(3).max_per_node(2).obfuscate().unwrap();
        let s = codec.plan_summary();
        assert!(s.contains("aggregation"));
        assert!(s.contains("ordering"));
        assert!(s.contains("-> "));
        // Every applied kind appears with a count.
        for r in codec.records() {
            assert!(s.contains(r.kind.name()), "{s}");
        }
    }
}

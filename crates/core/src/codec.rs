//! The [`Codec`]: a generated obfuscating serializer/parser pair.
//!
//! A codec is what the paper's framework emits as a C library: the product
//! of a message format specification and an obfuscation plan. Both
//! communicating peers construct the same codec from the same specification
//! and seed, so they agree on every transformation parameter.

use std::sync::OnceLock;

use crate::error::{BuildError, ParseError};
use crate::graph::FormatGraph;
use crate::message::Message;
use crate::obf::ObfGraph;
use crate::parse::ParseSession;
use crate::plan::CodecPlan;
use crate::serialize::SerializeSession;
use crate::transform::TransformRecord;

/// An obfuscating serializer/parser pair for one message format.
#[derive(Debug)]
pub struct Codec {
    graph: ObfGraph,
    records: Vec<TransformRecord>,
    /// Lazily compiled execution plan shared by every session.
    plan: OnceLock<CodecPlan>,
}

impl Clone for Codec {
    fn clone(&self) -> Self {
        let plan = OnceLock::new();
        if let Some(p) = self.plan.get() {
            let _ = plan.set(p.clone());
        }
        Codec { graph: self.graph.clone(), records: self.records.clone(), plan }
    }
}

impl Codec {
    pub(crate) fn from_parts(graph: ObfGraph, records: Vec<TransformRecord>) -> Self {
        Codec { graph, records, plan: OnceLock::new() }
    }

    /// A codec with zero transformations: the plain (classic) protocol.
    pub fn identity(plain: &FormatGraph) -> Self {
        Codec::from_parts(ObfGraph::from_plain(plain), Vec::new())
    }

    /// The compiled execution plan (built on first use, then cached). Both
    /// the one-shot entry points and the session constructors share it.
    pub fn plan(&self) -> &CodecPlan {
        self.plan.get_or_init(|| CodecPlan::compile(&self.graph))
    }

    /// Starts a reusable serialization session over the compiled plan.
    /// Keep the session (and an output buffer) across messages for
    /// allocation-free steady-state serialization.
    pub fn serializer(&self) -> SerializeSession<'_> {
        SerializeSession::new(&self.graph, self.plan())
    }

    /// Starts a reusable parse session over the compiled plan. Keep the
    /// session across messages for allocation-free steady-state parsing.
    pub fn parser(&self) -> ParseSession<'_> {
        ParseSession::new(&self.graph, self.plan())
    }

    /// Wraps this codec in a concurrent [`crate::service::CodecService`]:
    /// one shared plan behind sharded pools of worker sessions.
    pub fn into_service(self) -> crate::service::CodecService {
        crate::service::CodecService::new(self)
    }

    /// The plain specification.
    pub fn plain(&self) -> &FormatGraph {
        self.graph.plain()
    }

    /// The obfuscation graph (`G_{n+1}`).
    pub fn obf_graph(&self) -> &ObfGraph {
        &self.graph
    }

    /// The applied transformations, in application order.
    pub fn records(&self) -> &[TransformRecord] {
        &self.records
    }

    /// Number of applied transformations (the paper's
    /// "Nb. transf. applied" metric).
    pub fn transform_count(&self) -> usize {
        self.records.len()
    }

    /// Human-readable plan summary: applied transformations by kind and
    /// category, plus graph growth. Useful for logs and the CLI.
    pub fn plan_summary(&self) -> String {
        use crate::transform::{Category, TransformKind};
        let mut by_kind: Vec<(TransformKind, usize)> =
            TransformKind::ALL.iter().map(|&k| (k, 0)).collect();
        for r in &self.records {
            if let Some(slot) = by_kind.iter_mut().find(|(k, _)| *k == r.kind) {
                slot.1 += 1;
            }
        }
        let agg: usize = by_kind
            .iter()
            .filter(|(k, _)| k.category() == Category::Aggregation)
            .map(|(_, n)| n)
            .sum();
        let ord: usize = self.records.len() - agg;
        let mut out = format!(
            "{} transformations ({agg} aggregation, {ord} ordering) on {:?}; graph {} -> {} nodes\n",
            self.records.len(),
            self.graph.plain().name(),
            self.graph.plain().len(),
            self.graph.len(),
        );
        for (k, n) in by_kind.into_iter().filter(|(_, n)| *n > 0) {
            out.push_str(&format!("  {:<16} x{n}\n", k.name()));
        }
        out
    }

    /// Starts an empty message bound to this codec.
    pub fn message(&self) -> Message<'_> {
        Message::new(&self.graph)
    }

    /// Starts an empty message with a deterministic RNG (reproducible
    /// random shares/pads).
    pub fn message_seeded(&self, seed: u64) -> Message<'_> {
        Message::with_seed(&self.graph, seed)
    }

    /// Serializes a message into the obfuscated wire format.
    ///
    /// Thin wrapper over a one-shot [`Codec::serializer`] session (the
    /// plan itself is cached). For steady-state traffic, hold a session
    /// and use [`SerializeSession::serialize_into`] instead.
    ///
    /// # Errors
    ///
    /// [`BuildError`] for missing fields or inconsistent structure.
    pub fn serialize(&self, msg: &Message<'_>) -> Result<Vec<u8>, BuildError> {
        self.serialize_seeded(msg, rand::random())
    }

    /// Serializes with a deterministic seed for serialization-time random
    /// material (pads, auto-field shares).
    ///
    /// # Errors
    ///
    /// See [`Codec::serialize`].
    pub fn serialize_seeded(&self, msg: &Message<'_>, seed: u64) -> Result<Vec<u8>, BuildError> {
        let mut out = Vec::new();
        self.serializer().serialize_into_seeded(msg, &mut out, seed)?;
        Ok(out)
    }

    /// Parses an obfuscated message back into plain field values.
    ///
    /// Thin wrapper over a one-shot [`Codec::parser`] session (the plan
    /// itself is cached). For steady-state traffic, hold a session and use
    /// [`ParseSession::parse_in_place`] instead.
    ///
    /// # Errors
    ///
    /// [`ParseError`] when the bytes are not a valid message of this codec.
    pub fn parse(&self, bytes: &[u8]) -> Result<Message<'_>, ParseError> {
        let mut session = self.parser();
        session.parse_in_place(bytes)?;
        Ok(session.into_message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Boundary, GraphBuilder};

    fn tiny() -> FormatGraph {
        let mut b = GraphBuilder::new("tiny");
        let root = b.root_sequence("msg", Boundary::End);
        b.uint_be(root, "a", 2);
        b.uint_be(root, "b", 1);
        b.build().unwrap()
    }

    #[test]
    fn identity_codec_roundtrip() {
        let c = Codec::identity(&tiny());
        assert_eq!(c.transform_count(), 0);
        let mut m = c.message_seeded(1);
        m.set_uint("a", 513).unwrap();
        m.set_uint("b", 7).unwrap();
        let wire = c.serialize_seeded(&m, 2).unwrap();
        assert_eq!(wire, vec![2, 1, 7]);
        let back = c.parse(&wire).unwrap();
        assert_eq!(back.get_uint("a").unwrap(), 513);
        assert_eq!(back.get_uint("b").unwrap(), 7);
    }

    #[test]
    fn codec_is_cloneable_and_debuggable() {
        let c = Codec::identity(&tiny());
        let c2 = c.clone();
        assert_eq!(c2.plain().name(), "tiny");
        assert!(!format!("{c:?}").is_empty());
    }

    #[test]
    fn plan_summary_reports_counts() {
        let g = tiny();
        let identity = Codec::identity(&g);
        assert!(identity.plan_summary().starts_with("0 transformations"));
        let codec = crate::engine::Obfuscator::new(&g).seed(3).max_per_node(2).obfuscate().unwrap();
        let s = codec.plan_summary();
        assert!(s.contains("aggregation"));
        assert!(s.contains("ordering"));
        assert!(s.contains("-> "));
        // Every applied kind appears with a count.
        for r in codec.records() {
            assert!(s.contains(r.kind.name()), "{s}");
        }
    }
}

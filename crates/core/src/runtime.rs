//! Shared runtime machinery: top-down value *distribution* (the forward
//! aggregation transformations, τ) and bottom-up value *recovery* (their
//! inverses, τ⁻¹).
//!
//! Both the accessor layer ([`crate::message`]) and the wire layer
//! ([`crate::serialize`], [`crate::parse`]) use these primitives, which is
//! what guarantees τ⁻¹ ∘ τ = id across the whole system: the same rewrite
//! metadata drives both directions.

use rand::Rng;

use crate::error::BuildError;
use crate::graph::{FormatGraph, NodeId, NodeType};
use crate::obf::{ObfGraph, ObfId, ObfKind, Recombine};
use crate::value::{apply_op, Value};

/// Element-index scope of a node instance: one index per
/// repetition/tabular crossed, outermost first.
pub type Scope = Vec<u32>;

/// Number of repetition/tabular ancestors of a plain node — the scope
/// depth its instances live at.
pub fn container_depth(plain: &FormatGraph, x: NodeId) -> usize {
    let mut d = 0;
    let mut cur = plain.node(x).parent();
    while let Some(p) = cur {
        if matches!(plain.node(p).node_type(), NodeType::Repetition(_) | NodeType::Tabular) {
            d += 1;
        }
        cur = plain.node(p).parent();
    }
    d
}

/// Truncates `scope` to the depth plain node `x` lives at. Referenced
/// nodes are always at a scope-prefix of their users (backward-reference
/// rule), so taking the outermost components is exact.
pub fn scoped(plain: &FormatGraph, x: NodeId, scope: &[u32]) -> Scope {
    let d = container_depth(plain, x);
    scope[..d.min(scope.len())].to_vec()
}

/// Applies a terminal's constant-op stack (forward direction).
fn apply_ops(ops: &[crate::obf::ConstOp], v: Value) -> Value {
    let mut bytes = v.into_bytes();
    for op in ops {
        bytes = apply_op(op.op, &bytes, &op.k);
    }
    Value::from_bytes(bytes)
}

/// Undoes a terminal's constant-op stack (reverse order, inverse ops).
fn undo_ops(ops: &[crate::obf::ConstOp], v: Value) -> Value {
    let mut bytes = v.into_bytes();
    for op in ops.iter().rev() {
        bytes = apply_op(op.op.inverse(), &bytes, &op.k);
    }
    Value::from_bytes(bytes)
}

/// Distributes `input` through the holder subtree rooted at `node`,
/// emitting the wire value of every terminal instance into `sink`.
///
/// This is the forward aggregation pass the paper runs inside the
/// generated setters: constant ops are applied, split sequences cut the
/// value into pieces or into a random share plus a combined share.
///
/// # Errors
///
/// [`BuildError::BadValueLength`] / [`BuildError::ValueContainsDelimiter`]
/// when the input violates a boundary of the subtree.
pub fn distribute<R: Rng + ?Sized>(
    g: &ObfGraph,
    node: ObfId,
    input: Value,
    scope: &[u32],
    rng: &mut R,
    sink: &mut dyn FnMut(ObfId, &[u32], Value),
) -> Result<(), BuildError> {
    let n = g.node(node);
    match &n.kind {
        ObfKind::Terminal { ops, boundary, .. } => {
            use crate::obf::TermBoundary;
            match boundary {
                TermBoundary::Fixed(k) => {
                    if input.len() != *k {
                        return Err(BuildError::BadValueLength {
                            path: n.name().to_string(),
                            expected: *k,
                            found: input.len(),
                        });
                    }
                }
                TermBoundary::Delimited(d) => {
                    if contains(input.as_bytes(), d) {
                        return Err(BuildError::ValueContainsDelimiter {
                            path: n.name().to_string(),
                        });
                    }
                }
                TermBoundary::PlainLen { .. } | TermBoundary::End => {}
            }
            sink(node, scope, apply_ops(ops, input));
            Ok(())
        }
        ObfKind::SplitSeq { expr, recombine } => {
            let v = apply_ops(&expr.ops, input);
            let bytes = v.into_bytes();
            let (left, right) = match recombine {
                Recombine::Concat(at) => {
                    let p = at.position(bytes.len());
                    (bytes[..p].to_vec(), bytes[p..].to_vec())
                }
                Recombine::Op(op) => {
                    let share: Vec<u8> = (0..bytes.len()).map(|_| rng.gen()).collect();
                    let combined = apply_op(*op, &bytes, pad_one(&share));
                    (share, combined)
                }
            };
            distribute(g, n.children()[0], Value::from_bytes(left), scope, rng, sink)?;
            distribute(g, n.children()[1], Value::from_bytes(right), scope, rng, sink)
        }
        ObfKind::Mirror | ObfKind::Prefixed { .. } => {
            distribute(g, n.children()[0], input, scope, rng, sink)
        }
        other => unreachable!(
            "holder subtrees contain only terminals, split sequences and wrappers, found {}",
            other.tag()
        ),
    }
}

/// `apply_op` requires a non-empty right operand; an empty share only
/// occurs together with an empty value, where any 1-byte operand is inert.
fn pad_one(share: &[u8]) -> &[u8] {
    if share.is_empty() {
        &[0]
    } else {
        share
    }
}

/// Recovers the base value of the holder subtree rooted at `node` from
/// terminal wire values (the inverse aggregation pass, run by getters and
/// by the parser for structurally needed references).
///
/// Returns `None` when a required wire value is missing from `lookup`.
pub fn recover(
    g: &ObfGraph,
    node: ObfId,
    scope: &[u32],
    lookup: &dyn Fn(ObfId, &[u32]) -> Option<Value>,
) -> Option<Value> {
    let n = g.node(node);
    match &n.kind {
        ObfKind::Terminal { ops, .. } => {
            let wire = lookup(node, scope)?;
            Some(undo_ops(ops, wire))
        }
        ObfKind::SplitSeq { expr, recombine } => {
            let a = recover(g, n.children()[0], scope, lookup)?;
            let b = recover(g, n.children()[1], scope, lookup)?;
            let v = match recombine {
                Recombine::Concat(_) => {
                    let mut bytes = a.into_bytes();
                    bytes.extend_from_slice(b.as_bytes());
                    Value::from_bytes(bytes)
                }
                Recombine::Op(op) => {
                    Value::from_bytes(apply_op(op.inverse(), b.as_bytes(), pad_one(a.as_bytes())))
                }
            };
            Some(undo_ops(&expr.ops, v))
        }
        ObfKind::Mirror | ObfKind::Prefixed { .. } => recover(g, n.children()[0], scope, lookup),
        _ => None,
    }
}

/// Structural identity of two plain specifications — the precondition of
/// [`crate::message::Message::transcode_into`] and of
/// [`crate::plan::CopyProgram::compile`], both of which copy values by
/// raw node index. A name/size fingerprint alone would let two
/// coincidentally same-sized specs silently mis-map fields, so every node
/// is compared (name, type, boundary, auto rule, topology). Specs are
/// small (tens of nodes), so the per-call cost is a short scan with early
/// exit — and both callers cache the verdict per graph pairing anyway.
pub(crate) fn plains_match(a: &FormatGraph, b: &FormatGraph) -> bool {
    a.name() == b.name()
        && a.len() == b.len()
        && a.ids().all(|i| {
            let (na, nb) = (a.node(i), b.node(i));
            na.name() == nb.name()
                && na.node_type() == nb.node_type()
                && na.boundary() == nb.boundary()
                && na.auto() == nb.auto()
                && na.parent() == nb.parent()
                && na.children() == nb.children()
        })
}

/// Byte-string containment used for delimiter validation.
pub fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() || haystack.len() < needle.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Locates `needle` in `haystack[from..to]`, returning the absolute offset.
pub fn find(haystack: &[u8], needle: &[u8], from: usize, to: usize) -> Option<usize> {
    if needle.is_empty() || to < from + needle.len() {
        return None;
    }
    haystack[from..to].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, GraphBuilder};
    use crate::transform::{apply, TransformKind};
    use crate::value::TerminalKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn sample() -> ObfGraph {
        let mut b = GraphBuilder::new("s");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        b.uint_be(root, "code", 4);
        ObfGraph::from_plain(&b.build().unwrap())
    }

    fn roundtrip_through(g: &ObfGraph, x: NodeId, input: &[u8]) -> Value {
        let holder = g.holder_of(x).unwrap();
        let mut store: HashMap<(ObfId, Scope), Value> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(3);
        distribute(
            g,
            holder,
            Value::from_bytes(input.to_vec()),
            &[],
            &mut rng,
            &mut |id, sc, v| {
                store.insert((id, sc.to_vec()), v);
            },
        )
        .unwrap();
        recover(g, holder, &[], &|id, sc| store.get(&(id, sc.to_vec())).cloned()).unwrap()
    }

    #[test]
    fn identity_distribution_roundtrips() {
        let g = sample();
        let data = g.plain().resolve_names(&["data"]).unwrap();
        assert_eq!(roundtrip_through(&g, data, b"hello").as_bytes(), b"hello");
    }

    #[test]
    fn roundtrip_after_split_and_const_stack() {
        let mut g = sample();
        let mut rng = StdRng::seed_from_u64(11);
        let code_plain = g.plain().resolve_names(&["code"]).unwrap();
        let code = g.holder_of(code_plain).unwrap();
        apply(&mut g, code, TransformKind::ConstAdd, &mut rng).unwrap();
        let holder = g.holder_of(code_plain).unwrap();
        let rec = apply(&mut g, holder, TransformKind::SplitXor, &mut rng).unwrap();
        apply(&mut g, rec.created[1], TransformKind::ConstSub, &mut rng).unwrap();
        apply(&mut g, rec.created[2], TransformKind::SplitCat, &mut rng).unwrap();
        assert_eq!(roundtrip_through(&g, code_plain, b"\x01\x02\x03\x04").as_bytes(), [1, 2, 3, 4]);
    }

    #[test]
    fn roundtrip_empty_value_through_split() {
        let mut g = sample();
        let mut rng = StdRng::seed_from_u64(5);
        let data_plain = g.plain().resolve_names(&["data"]).unwrap();
        let holder = g.holder_of(data_plain).unwrap();
        apply(&mut g, holder, TransformKind::SplitAdd, &mut rng).unwrap();
        assert_eq!(roundtrip_through(&g, data_plain, b"").len(), 0);
    }

    #[test]
    fn distribute_rejects_bad_fixed_length() {
        let g = sample();
        let code = g.plain().resolve_names(&["code"]).unwrap();
        let holder = g.holder_of(code).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let r =
            distribute(&g, holder, Value::from_bytes(vec![1, 2]), &[], &mut rng, &mut |_, _, _| {});
        assert!(matches!(r, Err(BuildError::BadValueLength { expected: 4, found: 2, .. })));
    }

    #[test]
    fn recover_missing_wire_is_none() {
        let g = sample();
        let code = g.plain().resolve_names(&["code"]).unwrap();
        let holder = g.holder_of(code).unwrap();
        assert!(recover(&g, holder, &[], &|_, _| None).is_none());
    }

    #[test]
    fn scope_truncation() {
        let mut b = GraphBuilder::new("t");
        let root = b.root_sequence("m", Boundary::End);
        let count = b.uint_be(root, "count", 1);
        let tab = b.tabular(root, "items", count);
        b.set_auto(count, AutoValue::CounterOf(tab));
        let item = b.sequence(tab, "item", Boundary::Delegated);
        b.uint_be(item, "v", 2);
        let plain = b.build().unwrap();
        let v = plain.resolve_names(&["items", "v"]).unwrap();
        let c = plain.resolve_names(&["count"]).unwrap();
        assert_eq!(container_depth(&plain, v), 1);
        assert_eq!(container_depth(&plain, c), 0);
        assert_eq!(scoped(&plain, v, &[3]), vec![3]);
        assert_eq!(scoped(&plain, c, &[3]), Vec::<u32>::new());
    }

    #[test]
    fn find_and_contains() {
        assert!(contains(b"abcd", b"bc"));
        assert!(!contains(b"abcd", b"ca"));
        assert!(!contains(b"ab", b"abc"));
        assert_eq!(find(b"xxabyy", b"ab", 0, 6), Some(2));
        assert_eq!(find(b"xxabyy", b"ab", 3, 6), None);
        assert_eq!(find(b"xxabab", b"ab", 3, 6), Some(4));
    }
}

//! Random message sampling for any specification.
//!
//! Generates structurally valid messages for arbitrary format graphs:
//! useful for demos, fuzzing and experiments on user-supplied
//! specifications (protocol-specific generators, like the Modbus/HTTP core
//! applications, produce more realistic values).

use rand::Rng;

use crate::codec::Codec;
use crate::graph::{Boundary, FormatGraph, NodeId, NodeType};
use crate::message::Message;
use crate::value::{TerminalKind, Value};

/// Builds a random, structurally valid message for `codec`'s plain
/// specification.
///
/// * fixed-width fields get random bytes/integers;
/// * delimited fields get short alphanumeric strings free of their
///   delimiter;
/// * optional presence follows the (random) value of the condition
///   subject;
/// * repetitions/tabulars get 0–3 elements, with user-set counter fields
///   kept consistent.
pub fn random_message<'c, R: Rng + ?Sized>(codec: &'c Codec, rng: &mut R) -> Message<'c> {
    random_message_pinned(codec, rng, &[])
}

/// Like [`random_message`], but every terminal listed in `pins` receives
/// the given value (in every concrete instance) instead of a sampled one.
///
/// Because optional presence follows the subject's already-set value,
/// pinning an optional's condition subject to an enabling constant forces
/// that branch present — the covert tunnel ([`crate::tunnel`]) uses this
/// to steer sampling toward carrier-bearing message shapes without ever
/// leaving the grammar. Pinned values must satisfy the field's own
/// constraints (width for integers, delimiter-freedom for delimited
/// text); values lifted from the grammar's own predicate constants do by
/// construction. Pins on auto or user-set counter fields are ignored —
/// consistency wins over steering.
pub fn random_message_pinned<'c, R: Rng + ?Sized>(
    codec: &'c Codec,
    rng: &mut R,
    pins: &[(NodeId, Value)],
) -> Message<'c> {
    let mut msg = codec.message_seeded(rng.gen());
    sample_into(codec, &mut msg, rng, pins);
    msg
}

/// Refills a long-lived message with a fresh random sample, keeping its
/// allocated stores ([`Message::clear`] semantics) — the pooled analogue
/// of [`random_message_pinned`] for callers that sample per event on a
/// hot path (the transport responder's per-request replies). `msg` must
/// have been created from `codec`.
///
/// Note what this does and does not save: the message's wire/presence/
/// count stores are reused, but sampled *values* still allocate (each
/// bytes/text value is built as a fresh `Vec`/`String`, and instance
/// paths are formatted per field) because the sampled structure varies
/// draw to draw. Pooling removes the per-message store churn; the
/// per-value churn is inherent to structure-varying sampling.
pub fn sample_into<R: Rng + ?Sized>(
    codec: &Codec,
    msg: &mut Message<'_>,
    rng: &mut R,
    pins: &[(NodeId, Value)],
) {
    msg.clear();
    let plain = codec.plain();
    let mut set_paths = std::collections::HashMap::new();
    fill(plain, plain.root(), msg, String::new(), rng, &mut set_paths, pins);
}

fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

fn fill<R: Rng + ?Sized>(
    plain: &FormatGraph,
    id: NodeId,
    msg: &mut Message<'_>,
    path: String,
    rng: &mut R,
    set_paths: &mut std::collections::HashMap<NodeId, String>,
    pins: &[(NodeId, Value)],
) {
    let node = plain.node(id);
    match node.node_type() {
        NodeType::Terminal(kind) => {
            if node.auto().is_auto() {
                return; // serializer computes these
            }
            // Tabular counters that are user-set were already written by
            // the tabular handler; don't overwrite them.
            if msg.get(&path).is_ok() {
                return;
            }
            let value = pins
                .iter()
                .find(|(p, _)| *p == id)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| random_value(plain, id, kind, rng));
            msg.set(&path, value).expect("generated value satisfies the field constraints");
            set_paths.insert(id, path);
        }
        NodeType::Sequence => {
            for &c in node.children() {
                let p = join(&path, plain.node(c).name());
                fill(plain, c, msg, p, rng, set_paths, pins);
            }
        }
        NodeType::Optional(cond) => {
            // Presence must follow the subject's (already set) value. The
            // subject is in a scope-prefix of this optional (validated), so
            // its most recently set concrete instance is the right one.
            let present = set_paths
                .get(&cond.subject)
                .and_then(|p| msg.get(p).ok())
                .map(|v| cond.predicate.eval(&v))
                .unwrap_or(false);
            if present {
                let child = node.children()[0];
                msg.mark_present(&path).expect("optional path resolves");
                let p = join(&path, plain.node(child).name());
                fill(plain, child, msg, p, rng, set_paths, pins);
            }
        }
        NodeType::Repetition(_) | NodeType::Tabular => {
            let count = rng.gen_range(0..=3usize);
            if let (NodeType::Tabular, Boundary::Counter(c)) = (node.node_type(), node.boundary()) {
                // A user-set counter must agree with the element count; the
                // counter's concrete instance path was recorded when it was
                // first filled (scope-prefix of this tabular).
                if !plain.node(*c).auto().is_auto() {
                    let cpath = set_paths.get(c).cloned().unwrap_or_else(|| path_of(plain, *c));
                    if let Some(TerminalKind::UInt { width, endian }) =
                        plain.node(*c).terminal_kind().cloned()
                    {
                        let v = Value::from_uint(count as u64, width, endian)
                            .expect("small count fits");
                        msg.set(&cpath, v).expect("counter path resolves");
                        set_paths.insert(*c, cpath);
                    }
                }
            }
            let child = node.children()[0];
            for i in 0..count {
                let p = format!("{path}[{i}].{}", plain.node(child).name());
                fill(plain, child, msg, p, rng, set_paths, pins);
            }
        }
    }
}

/// Dotted path of a node from the root (skipping the root name).
fn path_of(plain: &FormatGraph, id: NodeId) -> String {
    let mut parts = vec![plain.node(id).name().to_string()];
    let mut cur = plain.node(id).parent();
    while let Some(p) = cur {
        if plain.node(p).parent().is_none() {
            break;
        }
        parts.push(plain.node(p).name().to_string());
        cur = plain.node(p).parent();
    }
    parts.reverse();
    parts.join(".")
}

fn random_value<R: Rng + ?Sized>(
    plain: &FormatGraph,
    id: NodeId,
    kind: &TerminalKind,
    rng: &mut R,
) -> Value {
    let node = plain.node(id);
    match (kind, node.boundary()) {
        (TerminalKind::UInt { width, endian }, _) => {
            let max = if *width >= 8 { u64::MAX } else { (1u64 << (8 * width)) - 1 };
            Value::from_uint(rng.gen_range(0..=max), *width, *endian).expect("in range")
        }
        (_, Boundary::Fixed(k)) => {
            Value::from_bytes((0..*k).map(|_| rng.gen()).collect::<Vec<u8>>())
        }
        (_, Boundary::Delimited(delim)) => {
            // Alphanumeric text that cannot contain the delimiter.
            const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
            let safe: Vec<u8> = CHARSET.iter().copied().filter(|b| !delim.contains(b)).collect();
            let len = rng.gen_range(0..12usize);
            Value::from_bytes(
                (0..len).map(|_| safe[rng.gen_range(0..safe.len())]).collect::<Vec<u8>>(),
            )
        }
        (_, Boundary::Length(_)) => {
            // Never empty: a zero-length value makes its length prefix a
            // 0x00 leading byte, which aliases zero-byte terminators of
            // enclosing repetitions (DNS qname labels are the canonical
            // case — real DNS forbids empty labels for the same reason).
            let len = rng.gen_range(1..24usize);
            Value::from_bytes((0..len).map(|_| rng.gen()).collect::<Vec<u8>>())
        }
        (_, Boundary::End) => {
            let len = rng.gen_range(0..24usize);
            Value::from_bytes((0..len).map(|_| rng.gen()).collect::<Vec<u8>>())
        }
        _ => Value::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Obfuscator;
    use crate::graph::{AutoValue, Condition, GraphBuilder, Predicate, StopRule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rich() -> FormatGraph {
        let mut b = GraphBuilder::new("rich");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        let flag = b.uint_be(root, "flag", 1);
        let opt = b.optional(
            root,
            "extra",
            Condition {
                subject: flag,
                predicate: Predicate::OneOf(
                    (0..128u8).map(|v| Value::from_bytes(vec![v])).collect(),
                ),
            },
        );
        b.uint_be(opt, "ev", 2);
        let count = b.uint_be(root, "count", 1);
        let tab = b.tabular(root, "items", count);
        b.uint_be(tab, "item", 2);
        // NB: count is user-set (not auto) — the sampler must keep it
        // consistent with the element count.
        let _ = count;
        let rep =
            b.repetition(root, "words", StopRule::Terminator(b"|".to_vec()), Boundary::Delegated);
        b.terminal(rep, "w", TerminalKind::Ascii, Boundary::Delimited(b";".to_vec()));
        b.terminal(root, "tail", TerminalKind::Bytes, Boundary::End);
        b.build().unwrap()
    }

    #[test]
    fn random_messages_roundtrip_plain() {
        let g = rich();
        let codec = Codec::identity(&g);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let msg = random_message(&codec, &mut rng);
            let wire = codec.serialize_seeded(&msg, 1).unwrap();
            let back = codec.parse(&wire).unwrap();
            assert_eq!(back.get("tail").unwrap(), msg.get("tail").unwrap());
            assert_eq!(back.element_count("items"), msg.element_count("items"));
        }
    }

    #[test]
    fn random_messages_roundtrip_obfuscated() {
        let g = rich();
        for seed in 0..6u64 {
            let codec = Obfuscator::new(&g).seed(seed).max_per_node(2).obfuscate().unwrap();
            let mut rng = StdRng::seed_from_u64(seed + 9);
            for _ in 0..10 {
                let msg = random_message(&codec, &mut rng);
                let wire = codec.serialize_seeded(&msg, seed).unwrap();
                let back = codec.parse(&wire).unwrap();
                assert_eq!(back.get("data").unwrap(), msg.get("data").unwrap());
            }
        }
    }

    #[test]
    fn sampler_respects_optional_condition() {
        let g = rich();
        let codec = Codec::identity(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen_present = false;
        let mut seen_absent = false;
        for _ in 0..60 {
            let msg = random_message(&codec, &mut rng);
            let flag = msg.get_uint("flag").unwrap();
            assert_eq!(msg.is_present("extra"), flag < 128);
            seen_present |= msg.is_present("extra");
            seen_absent |= !msg.is_present("extra");
            // Must serialize without optional-mismatch errors.
            codec.serialize_seeded(&msg, 1).unwrap();
        }
        assert!(seen_present && seen_absent, "both branches exercised");
    }

    #[test]
    fn pinned_subject_forces_optional_branch() {
        let g = rich();
        let codec = Codec::identity(&g);
        let flag = g.ids().find(|&n| g.node(n).name() == "flag").unwrap();
        let pins = vec![(flag, Value::from_bytes(vec![3]))];
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let msg = random_message_pinned(&codec, &mut rng, &pins);
            assert_eq!(msg.get_uint("flag").unwrap(), 3);
            assert!(msg.is_present("extra"), "enabling pin forces the branch");
            codec.serialize_seeded(&msg, 1).unwrap();
        }
    }

    #[test]
    fn sampler_keeps_user_counters_consistent() {
        let g = rich();
        let codec = Codec::identity(&g);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let msg = random_message(&codec, &mut rng);
            assert_eq!(msg.get_uint("count").unwrap() as usize, msg.element_count("items"));
        }
    }

    #[test]
    fn works_on_embedded_protocol_specs() {
        // The sampler must handle arbitrary validated specs, including the
        // shipped ones.
        let spec = r#"
            message T {
                ascii method until " ";
                ascii uri until " ";
                bytes body rest;
            }
        "#;
        // Parse through the builder API equivalent: use spec crate in
        // integration tests; here build manually.
        let mut b = GraphBuilder::new("T");
        let root = b.root_sequence("t", Boundary::End);
        b.terminal(root, "method", TerminalKind::Ascii, Boundary::Delimited(b" ".to_vec()));
        b.terminal(root, "uri", TerminalKind::Ascii, Boundary::Delimited(b" ".to_vec()));
        b.terminal(root, "body", TerminalKind::Bytes, Boundary::End);
        let g = b.build().unwrap();
        let _ = spec;
        let codec = Codec::identity(&g);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let msg = random_message(&codec, &mut rng);
            let wire = codec.serialize_seeded(&msg, 3).unwrap();
            codec.parse(&wire).unwrap();
        }
    }
}

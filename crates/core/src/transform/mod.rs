//! The generic transformations of the paper's Table I.
//!
//! Each transformation is a graph rewrite with applicability constraints
//! (Table II). All of them are invertible by construction: the rewrite
//! installs forward semantics for the serializer and backward semantics for
//! the parser in the same [`crate::obf::ObfGraph`] nodes.
//!
//! | Transformation | Category | Effect |
//! |---|---|---|
//! | `SplitAdd`/`SplitSub`/`SplitXor` | aggregation | terminal → random share + combined share |
//! | `SplitCat` | aggregation | terminal → two concatenated pieces |
//! | `ConstAdd`/`ConstSub`/`ConstXor` | aggregation | byte-wise constant applied to the value |
//! | `BoundaryChange` | ordering | delimiter → length prefix |
//! | `PadInsert` | ordering | random bytes inserted into a sequence |
//! | `ReadFromEnd` | ordering | subtree serialized right-to-left |
//! | `TabSplit` | ordering | `(AB)^m` → `A^m B^m` (context-free shape) |
//! | `RepSplit` | ordering | `(AB)*` → `A^m B^m` with the count checked at parse (copy language) |
//! | `ChildMove` | ordering | permutation of two sequence children |

mod rewrites;

use std::fmt;

use rand::Rng;

use crate::error::TransformError;
use crate::extent::{self, ExtentClass};
use crate::obf::{ObfGraph, ObfId, ObfKind, RepStop, SeqBoundary, TermBoundary};

/// The thirteen generic transformations of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// Split a terminal into a random share and `value + share`.
    SplitAdd,
    /// Split with byte-wise subtraction.
    SplitSub,
    /// Split with byte-wise exclusive-or.
    SplitXor,
    /// Split a terminal into two concatenated pieces.
    SplitCat,
    /// Add a constant to the value, byte-wise.
    ConstAdd,
    /// Subtract a constant from the value, byte-wise.
    ConstSub,
    /// Xor the value with a constant, byte-wise.
    ConstXor,
    /// Replace a delimited boundary with a length prefix.
    BoundaryChange,
    /// Insert a random pad field into a sequence.
    PadInsert,
    /// Serialize a subtree from right to left.
    ReadFromEnd,
    /// Split a tabular of composite elements into a sequence of tabulars.
    TabSplit,
    /// Split a repetition of composite elements into two count-linked
    /// repetitions.
    RepSplit,
    /// Swap two children of a sequence.
    ChildMove,
}

/// Collberg-taxonomy category of a transformation (the paper applies
/// aggregation transformations in the accessors and ordering
/// transformations in the serializer, §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Value-level: applied on the fly by setters/getters.
    Aggregation,
    /// Structure-level: applied while serializing/parsing.
    Ordering,
}

impl TransformKind {
    /// All transformations, in Table I order.
    pub const ALL: [TransformKind; 13] = [
        TransformKind::SplitAdd,
        TransformKind::SplitSub,
        TransformKind::SplitXor,
        TransformKind::SplitCat,
        TransformKind::ConstAdd,
        TransformKind::ConstSub,
        TransformKind::ConstXor,
        TransformKind::BoundaryChange,
        TransformKind::PadInsert,
        TransformKind::ReadFromEnd,
        TransformKind::TabSplit,
        TransformKind::RepSplit,
        TransformKind::ChildMove,
    ];

    /// The paper's name for the transformation.
    pub fn name(self) -> &'static str {
        match self {
            TransformKind::SplitAdd => "SplitAdd",
            TransformKind::SplitSub => "SplitSub",
            TransformKind::SplitXor => "SplitXor",
            TransformKind::SplitCat => "SplitCat",
            TransformKind::ConstAdd => "ConstAdd",
            TransformKind::ConstSub => "ConstSub",
            TransformKind::ConstXor => "ConstXor",
            TransformKind::BoundaryChange => "BoundaryChange",
            TransformKind::PadInsert => "PadInsert",
            TransformKind::ReadFromEnd => "ReadFromEnd",
            TransformKind::TabSplit => "TabSplit",
            TransformKind::RepSplit => "RepSplit",
            TransformKind::ChildMove => "ChildMove",
        }
    }

    /// Inverse of [`TransformKind::name`]: resolves the paper's name back
    /// to the kind (used by the [`crate::profile`] text format).
    pub fn from_name(name: &str) -> Option<TransformKind> {
        TransformKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Collberg-taxonomy category.
    pub fn category(self) -> Category {
        match self {
            TransformKind::SplitAdd
            | TransformKind::SplitSub
            | TransformKind::SplitXor
            | TransformKind::SplitCat
            | TransformKind::ConstAdd
            | TransformKind::ConstSub
            | TransformKind::ConstXor => Category::Aggregation,
            _ => Category::Ordering,
        }
    }

    /// Default selection weight used by the engine's random choice. Value
    /// transformations (cheap, no new nodes) are favoured over structural
    /// ones, which keeps the growth of the graph across passes in the
    /// regime the paper reports (applied count roughly ×1.3 per extra
    /// level rather than doubling).
    pub fn weight(self) -> u32 {
        match self {
            TransformKind::ConstAdd
            | TransformKind::ConstSub
            | TransformKind::ConstXor
            | TransformKind::ChildMove => 6,
            TransformKind::BoundaryChange
            | TransformKind::PadInsert
            | TransformKind::TabSplit
            | TransformKind::RepSplit => 2,
            TransformKind::ReadFromEnd
            | TransformKind::SplitAdd
            | TransformKind::SplitSub
            | TransformKind::SplitXor
            | TransformKind::SplitCat => 1,
        }
    }

    /// True if the rewrite changes the serialized byte count of the
    /// subtree, which is forbidden under exactly-windowed ancestors.
    pub fn size_changing(self) -> bool {
        matches!(
            self,
            TransformKind::SplitAdd
                | TransformKind::SplitSub
                | TransformKind::SplitXor
                | TransformKind::BoundaryChange
                | TransformKind::PadInsert
        )
    }
}

impl fmt::Display for TransformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Record of one applied transformation: the paper's framework memorizes
/// these to derive the serializer and parser (§V-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformRecord {
    /// Which transformation fired.
    pub kind: TransformKind,
    /// The targeted node (as it was before the rewrite).
    pub target: ObfId,
    /// Name of the targeted node.
    pub target_name: String,
    /// Nodes created by the rewrite.
    pub created: Vec<ObfId>,
    /// Human-readable parameters (constant, split position, prefix width…).
    pub detail: String,
}

impl fmt::Display for TransformRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {:?}", self.kind, self.target_name)?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Checks the applicability constraints of `kind` on node `id`
/// (paper Table II "Constraints" rows, plus the structural soundness rules
/// this implementation adds to guarantee invertibility).
///
/// # Errors
///
/// Returns a human-readable reason when not applicable.
pub fn applicable(g: &ObfGraph, id: ObfId, kind: TransformKind) -> Result<(), String> {
    if g.get(id).is_none() {
        return Err("unknown node".into());
    }
    if kind.size_changing() {
        exact_window_ancestors_forbidden(g, id)?;
    }
    match kind {
        TransformKind::SplitAdd | TransformKind::SplitSub | TransformKind::SplitXor => {
            let b = terminal_boundary(g, id)?;
            match b {
                TermBoundary::Fixed(_) | TermBoundary::PlainLen { .. } => {}
                TermBoundary::Delimited(_) => {
                    return Err("splitting a delimited value breaks delimiter scanning".into())
                }
                TermBoundary::End => {
                    return Err("the first share of an End-bounded field cannot be delimited".into())
                }
            }
            no_element_leading(g, id)
        }
        TransformKind::SplitCat => {
            let b = terminal_boundary(g, id)?;
            match b {
                TermBoundary::Fixed(n) => {
                    if *n < 2 {
                        return Err("cannot cut a field shorter than 2 bytes".into());
                    }
                    Ok(())
                }
                // Cut at half of the (recoverable) plain length.
                TermBoundary::PlainLen { .. } => Ok(()),
                TermBoundary::Delimited(_) => {
                    Err("cutting a delimited value breaks delimiter scanning".into())
                }
                TermBoundary::End => {
                    Err("the first piece of an End-bounded field cannot be delimited".into())
                }
            }
        }
        TransformKind::ConstAdd | TransformKind::ConstSub | TransformKind::ConstXor => {
            let b = terminal_boundary(g, id)?;
            if matches!(b, TermBoundary::Delimited(_)) {
                return Err("transforming a delimited value breaks delimiter scanning".into());
            }
            no_element_leading(g, id)
        }
        TransformKind::BoundaryChange => {
            match &g.node(id).kind {
                ObfKind::Terminal { boundary, .. } => match boundary {
                    TermBoundary::Delimited(_) | TermBoundary::End => {}
                    _ => return Err("boundary is already length-determined".into()),
                },
                ObfKind::Repetition { stop: RepStop::Terminator(_) } => {}
                _ => {
                    return Err(
                        "target must be a delimited/end terminal or a terminated repetition".into(),
                    )
                }
            }
            no_element_leading(g, id)
        }
        TransformKind::PadInsert => match &g.node(id).kind {
            // The pad grows the target sequence itself, so an exactly
            // windowed target is as forbidden as an exactly windowed
            // ancestor.
            ObfKind::Sequence { boundary: SeqBoundary::Fixed(_) | SeqBoundary::PlainLen(_) } => {
                Err("target sequence has a pinned size".into())
            }
            ObfKind::Sequence { .. } => Ok(()),
            _ => Err("pads can only be inserted into sequences".into()),
        },
        TransformKind::ReadFromEnd => {
            extent::mirror_applicable(g, id)?;
            no_element_leading(g, id)
        }
        TransformKind::TabSplit => {
            let node = g.node(id);
            if !matches!(node.kind(), ObfKind::Tabular { .. }) {
                return Err("target must be a tabular".into());
            }
            composite_element(g, id)
        }
        TransformKind::RepSplit => {
            let node = g.node(id);
            match node.kind() {
                ObfKind::Repetition { stop: RepStop::Terminator(_) | RepStop::CountOf(_) } => {}
                ObfKind::Repetition { stop: RepStop::Exhausted } => {
                    return Err("splitting an exhausted repetition would be ambiguous".into())
                }
                _ => return Err("target must be a repetition".into()),
            }
            composite_element(g, id)
        }
        TransformKind::ChildMove => {
            let node = g.node(id);
            match node.kind() {
                ObfKind::Sequence { .. } => {}
                _ => return Err("target must be a sequence".into()),
            }
            // A pinned leading child (terminator-repetition element head)
            // cannot move, so one more child is needed in that case.
            let movable = node.children().len() - usize::from(rewrites::leading_sensitive(g, id));
            if movable < 2 {
                return Err("need at least two movable children to permute".into());
            }
            Ok(())
        }
    }
}

/// Applies `kind` on `id`, drawing parameters from `rng`.
///
/// The caller (the obfuscation engine) is responsible for the global
/// post-checks ([`post_check`]) and for rolling back on failure; this
/// function only enforces the local applicability constraints.
///
/// # Errors
///
/// [`TransformError::NotApplicable`] when constraints are violated.
pub fn apply<R: Rng + ?Sized>(
    g: &mut ObfGraph,
    id: ObfId,
    kind: TransformKind,
    rng: &mut R,
) -> Result<TransformRecord, TransformError> {
    if let Err(reason) = applicable(g, id, kind) {
        return Err(TransformError::NotApplicable {
            transform: kind.name(),
            node: g.get(id).map(|n| n.name().to_string()).unwrap_or_default(),
            reason,
        });
    }
    // The rewrite below mutates the graph's structure: refresh its uid so
    // caches keyed on the old version (transcode validation) miss.
    g.touch();
    Ok(match kind {
        TransformKind::SplitAdd => rewrites::split_op(g, id, crate::value::ByteOp::Add, kind),
        TransformKind::SplitSub => rewrites::split_op(g, id, crate::value::ByteOp::Sub, kind),
        TransformKind::SplitXor => rewrites::split_op(g, id, crate::value::ByteOp::Xor, kind),
        TransformKind::SplitCat => rewrites::split_cat(g, id, rng),
        TransformKind::ConstAdd => rewrites::const_op(g, id, crate::value::ByteOp::Add, kind, rng),
        TransformKind::ConstSub => rewrites::const_op(g, id, crate::value::ByteOp::Sub, kind, rng),
        TransformKind::ConstXor => rewrites::const_op(g, id, crate::value::ByteOp::Xor, kind, rng),
        TransformKind::BoundaryChange => rewrites::boundary_change(g, id, rng),
        TransformKind::PadInsert => rewrites::pad_insert(g, id, rng),
        TransformKind::ReadFromEnd => rewrites::read_from_end(g, id),
        TransformKind::TabSplit => rewrites::tab_split(g, id, rng),
        TransformKind::RepSplit => rewrites::rep_split(g, id, rng),
        TransformKind::ChildMove => rewrites::child_move(g, id, rng),
    })
}

/// Global soundness checks run after every rewrite. A failure means the
/// candidate transformation must be rolled back (the engine retries with
/// another one).
pub fn post_check(g: &ObfGraph) -> Result<(), String> {
    g.check_parse_order()?;
    extent::check_windows(g)?;
    // Every Mirror introduced earlier must still have a precomputable
    // child extent with outside references.
    for id in g.preorder() {
        if matches!(g.node(id).kind(), ObfKind::Mirror) {
            let child = g.node(id).children()[0];
            extent::mirror_applicable(g, child)
                .map_err(|e| format!("mirror {} invalidated: {e}", g.node(id).name()))?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// constraint helpers
// ---------------------------------------------------------------------------

fn terminal_boundary(g: &ObfGraph, id: ObfId) -> Result<&TermBoundary, String> {
    match &g.node(id).kind {
        ObfKind::Terminal { boundary, .. } => Ok(boundary),
        _ => Err("target must be a terminal".into()),
    }
}

/// Size-changing rewrites are forbidden under exactly-windowed ancestors
/// (the paper's "Boundary of parent nodes must be either Delegated or
/// End"): a Fixed or Length-bounded enclosing sequence pins the byte count.
fn exact_window_ancestors_forbidden(g: &ObfGraph, id: ObfId) -> Result<(), String> {
    for a in g.ancestors(id) {
        match &g.node(a).kind {
            ObfKind::Sequence { boundary: SeqBoundary::Fixed(_) } => {
                return Err(format!(
                    "ancestor {} has a fixed boundary; sizes are pinned",
                    g.node(a).name()
                ))
            }
            ObfKind::Sequence { boundary: SeqBoundary::PlainLen(_) } => {
                return Err(format!(
                    "ancestor {} is length-bounded; sizes are pinned",
                    g.node(a).name()
                ))
            }
            _ => {}
        }
    }
    Ok(())
}

/// The leftmost terminal of the subtree rooted at `id`, in parse order.
fn leftmost_terminal(g: &ObfGraph, id: ObfId) -> Option<ObfId> {
    g.subtree(id).into_iter().find(|&n| g.node(n).is_terminal())
}

/// Rejects rewrites that would randomize the first wire byte of a
/// terminator-delimited repetition's element: the parser distinguishes
/// "one more element" from "terminator" by looking at those bytes, so they
/// must keep their plain-protocol determinism. This is the constraint the
/// paper writes as "Boundary of parent nodes can be anything but
/// Delimited".
fn no_element_leading(g: &ObfGraph, target: ObfId) -> Result<(), String> {
    for a in g.ancestors(target) {
        if let ObfKind::Repetition { stop: RepStop::Terminator(_) } = g.node(a).kind() {
            let elem = g.node(a).children()[0];
            if let Some(first) = leftmost_terminal(g, elem) {
                if g.is_descendant(first, target) {
                    return Err(format!(
                        "would randomize the leading byte of terminated repetition {}",
                        g.node(a).name()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// TabSplit/RepSplit need a composite element: a delegated sequence with at
/// least two children (paper: "Boundary of X must be Delegated").
fn composite_element(g: &ObfGraph, id: ObfId) -> Result<(), String> {
    let elem = g.node(id).children()[0];
    match &g.node(elem).kind {
        ObfKind::Sequence { boundary: SeqBoundary::Delegated } => {
            if g.node(elem).children().len() < 2 {
                Err("element sequence needs at least two fields to split".into())
            } else {
                Ok(())
            }
        }
        ObfKind::Sequence { .. } => Err("element boundary must be Delegated".into()),
        _ => Err("element must be a sequence".into()),
    }
}

/// Classification helper re-exported for the engine's diagnostics.
pub fn extent_of(g: &ObfGraph, id: ObfId) -> ExtentClass {
    extent::classify(g, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, GraphBuilder, StopRule};
    use crate::value::TerminalKind;

    fn find(g: &ObfGraph, name: &str) -> ObfId {
        g.preorder().into_iter().find(|&id| g.node(id).name() == name).unwrap()
    }

    fn sample() -> ObfGraph {
        let mut b = GraphBuilder::new("s");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        b.terminal(root, "uri", TerminalKind::Ascii, Boundary::Delimited(b" ".to_vec()));
        let count = b.uint_be(root, "count", 1);
        let tab = b.tabular(root, "regs", count);
        b.set_auto(count, AutoValue::CounterOf(tab));
        let item = b.sequence(tab, "reg", Boundary::Delegated);
        b.uint_be(item, "addr", 2);
        b.uint_be(item, "value", 2);
        let rep = b.repetition(
            root,
            "headers",
            StopRule::Terminator(b"\r\n".to_vec()),
            Boundary::Delegated,
        );
        let h = b.sequence(rep, "header", Boundary::Delegated);
        b.terminal(h, "name", TerminalKind::Ascii, Boundary::Delimited(b":".to_vec()));
        b.terminal(h, "hv", TerminalKind::Ascii, Boundary::Delimited(b"\r\n".to_vec()));
        b.terminal(root, "body", TerminalKind::Bytes, Boundary::End);
        ObfGraph::from_plain(&b.build().unwrap())
    }

    #[test]
    fn names_and_categories() {
        assert_eq!(TransformKind::SplitAdd.name(), "SplitAdd");
        assert_eq!(TransformKind::SplitAdd.category(), Category::Aggregation);
        assert_eq!(TransformKind::ChildMove.category(), Category::Ordering);
        assert_eq!(TransformKind::ALL.len(), 13);
        assert!(TransformKind::BoundaryChange.size_changing());
        assert!(!TransformKind::SplitCat.size_changing());
    }

    #[test]
    fn split_on_fixed_and_plainlen_ok() {
        let g = sample();
        assert!(applicable(&g, find(&g, "len"), TransformKind::SplitAdd).is_ok());
        assert!(applicable(&g, find(&g, "data"), TransformKind::SplitXor).is_ok());
        assert!(applicable(&g, find(&g, "data"), TransformKind::SplitCat).is_ok());
    }

    #[test]
    fn split_rejected_on_delimited_and_end() {
        let g = sample();
        assert!(applicable(&g, find(&g, "uri"), TransformKind::SplitAdd).is_err());
        assert!(applicable(&g, find(&g, "body"), TransformKind::SplitAdd).is_err());
        assert!(applicable(&g, find(&g, "uri"), TransformKind::SplitCat).is_err());
    }

    #[test]
    fn splitcat_needs_two_bytes() {
        let g = sample();
        assert!(applicable(&g, find(&g, "count"), TransformKind::SplitCat).is_err());
        assert!(applicable(&g, find(&g, "addr"), TransformKind::SplitCat).is_ok());
    }

    #[test]
    fn const_allowed_on_end_but_not_delimited() {
        let g = sample();
        assert!(applicable(&g, find(&g, "body"), TransformKind::ConstXor).is_ok());
        assert!(applicable(&g, find(&g, "uri"), TransformKind::ConstAdd).is_err());
    }

    #[test]
    fn boundary_change_targets() {
        let g = sample();
        assert!(applicable(&g, find(&g, "uri"), TransformKind::BoundaryChange).is_ok());
        assert!(applicable(&g, find(&g, "body"), TransformKind::BoundaryChange).is_ok());
        assert!(applicable(&g, find(&g, "headers"), TransformKind::BoundaryChange).is_ok());
        assert!(applicable(&g, find(&g, "len"), TransformKind::BoundaryChange).is_err());
    }

    #[test]
    fn element_leading_rule_blocks_header_name() {
        let g = sample();
        // `name` is the first terminal of the terminated repetition's
        // element: value-randomizing transforms are rejected there.
        assert!(applicable(&g, find(&g, "name"), TransformKind::BoundaryChange).is_err());
        // The header value is not leading: BoundaryChange is fine.
        assert!(applicable(&g, find(&g, "hv"), TransformKind::BoundaryChange).is_ok());
    }

    #[test]
    fn tab_and_rep_split_constraints() {
        let g = sample();
        assert!(applicable(&g, find(&g, "regs"), TransformKind::TabSplit).is_ok());
        assert!(applicable(&g, find(&g, "headers"), TransformKind::RepSplit).is_ok());
        assert!(applicable(&g, find(&g, "regs"), TransformKind::RepSplit).is_err());
        assert!(applicable(&g, find(&g, "headers"), TransformKind::TabSplit).is_err());
    }

    #[test]
    fn childmove_needs_sequence_with_two_children() {
        let g = sample();
        assert!(applicable(&g, g.root(), TransformKind::ChildMove).is_ok());
        assert!(applicable(&g, find(&g, "len"), TransformKind::ChildMove).is_err());
    }

    #[test]
    fn pad_insert_targets_sequences_only() {
        let g = sample();
        assert!(applicable(&g, g.root(), TransformKind::PadInsert).is_ok());
        assert!(applicable(&g, find(&g, "data"), TransformKind::PadInsert).is_err());
    }

    #[test]
    fn read_from_end_respects_extent() {
        let g = sample();
        assert!(applicable(&g, find(&g, "data"), TransformKind::ReadFromEnd).is_ok());
        assert!(applicable(&g, find(&g, "uri"), TransformKind::ReadFromEnd).is_err());
        assert!(applicable(&g, find(&g, "reg"), TransformKind::ReadFromEnd).is_ok());
    }

    #[test]
    fn post_check_passes_on_identity() {
        let g = sample();
        assert!(post_check(&g).is_ok());
    }

    #[test]
    fn record_display() {
        let r = TransformRecord {
            kind: TransformKind::ConstAdd,
            target: ObfId(3),
            target_name: "len".into(),
            created: vec![],
            detail: "k=[7]".into(),
        };
        let s = r.to_string();
        assert!(s.contains("ConstAdd") && s.contains("len") && s.contains("k=[7]"));
    }
}

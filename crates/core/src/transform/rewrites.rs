//! Graph rewrites for each generic transformation.
//!
//! These functions assume the local applicability constraints
//! ([`super::applicable`]) already passed; the engine runs the global
//! [`super::post_check`] afterwards and rolls back on failure.

use rand::Rng;

use crate::obf::{
    Base, ConstOp, ObfGraph, ObfId, ObfKind, ObfNode, Recombine, RepStop, SeqBoundary, SplitExpr,
    TermBoundary,
};
use crate::value::{ByteOp, Endian, SplitAt, TerminalKind};

use super::{TransformKind, TransformRecord};

fn record(
    kind: TransformKind,
    g: &ObfGraph,
    target: ObfId,
    target_name: String,
    created: Vec<ObfId>,
    detail: String,
) -> TransformRecord {
    let _ = g;
    TransformRecord { kind, target, target_name, created, detail }
}

/// Splits a terminal into a random share and the combined share
/// (`SplitAdd`/`SplitSub`/`SplitXor`; paper Table II row 1).
pub(super) fn split_op(
    g: &mut ObfGraph,
    id: ObfId,
    op: ByteOp,
    kind: TransformKind,
) -> TransformRecord {
    let t = g.node(id).clone();
    let (t_kind, base, ops, boundary) = match t.kind {
        ObfKind::Terminal { kind, base, ops, boundary } => (kind, base, ops, boundary),
        _ => unreachable!("checked by applicable()"),
    };
    let next = t.obf_count + 1;
    let tag = g.allocated();

    let split = g.push(ObfNode {
        name: format!("{}_s{}", t.name, tag),
        kind: ObfKind::SplitSeq { expr: SplitExpr { base, ops }, recombine: Recombine::Op(op) },
        children: Vec::new(),
        parent: None,
        origin: t.origin,
        obf_count: next,
    });
    let share = g.push(ObfNode {
        name: format!("{}_r{}", t.name, tag),
        kind: ObfKind::Terminal {
            kind: TerminalKind::Bytes,
            base: Base::Inherit,
            ops: Vec::new(),
            boundary: boundary.clone(),
        },
        children: Vec::new(),
        parent: None,
        origin: None,
        obf_count: next,
    });
    let combined = g.push(ObfNode {
        name: format!("{}_v{}", t.name, tag),
        kind: ObfKind::Terminal { kind: t_kind, base: Base::Inherit, ops: Vec::new(), boundary },
        children: Vec::new(),
        parent: None,
        origin: None,
        obf_count: next,
    });

    g.replace_child(id, split);
    g.attach(split, 0, share);
    g.attach(split, 1, combined);
    if let Some(x) = t.origin {
        if g.holder_of(x) == Some(id) {
            g.move_holder(x, split);
        }
    }
    record(kind, g, id, t.name, vec![split, share, combined], format!("op={}", op.name()))
}

/// Cuts a terminal into two concatenated pieces (`SplitCat`).
pub(super) fn split_cat<R: Rng + ?Sized>(
    g: &mut ObfGraph,
    id: ObfId,
    rng: &mut R,
) -> TransformRecord {
    let t = g.node(id).clone();
    let (base, ops, boundary) = match t.kind {
        ObfKind::Terminal { base, ops, boundary, .. } => (base, ops, boundary),
        _ => unreachable!("checked by applicable()"),
    };
    let next = t.obf_count + 1;
    let tag = g.allocated();

    let (at, b_left, b_right, detail) = match &boundary {
        TermBoundary::Fixed(n) => {
            let p = rng.gen_range(1..*n);
            (
                SplitAt::Byte(p),
                TermBoundary::Fixed(p),
                TermBoundary::Fixed(n - p),
                format!("cut at byte {p}"),
            )
        }
        TermBoundary::PlainLen { source, steps } => {
            let mut lo = steps.clone();
            lo.push(crate::obf::LenStep::HalfLo);
            let mut hi = steps.clone();
            hi.push(crate::obf::LenStep::HalfHi);
            (
                SplitAt::Half,
                TermBoundary::PlainLen { source: *source, steps: lo },
                TermBoundary::PlainLen { source: *source, steps: hi },
                "cut at half".to_string(),
            )
        }
        _ => unreachable!("checked by applicable()"),
    };

    let split = g.push(ObfNode {
        name: format!("{}_c{}", t.name, tag),
        kind: ObfKind::SplitSeq { expr: SplitExpr { base, ops }, recombine: Recombine::Concat(at) },
        children: Vec::new(),
        parent: None,
        origin: t.origin,
        obf_count: next,
    });
    let left = g.push(ObfNode {
        name: format!("{}_l{}", t.name, tag),
        kind: ObfKind::Terminal {
            kind: TerminalKind::Bytes,
            base: Base::Inherit,
            ops: Vec::new(),
            boundary: b_left,
        },
        children: Vec::new(),
        parent: None,
        origin: None,
        obf_count: next,
    });
    let right = g.push(ObfNode {
        name: format!("{}_h{}", t.name, tag),
        kind: ObfKind::Terminal {
            kind: TerminalKind::Bytes,
            base: Base::Inherit,
            ops: Vec::new(),
            boundary: b_right,
        },
        children: Vec::new(),
        parent: None,
        origin: None,
        obf_count: next,
    });

    g.replace_child(id, split);
    g.attach(split, 0, left);
    g.attach(split, 1, right);
    if let Some(x) = t.origin {
        if g.holder_of(x) == Some(id) {
            g.move_holder(x, split);
        }
    }
    record(TransformKind::SplitCat, g, id, t.name, vec![split, left, right], detail)
}

/// Pushes a constant byte operation onto a terminal
/// (`ConstAdd`/`ConstSub`/`ConstXor`).
pub(super) fn const_op<R: Rng + ?Sized>(
    g: &mut ObfGraph,
    id: ObfId,
    op: ByteOp,
    kind: TransformKind,
    rng: &mut R,
) -> TransformRecord {
    let len = rng.gen_range(1..=4usize);
    let mut k: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
    if k.iter().all(|&b| b == 0) {
        k[0] = rng.gen_range(1..=255);
    }
    let name = g.node(id).name().to_string();
    let detail = format!("op={} k={:02x?}", op.name(), k);
    match &mut g.node_mut(id).kind {
        ObfKind::Terminal { ops, .. } => ops.push(ConstOp { op, k }),
        _ => unreachable!("checked by applicable()"),
    }
    g.node_mut(id).obf_count += 1;
    record(kind, g, id, name, vec![], detail)
}

/// Replaces a delimiter with a length prefix (`BoundaryChange`). The
/// transformed node is wrapped in a [`ObfKind::Prefixed`] node; the
/// delimiter disappears from the wire.
pub(super) fn boundary_change<R: Rng + ?Sized>(
    g: &mut ObfGraph,
    id: ObfId,
    rng: &mut R,
) -> TransformRecord {
    let width = if rng.gen_bool(0.5) { 2 } else { 4 };
    let endian = if rng.gen_bool(0.5) { Endian::Big } else { Endian::Little };
    let name = g.node(id).name().to_string();
    let prior = match &mut g.node_mut(id).kind {
        ObfKind::Terminal { boundary, .. } => match boundary {
            TermBoundary::Delimited(d) => {
                let old = format!("delimited {d:02x?}");
                *boundary = TermBoundary::End;
                old
            }
            TermBoundary::End => "end".to_string(),
            _ => unreachable!("checked by applicable()"),
        },
        ObfKind::Repetition { stop } => match stop {
            RepStop::Terminator(t) => {
                let old = format!("terminated {t:02x?}");
                *stop = RepStop::Exhausted;
                old
            }
            _ => unreachable!("checked by applicable()"),
        },
        _ => unreachable!("checked by applicable()"),
    };
    let next = g.node(id).obf_count + 1;
    g.node_mut(id).obf_count = next;
    let wrapper = g.push(ObfNode {
        name: format!("{}_len{}", name, g.allocated()),
        kind: ObfKind::Prefixed { width, endian },
        children: Vec::new(),
        parent: None,
        origin: None,
        obf_count: next,
    });
    g.replace_child(id, wrapper);
    g.attach(wrapper, 0, id);
    record(
        TransformKind::BoundaryChange,
        g,
        id,
        name,
        vec![wrapper],
        format!("{prior} -> {width}-byte {endian:?} prefix"),
    )
}

/// Inserts a random pad terminal into a sequence (`PadInsert`).
pub(super) fn pad_insert<R: Rng + ?Sized>(
    g: &mut ObfGraph,
    id: ObfId,
    rng: &mut R,
) -> TransformRecord {
    let len = rng.gen_range(1..=8usize);
    let n_children = g.node(id).children().len();
    let min_idx = usize::from(leading_sensitive(g, id));
    let idx = rng.gen_range(min_idx..=n_children.max(min_idx));
    let name = g.node(id).name().to_string();
    let next = g.node(id).obf_count + 1;
    g.node_mut(id).obf_count = next;
    let pad = g.push(ObfNode {
        name: format!("pad{}", g.allocated()),
        kind: ObfKind::Terminal {
            kind: TerminalKind::Bytes,
            base: Base::Pad(len),
            ops: Vec::new(),
            boundary: TermBoundary::Fixed(len),
        },
        children: Vec::new(),
        parent: None,
        origin: None,
        obf_count: next,
    });
    g.attach(id, idx.min(n_children), pad);
    record(
        TransformKind::PadInsert,
        g,
        id,
        name,
        vec![pad],
        format!("{len} byte(s) at index {idx}"),
    )
}

/// Wraps a subtree so its bytes are emitted right-to-left (`ReadFromEnd`).
pub(super) fn read_from_end(g: &mut ObfGraph, id: ObfId) -> TransformRecord {
    let name = g.node(id).name().to_string();
    let next = g.node(id).obf_count + 1;
    g.node_mut(id).obf_count = next;
    let wrapper = g.push(ObfNode {
        name: format!("{}_rev{}", name, g.allocated()),
        kind: ObfKind::Mirror,
        children: Vec::new(),
        parent: None,
        origin: None,
        obf_count: next,
    });
    g.replace_child(id, wrapper);
    g.attach(wrapper, 0, id);
    record(TransformKind::ReadFromEnd, g, id, name, vec![wrapper], String::new())
}

/// `(AB)^m` → `A^m B^m` (`TabSplit`, paper Table II).
pub(super) fn tab_split<R: Rng + ?Sized>(
    g: &mut ObfGraph,
    id: ObfId,
    rng: &mut R,
) -> TransformRecord {
    let t = g.node(id).clone();
    let counter = match t.kind {
        ObfKind::Tabular { counter } => counter,
        _ => unreachable!("checked by applicable()"),
    };
    let elem = t.children[0];
    let fields = g.node(elem).children().to_vec();
    let j = rng.gen_range(1..fields.len());
    let next = t.obf_count + 1;
    let tag = g.allocated();
    let elem_name = g.node(elem).name().to_string();

    let make_elem = |g: &mut ObfGraph, suffix: &str| {
        g.push(ObfNode {
            name: format!("{elem_name}_{suffix}{tag}"),
            kind: ObfKind::Sequence { boundary: SeqBoundary::Delegated },
            children: Vec::new(),
            parent: None,
            origin: None,
            obf_count: next,
        })
    };
    let e1 = make_elem(g, "a");
    let e2 = make_elem(g, "b");
    for (i, &f) in fields.iter().enumerate() {
        let target = if i < j { e1 } else { e2 };
        let pos = g.node(target).children().len();
        g.node_mut(f).parent = None;
        g.attach(target, pos, f);
    }
    g.node_mut(elem).children.clear();

    let make_tab = |g: &mut ObfGraph, suffix: &str, child: ObfId| {
        let tab = g.push(ObfNode {
            name: format!("{}_{suffix}{tag}", t.name),
            kind: ObfKind::Tabular { counter },
            children: Vec::new(),
            parent: None,
            origin: t.origin,
            obf_count: next,
        });
        g.attach(tab, 0, child);
        tab
    };
    let tab1 = make_tab(g, "a", e1);
    let tab2 = make_tab(g, "b", e2);
    let seq = g.push(ObfNode {
        name: format!("{}_sp{tag}", t.name),
        kind: ObfKind::Sequence { boundary: SeqBoundary::Delegated },
        children: Vec::new(),
        parent: None,
        origin: None,
        obf_count: next,
    });
    g.replace_child(id, seq);
    g.attach(seq, 0, tab1);
    g.attach(seq, 1, tab2);
    record(
        TransformKind::TabSplit,
        g,
        id,
        t.name,
        vec![seq, tab1, tab2, e1, e2],
        format!("element split after field {j}"),
    )
}

/// `(AB)*` → `A^m B^m` with `m` checked at parse time (`RepSplit`).
pub(super) fn rep_split<R: Rng + ?Sized>(
    g: &mut ObfGraph,
    id: ObfId,
    rng: &mut R,
) -> TransformRecord {
    let r = g.node(id).clone();
    let stop = match r.kind {
        ObfKind::Repetition { stop } => stop,
        _ => unreachable!("checked by applicable()"),
    };
    let elem = r.children[0];
    let fields = g.node(elem).children().to_vec();
    let j = rng.gen_range(1..fields.len());
    let next = r.obf_count + 1;
    let tag = g.allocated();
    let elem_name = g.node(elem).name().to_string();

    let make_elem = |g: &mut ObfGraph, suffix: &str| {
        g.push(ObfNode {
            name: format!("{elem_name}_{suffix}{tag}"),
            kind: ObfKind::Sequence { boundary: SeqBoundary::Delegated },
            children: Vec::new(),
            parent: None,
            origin: None,
            obf_count: next,
        })
    };
    let e1 = make_elem(g, "a");
    let e2 = make_elem(g, "b");
    for (i, &f) in fields.iter().enumerate() {
        let target = if i < j { e1 } else { e2 };
        let pos = g.node(target).children().len();
        g.node_mut(f).parent = None;
        g.attach(target, pos, f);
    }
    g.node_mut(elem).children.clear();

    let rep_a = g.push(ObfNode {
        name: format!("{}_a{tag}", r.name),
        kind: ObfKind::Repetition { stop },
        children: Vec::new(),
        parent: None,
        origin: r.origin,
        obf_count: next,
    });
    g.attach(rep_a, 0, e1);
    let rep_b = g.push(ObfNode {
        name: format!("{}_b{tag}", r.name),
        kind: ObfKind::Repetition { stop: RepStop::CountOf(rep_a) },
        children: Vec::new(),
        parent: None,
        origin: r.origin,
        obf_count: next,
    });
    g.attach(rep_b, 0, e2);
    let seq = g.push(ObfNode {
        name: format!("{}_sp{tag}", r.name),
        kind: ObfKind::Sequence { boundary: SeqBoundary::Delegated },
        children: Vec::new(),
        parent: None,
        origin: None,
        obf_count: next,
    });
    g.replace_child(id, seq);
    g.attach(seq, 0, rep_a);
    g.attach(seq, 1, rep_b);
    record(
        TransformKind::RepSplit,
        g,
        id,
        r.name,
        vec![seq, rep_a, rep_b, e1, e2],
        format!("element split after field {j}"),
    )
}

/// Swaps two children of a sequence (`ChildMove`).
pub(super) fn child_move<R: Rng + ?Sized>(
    g: &mut ObfGraph,
    id: ObfId,
    rng: &mut R,
) -> TransformRecord {
    let n = g.node(id).children().len();
    let lo = usize::from(leading_sensitive(g, id));
    let i = rng.gen_range(lo..n);
    let mut j = rng.gen_range(lo..n - 1);
    if j >= i {
        j += 1;
    }
    let name = g.node(id).name().to_string();
    g.node_mut(id).children.swap(i, j);
    g.node_mut(id).obf_count += 1;
    record(TransformKind::ChildMove, g, id, name, vec![], format!("swapped children {i} and {j}"))
}

/// True when the first wire byte of `id`'s subtree is also the first byte a
/// terminator-delimited repetition uses to detect its end: transformations
/// must not move or randomize it.
pub(super) fn leading_sensitive(g: &ObfGraph, id: ObfId) -> bool {
    let my_first = g.subtree(id).into_iter().find(|&n| g.node(n).is_terminal());
    let my_first = match my_first {
        Some(f) => f,
        None => return false,
    };
    for a in g.ancestors(id) {
        if let ObfKind::Repetition { stop: RepStop::Terminator(_) } = g.node(a).kind() {
            let elem = g.node(a).children()[0];
            if let Some(first) = g.subtree(elem).into_iter().find(|&n| g.node(n).is_terminal()) {
                if first == my_first {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::super::{applicable, apply, post_check, TransformKind};
    use crate::graph::{AutoValue, Boundary, GraphBuilder, StopRule};
    use crate::obf::{ObfGraph, ObfId, ObfKind, Recombine, RepStop, TermBoundary};
    use crate::value::TerminalKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn find(g: &ObfGraph, name: &str) -> ObfId {
        g.preorder().into_iter().find(|&id| g.node(id).name() == name).unwrap()
    }

    fn sample() -> ObfGraph {
        let mut b = GraphBuilder::new("s");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        b.terminal(root, "uri", TerminalKind::Ascii, Boundary::Delimited(b" ".to_vec()));
        let count = b.uint_be(root, "count", 1);
        let tab = b.tabular(root, "regs", count);
        b.set_auto(count, AutoValue::CounterOf(tab));
        let item = b.sequence(tab, "reg", Boundary::Delegated);
        b.uint_be(item, "addr", 2);
        b.uint_be(item, "value", 2);
        let rep = b.repetition(
            root,
            "headers",
            StopRule::Terminator(b"\r\n".to_vec()),
            Boundary::Delegated,
        );
        let h = b.sequence(rep, "header", Boundary::Delegated);
        b.terminal(h, "name", TerminalKind::Ascii, Boundary::Delimited(b":".to_vec()));
        b.terminal(h, "hv", TerminalKind::Ascii, Boundary::Delimited(b"\r\n".to_vec()));
        b.terminal(root, "body", TerminalKind::Bytes, Boundary::End);
        ObfGraph::from_plain(&b.build().unwrap())
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn split_add_rewrites_structure_and_holder() {
        let mut g = sample();
        let data = find(&g, "data");
        let plain_data = g.plain().resolve_names(&["data"]).unwrap();
        let rec = apply(&mut g, data, TransformKind::SplitAdd, &mut rng()).unwrap();
        assert_eq!(rec.created.len(), 3);
        let holder = g.holder_of(plain_data).unwrap();
        assert!(matches!(
            g.node(holder).kind(),
            ObfKind::SplitSeq { recombine: Recombine::Op(crate::value::ByteOp::Add), .. }
        ));
        assert_eq!(g.node(holder).children().len(), 2);
        assert!(post_check(&g).is_ok());
        // The detached original is gone from the live tree.
        assert!(!g.preorder().contains(&data));
    }

    #[test]
    fn split_cat_fixed_produces_static_pieces() {
        let mut g = sample();
        let addr = find(&g, "addr");
        apply(&mut g, addr, TransformKind::SplitCat, &mut rng()).unwrap();
        let pieces: Vec<usize> = g
            .preorder()
            .into_iter()
            .filter_map(|id| match g.node(id).kind() {
                ObfKind::Terminal { boundary: TermBoundary::Fixed(n), .. }
                    if g.node(id).name().starts_with("addr_") =>
                {
                    Some(*n)
                }
                _ => None,
            })
            .collect();
        assert_eq!(pieces.iter().sum::<usize>(), 2);
        assert_eq!(pieces.len(), 2);
        assert!(post_check(&g).is_ok());
    }

    #[test]
    fn split_cat_plainlen_uses_half_steps() {
        let mut g = sample();
        let data = find(&g, "data");
        apply(&mut g, data, TransformKind::SplitCat, &mut rng()).unwrap();
        let steps: Vec<_> = g
            .preorder()
            .into_iter()
            .filter_map(|id| match g.node(id).kind() {
                ObfKind::Terminal { boundary: TermBoundary::PlainLen { steps, .. }, .. } => {
                    Some(steps.clone())
                }
                _ => None,
            })
            .collect();
        assert_eq!(steps.len(), 2);
        assert!(steps.iter().all(|s| s.len() == 1));
        assert!(post_check(&g).is_ok());
    }

    #[test]
    fn const_op_pushes_non_trivial_constant() {
        let mut g = sample();
        let len = find(&g, "len");
        apply(&mut g, len, TransformKind::ConstXor, &mut rng()).unwrap();
        match g.node(len).kind() {
            ObfKind::Terminal { ops, .. } => {
                assert_eq!(ops.len(), 1);
                assert!(!ops[0].k.is_empty());
                assert!(ops[0].k.iter().any(|&b| b != 0));
            }
            _ => panic!("len should remain a terminal"),
        }
        assert_eq!(g.node(len).obf_count(), 1);
    }

    #[test]
    fn boundary_change_removes_delimiter() {
        let mut g = sample();
        let uri = find(&g, "uri");
        let rec = apply(&mut g, uri, TransformKind::BoundaryChange, &mut rng()).unwrap();
        assert!(matches!(
            g.node(uri).kind(),
            ObfKind::Terminal { boundary: TermBoundary::End, .. }
        ));
        let wrapper = rec.created[0];
        assert!(matches!(g.node(wrapper).kind(), ObfKind::Prefixed { .. }));
        assert_eq!(g.node(wrapper).children(), &[uri]);
        assert!(post_check(&g).is_ok());
    }

    #[test]
    fn boundary_change_on_repetition_exhausts_it() {
        let mut g = sample();
        let headers = find(&g, "headers");
        apply(&mut g, headers, TransformKind::BoundaryChange, &mut rng()).unwrap();
        assert!(matches!(g.node(headers).kind(), ObfKind::Repetition { stop: RepStop::Exhausted }));
        assert!(post_check(&g).is_ok());
    }

    #[test]
    fn pad_insert_adds_one_child() {
        let mut g = sample();
        let root = g.root();
        let before = g.node(root).children().len();
        apply(&mut g, root, TransformKind::PadInsert, &mut rng()).unwrap();
        assert_eq!(g.node(root).children().len(), before + 1);
        assert!(post_check(&g).is_ok());
    }

    #[test]
    fn read_from_end_wraps_in_mirror() {
        let mut g = sample();
        let data = find(&g, "data");
        let rec = apply(&mut g, data, TransformKind::ReadFromEnd, &mut rng()).unwrap();
        let wrapper = rec.created[0];
        assert!(matches!(g.node(wrapper).kind(), ObfKind::Mirror));
        assert_eq!(g.node(wrapper).children(), &[data]);
        assert!(post_check(&g).is_ok());
    }

    #[test]
    fn tab_split_builds_two_counted_tabulars() {
        let mut g = sample();
        let regs = find(&g, "regs");
        let plain_tab = g.plain().resolve_names(&["regs"]).unwrap();
        apply(&mut g, regs, TransformKind::TabSplit, &mut rng()).unwrap();
        let tabs: Vec<ObfId> = g
            .preorder()
            .into_iter()
            .filter(|&id| matches!(g.node(id).kind(), ObfKind::Tabular { .. }))
            .collect();
        assert_eq!(tabs.len(), 2);
        for t in &tabs {
            assert_eq!(g.node(*t).origin(), Some(plain_tab));
            assert_eq!(g.node(*t).children().len(), 1);
        }
        // addr lives in the first half, value in the second.
        let addr = find(&g, "addr");
        let value = find(&g, "value");
        assert!(g.is_descendant(addr, tabs[0]));
        assert!(g.is_descendant(value, tabs[1]));
        assert!(post_check(&g).is_ok());
    }

    #[test]
    fn rep_split_links_counts() {
        let mut g = sample();
        let headers = find(&g, "headers");
        apply(&mut g, headers, TransformKind::RepSplit, &mut rng()).unwrap();
        let reps: Vec<ObfId> = g
            .preorder()
            .into_iter()
            .filter(|&id| matches!(g.node(id).kind(), ObfKind::Repetition { .. }))
            .collect();
        assert_eq!(reps.len(), 2);
        match g.node(reps[1]).kind() {
            ObfKind::Repetition { stop: RepStop::CountOf(first) } => assert_eq!(*first, reps[0]),
            other => panic!("second half should be count-linked, got {other:?}"),
        }
        assert!(post_check(&g).is_ok());
    }

    #[test]
    fn child_move_swaps_children() {
        let mut g = sample();
        let reg = find(&g, "reg");
        let before = g.node(reg).children().to_vec();
        apply(&mut g, reg, TransformKind::ChildMove, &mut rng()).unwrap();
        let after = g.node(reg).children().to_vec();
        assert_ne!(before, after);
        assert_eq!(
            {
                let mut s = before.clone();
                s.sort();
                s
            },
            {
                let mut s = after.clone();
                s.sort();
                s
            }
        );
        assert!(post_check(&g).is_ok());
    }

    #[test]
    fn child_move_violating_dependency_is_caught_by_post_check() {
        // Force a swap that moves `data` (needs `len`) before `len`.
        let mut b = GraphBuilder::new("dep");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        let mut g = ObfGraph::from_plain(&b.build().unwrap());
        let root_obf = g.root();
        g.node_mut(root_obf).children.swap(0, 1);
        assert!(post_check(&g).is_err());
    }

    #[test]
    fn transforms_compose_on_created_nodes() {
        // Split, then const-op one of the shares, then split that share
        // again — the composition chain the paper relies on.
        let mut g = sample();
        let data = find(&g, "data");
        let rec1 = apply(&mut g, data, TransformKind::SplitAdd, &mut rng()).unwrap();
        let share = rec1.created[1];
        apply(&mut g, share, TransformKind::ConstXor, &mut rng()).unwrap();
        let rec3 = apply(&mut g, share, TransformKind::SplitCat, &mut rng()).unwrap();
        assert!(post_check(&g).is_ok());
        // The re-split share keeps its ops inside the new SplitSeq expr.
        match g.node(rec3.created[0]).kind() {
            ObfKind::SplitSeq { expr, .. } => assert_eq!(expr.ops.len(), 1),
            other => panic!("expected SplitSeq, got {other:?}"),
        }
    }

    #[test]
    fn applicable_and_apply_agree() {
        let g = sample();
        let uri = find(&g, "uri");
        assert!(applicable(&g, uri, TransformKind::SplitAdd).is_err());
        let mut g2 = g.clone();
        assert!(apply(&mut g2, uri, TransformKind::SplitAdd, &mut rng()).is_err());
    }
}

//! The message format graph (paper §V-A).
//!
//! A [`FormatGraph`] describes every abstract syntax tree that complies with
//! a protocol's message-format specification. Nodes carry the five
//! attributes of the paper — name, type, sub-nodes, parent, boundary — plus
//! an optional *auto* annotation for fields whose value is derived from the
//! message itself (length of another node, element count of a tabular).
//!
//! The graph is a tree: `Length`, `Counter` and `Optional` conditions are
//! expressed as *references* to other nodes (the dashed arrows of the
//! paper's figure 3), which [`FormatGraph::validate`] checks are resolvable
//! during a left-to-right parse.

use std::collections::HashMap;
use std::fmt;

use crate::error::SpecError;
use crate::value::{TerminalKind, Value};

/// Identifier of a node inside a [`FormatGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index value (stable within one graph).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// How the presence of an [`NodeType::Optional`] node is decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// The terminal whose (plain) value decides presence. Must be parsed
    /// before the optional node.
    pub subject: NodeId,
    /// Predicate applied to the subject's value.
    pub predicate: Predicate,
}

/// Predicate of an optional-presence condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Present iff the subject equals this value.
    Equals(Value),
    /// Present iff the subject differs from this value.
    NotEquals(Value),
    /// Present iff the subject equals one of these values.
    OneOf(Vec<Value>),
}

impl Predicate {
    /// Evaluates the predicate against a subject value.
    pub fn eval(&self, subject: &Value) -> bool {
        match self {
            Predicate::Equals(v) => subject == v,
            Predicate::NotEquals(v) => subject != v,
            Predicate::OneOf(vs) => vs.iter().any(|v| v == subject),
        }
    }
}

/// Stop rule of a [`NodeType::Repetition`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopRule {
    /// Elements repeat until the terminator byte string is found at the
    /// start of the remaining input; the terminator is consumed.
    Terminator(Vec<u8>),
    /// Elements repeat until the enclosing window is exhausted.
    Exhausted,
}

/// The type attribute of a node (paper §V-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeType {
    /// Holds user data or message-related information.
    Terminal(TerminalKind),
    /// An ordered sequence of sub-nodes (concatenation).
    Sequence,
    /// A sub-node whose presence depends on the value of another node.
    Optional(Condition),
    /// A repetition of the same sub-node, count discovered while parsing.
    Repetition(StopRule),
    /// A repetition of the same sub-node whose count is given by another
    /// node (the `Counter` boundary).
    Tabular,
}

impl NodeType {
    /// Short notation used in the paper's figures (Te, S, O, R, Ta).
    pub fn notation(&self) -> &'static str {
        match self {
            NodeType::Terminal(_) => "Te",
            NodeType::Sequence => "S",
            NodeType::Optional(_) => "O",
            NodeType::Repetition(_) => "R",
            NodeType::Tabular => "Ta",
        }
    }
}

/// The boundary attribute: how the extent of the field is determined
/// (paper §V-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Boundary {
    /// Fixed size in bytes.
    Fixed(usize),
    /// Ends with a predefined byte string (consumed, not part of the
    /// value).
    Delimited(Vec<u8>),
    /// The *plain* length of this field is carried by another (numeric
    /// terminal) node.
    Length(NodeId),
    /// For tabulars: the number of repetitions is carried by another node.
    Counter(NodeId),
    /// The field extends to the end of the enclosing window / message.
    End,
    /// The extent is the sum of the sub-nodes' extents.
    Delegated,
}

impl Boundary {
    /// Short notation used in the paper's figures.
    pub fn notation(&self) -> String {
        match self {
            Boundary::Fixed(n) => format!("F({n})"),
            Boundary::Delimited(_) => "De".to_string(),
            Boundary::Length(n) => format!("L({n})"),
            Boundary::Counter(n) => format!("C({n})"),
            Boundary::End => "E".to_string(),
            Boundary::Delegated => "Dgt".to_string(),
        }
    }

    /// The node referenced by a `Length`/`Counter` boundary, if any.
    pub fn reference(&self) -> Option<NodeId> {
        match self {
            Boundary::Length(n) | Boundary::Counter(n) => Some(*n),
            _ => None,
        }
    }
}

/// Auto-computation annotation on a terminal: the serializer fills the
/// value in; the application never sets it; the parser verifies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutoValue {
    /// Set by the application.
    None,
    /// Plain serialized length (in bytes) of the target subtree.
    LengthOf(NodeId),
    /// Number of elements of the target tabular/repetition node.
    CounterOf(NodeId),
    /// A protocol constant (magic bytes, version strings, reserved
    /// fields): emitted on serialization, checked on parse.
    Literal(Value),
}

impl AutoValue {
    /// The target node, if the field is derived from another node.
    pub fn target(&self) -> Option<NodeId> {
        match self {
            AutoValue::LengthOf(n) | AutoValue::CounterOf(n) => Some(*n),
            AutoValue::None | AutoValue::Literal(_) => None,
        }
    }

    /// True unless the field is application-set.
    pub fn is_auto(&self) -> bool {
        !matches!(self, AutoValue::None)
    }
}

/// One node of the message format graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) ty: NodeType,
    pub(crate) boundary: Boundary,
    pub(crate) children: Vec<NodeId>,
    pub(crate) parent: Option<NodeId>,
    pub(crate) auto: AutoValue,
}

impl Node {
    /// Node name (unique among siblings).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Node type attribute.
    pub fn node_type(&self) -> &NodeType {
        &self.ty
    }

    /// Boundary attribute.
    pub fn boundary(&self) -> &Boundary {
        &self.boundary
    }

    /// Child node ids, in message order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Parent node id (`None` for the root).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Auto-computation annotation.
    pub fn auto(&self) -> &AutoValue {
        &self.auto
    }

    /// True if this node is a terminal.
    pub fn is_terminal(&self) -> bool {
        matches!(self.ty, NodeType::Terminal(_))
    }

    /// The terminal kind, if this node is a terminal.
    pub fn terminal_kind(&self) -> Option<&TerminalKind> {
        match &self.ty {
            NodeType::Terminal(k) => Some(k),
            _ => None,
        }
    }
}

/// A validated message format graph (the paper's `G1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatGraph {
    name: String,
    nodes: Vec<Node>,
    root: NodeId,
}

impl FormatGraph {
    /// Protocol / message-type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Fallible node lookup.
    pub fn get(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Number of nodes in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes (never true for validated graphs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates node ids in creation order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Pre-order (document order) traversal from the root — the parse and
    /// serialization order of the plain protocol.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.node(id).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All node ids in the subtree rooted at `id` (pre-order).
    pub fn subtree(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.node(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// True if `descendant` is inside the subtree rooted at `ancestor`
    /// (a node is its own descendant).
    pub fn is_descendant(&self, descendant: NodeId, ancestor: NodeId) -> bool {
        let mut cur = Some(descendant);
        while let Some(id) = cur {
            if id == ancestor {
                return true;
            }
            cur = self.node(id).parent;
        }
        false
    }

    /// Depth of a node (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.node(p).parent;
        }
        d
    }

    /// The nodes that reference `id` as a `Length`/`Counter` source or as
    /// an optional-condition subject.
    pub fn referencing(&self, id: NodeId) -> Vec<NodeId> {
        self.ids()
            .filter(|&n| {
                let node = self.node(n);
                node.boundary.reference() == Some(id)
                    || matches!(&node.ty, NodeType::Optional(c) if c.subject == id)
                    || node.auto.target() == Some(id)
            })
            .collect()
    }

    /// Resolves a dotted path of child names starting at the root.
    ///
    /// Optional, repetition and tabular nodes are *transparent*: after
    /// naming them the path continues into their single child. See
    /// [`crate::path`] for the indexed form used on message instances.
    pub fn resolve_names(&self, path: &[&str]) -> Option<NodeId> {
        let mut cur = self.root;
        for (i, seg) in path.iter().enumerate() {
            if i == 0 && self.node(cur).name == *seg {
                continue;
            }
            cur = self.find_child(cur, seg)?;
        }
        Some(cur)
    }

    fn find_child(&self, at: NodeId, name: &str) -> Option<NodeId> {
        let node = self.node(at);
        match node.ty {
            NodeType::Optional(_) | NodeType::Repetition(_) | NodeType::Tabular => {
                // Transparent wrappers: look through the single child.
                let child = *node.children.first()?;
                if self.node(child).name == name {
                    Some(child)
                } else {
                    self.find_child(child, name)
                }
            }
            _ => node.children.iter().copied().find(|&c| self.node(c).name == name),
        }
    }

    /// Pre-order indices: for each node, its position in [`preorder`] and
    /// the position just after its subtree. Used for the backward-reference
    /// rule.
    ///
    /// [`preorder`]: FormatGraph::preorder
    fn preorder_spans(&self) -> HashMap<NodeId, (usize, usize)> {
        let order = self.preorder();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut spans = HashMap::new();
        for &id in &order {
            let sub = self.subtree(id);
            let end = sub.iter().map(|n| pos[n]).max().unwrap_or(pos[&id]) + 1;
            spans.insert(id, (pos[&id], end));
        }
        spans
    }

    /// Validates the structural invariants of the specification.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: tree shape, sibling-name
    /// uniqueness, type/boundary consistency, reference resolvability
    /// (backward references only), numeric reference targets, delimiter
    /// non-emptiness, and width consistency.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.nodes.is_empty() {
            return Err(SpecError::EmptyGraph);
        }
        self.check_tree()?;
        self.check_names()?;
        for id in self.ids() {
            self.check_node(id)?;
        }
        self.check_references()?;
        self.check_nesting()?;
        Ok(())
    }

    /// Element scopes are stored inline in the message/plan stores
    /// ([`crate::message::MAX_SCOPE`] indices), so repetition/tabular
    /// nesting is bounded instead of heap-spilled.
    fn check_nesting(&self) -> Result<(), SpecError> {
        for id in self.ids() {
            let depth = self.container_chain(id).len();
            if depth > crate::message::MAX_SCOPE {
                return Err(SpecError::NestingTooDeep {
                    node: self.node(id).name.clone(),
                    depth,
                    max: crate::message::MAX_SCOPE,
                });
            }
        }
        Ok(())
    }

    fn check_tree(&self) -> Result<(), SpecError> {
        // Every node reachable from the root exactly once; parents agree.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if id.index() >= self.nodes.len() {
                return Err(SpecError::UnknownNode(id.0));
            }
            if seen[id.index()] {
                return Err(SpecError::NotATree { node: self.node(id).name.clone() });
            }
            seen[id.index()] = true;
            for &c in &self.node(id).children {
                if c.index() >= self.nodes.len() {
                    return Err(SpecError::UnknownNode(c.0));
                }
                if self.node(c).parent != Some(id) {
                    return Err(SpecError::NotATree { node: self.node(c).name.clone() });
                }
                stack.push(c);
            }
        }
        if let Some(idx) = seen.iter().position(|s| !s) {
            return Err(SpecError::NotATree { node: self.nodes[idx].name.clone() });
        }
        Ok(())
    }

    fn check_names(&self) -> Result<(), SpecError> {
        for id in self.ids() {
            let node = self.node(id);
            let mut names: Vec<&str> = node.children.iter().map(|&c| self.node(c).name()).collect();
            names.sort_unstable();
            for w in names.windows(2) {
                if w[0] == w[1] {
                    return Err(SpecError::DuplicateSiblingName {
                        parent: node.name.clone(),
                        name: w[0].to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    fn check_node(&self, id: NodeId) -> Result<(), SpecError> {
        let node = self.node(id);
        let name = node.name.clone();
        match &node.ty {
            NodeType::Terminal(kind) => {
                if !node.children.is_empty() {
                    return Err(SpecError::TerminalWithChildren { node: name });
                }
                match &node.boundary {
                    Boundary::Fixed(n) => {
                        if let Some(w) = kind.implied_width() {
                            if w != *n {
                                return Err(SpecError::WidthMismatch {
                                    node: name,
                                    expected: w,
                                    found: *n,
                                });
                            }
                        }
                        if *n == 0 {
                            return Err(SpecError::InconsistentBoundary {
                                node: name,
                                detail: "fixed size must be > 0".into(),
                            });
                        }
                    }
                    Boundary::Delimited(d) => {
                        if d.is_empty() {
                            return Err(SpecError::EmptyDelimiter { node: name });
                        }
                    }
                    Boundary::Length(_) | Boundary::End => {}
                    other => {
                        return Err(SpecError::InconsistentBoundary {
                            node: name,
                            detail: format!("terminal cannot have boundary {}", other.notation()),
                        });
                    }
                }
                match &node.auto {
                    AutoValue::None => {}
                    AutoValue::LengthOf(t) | AutoValue::CounterOf(t) => {
                        let t = *t;
                        if !kind.is_numeric() {
                            return Err(SpecError::BadAutoTarget {
                                node: name,
                                detail: "auto fields must be unsigned integers".into(),
                            });
                        }
                        if self.get(t).is_none() {
                            return Err(SpecError::UnknownNode(t.0));
                        }
                        if matches!(node.auto, AutoValue::CounterOf(_)) {
                            let tt = &self.node(t).ty;
                            if !matches!(tt, NodeType::Tabular | NodeType::Repetition(_)) {
                                return Err(SpecError::BadAutoTarget {
                                    node: name,
                                    detail: "counter-of target must be tabular or repetition"
                                        .into(),
                                });
                            }
                        }
                    }
                    AutoValue::Literal(v) => {
                        if let Some(w) = kind.implied_width() {
                            if v.len() != w {
                                return Err(SpecError::BadAutoTarget {
                                    node: name,
                                    detail: format!(
                                        "literal is {} byte(s) but the field is {w}",
                                        v.len()
                                    ),
                                });
                            }
                        }
                        if let Boundary::Fixed(k) = &node.boundary {
                            if v.len() != *k {
                                return Err(SpecError::BadAutoTarget {
                                    node: name,
                                    detail: format!(
                                        "literal is {} byte(s) but the field is fixed at {k}",
                                        v.len()
                                    ),
                                });
                            }
                        }
                        if let Boundary::Delimited(d) = &node.boundary {
                            if crate::runtime::contains(v.as_bytes(), d) {
                                return Err(SpecError::BadAutoTarget {
                                    node: name,
                                    detail: "literal contains the field delimiter".into(),
                                });
                            }
                        }
                    }
                }
            }
            NodeType::Sequence => {
                if node.children.is_empty() {
                    return Err(SpecError::ChildArity {
                        node: name,
                        expected: "one or more",
                        found: 0,
                    });
                }
                match &node.boundary {
                    Boundary::Delegated
                    | Boundary::End
                    | Boundary::Fixed(_)
                    | Boundary::Length(_) => {}
                    other => {
                        return Err(SpecError::InconsistentBoundary {
                            node: name,
                            detail: format!("sequence cannot have boundary {}", other.notation()),
                        });
                    }
                }
            }
            NodeType::Optional(cond) => {
                if node.children.len() != 1 {
                    return Err(SpecError::ChildArity {
                        node: name,
                        expected: "exactly one",
                        found: node.children.len(),
                    });
                }
                if self.get(cond.subject).is_none() {
                    return Err(SpecError::UnknownNode(cond.subject.0));
                }
                if !matches!(node.boundary, Boundary::Delegated) {
                    return Err(SpecError::InconsistentBoundary {
                        node: name,
                        detail: "optional nodes delegate their boundary to the child".into(),
                    });
                }
            }
            NodeType::Repetition(stop) => {
                if node.children.len() != 1 {
                    return Err(SpecError::ChildArity {
                        node: name,
                        expected: "exactly one",
                        found: node.children.len(),
                    });
                }
                if let StopRule::Terminator(t) = stop {
                    if t.is_empty() {
                        return Err(SpecError::EmptyDelimiter { node: name });
                    }
                }
                if !matches!(node.boundary, Boundary::Delegated | Boundary::End) {
                    return Err(SpecError::InconsistentBoundary {
                        node: name,
                        detail: "repetition boundary must be Delegated or End".into(),
                    });
                }
            }
            NodeType::Tabular => {
                if node.children.len() != 1 {
                    return Err(SpecError::ChildArity {
                        node: name,
                        expected: "exactly one",
                        found: node.children.len(),
                    });
                }
                if !matches!(node.boundary, Boundary::Counter(_)) {
                    return Err(SpecError::InconsistentBoundary {
                        node: name,
                        detail: "tabular boundary must be Counter(<node>)".into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Repetition/tabular ancestors of `id`, outermost first.
    fn container_chain(&self, id: NodeId) -> Vec<NodeId> {
        let mut chain = Vec::new();
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            if matches!(self.node(p).ty, NodeType::Repetition(_) | NodeType::Tabular) {
                chain.push(p);
            }
            cur = self.node(p).parent;
        }
        chain.reverse();
        chain
    }

    /// Optional ancestors of `id`.
    fn optional_ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            if matches!(self.node(p).ty, NodeType::Optional(_)) {
                out.push(p);
            }
            cur = self.node(p).parent;
        }
        out
    }

    fn check_references(&self) -> Result<(), SpecError> {
        let spans = self.preorder_spans();
        let check = |user: NodeId, referenced: NodeId| -> Result<(), SpecError> {
            if self.get(referenced).is_none() {
                return Err(SpecError::UnknownNode(referenced.0));
            }
            let (u_start, _) = spans[&user];
            let (_, r_end) = spans[&referenced];
            // The referenced subtree must be completely parsed before the
            // user starts (strictly backward reference).
            if r_end > u_start {
                return Err(SpecError::ForwardReference {
                    node: self.node(user).name.clone(),
                    referenced: self.node(referenced).name.clone(),
                });
            }
            // Scope visibility: the referenced node's repetition/tabular
            // chain must be a prefix of the user's — an out-of-scope
            // reference has no well-defined element instance…
            let rc = self.container_chain(referenced);
            let uc = self.container_chain(user);
            if rc.len() > uc.len() || rc.iter().zip(&uc).any(|(a, b)| a != b) {
                return Err(SpecError::ForwardReference {
                    node: self.node(user).name.clone(),
                    referenced: self.node(referenced).name.clone(),
                });
            }
            // …and the referenced node must not sit inside an optional
            // subtree the user is outside of (the value may be absent).
            for opt in self.optional_ancestors(referenced) {
                if !self.is_descendant(user, opt) {
                    return Err(SpecError::ForwardReference {
                        node: self.node(user).name.clone(),
                        referenced: self.node(referenced).name.clone(),
                    });
                }
            }
            Ok(())
        };
        for id in self.ids() {
            let node = self.node(id);
            if let Some(r) = node.boundary.reference() {
                check(id, r)?;
                let target = self.node(r);
                if !target.terminal_kind().map(TerminalKind::is_numeric).unwrap_or(false) {
                    return Err(SpecError::NonNumericReference {
                        node: node.name.clone(),
                        referenced: target.name.clone(),
                    });
                }
            }
            if let NodeType::Optional(cond) = &node.ty {
                check(id, cond.subject)?;
                if !self.node(cond.subject).is_terminal() {
                    return Err(SpecError::NonNumericReference {
                        node: node.name.clone(),
                        referenced: self.node(cond.subject).name.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`FormatGraph`] (see the crate examples).
///
/// The builder hands out [`NodeId`]s as nodes are added; `Length`/`Counter`
/// boundaries and optional conditions may therefore only reference nodes
/// added earlier, which matches the backward-reference validation rule.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl GraphBuilder {
    /// Starts a new graph with the given protocol name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder { name: name.into(), nodes: Vec::new(), root: None }
    }

    fn push(&mut self, parent: Option<NodeId>, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        if let Some(p) = parent {
            self.nodes[p.index()].children.push(id);
        } else if self.root.is_none() {
            self.root = Some(id);
        }
        id
    }

    /// Adds the root node (a sequence). Must be called first.
    pub fn root_sequence(&mut self, name: impl Into<String>, boundary: Boundary) -> NodeId {
        assert!(self.root.is_none(), "root already added");
        self.push(
            None,
            Node {
                name: name.into(),
                ty: NodeType::Sequence,
                boundary,
                children: Vec::new(),
                parent: None,
                auto: AutoValue::None,
            },
        )
    }

    /// Adds a sequence node under `parent`.
    pub fn sequence(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        boundary: Boundary,
    ) -> NodeId {
        self.push(
            Some(parent),
            Node {
                name: name.into(),
                ty: NodeType::Sequence,
                boundary,
                children: Vec::new(),
                parent: Some(parent),
                auto: AutoValue::None,
            },
        )
    }

    /// Adds a terminal node under `parent`.
    pub fn terminal(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        kind: TerminalKind,
        boundary: Boundary,
    ) -> NodeId {
        self.push(
            Some(parent),
            Node {
                name: name.into(),
                ty: NodeType::Terminal(kind),
                boundary,
                children: Vec::new(),
                parent: Some(parent),
                auto: AutoValue::None,
            },
        )
    }

    /// Adds a big-endian unsigned integer terminal of `width` bytes.
    pub fn uint_be(&mut self, parent: NodeId, name: impl Into<String>, width: usize) -> NodeId {
        self.terminal(parent, name, TerminalKind::uint_be(width), Boundary::Fixed(width))
    }

    /// Sets the auto annotation of an already-added terminal.
    pub fn set_auto(&mut self, field: NodeId, auto: AutoValue) {
        self.nodes[field.index()].auto = auto;
    }

    /// Adds a constant terminal: the serializer emits `literal`, the
    /// parser verifies it (magic bytes, version strings, reserved fields).
    pub fn literal(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        kind: TerminalKind,
        boundary: Boundary,
        literal: Value,
    ) -> NodeId {
        let id = self.terminal(parent, name, kind, boundary);
        self.set_auto(id, AutoValue::Literal(literal));
        id
    }

    /// Adds an optional node under `parent` with a presence condition.
    pub fn optional(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        condition: Condition,
    ) -> NodeId {
        self.push(
            Some(parent),
            Node {
                name: name.into(),
                ty: NodeType::Optional(condition),
                boundary: Boundary::Delegated,
                children: Vec::new(),
                parent: Some(parent),
                auto: AutoValue::None,
            },
        )
    }

    /// Adds a repetition node under `parent`.
    pub fn repetition(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        stop: StopRule,
        boundary: Boundary,
    ) -> NodeId {
        self.push(
            Some(parent),
            Node {
                name: name.into(),
                ty: NodeType::Repetition(stop),
                boundary,
                children: Vec::new(),
                parent: Some(parent),
                auto: AutoValue::None,
            },
        )
    }

    /// Adds a tabular node under `parent`, counted by `counter`.
    pub fn tabular(&mut self, parent: NodeId, name: impl Into<String>, counter: NodeId) -> NodeId {
        self.push(
            Some(parent),
            Node {
                name: name.into(),
                ty: NodeType::Tabular,
                boundary: Boundary::Counter(counter),
                children: Vec::new(),
                parent: Some(parent),
                auto: AutoValue::None,
            },
        )
    }

    /// Finishes and validates the graph.
    ///
    /// # Errors
    ///
    /// Returns any invariant violation found by [`FormatGraph::validate`].
    pub fn build(self) -> Result<FormatGraph, SpecError> {
        let root = self.root.ok_or(SpecError::EmptyGraph)?;
        let graph = FormatGraph { name: self.name, nodes: self.nodes, root };
        graph.validate()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Endian;

    /// Builds the paper's figure-3 style Modbus excerpt: header with a
    /// length field, a function code, and two optional bodies.
    fn sample_graph() -> FormatGraph {
        let mut b = GraphBuilder::new("modbus-mini");
        let root = b.root_sequence("frame", Boundary::End);
        let _tid = b.uint_be(root, "transaction_id", 2);
        let len = b.uint_be(root, "length", 2);
        let pdu = b.sequence(root, "pdu", Boundary::Delegated);
        b.set_auto(len, AutoValue::LengthOf(pdu));
        let func = b.uint_be(pdu, "function", 1);
        let body1 = b.optional(
            pdu,
            "read_coils",
            Condition { subject: func, predicate: Predicate::Equals(Value::from_bytes(vec![1])) },
        );
        let seq1 = b.sequence(body1, "read_coils_body", Boundary::Delegated);
        b.uint_be(seq1, "start", 2);
        b.uint_be(seq1, "count", 2);
        let body2 = b.optional(
            pdu,
            "write_single",
            Condition { subject: func, predicate: Predicate::Equals(Value::from_bytes(vec![5])) },
        );
        let seq2 = b.sequence(body2, "write_single_body", Boundary::Delegated);
        b.uint_be(seq2, "address", 2);
        b.uint_be(seq2, "value", 2);
        b.build().unwrap()
    }

    #[test]
    fn build_and_validate_sample() {
        let g = sample_graph();
        assert_eq!(g.name(), "modbus-mini");
        assert!(g.len() >= 10);
        assert_eq!(g.node(g.root()).name(), "frame");
    }

    #[test]
    fn preorder_starts_at_root_and_covers_all() {
        let g = sample_graph();
        let order = g.preorder();
        assert_eq!(order[0], g.root());
        assert_eq!(order.len(), g.len());
    }

    #[test]
    fn resolve_names_descends_through_wrappers() {
        let g = sample_graph();
        let start = g.resolve_names(&["pdu", "read_coils", "read_coils_body", "start"]).unwrap();
        assert_eq!(g.node(start).name(), "start");
        // Optional wrapper is transparent after being named.
        let start2 = g.resolve_names(&["pdu", "read_coils", "start"]).unwrap();
        assert_eq!(start, start2);
        assert!(g.resolve_names(&["pdu", "nonsense"]).is_none());
    }

    #[test]
    fn referencing_reports_auto_and_condition_users() {
        let g = sample_graph();
        let pdu = g.resolve_names(&["pdu"]).unwrap();
        let len = g.resolve_names(&["length"]).unwrap();
        assert!(g.referencing(pdu).contains(&len));
        let func = g.resolve_names(&["pdu", "function"]).unwrap();
        assert_eq!(g.referencing(func).len(), 2); // two optionals test it
    }

    #[test]
    fn depth_and_descendant() {
        let g = sample_graph();
        let start = g.resolve_names(&["pdu", "read_coils", "start"]).unwrap();
        let pdu = g.resolve_names(&["pdu"]).unwrap();
        assert!(g.is_descendant(start, pdu));
        assert!(!g.is_descendant(pdu, start));
        assert_eq!(g.depth(g.root()), 0);
        assert_eq!(g.depth(start), 4); // frame > pdu > optional > body > start
    }

    #[test]
    fn duplicate_sibling_names_rejected() {
        let mut b = GraphBuilder::new("dup");
        let root = b.root_sequence("m", Boundary::End);
        b.uint_be(root, "x", 1);
        b.uint_be(root, "x", 1);
        assert!(matches!(b.build(), Err(SpecError::DuplicateSiblingName { .. })));
    }

    #[test]
    fn forward_reference_rejected() {
        let mut b = GraphBuilder::new("fwd");
        let root = b.root_sequence("m", Boundary::End);
        // data's length field comes *after* data in message order.
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::End);
        let len = b.uint_be(root, "len", 2);
        // Rewrite data's boundary to point at the later field.
        b.nodes[data.index()].boundary = Boundary::Length(len);
        assert!(matches!(b.build(), Err(SpecError::ForwardReference { .. })));
    }

    #[test]
    fn length_reference_must_be_numeric() {
        let mut b = GraphBuilder::new("nonnum");
        let root = b.root_sequence("m", Boundary::End);
        let s = b.terminal(root, "s", TerminalKind::Ascii, Boundary::Delimited(vec![b' ']));
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::End);
        b.nodes[data.index()].boundary = Boundary::Length(s);
        assert!(matches!(b.build(), Err(SpecError::NonNumericReference { .. })));
    }

    #[test]
    fn tabular_requires_counter_boundary() {
        let mut b = GraphBuilder::new("tab");
        let root = b.root_sequence("m", Boundary::End);
        let count = b.uint_be(root, "count", 1);
        let tab = b.tabular(root, "items", count);
        b.uint_be(tab, "item", 2);
        b.set_auto(count, AutoValue::CounterOf(tab));
        let g = b.build().unwrap();
        assert_eq!(g.node(tab).boundary(), &Boundary::Counter(count));
    }

    #[test]
    fn counter_auto_target_must_be_tabular() {
        let mut b = GraphBuilder::new("badauto");
        let root = b.root_sequence("m", Boundary::End);
        let count = b.uint_be(root, "count", 1);
        let x = b.uint_be(root, "x", 2);
        b.set_auto(count, AutoValue::CounterOf(x));
        assert!(matches!(b.build(), Err(SpecError::BadAutoTarget { .. })));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut b = GraphBuilder::new("w");
        let root = b.root_sequence("m", Boundary::End);
        b.terminal(root, "x", TerminalKind::uint_be(2), Boundary::Fixed(3));
        assert!(matches!(b.build(), Err(SpecError::WidthMismatch { .. })));
    }

    #[test]
    fn empty_delimiter_rejected() {
        let mut b = GraphBuilder::new("d");
        let root = b.root_sequence("m", Boundary::End);
        b.terminal(root, "x", TerminalKind::Ascii, Boundary::Delimited(vec![]));
        assert!(matches!(b.build(), Err(SpecError::EmptyDelimiter { .. })));
    }

    #[test]
    fn empty_sequence_rejected() {
        let mut b = GraphBuilder::new("e");
        let root = b.root_sequence("m", Boundary::End);
        b.sequence(root, "empty", Boundary::Delegated);
        assert!(matches!(b.build(), Err(SpecError::ChildArity { .. })));
    }

    #[test]
    fn predicate_eval() {
        let v = Value::from_bytes(vec![1]);
        assert!(Predicate::Equals(v.clone()).eval(&v));
        assert!(!Predicate::NotEquals(v.clone()).eval(&v));
        assert!(Predicate::OneOf(vec![Value::from_bytes(vec![2]), v.clone()]).eval(&v));
    }

    #[test]
    fn notations_match_paper() {
        assert_eq!(NodeType::Sequence.notation(), "S");
        assert_eq!(NodeType::Tabular.notation(), "Ta");
        assert_eq!(Boundary::Fixed(4).notation(), "F(4)");
        assert_eq!(Boundary::Delegated.notation(), "Dgt");
        assert_eq!(Boundary::End.notation(), "E");
        let _ = TerminalKind::UInt { width: 2, endian: Endian::Big };
    }
}

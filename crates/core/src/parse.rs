//! The deobfuscating parser.
//!
//! Two implementations share the same semantics:
//!
//! * [`ParseSession`] — the production path: an interpreter over the
//!   compiled [`CodecPlan`](crate::plan::CodecPlan). Wire values go into
//!   slot-backed dense stores, structurally needed references are
//!   recovered through compiled [`RecStep`](crate::plan) programs with
//!   reusable scratch buffers, and the session's message is reused across
//!   calls — steady-state parsing performs no hashing and no per-message
//!   heap allocation.
//! * [`parse`] — the **reference interpreter**: a direct recursive walk of
//!   the obfuscation graph, kept as the executable specification the plan
//!   path is differentially tested against.
//!
//! Parsing undoes the ordering transformations structurally (windows,
//! mirrors, length prefixes, split repetitions) and collects the wire
//! value of every terminal. Values the parser needs *during* parsing —
//! length references, tabular counters, optional conditions, linked
//! repetition counts — are recovered eagerly by inverting the aggregation
//! transformations (paper §V-C).

use std::collections::HashMap;

use crate::error::ParseError;
use crate::graph::NodeId;
use crate::message::{Message, MessageState, MetaStore, ScopeKey, WireStore};
use crate::obf::{LenStep, ObfGraph, ObfId, ObfKind, RepStop, SeqBoundary, TermBoundary};
use crate::plan::{
    bytes_to_uint, pred_eval, AutoCheckKind, CodecPlan, PlanOp, RecEval, RepStopC, SeqB, TermB,
    NONE,
};
use crate::runtime::{self, Scope};
use crate::value::{Endian, TerminalKind, Value};

/// Upper bound on zero-length tabular elements per container instance.
/// Zero-size elements are legitimate under obfuscation (a `TabSplit` half
/// whose pieces are empty), but they consume no input, so a hostile
/// counter could otherwise drive unbounded work and memory. No real
/// protocol carries more than a u16's worth of empty elements.
const MAX_EMPTY_ELEMENTS: usize = 1 << 16;

// ---------------------------------------------------------------------------
// plan interpreter
// ---------------------------------------------------------------------------

/// A reusable parse session over a compiled codec plan.
///
/// Obtain one from [`crate::codec::Codec::parser`] and keep it for the
/// connection's lifetime. [`ParseSession::parse_in_place`] reuses the
/// session's internal [`Message`] and scratch stores: after warm-up,
/// parsing allocates nothing.
///
/// ```
/// use protoobf_core::graph::{Boundary, GraphBuilder};
/// use protoobf_core::Codec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("demo");
/// let root = b.root_sequence("msg", Boundary::End);
/// b.uint_be(root, "id", 2);
/// let codec = Codec::identity(&b.build()?);
///
/// let mut session = codec.parser();
/// let msg = session.parse_in_place(&[0, 7])?;
/// assert_eq!(msg.get_uint("id")?, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParseSession<'c> {
    g: &'c ObfGraph,
    plan: &'c CodecPlan,
    msg: Message<'c>,
    /// Parsed element counts per repetition slot (copy-language checks).
    rep_counts: MetaStore<usize>,
    /// Memoized recovered plain values, per plain slot.
    recovered: WireStore,
    ev: RecEval,
    scope: Vec<u32>,
    /// Reversed-window scratch, one buffer per mirror nesting level.
    mirror_pool: Vec<Vec<u8>>,
    mirror_depth: usize,
    /// Scratch for auto-verification scope collection.
    keys: Vec<ScopeKey>,
}

/// The lifetime-free scratch state of a [`ParseSession`]: everything the
/// session owns besides its borrows of the graph and plan. Pooled by
/// [`crate::service::CodecService`] so worker sessions can be checked out
/// and in without losing their warmed-up capacities.
#[derive(Debug)]
pub(crate) struct ParseScratch {
    msg: MessageState,
    rep_counts: MetaStore<usize>,
    recovered: WireStore,
    ev: RecEval,
    scope: Vec<u32>,
    mirror_pool: Vec<Vec<u8>>,
    keys: Vec<ScopeKey>,
}

impl<'c> ParseSession<'c> {
    pub(crate) fn new(g: &'c ObfGraph, plan: &'c CodecPlan) -> Self {
        ParseSession {
            g,
            plan,
            msg: Message::new(g),
            rep_counts: MetaStore::with_slots(plan.slots()),
            recovered: WireStore::with_slots(plan.plain_len()),
            ev: RecEval::default(),
            scope: Vec::new(),
            mirror_pool: Vec::new(),
            mirror_depth: 0,
            keys: Vec::new(),
        }
    }

    /// Rebinds pooled scratch state to the graph/plan it was created for.
    pub(crate) fn from_scratch(
        g: &'c ObfGraph,
        plan: &'c CodecPlan,
        scratch: ParseScratch,
    ) -> Self {
        debug_assert_eq!(scratch.recovered.slots(), plan.plain_len(), "scratch plan mismatch");
        ParseSession {
            g,
            plan,
            msg: Message::from_state(g, scratch.msg),
            rep_counts: scratch.rep_counts,
            recovered: scratch.recovered,
            ev: scratch.ev,
            scope: scratch.scope,
            mirror_pool: scratch.mirror_pool,
            mirror_depth: 0,
            keys: scratch.keys,
        }
    }

    /// Takes the scratch state back out for pooling.
    pub(crate) fn into_scratch(self) -> ParseScratch {
        ParseScratch {
            msg: self.msg.into_state(),
            rep_counts: self.rep_counts,
            recovered: self.recovered,
            ev: self.ev,
            scope: self.scope,
            mirror_pool: self.mirror_pool,
            keys: self.keys,
        }
    }

    /// Parses one obfuscated message into the session's internal
    /// [`Message`] (cleared first, capacity kept) and returns a borrow of
    /// it. The previous parse result is overwritten.
    ///
    /// # Errors
    ///
    /// [`ParseError`] when the bytes do not form a valid message under
    /// this codec's plan (truncation, missing delimiters, inconsistent
    /// lengths/counts, trailing bytes).
    pub fn parse_in_place(&mut self, bytes: &[u8]) -> Result<&Message<'c>, ParseError> {
        self.msg.reset();
        self.rep_counts.clear();
        self.recovered.clear();
        self.scope.clear();
        self.mirror_depth = 0;
        let mut pos = 0usize;
        self.parse_node(self.plan.root, bytes, &mut pos, bytes.len(), true)?;
        if pos != bytes.len() {
            return Err(ParseError::TrailingBytes {
                node: self.obf_name(self.plan.root),
                remaining: bytes.len() - pos,
            });
        }
        self.verify_autos()?;
        Ok(&self.msg)
    }

    /// Borrows the session's internal message — the result of the last
    /// successful [`ParseSession::parse_in_place`]. Long-lived holders
    /// (e.g. transport connections) use this to re-borrow the parse result
    /// after interleaved buffer bookkeeping, without taking ownership.
    pub fn message(&self) -> &Message<'c> {
        &self.msg
    }

    /// Consumes the session, returning the last parsed message.
    pub fn into_message(self) -> Message<'c> {
        self.msg
    }

    /// Takes the parsed message out of the session, leaving a fresh one
    /// (the only allocating operation of a steady-state session; prefer
    /// borrowing via [`ParseSession::parse_in_place`] when possible).
    pub fn take_message(&mut self) -> Message<'c> {
        std::mem::replace(&mut self.msg, Message::new(self.g))
    }

    fn obf_name(&self, idx: u32) -> String {
        self.g.node(ObfId(idx)).name().to_string()
    }

    fn plain_name(&self, idx: u32) -> String {
        self.g.plain().node(NodeId(idx)).name().to_string()
    }

    fn parse_node(
        &mut self,
        idx: u32,
        buf: &[u8],
        pos: &mut usize,
        end: usize,
        tail: bool,
    ) -> Result<(), ParseError> {
        let plan = self.plan;
        let node = &plan.nodes[idx as usize];
        match &node.op {
            PlanOp::Dead => Ok(()),
            PlanOp::Term { boundary, .. } => {
                let (start, vend) = match boundary {
                    TermB::Fixed(k) => self.take(idx, pos, end, *k as usize)?,
                    TermB::PlainLen { r, r_depth, r_endian, steps } => {
                        let mut k = self.recover_uint(*r, *r_depth, *r_endian)? as usize;
                        for s in &plan.steps[steps.0 as usize..(steps.0 + steps.1) as usize] {
                            k = s.apply(k);
                        }
                        self.take(idx, pos, end, k)?
                    }
                    TermB::Delim(d) => {
                        let delim = &plan.bytes[*d as usize];
                        match runtime::find(buf, delim, *pos, end) {
                            Some(f) => {
                                let r = (*pos, f);
                                *pos = f + delim.len();
                                r
                            }
                            None => {
                                return Err(ParseError::DelimiterNotFound {
                                    node: self.obf_name(idx),
                                })
                            }
                        }
                    }
                    TermB::End => {
                        let r = (*pos, end);
                        *pos = end;
                        r
                    }
                };
                self.msg.wires.set(idx as usize, &self.scope, &buf[start..vend]);
                Ok(())
            }
            PlanOp::Split { .. } => {
                let kids = plan.kids(node);
                let n = kids.len();
                for (i, &c) in kids.iter().enumerate() {
                    self.parse_node(c, buf, pos, end, tail && i + 1 == n)?;
                }
                Ok(())
            }
            PlanOp::Seq { boundary } => {
                let window = match *boundary {
                    SeqB::Fixed(k) => Some(k as usize),
                    SeqB::PlainLen { r, r_depth, r_endian } => {
                        Some(self.recover_uint(r, r_depth, r_endian)? as usize)
                    }
                    SeqB::Delegated | SeqB::End => None,
                };
                let (sub_end, sub_tail) = match window {
                    Some(k) => {
                        if k > end - *pos {
                            return Err(ParseError::UnexpectedEnd {
                                node: self.obf_name(idx),
                                needed: k,
                                available: end - *pos,
                            });
                        }
                        (*pos + k, true)
                    }
                    None => (end, tail),
                };
                let kids = plan.kids(node);
                let n = kids.len();
                for (i, &c) in kids.iter().enumerate() {
                    self.parse_node(c, buf, pos, sub_end, sub_tail && i + 1 == n)?;
                }
                if window.is_some() && *pos != sub_end {
                    return Err(ParseError::TrailingBytes {
                        node: self.obf_name(idx),
                        remaining: sub_end - *pos,
                    });
                }
                Ok(())
            }
            PlanOp::Opt { subject, subject_depth, pred, origin, origin_depth } => {
                let key = self.scope_key(*subject_depth);
                self.ensure_recovered(*subject, key)?;
                let bytes =
                    self.recovered.get(*subject as usize, key.as_slice()).expect("just recovered");
                let present = pred_eval(&plan.preds[*pred as usize], bytes);
                let od = (*origin_depth as usize).min(self.scope.len());
                let okey = ScopeKey::from_slice(&self.scope[..od]);
                self.msg.presence.set(*origin as usize, okey.as_slice(), present);
                if present {
                    self.parse_node(plan.kids(node)[0], buf, pos, end, tail)?;
                }
                Ok(())
            }
            PlanOp::Rep { stop, origin, origin_depth } => {
                let elem = plan.kids(node)[0];
                let mut i = 0usize;
                match stop {
                    RepStopC::Terminator(t) => loop {
                        let term = &plan.bytes[*t as usize];
                        if *pos + term.len() <= end
                            && &buf[*pos..*pos + term.len()] == term.as_slice()
                        {
                            *pos += term.len();
                            break;
                        }
                        if *pos >= end {
                            return Err(ParseError::DelimiterNotFound { node: self.obf_name(idx) });
                        }
                        let before = *pos;
                        self.scope.push(i as u32);
                        let r = self.parse_node(elem, buf, pos, end, false);
                        self.scope.pop();
                        r?;
                        if *pos == before {
                            return Err(ParseError::Malformed {
                                node: self.obf_name(idx),
                                detail: "zero-length repetition element".into(),
                            });
                        }
                        i += 1;
                    },
                    RepStopC::Exhausted => {
                        while *pos < end {
                            let before = *pos;
                            self.scope.push(i as u32);
                            let r = self.parse_node(elem, buf, pos, end, false);
                            self.scope.pop();
                            r?;
                            if *pos == before {
                                return Err(ParseError::Malformed {
                                    node: self.obf_name(idx),
                                    detail: "zero-length repetition element".into(),
                                });
                            }
                            i += 1;
                        }
                    }
                    RepStopC::CountOf(first) => {
                        let m = self.resolve_count(*first).ok_or_else(|| {
                            ParseError::UnresolvedReference {
                                node: self.obf_name(idx),
                                referenced: self.obf_name(*first),
                            }
                        })?;
                        for j in 0..m {
                            self.scope.push(j as u32);
                            let r = self.parse_node(elem, buf, pos, end, false);
                            self.scope.pop();
                            r?;
                        }
                        i = m;
                    }
                }
                self.rep_counts.set(idx as usize, &self.scope, i);
                if *origin != NONE {
                    let od = (*origin_depth as usize).min(self.scope.len());
                    let okey = ScopeKey::from_slice(&self.scope[..od]);
                    if let Some(prev) = self.msg.counts.get(*origin as usize, okey.as_slice()) {
                        if prev != i {
                            return Err(ParseError::CountMismatch {
                                node: self.obf_name(idx),
                                left: prev,
                                right: i,
                            });
                        }
                    }
                    self.msg.counts.set(*origin as usize, okey.as_slice(), i);
                }
                Ok(())
            }
            PlanOp::Tab { counter, counter_depth, counter_endian, origin, origin_depth } => {
                let m = self.recover_uint(*counter, *counter_depth, *counter_endian)? as usize;
                let elem = plan.kids(node)[0];
                let mut empties = 0usize;
                for j in 0..m {
                    let before = *pos;
                    self.scope.push(j as u32);
                    let r = self.parse_node(elem, buf, pos, end, false);
                    self.scope.pop();
                    r?;
                    if *pos == before {
                        empties += 1;
                        if empties > MAX_EMPTY_ELEMENTS {
                            return Err(ParseError::Malformed {
                                node: self.obf_name(idx),
                                detail: "counter drives too many zero-length elements".into(),
                            });
                        }
                    }
                }
                if *origin != NONE {
                    let od = (*origin_depth as usize).min(self.scope.len());
                    let okey = ScopeKey::from_slice(&self.scope[..od]);
                    self.msg.counts.set(*origin as usize, okey.as_slice(), m);
                }
                Ok(())
            }
            PlanOp::Mirror => {
                let child = plan.kids(node)[0];
                let e = match self.extent(child)? {
                    Some(e) => e,
                    None if tail => end - *pos,
                    None => {
                        return Err(ParseError::Malformed {
                            node: self.obf_name(idx),
                            detail: "cannot determine mirrored extent".into(),
                        })
                    }
                };
                if e > end - *pos {
                    return Err(ParseError::UnexpectedEnd {
                        node: self.obf_name(idx),
                        needed: e,
                        available: end - *pos,
                    });
                }
                let d = self.mirror_depth;
                if self.mirror_pool.len() <= d {
                    self.mirror_pool.push(Vec::new());
                }
                let mut tmp = std::mem::take(&mut self.mirror_pool[d]);
                tmp.clear();
                tmp.extend(buf[*pos..*pos + e].iter().rev());
                self.mirror_depth = d + 1;
                let mut ipos = 0usize;
                let r = self.parse_node(child, &tmp, &mut ipos, e, true);
                self.mirror_depth = d;
                self.mirror_pool[d] = tmp;
                r?;
                if ipos != e {
                    return Err(ParseError::TrailingBytes {
                        node: self.obf_name(idx),
                        remaining: e - ipos,
                    });
                }
                *pos += e;
                Ok(())
            }
            PlanOp::Prefixed { width, endian } => {
                let w = *width as usize;
                if *pos + w > end {
                    return Err(ParseError::UnexpectedEnd {
                        node: self.obf_name(idx),
                        needed: w,
                        available: end - *pos,
                    });
                }
                let n = bytes_to_uint(&buf[*pos..*pos + w], *endian).expect("prefix width <= 8")
                    as usize;
                *pos += w;
                if n > end - *pos {
                    return Err(ParseError::Malformed {
                        node: self.obf_name(idx),
                        detail: format!("length prefix {n} overflows the window"),
                    });
                }
                let sub_end = *pos + n;
                self.parse_node(plan.kids(node)[0], buf, pos, sub_end, true)?;
                if *pos != sub_end {
                    return Err(ParseError::TrailingBytes {
                        node: self.obf_name(idx),
                        remaining: sub_end - *pos,
                    });
                }
                Ok(())
            }
        }
    }

    fn take(
        &mut self,
        idx: u32,
        pos: &mut usize,
        end: usize,
        k: usize,
    ) -> Result<(usize, usize), ParseError> {
        if k > end - *pos {
            return Err(ParseError::UnexpectedEnd {
                node: self.obf_name(idx),
                needed: k,
                available: end - *pos,
            });
        }
        let r = (*pos, *pos + k);
        *pos += k;
        Ok(r)
    }

    /// The current scope truncated to `depth`, as an owned key (ends the
    /// borrow of the scope stack).
    fn scope_key(&self, depth: u8) -> ScopeKey {
        let d = (depth as usize).min(self.scope.len());
        ScopeKey::from_slice(&self.scope[..d])
    }

    /// Recovers the plain value of plain slot `x` at `key` into the
    /// memoized [`Self::recovered`] store (inverting aggregation
    /// transformations over the wires parsed so far).
    fn ensure_recovered(&mut self, x: u32, key: ScopeKey) -> Result<(), ParseError> {
        if self.recovered.contains(x as usize, key.as_slice()) {
            return Ok(());
        }
        let holder = self.plan.holder[x as usize];
        if holder == NONE {
            return Err(ParseError::UnresolvedReference {
                node: self.plain_name(x),
                referenced: "holder".to_string(),
            });
        }
        let prog = self.plan.rec[x as usize].ok_or_else(|| ParseError::UnresolvedReference {
            node: self.plain_name(x),
            referenced: self.obf_name(holder),
        })?;
        let plan = self.plan;
        let Self { ev, msg, .. } = self;
        let range = ev
            .eval(plan, prog, key.as_slice(), &mut |obf, sc, out| match msg
                .wires
                .get(obf as usize, sc)
            {
                Some(b) => {
                    out.extend_from_slice(b);
                    true
                }
                None => false,
            })
            .ok_or_else(|| ParseError::UnresolvedReference {
                node: self.g.plain().node(NodeId(x)).name().to_string(),
                referenced: self.g.node(ObfId(holder)).name().to_string(),
            })?;
        self.recovered.set(x as usize, key.as_slice(), &self.ev.buf[range.0..range.0 + range.1]);
        Ok(())
    }

    /// Recovers a referenced numeric field, truncating the scope to the
    /// reference's own container depth.
    fn recover_uint(&mut self, x: u32, depth: u8, endian: Endian) -> Result<u64, ParseError> {
        let key = self.scope_key(depth);
        self.recover_uint_at(x, key, endian)
    }

    fn recover_uint_at(
        &mut self,
        x: u32,
        key: ScopeKey,
        endian: Endian,
    ) -> Result<u64, ParseError> {
        self.ensure_recovered(x, key)?;
        let bytes = self.recovered.get(x as usize, key.as_slice()).expect("just recovered");
        bytes_to_uint(bytes, endian).ok_or_else(|| ParseError::Malformed {
            node: self.g.plain().node(NodeId(x)).name().to_string(),
            detail: "numeric field wider than 8 bytes".into(),
        })
    }

    /// Pre-parse extent of a subtree: `Ok(Some(n))` when computable from
    /// already-recovered values, `Ok(None)` when only forward parsing can
    /// delimit it.
    fn extent(&mut self, idx: u32) -> Result<Option<usize>, ParseError> {
        let plan = self.plan;
        let node = &plan.nodes[idx as usize];
        match &node.op {
            PlanOp::Term { boundary, .. } => match boundary {
                TermB::Fixed(k) => Ok(Some(*k as usize)),
                TermB::PlainLen { r, r_depth, r_endian, steps } => {
                    let mut k = self.recover_uint(*r, *r_depth, *r_endian)? as usize;
                    for s in &plan.steps[steps.0 as usize..(steps.0 + steps.1) as usize] {
                        k = s.apply(k);
                    }
                    Ok(Some(k))
                }
                TermB::Delim(_) | TermB::End => Ok(None),
            },
            PlanOp::Split { .. } | PlanOp::Seq { boundary: SeqB::Delegated } => {
                let (start, len) = node.children;
                self.sum_extents(start, len)
            }
            PlanOp::Seq { boundary } => match *boundary {
                SeqB::Fixed(k) => Ok(Some(k as usize)),
                SeqB::PlainLen { r, r_depth, r_endian } => {
                    Ok(Some(self.recover_uint(r, r_depth, r_endian)? as usize))
                }
                SeqB::End => Ok(None),
                SeqB::Delegated => unreachable!("handled above"),
            },
            PlanOp::Opt { subject, subject_depth, pred, .. } => {
                let key = self.scope_key(*subject_depth);
                self.ensure_recovered(*subject, key)?;
                let bytes =
                    self.recovered.get(*subject as usize, key.as_slice()).expect("just recovered");
                if pred_eval(&plan.preds[*pred as usize], bytes) {
                    self.extent(plan.kids(node)[0])
                } else {
                    Ok(Some(0))
                }
            }
            PlanOp::Rep { stop, .. } => match stop {
                RepStopC::Terminator(_) | RepStopC::Exhausted => Ok(None),
                RepStopC::CountOf(first) => {
                    let m = match self.resolve_count(*first) {
                        Some(m) => m,
                        None => return Ok(None),
                    };
                    self.times_element(plan.kids(node)[0], m)
                }
            },
            PlanOp::Tab { counter, counter_depth, counter_endian, .. } => {
                let m = self.recover_uint(*counter, *counter_depth, *counter_endian)? as usize;
                self.times_element(plan.kids(node)[0], m)
            }
            PlanOp::Mirror => self.extent(plan.kids(node)[0]),
            PlanOp::Prefixed { .. } => Ok(None),
            PlanOp::Dead => Ok(Some(0)),
        }
    }

    /// Resolves the element count of a repetition, chasing `CountOf` chains
    /// when the linked half has not parsed yet (it may sit inside the same
    /// mirrored region whose extent is being computed).
    fn resolve_count(&self, rep: u32) -> Option<usize> {
        if let Some(m) = self.rep_counts.get(rep as usize, &self.scope) {
            return Some(m);
        }
        match self.plan.nodes[rep as usize].op {
            PlanOp::Rep { stop: RepStopC::CountOf(first), .. } => self.resolve_count(first),
            _ => None,
        }
    }

    fn sum_extents(&mut self, start: u32, len: u32) -> Result<Option<usize>, ParseError> {
        let mut total = 0usize;
        for i in start..start + len {
            let c = self.plan.children[i as usize];
            match self.extent(c)? {
                Some(e) => total = total.saturating_add(e),
                None => return Ok(None),
            }
        }
        Ok(Some(total))
    }

    fn times_element(&mut self, elem: u32, m: usize) -> Result<Option<usize>, ParseError> {
        if m == 0 {
            return Ok(Some(0));
        }
        self.scope.push(0);
        let e = self.extent(elem);
        self.scope.pop();
        match e? {
            Some(e) => Ok(Some(e.saturating_mul(m))),
            None => Ok(None),
        }
    }

    /// Post-parse sanity checks: recovered auto length/counter fields must
    /// match the recomputed plain quantities (paper: "sanity checks" in the
    /// generated library). Catches corrupted or inconsistent messages that
    /// parsed structurally.
    fn verify_autos(&mut self) -> Result<(), ParseError> {
        for ci in 0..self.plan.autos.len() {
            let check = self.plan.autos[ci].clone();
            // Every scope at which this auto field's holder produced a
            // first terminal wire is one recovered instance.
            self.keys.clear();
            let Self { keys, msg, .. } = self;
            keys.extend(msg.wires.scopes_of(check.first_term as usize).map(ScopeKey::from_slice));
            for ki in 0..self.keys.len() {
                let key = self.keys[ki];
                match check.kind {
                    AutoCheckKind::Literal(pool) => {
                        self.ensure_recovered(check.plain, key)?;
                        let expected = &self.plan.consts[pool as usize];
                        let got = self
                            .recovered
                            .get(check.plain as usize, key.as_slice())
                            .expect("just recovered");
                        if got != expected.as_bytes() {
                            let got = Value::from_bytes(got.to_vec());
                            return Err(ParseError::Malformed {
                                node: self.plain_name(check.plain),
                                detail: format!(
                                    "constant field holds {got:?}, expected {expected:?}"
                                ),
                            });
                        }
                    }
                    AutoCheckKind::LengthOf { target, depth } => {
                        let endian = self.plan.plain_endian[check.plain as usize];
                        let stored = self.recover_uint_at(check.plain, key, endian)?;
                        let td = (depth as usize).min(key.as_slice().len());
                        let computed = self
                            .msg
                            .plain_len(NodeId(target), &key.as_slice()[..td])
                            .unwrap_or(usize::MAX) as u64;
                        if stored != computed {
                            return Err(ParseError::AutoMismatch {
                                node: self.plain_name(check.plain),
                                stored,
                                computed,
                            });
                        }
                    }
                    AutoCheckKind::CounterOf { target, depth } => {
                        let endian = self.plan.plain_endian[check.plain as usize];
                        let stored = self.recover_uint_at(check.plain, key, endian)?;
                        let td = (depth as usize).min(key.as_slice().len());
                        let computed =
                            self.msg.count_of(NodeId(target), &key.as_slice()[..td]) as u64;
                        if stored != computed {
                            return Err(ParseError::AutoMismatch {
                                node: self.plain_name(check.plain),
                                stored,
                                computed,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// reference graph-walk interpreter
// ---------------------------------------------------------------------------

/// Parses an obfuscated message by directly interpreting the obfuscation
/// graph — the **reference implementation** the compiled-plan path is
/// differentially tested against. Production code should use
/// [`crate::codec::Codec::parse`] (plan-based, cached).
///
/// # Errors
///
/// [`ParseError`] when the bytes do not form a valid message under this
/// obfuscation graph (truncation, missing delimiters, inconsistent
/// lengths/counts, trailing bytes).
pub fn parse<'c>(g: &'c ObfGraph, bytes: &[u8]) -> Result<Message<'c>, ParseError> {
    let mut ctx = Ctx {
        g,
        wires: HashMap::new(),
        presence: HashMap::new(),
        counts: HashMap::new(),
        rep_counts: HashMap::new(),
        plain_memo: HashMap::new(),
    };
    let mut pos = 0usize;
    let mut scope: Scope = Vec::new();
    ctx.parse_node(g.root(), bytes, &mut pos, bytes.len(), true, &mut scope)?;
    if pos != bytes.len() {
        return Err(ParseError::TrailingBytes {
            node: g.node(g.root()).name().to_string(),
            remaining: bytes.len() - pos,
        });
    }
    ctx.verify_auto_fields()?;
    Ok(Message::from_parts(g, ctx.wires, ctx.presence, ctx.counts))
}

struct Ctx<'g> {
    g: &'g ObfGraph,
    wires: HashMap<(ObfId, Scope), Value>,
    presence: HashMap<(NodeId, Scope), bool>,
    counts: HashMap<(NodeId, Scope), usize>,
    rep_counts: HashMap<(ObfId, Scope), usize>,
    plain_memo: HashMap<(NodeId, Scope), Value>,
}

impl<'g> Ctx<'g> {
    /// Parses `node` starting at `*pos`, never reading past `end`. `tail`
    /// means the node's window extends exactly to `end` with nothing
    /// following inside it.
    fn parse_node(
        &mut self,
        id: ObfId,
        buf: &[u8],
        pos: &mut usize,
        end: usize,
        tail: bool,
        scope: &mut Scope,
    ) -> Result<(), ParseError> {
        let node = self.g.node(id).clone();
        match &node.kind {
            ObfKind::Terminal { boundary, .. } => {
                let value = match boundary {
                    TermBoundary::Fixed(k) => self.take(id, buf, pos, end, *k)?,
                    TermBoundary::PlainLen { source, steps } => {
                        let k = self.plain_len_extent(*source, steps, scope)?;
                        self.take(id, buf, pos, end, k)?
                    }
                    TermBoundary::Delimited(d) => match runtime::find(buf, d, *pos, end) {
                        Some(f) => {
                            let v = buf[*pos..f].to_vec();
                            *pos = f + d.len();
                            Value::from_bytes(v)
                        }
                        None => {
                            return Err(ParseError::DelimiterNotFound {
                                node: node.name().to_string(),
                            })
                        }
                    },
                    TermBoundary::End => {
                        let v = buf[*pos..end].to_vec();
                        *pos = end;
                        Value::from_bytes(v)
                    }
                };
                self.wires.insert((id, scope.clone()), value);
                Ok(())
            }
            ObfKind::SplitSeq { .. } => {
                let n = node.children().len();
                for (i, &c) in node.children().iter().enumerate() {
                    self.parse_node(c, buf, pos, end, tail && i + 1 == n, scope)?;
                }
                Ok(())
            }
            ObfKind::Sequence { boundary } => {
                let window = match boundary {
                    SeqBoundary::Fixed(k) => Some(*k),
                    SeqBoundary::PlainLen(p) => {
                        let r = self
                            .g
                            .plain()
                            .node(*p)
                            .boundary()
                            .reference()
                            .expect("validated PlainLen sequences carry Length boundaries");
                        Some(self.recover_uint(r, scope)? as usize)
                    }
                    SeqBoundary::Delegated | SeqBoundary::End => None,
                };
                let (sub_end, sub_tail) = match window {
                    Some(k) => {
                        if k > end - *pos {
                            return Err(ParseError::UnexpectedEnd {
                                node: node.name().to_string(),
                                needed: k,
                                available: end - *pos,
                            });
                        }
                        (*pos + k, true)
                    }
                    None => (end, tail),
                };
                let n = node.children().len();
                for (i, &c) in node.children().iter().enumerate() {
                    self.parse_node(c, buf, pos, sub_end, sub_tail && i + 1 == n, scope)?;
                }
                if window.is_some() && *pos != sub_end {
                    return Err(ParseError::TrailingBytes {
                        node: node.name().to_string(),
                        remaining: sub_end - *pos,
                    });
                }
                Ok(())
            }
            ObfKind::Optional { condition } => {
                let subject_scope = runtime::scoped(self.g.plain(), condition.subject, scope);
                let subject = self.recover_plain(condition.subject, &subject_scope)?;
                let present = condition.predicate.eval(&subject);
                let origin = node.origin().expect("optionals always have plain origins");
                let oscope = runtime::scoped(self.g.plain(), origin, scope);
                self.presence.insert((origin, oscope), present);
                if present {
                    self.parse_node(node.children()[0], buf, pos, end, tail, scope)?;
                }
                Ok(())
            }
            ObfKind::Repetition { stop } => {
                let elem = node.children()[0];
                let mut i = 0usize;
                match stop {
                    RepStop::Terminator(t) => loop {
                        if *pos + t.len() <= end && &buf[*pos..*pos + t.len()] == t.as_slice() {
                            *pos += t.len();
                            break;
                        }
                        if *pos >= end {
                            return Err(ParseError::DelimiterNotFound {
                                node: node.name().to_string(),
                            });
                        }
                        let before = *pos;
                        scope.push(i as u32);
                        let r = self.parse_node(elem, buf, pos, end, false, scope);
                        scope.pop();
                        r?;
                        if *pos == before {
                            return Err(ParseError::Malformed {
                                node: node.name().to_string(),
                                detail: "zero-length repetition element".into(),
                            });
                        }
                        i += 1;
                    },
                    RepStop::Exhausted => {
                        while *pos < end {
                            let before = *pos;
                            scope.push(i as u32);
                            let r = self.parse_node(elem, buf, pos, end, false, scope);
                            scope.pop();
                            r?;
                            if *pos == before {
                                return Err(ParseError::Malformed {
                                    node: node.name().to_string(),
                                    detail: "zero-length repetition element".into(),
                                });
                            }
                            i += 1;
                        }
                    }
                    RepStop::CountOf(first) => {
                        let m = self.resolve_count(*first, scope).ok_or_else(|| {
                            ParseError::UnresolvedReference {
                                node: node.name().to_string(),
                                referenced: self.g.node(*first).name().to_string(),
                            }
                        })?;
                        for j in 0..m {
                            scope.push(j as u32);
                            let r = self.parse_node(elem, buf, pos, end, false, scope);
                            scope.pop();
                            r?;
                        }
                        i = m;
                    }
                }
                self.rep_counts.insert((id, scope.clone()), i);
                if let Some(origin) = node.origin() {
                    let oscope = runtime::scoped(self.g.plain(), origin, scope);
                    if let Some(prev) = self.counts.get(&(origin, oscope.clone())) {
                        if *prev != i {
                            return Err(ParseError::CountMismatch {
                                node: node.name().to_string(),
                                left: *prev,
                                right: i,
                            });
                        }
                    }
                    self.counts.insert((origin, oscope), i);
                }
                Ok(())
            }
            ObfKind::Tabular { counter } => {
                let cscope = runtime::scoped(self.g.plain(), *counter, scope);
                let m = self.recover_uint_at(*counter, &cscope)? as usize;
                let elem = node.children()[0];
                let mut empties = 0usize;
                for j in 0..m {
                    let before = *pos;
                    scope.push(j as u32);
                    let r = self.parse_node(elem, buf, pos, end, false, scope);
                    scope.pop();
                    r?;
                    if *pos == before {
                        empties += 1;
                        if empties > MAX_EMPTY_ELEMENTS {
                            return Err(ParseError::Malformed {
                                node: node.name().to_string(),
                                detail: "counter drives too many zero-length elements".into(),
                            });
                        }
                    }
                }
                if let Some(origin) = node.origin() {
                    let oscope = runtime::scoped(self.g.plain(), origin, scope);
                    self.counts.insert((origin, oscope), m);
                }
                Ok(())
            }
            ObfKind::Mirror => {
                let child = node.children()[0];
                let e = match self.extent(child, scope)? {
                    Some(e) => e,
                    None if tail => end - *pos,
                    None => {
                        return Err(ParseError::Malformed {
                            node: node.name().to_string(),
                            detail: "cannot determine mirrored extent".into(),
                        })
                    }
                };
                if e > end - *pos {
                    return Err(ParseError::UnexpectedEnd {
                        node: node.name().to_string(),
                        needed: e,
                        available: end - *pos,
                    });
                }
                let mut temp = buf[*pos..*pos + e].to_vec();
                temp.reverse();
                let mut ipos = 0usize;
                self.parse_node(child, &temp, &mut ipos, e, true, scope)?;
                if ipos != e {
                    return Err(ParseError::TrailingBytes {
                        node: node.name().to_string(),
                        remaining: e - ipos,
                    });
                }
                *pos += e;
                Ok(())
            }
            ObfKind::Prefixed { width, endian } => {
                if *pos + *width > end {
                    return Err(ParseError::UnexpectedEnd {
                        node: node.name().to_string(),
                        needed: *width,
                        available: end - *pos,
                    });
                }
                let n = Value::from_bytes(buf[*pos..*pos + *width].to_vec())
                    .to_uint(*endian)
                    .expect("prefix width <= 8") as usize;
                *pos += *width;
                if n > end - *pos {
                    return Err(ParseError::Malformed {
                        node: node.name().to_string(),
                        detail: format!("length prefix {n} overflows the window"),
                    });
                }
                let sub_end = *pos + n;
                self.parse_node(node.children()[0], buf, pos, sub_end, true, scope)?;
                if *pos != sub_end {
                    return Err(ParseError::TrailingBytes {
                        node: node.name().to_string(),
                        remaining: sub_end - *pos,
                    });
                }
                Ok(())
            }
        }
    }

    fn take(
        &mut self,
        id: ObfId,
        buf: &[u8],
        pos: &mut usize,
        end: usize,
        k: usize,
    ) -> Result<Value, ParseError> {
        if k > end - *pos {
            return Err(ParseError::UnexpectedEnd {
                node: self.g.node(id).name().to_string(),
                needed: k,
                available: end - *pos,
            });
        }
        let v = buf[*pos..*pos + k].to_vec();
        *pos += k;
        Ok(Value::from_bytes(v))
    }

    /// Extent of a terminal whose plain length is carried by a `Length`
    /// reference, with split derivation steps applied.
    fn plain_len_extent(
        &mut self,
        source: NodeId,
        steps: &[LenStep],
        scope: &[u32],
    ) -> Result<usize, ParseError> {
        let r = self
            .g
            .plain()
            .node(source)
            .boundary()
            .reference()
            .expect("PlainLen terminals have Length boundaries");
        let mut len = self.recover_uint(r, scope)? as usize;
        for s in steps {
            len = s.apply(len);
        }
        Ok(len)
    }

    /// Recovers the plain value of terminal `x`, inverting aggregation
    /// transformations over the wires parsed so far.
    fn recover_plain(&mut self, x: NodeId, scope: &[u32]) -> Result<Value, ParseError> {
        if let Some(v) = self.plain_memo.get(&(x, scope.to_vec())) {
            return Ok(v.clone());
        }
        let holder = self.g.holder_of(x).ok_or_else(|| ParseError::UnresolvedReference {
            node: self.g.plain().node(x).name().to_string(),
            referenced: "holder".to_string(),
        })?;
        let v = runtime::recover(self.g, holder, scope, &|id, sc| {
            self.wires.get(&(id, sc.to_vec())).cloned()
        })
        .ok_or_else(|| ParseError::UnresolvedReference {
            node: self.g.plain().node(x).name().to_string(),
            referenced: self.g.node(holder).name().to_string(),
        })?;
        self.plain_memo.insert((x, scope.to_vec()), v.clone());
        Ok(v)
    }

    /// Recovers a referenced numeric field, truncating the scope to the
    /// reference's own container depth.
    fn recover_uint(&mut self, x: NodeId, scope: &[u32]) -> Result<u64, ParseError> {
        let xscope = runtime::scoped(self.g.plain(), x, scope);
        self.recover_uint_at(x, &xscope)
    }

    fn recover_uint_at(&mut self, x: NodeId, xscope: &[u32]) -> Result<u64, ParseError> {
        let v = self.recover_plain(x, xscope)?;
        let endian = match self.g.plain().node(x).terminal_kind() {
            Some(TerminalKind::UInt { endian, .. }) => *endian,
            _ => Endian::Big,
        };
        v.to_uint(endian).ok_or_else(|| ParseError::Malformed {
            node: self.g.plain().node(x).name().to_string(),
            detail: "numeric field wider than 8 bytes".into(),
        })
    }

    /// Pre-parse extent of a subtree: `Ok(Some(n))` when computable from
    /// already-recovered values, `Ok(None)` when only forward parsing can
    /// delimit it.
    fn extent(&mut self, id: ObfId, scope: &[u32]) -> Result<Option<usize>, ParseError> {
        let node = self.g.node(id).clone();
        match &node.kind {
            ObfKind::Terminal { boundary, .. } => match boundary {
                TermBoundary::Fixed(k) => Ok(Some(*k)),
                TermBoundary::PlainLen { source, steps } => {
                    Ok(Some(self.plain_len_extent(*source, steps, scope)?))
                }
                TermBoundary::Delimited(_) | TermBoundary::End => Ok(None),
            },
            ObfKind::SplitSeq { .. } | ObfKind::Sequence { boundary: SeqBoundary::Delegated } => {
                self.sum_extents(node.children(), scope)
            }
            ObfKind::Sequence { boundary } => match boundary {
                SeqBoundary::Fixed(k) => Ok(Some(*k)),
                SeqBoundary::PlainLen(p) => {
                    let r = self
                        .g
                        .plain()
                        .node(*p)
                        .boundary()
                        .reference()
                        .expect("validated PlainLen sequences carry Length boundaries");
                    Ok(Some(self.recover_uint(r, scope)? as usize))
                }
                SeqBoundary::End => Ok(None),
                SeqBoundary::Delegated => unreachable!("handled above"),
            },
            ObfKind::Optional { condition } => {
                let sscope = runtime::scoped(self.g.plain(), condition.subject, scope);
                let subject = self.recover_plain(condition.subject, &sscope)?;
                if condition.predicate.eval(&subject) {
                    self.extent(node.children()[0], scope)
                } else {
                    Ok(Some(0))
                }
            }
            ObfKind::Repetition { stop } => match stop {
                RepStop::Terminator(_) | RepStop::Exhausted => Ok(None),
                RepStop::CountOf(first) => {
                    let m = match self.resolve_count(*first, scope) {
                        Some(m) => m,
                        None => return Ok(None),
                    };
                    self.times_element(node.children()[0], m, scope)
                }
            },
            ObfKind::Tabular { counter } => {
                let m = self.recover_uint(*counter, scope)? as usize;
                self.times_element(node.children()[0], m, scope)
            }
            ObfKind::Mirror => self.extent(node.children()[0], scope),
            ObfKind::Prefixed { .. } => Ok(None),
        }
    }

    /// Resolves the element count of a repetition, chasing `CountOf` chains
    /// when the linked half has not parsed yet (it may sit inside the same
    /// mirrored region whose extent is being computed).
    fn resolve_count(&self, rep: ObfId, scope: &[u32]) -> Option<usize> {
        if let Some(m) = self.rep_counts.get(&(rep, scope.to_vec())) {
            return Some(*m);
        }
        match self.g.node(rep).kind() {
            ObfKind::Repetition { stop: RepStop::CountOf(first) } => {
                self.resolve_count(*first, scope)
            }
            _ => None,
        }
    }

    fn sum_extents(
        &mut self,
        children: &[ObfId],
        scope: &[u32],
    ) -> Result<Option<usize>, ParseError> {
        let mut total = 0usize;
        for &c in children {
            match self.extent(c, scope)? {
                Some(e) => total = total.saturating_add(e),
                None => return Ok(None),
            }
        }
        Ok(Some(total))
    }

    fn times_element(
        &mut self,
        elem: ObfId,
        m: usize,
        scope: &[u32],
    ) -> Result<Option<usize>, ParseError> {
        if m == 0 {
            return Ok(Some(0));
        }
        let mut sc = scope.to_vec();
        sc.push(0);
        match self.extent(elem, &sc)? {
            Some(e) => Ok(Some(e.saturating_mul(m))),
            None => Ok(None),
        }
    }

    /// Post-parse sanity checks: recovered auto length/counter fields must
    /// match the recomputed plain quantities (paper: "sanity checks" in the
    /// generated library). Catches corrupted or inconsistent messages that
    /// parsed structurally.
    fn verify_auto_fields(&mut self) -> Result<(), ParseError> {
        let plain = self.g.plain();
        let message = Message::from_parts(
            self.g,
            self.wires.clone(),
            self.presence.clone(),
            self.counts.clone(),
        );
        // Collect (auto field, instances) — instances are all scopes at
        // which the field was recovered.
        for x in plain.ids() {
            let node = plain.node(x);
            if !node.auto().is_auto() {
                continue;
            }
            let holder = match self.g.holder_of(x) {
                Some(h) => h,
                None => continue,
            };
            // Find every scope at which this field's holder subtree has a
            // first terminal wire.
            let first_term =
                self.g.subtree(holder).into_iter().find(|&n| self.g.node(n).is_terminal());
            let first_term = match first_term {
                Some(t) => t,
                None => continue,
            };
            let scopes: Vec<Scope> = self
                .wires
                .keys()
                .filter(|(id, _)| *id == first_term)
                .map(|(_, sc)| sc.clone())
                .collect();
            // Constant fields: the recovered bytes must equal the literal.
            if let crate::graph::AutoValue::Literal(expected) = node.auto() {
                for sc in scopes {
                    let recovered = self.recover_plain(x, &sc)?;
                    if &recovered != expected {
                        return Err(ParseError::Malformed {
                            node: node.name().to_string(),
                            detail: format!(
                                "constant field holds {recovered:?}, expected {expected:?}"
                            ),
                        });
                    }
                }
                continue;
            }
            let target = match node.auto().target() {
                Some(t) => t,
                None => continue,
            };
            for sc in scopes {
                let stored = self.recover_uint_at(x, &sc)?;
                let tscope = runtime::scoped(plain, target, &sc);
                let computed = match node.auto() {
                    crate::graph::AutoValue::LengthOf(_) => {
                        message.plain_len(target, &tscope).unwrap_or(usize::MAX) as u64
                    }
                    crate::graph::AutoValue::CounterOf(_) => {
                        message.count_of(target, &tscope) as u64
                    }
                    crate::graph::AutoValue::None | crate::graph::AutoValue::Literal(_) => continue,
                };
                if stored != computed {
                    return Err(ParseError::AutoMismatch {
                        node: node.name().to_string(),
                        stored,
                        computed,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, Condition, GraphBuilder, Predicate};
    use crate::message::Message;
    use crate::plan::CodecPlan;
    use crate::serialize::serialize_seeded;

    fn modbus_mini() -> ObfGraph {
        let mut b = GraphBuilder::new("mb");
        let root = b.root_sequence("frame", Boundary::End);
        let _tid = b.uint_be(root, "tid", 2);
        let len = b.uint_be(root, "len", 2);
        let pdu = b.sequence(root, "pdu", Boundary::Delegated);
        b.set_auto(len, AutoValue::LengthOf(pdu));
        let func = b.uint_be(pdu, "func", 1);
        let wr = b.optional(
            pdu,
            "write",
            Condition { subject: func, predicate: Predicate::Equals(Value::from_bytes(vec![6])) },
        );
        let wbody = b.sequence(wr, "write_body", Boundary::Delegated);
        b.uint_be(wbody, "addr", 2);
        b.uint_be(wbody, "value", 2);
        ObfGraph::from_plain(&b.build().unwrap())
    }

    #[test]
    fn parse_inverts_plain_serialize() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 0x0102).unwrap();
        m.set_uint("pdu.func", 6).unwrap();
        m.set_uint("pdu.write.addr", 0x0010).unwrap();
        m.set_uint("pdu.write.value", 0xBEEF).unwrap();
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        let back = parse(&g, &wire).unwrap();
        assert_eq!(back.get_uint("tid").unwrap(), 0x0102);
        assert_eq!(back.get_uint("pdu.func").unwrap(), 6);
        assert_eq!(back.get_uint("pdu.write.addr").unwrap(), 0x0010);
        assert_eq!(back.get_uint("pdu.write.value").unwrap(), 0xBEEF);
        assert!(back.is_present("pdu.write"));
        assert_eq!(back.get_uint("len").unwrap(), 5);
    }

    #[test]
    fn session_parse_matches_reference() {
        let g = modbus_mini();
        let plan = CodecPlan::compile(&g);
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 0x0102).unwrap();
        m.set_uint("pdu.func", 6).unwrap();
        m.set_uint("pdu.write.addr", 16).unwrap();
        m.set_uint("pdu.write.value", 48879).unwrap();
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        let mut s = ParseSession::new(&g, &plan);
        for _ in 0..3 {
            let back = s.parse_in_place(&wire).unwrap();
            assert_eq!(back.get_uint("tid").unwrap(), 0x0102);
            assert_eq!(back.get_uint("pdu.write.value").unwrap(), 48879);
            assert!(back.is_present("pdu.write"));
            assert_eq!(back.get_uint("len").unwrap(), 5);
        }
    }

    #[test]
    fn parse_detects_truncation() {
        let g = modbus_mini();
        let plan = CodecPlan::compile(&g);
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 1).unwrap();
        m.set_uint("pdu.func", 3).unwrap();
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        let mut s = ParseSession::new(&g, &plan);
        for cut in 0..wire.len() {
            assert!(parse(&g, &wire[..cut]).is_err(), "truncation at {cut} must fail");
            assert!(s.parse_in_place(&wire[..cut]).is_err(), "session truncation at {cut}");
        }
    }

    #[test]
    fn parse_detects_inconsistent_auto_len() {
        let g = modbus_mini();
        let plan = CodecPlan::compile(&g);
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 1).unwrap();
        m.set_uint("pdu.func", 3).unwrap();
        let mut wire = serialize_seeded(&g, &m, 9).unwrap();
        // Corrupt the auto length field (bytes 2..4): parse must notice.
        wire[3] = wire[3].wrapping_add(1);
        assert!(parse(&g, &wire).is_err());
        assert!(ParseSession::new(&g, &plan).parse_in_place(&wire).is_err());
    }

    #[test]
    fn parse_absent_optional() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 7).unwrap();
        m.set_uint("pdu.func", 1).unwrap();
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        let back = parse(&g, &wire).unwrap();
        assert!(!back.is_present("pdu.write"));
        assert!(back.get("pdu.write.addr").is_err());
    }

    #[test]
    fn hostile_length_field_is_an_error_not_a_panic() {
        // An 8-byte length field of u64::MAX must produce a ParseError in
        // both interpreters — never an arithmetic overflow.
        let mut b = GraphBuilder::new("h");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 8);
        b.terminal(root, "data", crate::value::TerminalKind::Bytes, Boundary::Length(len));
        let g = ObfGraph::from_plain(&b.build().unwrap());
        let plan = CodecPlan::compile(&g);
        let mut wire = vec![0xFF; 8]; // len = u64::MAX
        wire.extend_from_slice(b"short");
        assert!(parse(&g, &wire).is_err());
        assert!(ParseSession::new(&g, &plan).parse_in_place(&wire).is_err());
    }

    #[test]
    fn hostile_tabular_counter_is_bounded() {
        // A huge counter over zero-size elements (all-absent optional) must
        // fail fast instead of looping for the counter's magnitude.
        let mut b = GraphBuilder::new("h");
        let root = b.root_sequence("m", Boundary::End);
        let flag = b.uint_be(root, "flag", 1);
        let count = b.uint_be(root, "count", 4);
        let tab = b.tabular(root, "items", count);
        let opt = b.optional(
            tab,
            "maybe",
            Condition { subject: flag, predicate: Predicate::Equals(Value::from_bytes(vec![1])) },
        );
        b.uint_be(opt, "v", 2);
        b.uint_be(root, "end_marker", 1);
        let g = ObfGraph::from_plain(&b.build().unwrap());
        let plan = CodecPlan::compile(&g);
        // flag=0 (optional absent ⇒ zero-size elements), count=100M.
        let wire = [&[0u8][..], &100_000_000u32.to_be_bytes(), &[7u8]].concat();
        let t = std::time::Instant::now();
        assert!(parse(&g, &wire).is_err());
        assert!(ParseSession::new(&g, &plan).parse_in_place(&wire).is_err());
        assert!(t.elapsed() < std::time::Duration::from_secs(5), "must fail fast");
    }

    #[test]
    fn parse_rejects_trailing_bytes() {
        let g = modbus_mini();
        let plan = CodecPlan::compile(&g);
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 7).unwrap();
        m.set_uint("pdu.func", 1).unwrap();
        let mut wire = serialize_seeded(&g, &m, 9).unwrap();
        // The root is End-bounded, so extra bytes extend the pdu and break
        // the auto-length sanity check instead of going unnoticed.
        wire.push(0xAA);
        assert!(parse(&g, &wire).is_err());
        assert!(ParseSession::new(&g, &plan).parse_in_place(&wire).is_err());
    }
}

//! The deobfuscating parser.
//!
//! Parsing interprets the obfuscation graph over the received bytes,
//! undoing the ordering transformations structurally (windows, mirrors,
//! length prefixes, split repetitions) and collecting the wire value of
//! every terminal. Values the parser needs *during* parsing — length
//! references, tabular counters, optional conditions, linked repetition
//! counts — are recovered eagerly by inverting the aggregation
//! transformations (paper §V-C: "the parser has to face an additional
//! challenge: to rebuild a sub-node of the AST from the message, it must
//! first delimit the corresponding sub-part").

use std::collections::HashMap;

use crate::error::ParseError;
use crate::graph::NodeId;
use crate::message::Message;
use crate::obf::{LenStep, ObfGraph, ObfId, ObfKind, RepStop, SeqBoundary, TermBoundary};
use crate::runtime::{self, Scope};
use crate::value::{Endian, TerminalKind, Value};

/// Parses an obfuscated message, returning the recovered [`Message`] whose
/// getters yield plain field values.
///
/// # Errors
///
/// [`ParseError`] when the bytes do not form a valid message under this
/// obfuscation graph (truncation, missing delimiters, inconsistent
/// lengths/counts, trailing bytes).
pub fn parse<'c>(g: &'c ObfGraph, bytes: &[u8]) -> Result<Message<'c>, ParseError> {
    let mut ctx = Ctx {
        g,
        wires: HashMap::new(),
        presence: HashMap::new(),
        counts: HashMap::new(),
        rep_counts: HashMap::new(),
        plain_memo: HashMap::new(),
    };
    let mut pos = 0usize;
    let mut scope: Scope = Vec::new();
    ctx.parse_node(g.root(), bytes, &mut pos, bytes.len(), true, &mut scope)?;
    if pos != bytes.len() {
        return Err(ParseError::TrailingBytes {
            node: g.node(g.root()).name().to_string(),
            remaining: bytes.len() - pos,
        });
    }
    ctx.verify_auto_fields()?;
    Ok(Message::from_parts(g, ctx.wires, ctx.presence, ctx.counts))
}

struct Ctx<'g> {
    g: &'g ObfGraph,
    wires: HashMap<(ObfId, Scope), Value>,
    presence: HashMap<(NodeId, Scope), bool>,
    counts: HashMap<(NodeId, Scope), usize>,
    rep_counts: HashMap<(ObfId, Scope), usize>,
    plain_memo: HashMap<(NodeId, Scope), Value>,
}

impl<'g> Ctx<'g> {
    /// Parses `node` starting at `*pos`, never reading past `end`. `tail`
    /// means the node's window extends exactly to `end` with nothing
    /// following inside it.
    fn parse_node(
        &mut self,
        id: ObfId,
        buf: &[u8],
        pos: &mut usize,
        end: usize,
        tail: bool,
        scope: &mut Scope,
    ) -> Result<(), ParseError> {
        let node = self.g.node(id).clone();
        match &node.kind {
            ObfKind::Terminal { boundary, .. } => {
                let value = match boundary {
                    TermBoundary::Fixed(k) => self.take(id, buf, pos, end, *k)?,
                    TermBoundary::PlainLen { source, steps } => {
                        let k = self.plain_len_extent(*source, steps, scope)?;
                        self.take(id, buf, pos, end, k)?
                    }
                    TermBoundary::Delimited(d) => {
                        match runtime::find(buf, d, *pos, end) {
                            Some(f) => {
                                let v = buf[*pos..f].to_vec();
                                *pos = f + d.len();
                                Value::from_bytes(v)
                            }
                            None => {
                                return Err(ParseError::DelimiterNotFound {
                                    node: node.name().to_string(),
                                })
                            }
                        }
                    }
                    TermBoundary::End => {
                        let v = buf[*pos..end].to_vec();
                        *pos = end;
                        Value::from_bytes(v)
                    }
                };
                self.wires.insert((id, scope.clone()), value);
                Ok(())
            }
            ObfKind::SplitSeq { .. } => {
                let n = node.children().len();
                for (i, &c) in node.children().iter().enumerate() {
                    self.parse_node(c, buf, pos, end, tail && i + 1 == n, scope)?;
                }
                Ok(())
            }
            ObfKind::Sequence { boundary } => {
                let window = match boundary {
                    SeqBoundary::Fixed(k) => Some(*k),
                    SeqBoundary::PlainLen(p) => {
                        let r = self.g.plain().node(*p).boundary().reference().expect(
                            "validated PlainLen sequences carry Length boundaries",
                        );
                        Some(self.recover_uint(r, scope)? as usize)
                    }
                    SeqBoundary::Delegated | SeqBoundary::End => None,
                };
                let (sub_end, sub_tail) = match window {
                    Some(k) => {
                        if *pos + k > end {
                            return Err(ParseError::UnexpectedEnd {
                                node: node.name().to_string(),
                                needed: k,
                                available: end - *pos,
                            });
                        }
                        (*pos + k, true)
                    }
                    None => (end, tail),
                };
                let n = node.children().len();
                for (i, &c) in node.children().iter().enumerate() {
                    self.parse_node(c, buf, pos, sub_end, sub_tail && i + 1 == n, scope)?;
                }
                if window.is_some() && *pos != sub_end {
                    return Err(ParseError::TrailingBytes {
                        node: node.name().to_string(),
                        remaining: sub_end - *pos,
                    });
                }
                Ok(())
            }
            ObfKind::Optional { condition } => {
                let subject_scope = runtime::scoped(self.g.plain(), condition.subject, scope);
                let subject = self.recover_plain(condition.subject, &subject_scope)?;
                let present = condition.predicate.eval(&subject);
                let origin = node.origin().expect("optionals always have plain origins");
                let oscope = runtime::scoped(self.g.plain(), origin, scope);
                self.presence.insert((origin, oscope), present);
                if present {
                    self.parse_node(node.children()[0], buf, pos, end, tail, scope)?;
                }
                Ok(())
            }
            ObfKind::Repetition { stop } => {
                let elem = node.children()[0];
                let mut i = 0usize;
                match stop {
                    RepStop::Terminator(t) => loop {
                        if *pos + t.len() <= end && &buf[*pos..*pos + t.len()] == t.as_slice() {
                            *pos += t.len();
                            break;
                        }
                        if *pos >= end {
                            return Err(ParseError::DelimiterNotFound {
                                node: node.name().to_string(),
                            });
                        }
                        let before = *pos;
                        scope.push(i as u32);
                        let r = self.parse_node(elem, buf, pos, end, false, scope);
                        scope.pop();
                        r?;
                        if *pos == before {
                            return Err(ParseError::Malformed {
                                node: node.name().to_string(),
                                detail: "zero-length repetition element".into(),
                            });
                        }
                        i += 1;
                    },
                    RepStop::Exhausted => {
                        while *pos < end {
                            let before = *pos;
                            scope.push(i as u32);
                            let r = self.parse_node(elem, buf, pos, end, false, scope);
                            scope.pop();
                            r?;
                            if *pos == before {
                                return Err(ParseError::Malformed {
                                    node: node.name().to_string(),
                                    detail: "zero-length repetition element".into(),
                                });
                            }
                            i += 1;
                        }
                    }
                    RepStop::CountOf(first) => {
                        let m = self.resolve_count(*first, scope).ok_or_else(|| {
                            ParseError::UnresolvedReference {
                                node: node.name().to_string(),
                                referenced: self.g.node(*first).name().to_string(),
                            }
                        })?;
                        for j in 0..m {
                            scope.push(j as u32);
                            let r = self.parse_node(elem, buf, pos, end, false, scope);
                            scope.pop();
                            r?;
                        }
                        i = m;
                    }
                }
                self.rep_counts.insert((id, scope.clone()), i);
                if let Some(origin) = node.origin() {
                    let oscope = runtime::scoped(self.g.plain(), origin, scope);
                    if let Some(prev) = self.counts.get(&(origin, oscope.clone())) {
                        if *prev != i {
                            return Err(ParseError::CountMismatch {
                                node: node.name().to_string(),
                                left: *prev,
                                right: i,
                            });
                        }
                    }
                    self.counts.insert((origin, oscope), i);
                }
                Ok(())
            }
            ObfKind::Tabular { counter } => {
                let cscope = runtime::scoped(self.g.plain(), *counter, scope);
                let m = self.recover_uint_at(*counter, &cscope)? as usize;
                let elem = node.children()[0];
                for j in 0..m {
                    scope.push(j as u32);
                    let r = self.parse_node(elem, buf, pos, end, false, scope);
                    scope.pop();
                    r?;
                }
                if let Some(origin) = node.origin() {
                    let oscope = runtime::scoped(self.g.plain(), origin, scope);
                    self.counts.insert((origin, oscope), m);
                }
                Ok(())
            }
            ObfKind::Mirror => {
                let child = node.children()[0];
                let e = match self.extent(child, scope)? {
                    Some(e) => e,
                    None if tail => end - *pos,
                    None => {
                        return Err(ParseError::Malformed {
                            node: node.name().to_string(),
                            detail: "cannot determine mirrored extent".into(),
                        })
                    }
                };
                if *pos + e > end {
                    return Err(ParseError::UnexpectedEnd {
                        node: node.name().to_string(),
                        needed: e,
                        available: end - *pos,
                    });
                }
                let mut temp = buf[*pos..*pos + e].to_vec();
                temp.reverse();
                let mut ipos = 0usize;
                self.parse_node(child, &temp, &mut ipos, e, true, scope)?;
                if ipos != e {
                    return Err(ParseError::TrailingBytes {
                        node: node.name().to_string(),
                        remaining: e - ipos,
                    });
                }
                *pos += e;
                Ok(())
            }
            ObfKind::Prefixed { width, endian } => {
                if *pos + *width > end {
                    return Err(ParseError::UnexpectedEnd {
                        node: node.name().to_string(),
                        needed: *width,
                        available: end - *pos,
                    });
                }
                let n = Value::from_bytes(buf[*pos..*pos + *width].to_vec())
                    .to_uint(*endian)
                    .expect("prefix width <= 8") as usize;
                *pos += *width;
                if *pos + n > end {
                    return Err(ParseError::Malformed {
                        node: node.name().to_string(),
                        detail: format!("length prefix {n} overflows the window"),
                    });
                }
                let sub_end = *pos + n;
                self.parse_node(node.children()[0], buf, pos, sub_end, true, scope)?;
                if *pos != sub_end {
                    return Err(ParseError::TrailingBytes {
                        node: node.name().to_string(),
                        remaining: sub_end - *pos,
                    });
                }
                Ok(())
            }
        }
    }

    fn take(
        &mut self,
        id: ObfId,
        buf: &[u8],
        pos: &mut usize,
        end: usize,
        k: usize,
    ) -> Result<Value, ParseError> {
        if *pos + k > end {
            return Err(ParseError::UnexpectedEnd {
                node: self.g.node(id).name().to_string(),
                needed: k,
                available: end - *pos,
            });
        }
        let v = buf[*pos..*pos + k].to_vec();
        *pos += k;
        Ok(Value::from_bytes(v))
    }

    /// Extent of a terminal whose plain length is carried by a `Length`
    /// reference, with split derivation steps applied.
    fn plain_len_extent(
        &mut self,
        source: NodeId,
        steps: &[LenStep],
        scope: &[u32],
    ) -> Result<usize, ParseError> {
        let r = self
            .g
            .plain()
            .node(source)
            .boundary()
            .reference()
            .expect("PlainLen terminals have Length boundaries");
        let mut len = self.recover_uint(r, scope)? as usize;
        for s in steps {
            len = s.apply(len);
        }
        Ok(len)
    }

    /// Recovers the plain value of terminal `x`, inverting aggregation
    /// transformations over the wires parsed so far.
    fn recover_plain(&mut self, x: NodeId, scope: &[u32]) -> Result<Value, ParseError> {
        if let Some(v) = self.plain_memo.get(&(x, scope.to_vec())) {
            return Ok(v.clone());
        }
        let holder = self.g.holder_of(x).ok_or_else(|| ParseError::UnresolvedReference {
            node: self.g.plain().node(x).name().to_string(),
            referenced: "holder".to_string(),
        })?;
        let v = runtime::recover(self.g, holder, scope, &|id, sc| {
            self.wires.get(&(id, sc.to_vec())).cloned()
        })
        .ok_or_else(|| ParseError::UnresolvedReference {
            node: self.g.plain().node(x).name().to_string(),
            referenced: self.g.node(holder).name().to_string(),
        })?;
        self.plain_memo.insert((x, scope.to_vec()), v.clone());
        Ok(v)
    }

    /// Recovers a referenced numeric field, truncating the scope to the
    /// reference's own container depth.
    fn recover_uint(&mut self, x: NodeId, scope: &[u32]) -> Result<u64, ParseError> {
        let xscope = runtime::scoped(self.g.plain(), x, scope);
        self.recover_uint_at(x, &xscope)
    }

    fn recover_uint_at(&mut self, x: NodeId, xscope: &[u32]) -> Result<u64, ParseError> {
        let v = self.recover_plain(x, xscope)?;
        let endian = match self.g.plain().node(x).terminal_kind() {
            Some(TerminalKind::UInt { endian, .. }) => *endian,
            _ => Endian::Big,
        };
        v.to_uint(endian).ok_or_else(|| ParseError::Malformed {
            node: self.g.plain().node(x).name().to_string(),
            detail: "numeric field wider than 8 bytes".into(),
        })
    }

    /// Pre-parse extent of a subtree: `Ok(Some(n))` when computable from
    /// already-recovered values, `Ok(None)` when only forward parsing can
    /// delimit it.
    fn extent(&mut self, id: ObfId, scope: &[u32]) -> Result<Option<usize>, ParseError> {
        let node = self.g.node(id).clone();
        match &node.kind {
            ObfKind::Terminal { boundary, .. } => match boundary {
                TermBoundary::Fixed(k) => Ok(Some(*k)),
                TermBoundary::PlainLen { source, steps } => {
                    Ok(Some(self.plain_len_extent(*source, steps, scope)?))
                }
                TermBoundary::Delimited(_) | TermBoundary::End => Ok(None),
            },
            ObfKind::SplitSeq { .. } | ObfKind::Sequence { boundary: SeqBoundary::Delegated } => {
                self.sum_extents(node.children(), scope)
            }
            ObfKind::Sequence { boundary } => match boundary {
                SeqBoundary::Fixed(k) => Ok(Some(*k)),
                SeqBoundary::PlainLen(p) => {
                    let r = self
                        .g
                        .plain()
                        .node(*p)
                        .boundary()
                        .reference()
                        .expect("validated PlainLen sequences carry Length boundaries");
                    Ok(Some(self.recover_uint(r, scope)? as usize))
                }
                SeqBoundary::End => Ok(None),
                SeqBoundary::Delegated => unreachable!("handled above"),
            },
            ObfKind::Optional { condition } => {
                let sscope = runtime::scoped(self.g.plain(), condition.subject, scope);
                let subject = self.recover_plain(condition.subject, &sscope)?;
                if condition.predicate.eval(&subject) {
                    self.extent(node.children()[0], scope)
                } else {
                    Ok(Some(0))
                }
            }
            ObfKind::Repetition { stop } => match stop {
                RepStop::Terminator(_) | RepStop::Exhausted => Ok(None),
                RepStop::CountOf(first) => {
                    let m = match self.resolve_count(*first, scope) {
                        Some(m) => m,
                        None => return Ok(None),
                    };
                    self.times_element(node.children()[0], m, scope)
                }
            },
            ObfKind::Tabular { counter } => {
                let m = self.recover_uint(*counter, scope)? as usize;
                self.times_element(node.children()[0], m, scope)
            }
            ObfKind::Mirror => self.extent(node.children()[0], scope),
            ObfKind::Prefixed { .. } => Ok(None),
        }
    }

    /// Resolves the element count of a repetition, chasing `CountOf` chains
    /// when the linked half has not parsed yet (it may sit inside the same
    /// mirrored region whose extent is being computed).
    fn resolve_count(&self, rep: ObfId, scope: &[u32]) -> Option<usize> {
        if let Some(m) = self.rep_counts.get(&(rep, scope.to_vec())) {
            return Some(*m);
        }
        match self.g.node(rep).kind() {
            ObfKind::Repetition { stop: RepStop::CountOf(first) } => {
                self.resolve_count(*first, scope)
            }
            _ => None,
        }
    }

    fn sum_extents(
        &mut self,
        children: &[ObfId],
        scope: &[u32],
    ) -> Result<Option<usize>, ParseError> {
        let mut total = 0usize;
        for &c in children {
            match self.extent(c, scope)? {
                Some(e) => total += e,
                None => return Ok(None),
            }
        }
        Ok(Some(total))
    }

    fn times_element(
        &mut self,
        elem: ObfId,
        m: usize,
        scope: &[u32],
    ) -> Result<Option<usize>, ParseError> {
        if m == 0 {
            return Ok(Some(0));
        }
        let mut sc = scope.to_vec();
        sc.push(0);
        match self.extent(elem, &sc)? {
            Some(e) => Ok(Some(e * m)),
            None => Ok(None),
        }
    }

    /// Post-parse sanity checks: recovered auto length/counter fields must
    /// match the recomputed plain quantities (paper: "sanity checks" in the
    /// generated library). Catches corrupted or inconsistent messages that
    /// parsed structurally.
    fn verify_auto_fields(&mut self) -> Result<(), ParseError> {
        let plain = self.g.plain().clone();
        let message = Message::from_parts(
            self.g,
            self.wires.clone(),
            self.presence.clone(),
            self.counts.clone(),
        );
        // Collect (auto field, instances) — instances are all scopes at
        // which the field was recovered.
        for x in plain.ids() {
            let node = plain.node(x);
            if !node.auto().is_auto() {
                continue;
            }
            let holder = match self.g.holder_of(x) {
                Some(h) => h,
                None => continue,
            };
            // Find every scope at which this field's holder subtree has a
            // first terminal wire.
            let first_term = self
                .g
                .subtree(holder)
                .into_iter()
                .find(|&n| self.g.node(n).is_terminal());
            let first_term = match first_term {
                Some(t) => t,
                None => continue,
            };
            let scopes: Vec<Scope> = self
                .wires
                .keys()
                .filter(|(id, _)| *id == first_term)
                .map(|(_, sc)| sc.clone())
                .collect();
            // Constant fields: the recovered bytes must equal the literal.
            if let crate::graph::AutoValue::Literal(expected) = node.auto() {
                for sc in scopes {
                    let recovered = self.recover_plain(x, &sc)?;
                    if &recovered != expected {
                        return Err(ParseError::Malformed {
                            node: node.name().to_string(),
                            detail: format!(
                                "constant field holds {recovered:?}, expected {expected:?}"
                            ),
                        });
                    }
                }
                continue;
            }
            let target = match node.auto().target() {
                Some(t) => t,
                None => continue,
            };
            for sc in scopes {
                let stored = self.recover_uint_at(x, &sc)?;
                let tscope = runtime::scoped(&plain, target, &sc);
                let computed = match node.auto() {
                    crate::graph::AutoValue::LengthOf(_) => {
                        message.plain_len(target, &tscope).unwrap_or(usize::MAX) as u64
                    }
                    crate::graph::AutoValue::CounterOf(_) => {
                        message.count_of(target, &tscope) as u64
                    }
                    crate::graph::AutoValue::None | crate::graph::AutoValue::Literal(_) => {
                        continue
                    }
                };
                if stored != computed {
                    return Err(ParseError::AutoMismatch {
                        node: node.name().to_string(),
                        stored,
                        computed,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, Condition, GraphBuilder, Predicate};
    use crate::message::Message;
    use crate::serialize::serialize_seeded;

    fn modbus_mini() -> ObfGraph {
        let mut b = GraphBuilder::new("mb");
        let root = b.root_sequence("frame", Boundary::End);
        let _tid = b.uint_be(root, "tid", 2);
        let len = b.uint_be(root, "len", 2);
        let pdu = b.sequence(root, "pdu", Boundary::Delegated);
        b.set_auto(len, AutoValue::LengthOf(pdu));
        let func = b.uint_be(pdu, "func", 1);
        let wr = b.optional(
            pdu,
            "write",
            Condition { subject: func, predicate: Predicate::Equals(Value::from_bytes(vec![6])) },
        );
        let wbody = b.sequence(wr, "write_body", Boundary::Delegated);
        b.uint_be(wbody, "addr", 2);
        b.uint_be(wbody, "value", 2);
        ObfGraph::from_plain(&b.build().unwrap())
    }

    #[test]
    fn parse_inverts_plain_serialize() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 0x0102).unwrap();
        m.set_uint("pdu.func", 6).unwrap();
        m.set_uint("pdu.write.addr", 0x0010).unwrap();
        m.set_uint("pdu.write.value", 0xBEEF).unwrap();
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        let back = parse(&g, &wire).unwrap();
        assert_eq!(back.get_uint("tid").unwrap(), 0x0102);
        assert_eq!(back.get_uint("pdu.func").unwrap(), 6);
        assert_eq!(back.get_uint("pdu.write.addr").unwrap(), 0x0010);
        assert_eq!(back.get_uint("pdu.write.value").unwrap(), 0xBEEF);
        assert!(back.is_present("pdu.write"));
        assert_eq!(back.get_uint("len").unwrap(), 5);
    }

    #[test]
    fn parse_detects_truncation() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 1).unwrap();
        m.set_uint("pdu.func", 3).unwrap();
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        for cut in 0..wire.len() {
            assert!(parse(&g, &wire[..cut]).is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn parse_detects_inconsistent_auto_len() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 1).unwrap();
        m.set_uint("pdu.func", 3).unwrap();
        let mut wire = serialize_seeded(&g, &m, 9).unwrap();
        // Corrupt the auto length field (bytes 2..4): parse must notice.
        wire[3] = wire[3].wrapping_add(1);
        assert!(parse(&g, &wire).is_err());
    }

    #[test]
    fn parse_absent_optional() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 7).unwrap();
        m.set_uint("pdu.func", 1).unwrap();
        let wire = serialize_seeded(&g, &m, 9).unwrap();
        let back = parse(&g, &wire).unwrap();
        assert!(!back.is_present("pdu.write"));
        assert!(back.get("pdu.write.addr").is_err());
    }

    #[test]
    fn parse_rejects_trailing_bytes() {
        let g = modbus_mini();
        let mut m = Message::with_seed(&g, 1);
        m.set_uint("tid", 7).unwrap();
        m.set_uint("pdu.func", 1).unwrap();
        let mut wire = serialize_seeded(&g, &m, 9).unwrap();
        // The root is End-bounded, so extra bytes extend the pdu and break
        // the auto-length sanity check instead of going unnoticed.
        wire.push(0xAA);
        assert!(parse(&g, &wire).is_err());
    }
}

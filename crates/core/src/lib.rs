//! # protoobf-core
//!
//! Specification-based protocol obfuscation, after *"Specification-Based
//! Protocol Obfuscation"* (Duchêne, Alata, Nicomette, Kaâniche,
//! Le Guernic — DSN 2018).
//!
//! The crate implements the paper's full pipeline, extended with a
//! compiled execution stage:
//!
//! 1. **Specify** — a protocol's message format is described as a
//!    [`graph::FormatGraph`] (built programmatically with
//!    [`graph::GraphBuilder`] or from the DSL in the `protoobf-spec`
//!    crate);
//! 2. **Obfuscate** — the [`engine::Obfuscator`] derives an obfuscation
//!    graph ([`obf::ObfGraph`]) by randomly applying the paper's
//!    invertible generic transformations ([`transform`]);
//! 3. **Compile** — the [`codec::Codec`] lowers the final graph once into
//!    a flat [`plan::CodecPlan`]: dense `u32` slot indices replace every
//!    per-message map lookup, and auto-field/length/split dependencies
//!    become pre-resolved recovery programs (the compiled analogue of the
//!    paper's *generated* serializer/parser pair);
//! 4. **Run** — reusable sessions ([`codec::Codec::serializer`] /
//!    [`codec::Codec::parser`]) interpret the plan with session-owned
//!    scratch stores: steady-state `serialize_into`/`parse_in_place`
//!    performs no hashing and no per-message heap allocation (auto-field
//!    materialization runs compiled distribution programs, the forward
//!    mirror of the recovery programs), while applications keep using the
//!    **stable accessor interface** ([`message::Message`]) keyed on
//!    plain-spec field paths;
//! 5. **Serve** — a [`service::CodecService`] shares one codec (and its
//!    compiled plan) across any number of threads behind sharded pools of
//!    checked-out worker sessions, with batch
//!    ([`service::CodecService::serialize_batch`] /
//!    [`service::CodecService::parse_batch`]) and length-framed
//!    ([`service::CodecService::serialize_framed`] /
//!    [`service::CodecService::parse_framed`]) entry points for
//!    multi-threaded proxies;
//! 6. **Transport** — the `protoobf-transport` crate carries the framed
//!    traffic over real (non-blocking) sockets: a sans-io connection state
//!    machine holds long-lived pooled sessions from the service, an event
//!    loop drives thousands of concurrent connections, and an obfuscating
//!    gateway pair transcodes between clear and obfuscated codecs through
//!    the shared plain specification ([`message::Message::transcode_into`],
//!    running a compiled [`plan::CopyProgram`] per codec pairing so the
//!    steady-state relay loop is allocation-free; backed by this crate's
//!    resumable [`framing::FrameReader`] and the cursor-based,
//!    capacity-bounded [`framing::FrameBuffer`]);
//! 7. **Configure** — a [`profile::Profile`] bundles the whole endpoint
//!    configuration into one serializable, shared-secret-keyed object:
//!    spec sources (distinct per direction for asymmetric
//!    request/response protocols), the obfuscation key/level/transform
//!    set, and service tuning. [`profile::Profile::build_with`] compiles
//!    it into a [`profile::Endpoint`] (obfuscated + clear services both
//!    ways) whose [`profile::Fingerprint`] — a stable digest over the
//!    compiled plans — lets both peers verify they derived identical
//!    stacks before any traffic flows.
//!
//! The one-shot [`codec::Codec::serialize`]/[`codec::Codec::parse`] entry
//! points remain as thin wrappers over the cached plan; the original
//! graph-walk interpreters survive as reference implementations
//! ([`serialize::serialize_seeded`], [`parse::parse`]) that the plan path
//! is differentially tested against.
//!
//! ```
//! use protoobf_core::graph::{Boundary, GraphBuilder};
//! use protoobf_core::engine::Obfuscator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new("demo");
//! let root = b.root_sequence("msg", Boundary::End);
//! b.uint_be(root, "id", 2);
//! b.uint_be(root, "code", 4);
//! let graph = b.build()?;
//!
//! let codec = Obfuscator::new(&graph).seed(42).max_per_node(2).obfuscate()?;
//!
//! // Steady-state path: hold the sessions and buffers across messages —
//! // after warm-up, encode/decode reuses all scratch state.
//! let mut serializer = codec.serializer();
//! let mut parser = codec.parser();
//! let mut wire = Vec::new();
//! for id in [0x1234u64, 0x5678] {
//!     let mut msg = codec.message();
//!     msg.set_uint("id", id)?;
//!     msg.set_uint("code", 7)?;
//!     serializer.serialize_into(&msg, &mut wire)?;
//!     let back = parser.parse_in_place(&wire)?;
//!     assert_eq!(back.get_uint("id")?, id);
//! }
//!
//! // One-shot compat path (same compiled plan under the hood).
//! let mut msg = codec.message();
//! msg.set_uint("id", 1)?;
//! msg.set_uint("code", 7)?;
//! let wire = codec.serialize(&msg)?;
//! assert_eq!(codec.parse(&wire)?.get_uint("id")?, 1);
//! # Ok(())
//! # }
//! ```

// The crate's small unsafe surface (the lock-free session pool) must
// stay explicit and documented: every unsafe operation sits in its own
// block with a SAFETY comment, even inside unsafe fns.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod dot;
pub mod engine;
pub mod error;
pub mod extent;
pub mod framing;
pub mod fuzz;
pub mod graph;
pub mod message;
pub mod obf;
pub mod parse;
pub mod path;
pub mod plan;
pub mod pool;
pub mod profile;
pub mod runtime;
pub mod sample;
pub mod serialize;
pub mod service;
pub mod telemetry;
pub mod transform;
pub mod tunnel;
pub mod value;
pub mod verify;

pub use codec::Codec;
pub use engine::Obfuscator;
pub use error::{BuildError, ParseError, SpecError, TransformError};
pub use graph::{Boundary, FormatGraph, GraphBuilder, NodeId};
pub use message::Message;
pub use path::Path;
pub use profile::{
    Derivation, Endpoint, Fingerprint, ObfConfig, Profile, ProfileError, SpecResolver, SpecSource,
};
pub use service::CodecService;
pub use telemetry::{FlightRecorder, LatencyHistogram, Metrics, MetricsSnapshot, Telemetry};
pub use transform::TransformKind;
pub use tunnel::{ChannelMap, TunnelDecoder, TunnelEncoder, TunnelError};
pub use value::{ByteOp, Endian, TerminalKind, Value};
pub use verify::Diagnostic;

//! # protoobf-core
//!
//! Specification-based protocol obfuscation, after *"Specification-Based
//! Protocol Obfuscation"* (Duchêne, Alata, Nicomette, Kaâniche,
//! Le Guernic — DSN 2018).
//!
//! The crate implements the paper's full pipeline:
//!
//! 1. a protocol's message format is described as a [`graph::FormatGraph`]
//!    (built programmatically with [`graph::GraphBuilder`] or from the DSL
//!    in the `protoobf-spec` crate);
//! 2. the [`engine::Obfuscator`] derives an obfuscation graph
//!    ([`obf::ObfGraph`]) by randomly applying the paper's invertible
//!    generic transformations ([`transform`]);
//! 3. the resulting [`codec::Codec`] serializes and parses messages in the
//!    obfuscated wire format, while applications keep using the **stable
//!    accessor interface** ([`message::Message`]) keyed on plain-spec field
//!    paths.
//!
//! ```
//! use protoobf_core::graph::{Boundary, GraphBuilder};
//! use protoobf_core::engine::Obfuscator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new("demo");
//! let root = b.root_sequence("msg", Boundary::End);
//! b.uint_be(root, "id", 2);
//! b.uint_be(root, "code", 4);
//! let graph = b.build()?;
//!
//! let codec = Obfuscator::new(&graph).seed(42).max_per_node(2).obfuscate()?;
//! let mut msg = codec.message();
//! msg.set_uint("id", 0x1234)?;
//! msg.set_uint("code", 7)?;
//! let wire = codec.serialize(&msg)?;
//! let back = codec.parse(&wire)?;
//! assert_eq!(back.get_uint("id")?, 0x1234);
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod dot;
pub mod engine;
pub mod error;
pub mod extent;
pub mod framing;
pub mod graph;
pub mod message;
pub mod obf;
pub mod parse;
pub mod path;
pub mod runtime;
pub mod sample;
pub mod serialize;
pub mod transform;
pub mod value;

pub use codec::Codec;
pub use engine::Obfuscator;
pub use error::{BuildError, ParseError, SpecError, TransformError};
pub use graph::{Boundary, FormatGraph, GraphBuilder, NodeId};
pub use message::Message;
pub use path::Path;
pub use transform::TransformKind;
pub use value::{ByteOp, Endian, TerminalKind, Value};

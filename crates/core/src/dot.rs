//! Graphviz rendering of format graphs and obfuscation graphs —
//! reproduces the paper's figure-3 style drawings (node type and boundary
//! notations, dashed reference arrows).

use std::fmt::Write as _;

use crate::graph::{Boundary, FormatGraph, NodeType};
use crate::obf::{ObfGraph, ObfKind, RepStop, SeqBoundary, TermBoundary};

/// Renders a plain format graph as Graphviz `dot`.
///
/// Solid edges are the tree structure; dashed edges are `Length`/`Counter`
/// references and optional-condition subjects (the paper's dashed arrows).
pub fn format_graph_to_dot(g: &FormatGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {:?} {{", g.name());
    let _ = writeln!(out, "    rankdir=TB;");
    let _ = writeln!(out, "    node [shape=box, fontsize=10];");
    for id in g.ids() {
        let node = g.node(id);
        let label = format!(
            "{}\\n{} {}",
            node.name(),
            node.node_type().notation(),
            node.boundary().notation()
        );
        let _ = writeln!(out, "    {id} [label=\"{label}\"];");
        for &c in node.children() {
            let _ = writeln!(out, "    {id} -> {c};");
        }
        if let Some(r) = node.boundary().reference() {
            let _ = writeln!(out, "    {id} -> {r} [style=dashed, constraint=false];");
        }
        if let NodeType::Optional(cond) = node.node_type() {
            let _ = writeln!(
                out,
                "    {id} -> {} [style=dashed, constraint=false, label=\"if\"];",
                cond.subject
            );
        }
        if let Some(t) = node.auto().target() {
            let _ =
                writeln!(out, "    {id} -> {t} [style=dotted, constraint=false, label=\"auto\"];",);
        }
        match node.boundary() {
            Boundary::Fixed(_)
            | Boundary::Delimited(_)
            | Boundary::Length(_)
            | Boundary::Counter(_)
            | Boundary::End
            | Boundary::Delegated => {}
        }
    }
    out.push_str("}\n");
    out
}

/// Renders an obfuscation graph as Graphviz `dot`. Transformation-created
/// nodes are shaded so plain-vs-obfuscated structure is visible at a
/// glance.
pub fn obf_graph_to_dot(g: &ObfGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {:?} {{", g.plain().name());
    let _ = writeln!(out, "    rankdir=TB;");
    let _ = writeln!(out, "    node [shape=box, fontsize=10];");
    for id in g.preorder() {
        let node = g.node(id);
        let detail = match &node.kind() {
            ObfKind::Terminal { boundary, .. } => match boundary {
                TermBoundary::Fixed(n) => format!("Te F({n})"),
                TermBoundary::Delimited(_) => "Te De".to_string(),
                TermBoundary::PlainLen { .. } => "Te L".to_string(),
                TermBoundary::End => "Te E".to_string(),
            },
            ObfKind::SplitSeq { recombine, .. } => {
                format!("split {recombine:?}").chars().take(24).collect()
            }
            ObfKind::Sequence { boundary } => match boundary {
                SeqBoundary::Fixed(n) => format!("S F({n})"),
                SeqBoundary::Delegated => "S Dgt".to_string(),
                SeqBoundary::End => "S E".to_string(),
                SeqBoundary::PlainLen(_) => "S L".to_string(),
            },
            ObfKind::Optional { .. } => "O".to_string(),
            ObfKind::Repetition { stop } => match stop {
                RepStop::Terminator(_) => "R term".to_string(),
                RepStop::Exhausted => "R rest".to_string(),
                RepStop::CountOf(_) => "R linked".to_string(),
            },
            ObfKind::Tabular { .. } => "Ta".to_string(),
            ObfKind::Mirror => "mirror".to_string(),
            ObfKind::Prefixed { width, .. } => format!("prefix({width})"),
        };
        let style =
            if node.origin().is_some() { "" } else { ", style=filled, fillcolor=lightgrey" };
        let _ = writeln!(out, "    {id} [label=\"{}\\n{detail}\"{style}];", node.name());
        for &c in node.children() {
            let _ = writeln!(out, "    {id} -> {c};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Obfuscator;
    use crate::graph::GraphBuilder;

    fn sample() -> FormatGraph {
        let mut b = GraphBuilder::new("fig3");
        let root = b.root_sequence("msg", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data =
            b.terminal(root, "data", crate::value::TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, crate::graph::AutoValue::LengthOf(data));
        b.build().unwrap()
    }

    #[test]
    fn plain_dot_contains_nodes_and_edges() {
        let dot = format_graph_to_dot(&sample());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("msg"));
        assert!(dot.contains("style=dashed"), "reference arrows rendered");
        assert!(dot.contains("style=dotted"), "auto arrows rendered");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn obf_dot_marks_created_nodes() {
        let g = sample();
        let codec = Obfuscator::new(&g).seed(4).max_per_node(2).obfuscate().unwrap();
        let dot = obf_graph_to_dot(codec.obf_graph());
        assert!(dot.contains("fillcolor=lightgrey"), "created nodes shaded:\n{dot}");
        // Balanced braces (rough structural sanity).
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn dot_well_formed_for_protocol_scale_graphs() {
        let g = sample();
        let dot = format_graph_to_dot(&g);
        for line in dot.lines().skip(1) {
            if line == "}" {
                continue;
            }
            assert!(line.starts_with("    "), "indented body line: {line}");
        }
    }
}

//! The obfuscation graph: the paper's `G_{i}` chain.
//!
//! [`ObfGraph::from_plain`] produces `G_1`, a one-to-one image of the plain
//! [`FormatGraph`]. Generic transformations (module [`crate::transform`])
//! rewrite it in place into `G_2 … G_{n+1}`. The runtime serializer and
//! parser interpret the final graph directly, which is how this crate keeps
//! every transformation invertible *by construction*: each rewrite installs
//! both the forward (serialize) and backward (parse) semantics in the same
//! node.
//!
//! # Value channels
//!
//! Every terminal receives an *input value* top-down during serialization:
//! either its own base (a plain field, an auto-computed length/counter, pad
//! bytes) or a slice/share handed down by an enclosing [`ObfKind::SplitSeq`]
//! (created by the `Split*` transformations). The terminal applies its
//! constant-operation stack and the result is its wire value. Parsing runs
//! the mirror image bottom-up: wire values are collected, constant ops are
//! undone, and split sequences recombine their children's recovered inputs
//! (`Concat` for `SplitCat`, the inverse byte operation for
//! `SplitAdd`/`SplitSub`/`SplitXor`) until a `Source` base yields the plain
//! field value back.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use crate::graph::{AutoValue, Boundary, Condition, FormatGraph, NodeId, NodeType, StopRule};
use crate::value::{ByteOp, Endian, SplitAt, TerminalKind};

/// Identifier of a node inside an [`ObfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObfId(pub(crate) u32);

impl ObfId {
    /// Raw index value (stable within one graph; nodes are never removed,
    /// only detached).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Where a terminal's input value comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Base {
    /// The plain value of a specification terminal, supplied through the
    /// accessor interface.
    Source(NodeId),
    /// Auto-computed: plain serialized length of the plain subtree.
    AutoLen(NodeId),
    /// Auto-computed: element count of the plain tabular/repetition node.
    AutoCount(NodeId),
    /// Pad bytes of the given length, random at serialization, discarded at
    /// parse (`PadInsert`).
    Pad(usize),
    /// A protocol constant: emitted on serialization, verified on parse.
    Const(crate::value::Value),
    /// Handed down by the enclosing [`ObfKind::SplitSeq`].
    Inherit,
}

impl Base {
    /// The plain source field, if this base carries one.
    pub fn source(&self) -> Option<NodeId> {
        match self {
            Base::Source(x) => Some(*x),
            _ => None,
        }
    }
}

/// A constant byte operation applied to a terminal's input value
/// (`ConstAdd`, `ConstSub`, `ConstXor`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstOp {
    /// The byte-wise operator.
    pub op: ByteOp,
    /// The constant, cycled over the value (never empty).
    pub k: Vec<u8>,
}

/// How a [`ObfKind::SplitSeq`]'s two children recombine into the value the
/// replaced terminal used to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recombine {
    /// `value == concat(child0, child1)` (`SplitCat`).
    Concat(SplitAt),
    /// `child0` is random, `child1 = value ⟨op⟩ child0`
    /// (`SplitAdd`/`SplitSub`/`SplitXor`).
    Op(ByteOp),
}

/// The value expression a [`ObfKind::SplitSeq`] evaluates before splitting:
/// the base and constant-op stack the replaced terminal used to have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitExpr {
    /// Input source of the replaced terminal.
    pub base: Base,
    /// Constant ops of the replaced terminal.
    pub ops: Vec<ConstOp>,
}

/// Length derivation steps for terminals produced by splitting a field
/// whose plain length is carried by a `Length` reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LenStep {
    /// `floor(len / 2)` — the left half of a `SplitCat` at
    /// [`SplitAt::Half`].
    HalfLo,
    /// `len - floor(len / 2)` — the right half.
    HalfHi,
}

impl LenStep {
    /// Applies the step to a length.
    pub fn apply(self, len: usize) -> usize {
        match self {
            LenStep::HalfLo => len / 2,
            LenStep::HalfHi => len - len / 2,
        }
    }
}

/// How the parser finds the wire extent of a terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermBoundary {
    /// Exactly `n` bytes.
    Fixed(usize),
    /// Scan for the delimiter; it is consumed but not part of the value.
    Delimited(Vec<u8>),
    /// `steps(plain_len(source))` bytes, where `source` is the plain
    /// terminal whose `Length` reference carries the plain length.
    PlainLen {
        /// The plain terminal whose declared `Length` boundary supplies
        /// the base length.
        source: NodeId,
        /// Derivation steps accumulated by `Split*` transformations.
        steps: Vec<LenStep>,
    },
    /// The rest of the enclosing window.
    End,
}

/// How the parser bounds a sequence node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqBoundary {
    /// Sum of the children's extents.
    Delegated,
    /// The rest of the enclosing window.
    End,
    /// Exactly `n` bytes; children must consume them exactly.
    Fixed(usize),
    /// The plain length of this (plain) node, carried by its `Length`
    /// reference. Valid as an exact window only while no size-changing
    /// transformation is applied inside (enforced by the transformation
    /// constraints).
    PlainLen(NodeId),
}

/// Stop rule of an obfuscated repetition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepStop {
    /// Elements until the terminator matches; terminator consumed.
    Terminator(Vec<u8>),
    /// Elements until the window is exhausted.
    Exhausted,
    /// Exactly as many elements as the linked repetition parsed
    /// (`RepSplit` second half — the copy-language count check).
    CountOf(ObfId),
}

/// Node kind of the obfuscation graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObfKind {
    /// A leaf carrying bytes on the wire.
    Terminal {
        /// Interpretation of the bytes.
        kind: TerminalKind,
        /// Input value source.
        base: Base,
        /// Constant-op stack applied to the input (in order) at
        /// serialization, undone (in reverse) at parse.
        ops: Vec<ConstOp>,
        /// Wire extent rule.
        boundary: TermBoundary,
    },
    /// Two-children sequence created by a `Split*` transformation.
    SplitSeq {
        /// The replaced terminal's value expression.
        expr: SplitExpr,
        /// Recombination rule.
        recombine: Recombine,
    },
    /// Ordered concatenation of children.
    Sequence {
        /// Extent rule.
        boundary: SeqBoundary,
    },
    /// Presence decided by a predicate over a plain terminal's value.
    Optional {
        /// The plain-graph condition.
        condition: Condition,
    },
    /// Repeated single child.
    Repetition {
        /// Stop rule.
        stop: RepStop,
    },
    /// Repeated single child, count given by a plain counter field.
    Tabular {
        /// The plain terminal carrying the element count.
        counter: NodeId,
    },
    /// Single child whose serialized bytes are reversed (`ReadFromEnd`).
    Mirror,
    /// Single child prefixed with the byte length of its serialization
    /// (`BoundaryChange`).
    Prefixed {
        /// Width of the length prefix in bytes.
        width: usize,
        /// Byte order of the prefix.
        endian: Endian,
    },
}

impl ObfKind {
    /// Short tag for plan listings and generated-code names.
    pub fn tag(&self) -> &'static str {
        match self {
            ObfKind::Terminal { .. } => "term",
            ObfKind::SplitSeq { .. } => "split",
            ObfKind::Sequence { .. } => "seq",
            ObfKind::Optional { .. } => "opt",
            ObfKind::Repetition { .. } => "rep",
            ObfKind::Tabular { .. } => "tab",
            ObfKind::Mirror => "mirror",
            ObfKind::Prefixed { .. } => "prefixed",
        }
    }
}

/// One node of the obfuscation graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObfNode {
    pub(crate) name: String,
    pub(crate) kind: ObfKind,
    pub(crate) children: Vec<ObfId>,
    pub(crate) parent: Option<ObfId>,
    /// The plain node this one structurally stands for, if any. Used for
    /// presence/count bookkeeping and provenance reporting.
    pub(crate) origin: Option<NodeId>,
    /// Number of transformations that have targeted this node (the paper's
    /// per-node obfuscation budget).
    pub(crate) obf_count: u32,
}

impl ObfNode {
    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Node kind.
    pub fn kind(&self) -> &ObfKind {
        &self.kind
    }

    /// Children, in wire order.
    pub fn children(&self) -> &[ObfId] {
        &self.children
    }

    /// Parent, `None` for the root.
    pub fn parent(&self) -> Option<ObfId> {
        self.parent
    }

    /// The plain node this one stands for.
    pub fn origin(&self) -> Option<NodeId> {
        self.origin
    }

    /// Transformations applied so far targeting this node.
    pub fn obf_count(&self) -> u32 {
        self.obf_count
    }

    /// True for terminal nodes.
    pub fn is_terminal(&self) -> bool {
        matches!(self.kind, ObfKind::Terminal { .. })
    }
}

/// The obfuscation graph: plain specification plus applied rewrites.
#[derive(Debug, Clone)]
pub struct ObfGraph {
    plain: FormatGraph,
    nodes: Vec<ObfNode>,
    root: ObfId,
    /// plain terminal → the obf node carrying its value channel. Auto
    /// fields are included: their recovered raw value *is* the plain value
    /// (the encoded length/count).
    holders: HashMap<NodeId, ObfId>,
    /// Process-unique structural version, refreshed by every mutation
    /// ([`ObfGraph::touch`]). Never reused across graphs, so caches keyed
    /// on it (e.g. the transcode validation of
    /// [`crate::message::Message`]) cannot be fooled by allocator address
    /// reuse. Clones keep the uid: a clone is structurally identical
    /// until its next mutation.
    uid: u64,
    /// Lazily compiled execution plan (see [`crate::plan::CodecPlan`]),
    /// shared by the codec, the sessions and the transcode copy programs.
    /// Invalidated by [`ObfGraph::touch`] on every rewrite, so a cached
    /// plan always describes the current graph. Cloning clones the cached
    /// plan (a clone is structurally identical until its next mutation).
    plan: OnceLock<crate::plan::CodecPlan>,
}

/// Source of [`ObfGraph::uid`] values; starts at 1 so 0 can mean "none".
static NEXT_GRAPH_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl ObfGraph {
    /// Builds `G_1`: the identity image of a validated plain graph.
    pub fn from_plain(plain: &FormatGraph) -> ObfGraph {
        let mut g = ObfGraph {
            plain: plain.clone(),
            nodes: Vec::with_capacity(plain.len()),
            root: ObfId(0),
            holders: HashMap::new(),
            uid: NEXT_GRAPH_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            plan: OnceLock::new(),
        };
        let root = g.import(plain, plain.root(), None);
        g.root = root;
        g
    }

    /// The graph's structural version (see the field docs).
    pub(crate) fn uid(&self) -> u64 {
        self.uid
    }

    /// Assigns a fresh structural version. Called by every rewrite so
    /// stale caches keyed on the old uid cannot match a changed graph.
    /// Also drops the cached compiled plan — it described the old shape.
    pub(crate) fn touch(&mut self) {
        self.uid = NEXT_GRAPH_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.plan = OnceLock::new();
    }

    /// The compiled execution plan of this graph, built on first use and
    /// cached (every rewrite invalidates it via [`ObfGraph::touch`]). The
    /// codec, the pooled sessions and the transcode copy programs all
    /// share this one instance.
    pub fn plan(&self) -> &crate::plan::CodecPlan {
        self.plan.get_or_init(|| {
            let plan = crate::plan::CodecPlan::compile(self);
            // Debug builds statically verify every freshly compiled plan
            // (bounds, balance, recovery↔distribution duality, auto
            // acyclicity) before anything interprets it. The verifier
            // reads only the plain graph and node table — it must never
            // call `plan()` back, which would deadlock this OnceLock.
            #[cfg(debug_assertions)]
            {
                let diags = crate::verify::verify_plan(self, &plan);
                assert!(diags.is_empty(), "compiled plan failed static verification: {diags:#?}");
            }
            plan
        })
    }

    fn import(&mut self, plain: &FormatGraph, id: NodeId, parent: Option<ObfId>) -> ObfId {
        let node = plain.node(id);
        let kind = match node.node_type() {
            NodeType::Terminal(k) => {
                let base = match node.auto() {
                    AutoValue::None => Base::Source(id),
                    AutoValue::LengthOf(t) => Base::AutoLen(*t),
                    AutoValue::CounterOf(t) => Base::AutoCount(*t),
                    AutoValue::Literal(v) => Base::Const(v.clone()),
                };
                let boundary = match node.boundary() {
                    Boundary::Fixed(n) => TermBoundary::Fixed(*n),
                    Boundary::Delimited(d) => TermBoundary::Delimited(d.clone()),
                    Boundary::Length(_) => TermBoundary::PlainLen { source: id, steps: Vec::new() },
                    Boundary::End => TermBoundary::End,
                    // Validation guarantees these cannot appear on terminals.
                    Boundary::Counter(_) | Boundary::Delegated => unreachable!(),
                };
                ObfKind::Terminal { kind: k.clone(), base, ops: Vec::new(), boundary }
            }
            NodeType::Sequence => {
                let boundary = match node.boundary() {
                    Boundary::Delegated => SeqBoundary::Delegated,
                    Boundary::End => SeqBoundary::End,
                    Boundary::Fixed(n) => SeqBoundary::Fixed(*n),
                    Boundary::Length(_) => SeqBoundary::PlainLen(id),
                    Boundary::Counter(_) | Boundary::Delimited(_) => unreachable!(),
                };
                ObfKind::Sequence { boundary }
            }
            NodeType::Optional(c) => ObfKind::Optional { condition: c.clone() },
            NodeType::Repetition(stop) => ObfKind::Repetition {
                stop: match stop {
                    StopRule::Terminator(t) => RepStop::Terminator(t.clone()),
                    StopRule::Exhausted => RepStop::Exhausted,
                },
            },
            NodeType::Tabular => {
                let counter = match node.boundary() {
                    Boundary::Counter(c) => *c,
                    _ => unreachable!(),
                };
                ObfKind::Tabular { counter }
            }
        };
        let oid = self.push(ObfNode {
            name: node.name().to_string(),
            kind,
            children: Vec::new(),
            parent,
            origin: Some(id),
            obf_count: 0,
        });
        if self.nodes[oid.index()].is_terminal() {
            self.holders.insert(id, oid);
        }
        for &c in node.children() {
            let child = self.import(plain, c, Some(oid));
            self.nodes[oid.index()].children.push(child);
        }
        oid
    }

    /// The plain specification this graph obfuscates.
    pub fn plain(&self) -> &FormatGraph {
        &self.plain
    }

    /// Root node id.
    pub fn root(&self) -> ObfId {
        self.root
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    pub fn node(&self, id: ObfId) -> &ObfNode {
        &self.nodes[id.index()]
    }

    pub(crate) fn node_mut(&mut self, id: ObfId) -> &mut ObfNode {
        &mut self.nodes[id.index()]
    }

    /// Fallible node lookup.
    pub fn get(&self, id: ObfId) -> Option<&ObfNode> {
        self.nodes.get(id.index())
    }

    /// Number of nodes ever allocated (detached nodes included).
    pub fn allocated(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from the root.
    pub fn len(&self) -> usize {
        self.preorder().len()
    }

    /// True if the graph has no live nodes (never the case in practice).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Pre-order traversal of the live tree (wire order).
    pub fn preorder(&self) -> Vec<ObfId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.node(id).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All node ids in the subtree rooted at `id`, pre-order.
    pub fn subtree(&self, id: ObfId) -> Vec<ObfId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.node(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// True if `descendant` is inside the subtree rooted at `ancestor`.
    pub fn is_descendant(&self, descendant: ObfId, ancestor: ObfId) -> bool {
        let mut cur = Some(descendant);
        while let Some(id) = cur {
            if id == ancestor {
                return true;
            }
            cur = self.node(id).parent;
        }
        false
    }

    /// Depth of `id` (root is 0).
    pub fn depth(&self, id: ObfId) -> usize {
        let mut d = 0;
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.node(p).parent;
        }
        d
    }

    /// Ancestors of `id`, nearest first (excluding `id`).
    pub fn ancestors(&self, id: ObfId) -> Vec<ObfId> {
        let mut out = Vec::new();
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.node(p).parent;
        }
        out
    }

    /// The obf node carrying the value channel of the plain terminal `x`
    /// (a terminal before any `Split*`, the split sequence afterwards).
    pub fn holder_of(&self, x: NodeId) -> Option<ObfId> {
        self.holders.get(&x).copied()
    }

    /// Allocates a new node. The caller is responsible for wiring it into
    /// the tree via [`Self::replace_child`] or by pushing it onto a
    /// parent's child list.
    pub(crate) fn push(&mut self, node: ObfNode) -> ObfId {
        let id = ObfId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Replaces `old` with `new` in `old`'s parent's child list and moves
    /// the parent pointer. `old` becomes detached (its parent is cleared).
    ///
    /// If `old` is the root, `new` becomes the root.
    pub(crate) fn replace_child(&mut self, old: ObfId, new: ObfId) {
        let parent = self.nodes[old.index()].parent;
        self.nodes[new.index()].parent = parent;
        self.nodes[old.index()].parent = None;
        match parent {
            Some(p) => {
                let slot = self.nodes[p.index()]
                    .children
                    .iter()
                    .position(|&c| c == old)
                    .expect("old node must be a child of its parent");
                self.nodes[p.index()].children[slot] = new;
            }
            None => self.root = new,
        }
    }

    /// Re-parents `child` under `parent` at `index` in its child list.
    pub(crate) fn attach(&mut self, parent: ObfId, index: usize, child: ObfId) {
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.insert(index, child);
    }

    /// Moves the `Source` holder index entry when a rewrite relocates the
    /// carrier of a plain terminal.
    pub(crate) fn move_holder(&mut self, x: NodeId, to: ObfId) {
        self.holders.insert(x, to);
    }

    /// All live terminals, in wire order.
    pub fn terminals(&self) -> Vec<ObfId> {
        self.preorder().into_iter().filter(|&id| self.node(id).is_terminal()).collect()
    }

    /// The plain terminals whose values the parser needs *during*
    /// structural parsing: `Length` reference targets, tabular counters,
    /// optional-condition subjects, and the plain-length sources of
    /// `PlainLen` boundaries.
    pub fn structurally_needed(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let push = |x: NodeId, out: &mut Vec<NodeId>| {
            if !out.contains(&x) {
                out.push(x);
            }
        };
        for id in self.preorder() {
            match &self.node(id).kind {
                ObfKind::Terminal { boundary: TermBoundary::PlainLen { source, .. }, .. } => {
                    if let Some(r) = self.plain.node(*source).boundary().reference() {
                        push(r, &mut out);
                    }
                }
                ObfKind::Sequence { boundary: SeqBoundary::PlainLen(p) } => {
                    if let Some(r) = self.plain.node(*p).boundary().reference() {
                        push(r, &mut out);
                    }
                }
                ObfKind::Optional { condition } => push(condition.subject, &mut out),
                ObfKind::Tabular { counter } => push(*counter, &mut out),
                _ => {}
            }
        }
        out
    }

    /// The obf terminals whose wire values are needed to recover the plain
    /// value of `x` (the recovery closure: every terminal inside the
    /// holder's subtree).
    pub fn recovery_deps(&self, x: NodeId) -> Vec<ObfId> {
        match self.holder_of(x) {
            Some(h) => {
                self.subtree(h).into_iter().filter(|&id| self.node(id).is_terminal()).collect()
            }
            None => Vec::new(),
        }
    }

    /// Structural feasibility check run after each transformation: every
    /// value the parser needs eagerly must be fully recoverable before its
    /// first structural use, and every rest-of-window node must sit in
    /// tail position. Violations mean the candidate rewrite must be rolled
    /// back.
    pub fn check_parse_order(&self) -> Result<(), String> {
        let order = self.preorder();
        let pos: HashMap<ObfId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let span_end = |id: ObfId| -> usize {
            self.subtree(id).iter().map(|n| pos[n]).max().unwrap_or(pos[&id]) + 1
        };

        let check_before = |x: NodeId, user: ObfId| -> Result<(), String> {
            let holder =
                self.holder_of(x).ok_or_else(|| format!("no holder for plain source {x}"))?;
            if span_end(holder) > pos[&user] {
                return Err(format!(
                    "plain value of {} (held by {}) is not recovered before {} parses",
                    self.plain.node(x).name(),
                    self.node(holder).name(),
                    self.node(user).name()
                ));
            }
            Ok(())
        };

        for &id in &order {
            match &self.node(id).kind {
                ObfKind::Terminal { boundary: TermBoundary::PlainLen { source, .. }, .. } => {
                    if let Some(r) = self.plain.node(*source).boundary().reference() {
                        check_before(r, id)?;
                    }
                }
                ObfKind::Sequence { boundary: SeqBoundary::PlainLen(p) } => {
                    if let Some(r) = self.plain.node(*p).boundary().reference() {
                        check_before(r, id)?;
                    }
                }
                ObfKind::Optional { condition } => check_before(condition.subject, id)?,
                ObfKind::Tabular { counter } => check_before(*counter, id)?,
                ObfKind::Repetition { stop: RepStop::CountOf(first) } => {
                    if !pos.contains_key(first) {
                        return Err("count-linked repetition lost its first half".into());
                    }
                    if span_end(*first) > pos[&id] {
                        return Err(format!(
                            "count-linked repetition {} parses before its first half",
                            self.node(id).name()
                        ));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, Predicate};
    use crate::value::Value;

    fn plain() -> FormatGraph {
        let mut b = GraphBuilder::new("p");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        let flag = b.uint_be(root, "flag", 1);
        let opt = b.optional(
            root,
            "extra",
            Condition { subject: flag, predicate: Predicate::Equals(Value::from_bytes(vec![1])) },
        );
        b.uint_be(opt, "extra_val", 2);
        b.build().unwrap()
    }

    #[test]
    fn from_plain_is_one_to_one() {
        let p = plain();
        let g = ObfGraph::from_plain(&p);
        assert_eq!(g.len(), p.len());
        // Every live node has an origin.
        for id in g.preorder() {
            assert!(g.node(id).origin().is_some());
            assert_eq!(g.node(id).obf_count(), 0);
        }
    }

    #[test]
    fn auto_fields_get_auto_bases() {
        let p = plain();
        let g = ObfGraph::from_plain(&p);
        let len_obf = g.preorder().into_iter().find(|&id| g.node(id).name() == "len").unwrap();
        match &g.node(len_obf).kind {
            ObfKind::Terminal { base: Base::AutoLen(t), .. } => {
                assert_eq!(p.node(*t).name(), "data");
            }
            other => panic!("expected AutoLen base, got {other:?}"),
        }
        // Auto fields are holders too: the parser recovers the raw
        // length/count value from their wire bytes.
        let len_plain = p.resolve_names(&["len"]).unwrap();
        assert_eq!(g.holder_of(len_plain), Some(len_obf));
    }

    #[test]
    fn holders_registered_for_user_fields() {
        let p = plain();
        let g = ObfGraph::from_plain(&p);
        let data = p.resolve_names(&["data"]).unwrap();
        let holder = g.holder_of(data).unwrap();
        assert_eq!(g.node(holder).name(), "data");
    }

    #[test]
    fn length_boundary_maps_to_plainlen() {
        let p = plain();
        let g = ObfGraph::from_plain(&p);
        let data_obf = g.preorder().into_iter().find(|&id| g.node(id).name() == "data").unwrap();
        match &g.node(data_obf).kind {
            ObfKind::Terminal { boundary: TermBoundary::PlainLen { source, steps }, .. } => {
                assert_eq!(p.node(*source).name(), "data");
                assert!(steps.is_empty());
            }
            other => panic!("expected PlainLen boundary, got {other:?}"),
        }
    }

    #[test]
    fn structurally_needed_lists_refs_and_subjects() {
        let p = plain();
        let g = ObfGraph::from_plain(&p);
        let needed = g.structurally_needed();
        let len = p.resolve_names(&["len"]).unwrap();
        let flag = p.resolve_names(&["flag"]).unwrap();
        assert!(needed.contains(&len));
        assert!(needed.contains(&flag));
    }

    #[test]
    fn check_parse_order_accepts_identity() {
        let g = ObfGraph::from_plain(&plain());
        assert!(g.check_parse_order().is_ok());
    }

    #[test]
    fn replace_child_rewires_tree() {
        let p = plain();
        let mut g = ObfGraph::from_plain(&p);
        let flag = g.preorder().into_iter().find(|&id| g.node(id).name() == "flag").unwrap();
        let wrapper = g.push(ObfNode {
            name: "flag_mirror".into(),
            kind: ObfKind::Mirror,
            children: vec![flag],
            parent: None,
            origin: None,
            obf_count: 1,
        });
        g.replace_child(flag, wrapper);
        g.node_mut(flag).parent = Some(wrapper);
        let order = g.preorder();
        assert!(order.contains(&wrapper));
        assert!(order.contains(&flag));
        let wrapper_pos = order.iter().position(|&i| i == wrapper).unwrap();
        assert_eq!(order[wrapper_pos + 1], flag);
        // flag's old parent now lists wrapper.
        let root = g.root();
        assert!(g.node(root).children().contains(&wrapper));
        assert!(!g.node(root).children().contains(&flag));
    }

    #[test]
    fn recovery_deps_cover_holder_subtree() {
        let p = plain();
        let g = ObfGraph::from_plain(&p);
        let data = p.resolve_names(&["data"]).unwrap();
        let deps = g.recovery_deps(data);
        assert_eq!(deps.len(), 1); // un-transformed: just the carrier itself
    }

    #[test]
    fn len_step_arithmetic() {
        assert_eq!(LenStep::HalfLo.apply(9), 4);
        assert_eq!(LenStep::HalfHi.apply(9), 5);
        assert_eq!(LenStep::HalfLo.apply(0), 0);
        assert_eq!(LenStep::HalfHi.apply(0), 0);
    }

    #[test]
    fn kind_tags_are_stable() {
        let p = plain();
        let g = ObfGraph::from_plain(&p);
        assert_eq!(g.node(g.root()).kind().tag(), "seq");
    }
}

//! Static verification of compiled codec plans: a bytecode-verifier pass
//! over the [`CodecPlan`] / [`CopyProgram`] IR.
//!
//! The paper's safety argument rests on two structural promises: every
//! applied transformation is **invertible** (the recovery walk undoes the
//! distribution walk exactly), and both endpoints derive **identical**
//! codecs from one specification. The fuzzing and differential harnesses
//! check those promises dynamically, after the fact; this module checks
//! the compiled artifact itself, before any traffic flows — the same way a
//! bytecode verifier validates a class file before the VM executes it.
//!
//! [`verify_plan`] walks one compiled plan and checks:
//!
//! * every slot / plain / pool index is in bounds (children, holders,
//!   ops/bytes/consts/preds/steps ranges, predicate and reference
//!   targets);
//! * container scope depth never exceeds [`MAX_SCOPE`];
//! * every recovery program is a balanced post-order stack program, every
//!   distribution program a balanced pre-order one, and each store's
//!   validation matches its slot's wire boundary;
//! * each recovery program's dual distribution program is its **forward
//!   mirror** (the invertibility invariant of the paper's
//!   transformations);
//! * the auto-field dependency graph is acyclic.
//!
//! [`verify_copy_program`] applies the same discipline to compiled
//! transcode programs (relative jumps in bounds and properly nested,
//! source/destination slot types in agreement), and
//! [`verify_channel_map`] checks the covert tunnel's carrier
//! classification against a traced serialization: carrier spans must lie
//! inside their slots' wire extents.
//!
//! Failures are reported as [`Diagnostic`]s with stable `P...` codes (the
//! `protoobf lint` CLI prints them verbatim); debug builds additionally
//! run [`verify_plan`] on every plan compile and [`verify_copy_program`]
//! on every copy-program compile, turning a miscompiled IR into an
//! immediate panic instead of silent wire corruption.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::codec::Codec;
use crate::graph::{NodeId, NodeType};
use crate::message::MAX_SCOPE;
use crate::obf::ObfGraph;
use crate::plan::{
    AutoCheckKind, BaseOp, CodecPlan, CopyProgram, CopyStep, DistCheck, DistProg, DistStep, PlanOp,
    PoolRange, RecProg, RecStep, SeqB, SplitRuleC, TermB, NONE,
};
use crate::runtime;
use crate::serialize::SlotSpan;
use crate::tunnel::ChannelMap;
use crate::value::ByteOp;

/// One verifier finding: a stable diagnostic code plus a human-readable
/// detail naming the offending slot/index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`P001`...). See the module docs for
    /// the full table.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.message)
    }
}

/// `P001` — a copy-program relative jump (`Optional`/`Loop`) leaves the
/// program or escapes its enclosing block.
pub const JUMP_OUT_OF_BOUNDS: &str = "P001";
/// `P002` — a wire-slot index is out of bounds or targets a dead slot.
pub const SLOT_OUT_OF_BOUNDS: &str = "P002";
/// `P003` — a pool range (ops/bytes/consts/preds/steps) is out of bounds.
pub const POOL_OUT_OF_BOUNDS: &str = "P003";
/// `P004` — a plain-graph index (subject, origin, counter, reference or
/// auto target) is out of bounds or of the wrong node type.
pub const PLAIN_OUT_OF_BOUNDS: &str = "P004";
/// `P005` — a container scope depth exceeds [`MAX_SCOPE`] or disagrees
/// with the graph.
pub const SCOPE_TOO_DEEP: &str = "P005";
/// `P006` — a recovery program is not a balanced post-order stack program.
pub const REC_UNBALANCED: &str = "P006";
/// `P007` — a distribution program is not a balanced pre-order program, or
/// a store's validation disagrees with its slot's boundary.
pub const DIST_UNBALANCED: &str = "P007";
/// `P008` — a recovery program's dual distribution program is not its
/// forward mirror (the invertibility invariant).
pub const DUALITY_VIOLATION: &str = "P008";
/// `P009` — the auto-field dependency graph has a cycle.
pub const AUTO_CYCLE: &str = "P009";
/// `P010` — a copy-program step disagrees with the plain specification's
/// node types (source/destination slot types must agree).
pub const COPY_TYPE_MISMATCH: &str = "P010";
/// `P011` — a tunnel carrier span lies outside its slot's wire extent.
pub const CARRIER_SPAN_OUT_OF_EXTENT: &str = "P011";

fn diag(code: &'static str, message: String) -> Diagnostic {
    Diagnostic { code, message }
}

/// True when the pool range `(start, len)` fits a pool of `len` items.
fn range_ok(r: PoolRange, pool_len: usize) -> bool {
    (r.0 as u64) + (r.1 as u64) <= pool_len as u64
}

/// Verifies one compiled plan against the graph it was compiled from.
/// Returns every violation found (empty = verified).
pub fn verify_plan(g: &ObfGraph, plan: &CodecPlan) -> Vec<Diagnostic> {
    let mut v = Verifier { g, plan, diags: Vec::new() };
    v.tables();
    v.nodes();
    v.depths();
    let rec_ok = v.rec_programs();
    let dist_ok = v.dist_programs();
    v.duality(&rec_ok, &dist_ok);
    v.autos();
    v.diags
}

struct Verifier<'a> {
    g: &'a ObfGraph,
    plan: &'a CodecPlan,
    diags: Vec<Diagnostic>,
}

impl Verifier<'_> {
    fn push(&mut self, code: &'static str, message: String) {
        self.diags.push(diag(code, message));
    }

    fn slots(&self) -> usize {
        self.plan.nodes.len()
    }

    fn plain_len(&self) -> usize {
        self.plan.holder.len()
    }

    /// Checks a slot reference: in bounds and live.
    fn slot(&mut self, what: &str, s: u32) -> bool {
        if s as usize >= self.slots() {
            self.push(
                SLOT_OUT_OF_BOUNDS,
                format!("{what}: slot {s} out of bounds ({} slots)", self.slots()),
            );
            return false;
        }
        if matches!(self.plan.nodes[s as usize].op, PlanOp::Dead) {
            self.push(SLOT_OUT_OF_BOUNDS, format!("{what}: slot {s} is dead"));
            return false;
        }
        true
    }

    /// Checks a slot reference that must be a wire-carrying terminal.
    fn term_slot(&mut self, what: &str, s: u32) -> bool {
        if !self.slot(what, s) {
            return false;
        }
        if !matches!(self.plan.nodes[s as usize].op, PlanOp::Term { .. }) {
            self.push(SLOT_OUT_OF_BOUNDS, format!("{what}: slot {s} is not a terminal"));
            return false;
        }
        true
    }

    /// Checks a plain-node reference.
    fn plain(&mut self, what: &str, p: u32) -> bool {
        if p as usize >= self.plain_len() {
            self.push(
                PLAIN_OUT_OF_BOUNDS,
                format!("{what}: plain index {p} out of bounds ({} plain nodes)", self.plain_len()),
            );
            return false;
        }
        true
    }

    /// Checks a plain reference that must be a numeric terminal (a
    /// `Length`/`Counter` reference or condition subject decoded as an
    /// integer).
    fn numeric_plain(&mut self, what: &str, p: u32) -> bool {
        if !self.plain(what, p) {
            return false;
        }
        let node = self.g.plain().node(NodeId(p));
        if !node.is_terminal() {
            self.push(PLAIN_OUT_OF_BOUNDS, format!("{what}: plain node {p} is not a terminal"));
            return false;
        }
        true
    }

    fn ops_range(&mut self, what: &str, r: PoolRange) -> bool {
        if !range_ok(r, self.plan.ops.len()) {
            self.push(
                POOL_OUT_OF_BOUNDS,
                format!(
                    "{what}: op range {}+{} out of bounds ({} pooled ops)",
                    r.0,
                    r.1,
                    self.plan.ops.len()
                ),
            );
            return false;
        }
        true
    }

    fn bytes_idx(&mut self, what: &str, i: u32) -> bool {
        if i as usize >= self.plan.bytes.len() {
            self.push(
                POOL_OUT_OF_BOUNDS,
                format!("{what}: byte-string {i} out of bounds ({} pooled)", self.plan.bytes.len()),
            );
            return false;
        }
        if self.plan.bytes[i as usize].is_empty() {
            self.push(POOL_OUT_OF_BOUNDS, format!("{what}: pooled byte-string {i} is empty"));
            return false;
        }
        true
    }

    /// Table sizes, root, children ranges and the holder map.
    fn tables(&mut self) {
        if self.slots() != self.g.allocated() {
            self.push(
                SLOT_OUT_OF_BOUNDS,
                format!(
                    "plan has {} slots for {} allocated graph nodes",
                    self.slots(),
                    self.g.allocated()
                ),
            );
        }
        let n_plain = self.g.plain().len();
        for (table, len) in [
            ("holder", self.plan.holder.len()),
            ("plain_depth", self.plan.plain_depth.len()),
            ("plain_endian", self.plan.plain_endian.len()),
            ("rec", self.plan.rec.len()),
        ] {
            if len != n_plain {
                self.push(
                    PLAIN_OUT_OF_BOUNDS,
                    format!("{table} table has {len} entries for {n_plain} plain nodes"),
                );
            }
        }
        if self.plan.dist.len() != self.slots() {
            self.push(
                SLOT_OUT_OF_BOUNDS,
                format!(
                    "dist table has {} entries for {} slots",
                    self.plan.dist.len(),
                    self.slots()
                ),
            );
        }
        self.slot("root", self.plan.root);
        for i in 0..self.slots() {
            let node = &self.plan.nodes[i];
            if matches!(node.op, PlanOp::Dead) {
                continue;
            }
            if !range_ok(node.children, self.plan.children.len()) {
                self.push(
                    SLOT_OUT_OF_BOUNDS,
                    format!(
                        "slot {i}: child range {}+{} out of bounds ({} child entries)",
                        node.children.0,
                        node.children.1,
                        self.plan.children.len()
                    ),
                );
                continue;
            }
            for &c in self.plan.kids(node) {
                self.slot(&format!("slot {i} child"), c);
            }
        }
        for p in 0..self.plan.holder.len() {
            let h = self.plan.holder[p];
            if h != NONE {
                self.slot(&format!("holder of plain {p}"), h);
            }
        }
    }

    /// Per-node operand checks: pool indices, plain references, arity.
    fn nodes(&mut self) {
        for i in 0..self.slots() {
            let node = self.plan.nodes[i].clone();
            let arity = node.children.1;
            let what = |part: &str| format!("slot {i} {part}");
            match node.op {
                PlanOp::Dead => {}
                PlanOp::Term { base, boundary } => {
                    self.base(i, &base);
                    match boundary {
                        TermB::Fixed(_) | TermB::End => {}
                        TermB::Delim(d) => {
                            self.bytes_idx(&what("delimiter"), d);
                        }
                        TermB::PlainLen { r, steps, .. } => {
                            self.numeric_plain(&what("length reference"), r);
                            if !range_ok(steps, self.plan.steps.len()) {
                                self.push(
                                    POOL_OUT_OF_BOUNDS,
                                    what(&format!(
                                        "length steps {}+{} out of bounds ({} pooled)",
                                        steps.0,
                                        steps.1,
                                        self.plan.steps.len()
                                    )),
                                );
                            }
                        }
                    }
                }
                PlanOp::Split { base, first_term } => {
                    self.base(i, &base);
                    self.term_slot(&what("first_term"), first_term);
                    if arity != 2 {
                        self.push(
                            SLOT_OUT_OF_BOUNDS,
                            what(&format!("split sequence has {arity} children, expected 2")),
                        );
                    }
                }
                PlanOp::Seq { boundary } => {
                    if let SeqB::PlainLen { r, .. } = boundary {
                        self.numeric_plain(&what("window reference"), r);
                    }
                }
                PlanOp::Opt { subject, pred, origin, .. } => {
                    self.numeric_plain(&what("condition subject"), subject);
                    if pred as usize >= self.plan.preds.len() {
                        self.push(
                            POOL_OUT_OF_BOUNDS,
                            what(&format!(
                                "predicate {pred} out of bounds ({} pooled)",
                                self.plan.preds.len()
                            )),
                        );
                    }
                    self.plain(&what("origin"), origin);
                    if arity != 1 {
                        self.push(
                            SLOT_OUT_OF_BOUNDS,
                            what(&format!("optional has {arity} children, expected 1")),
                        );
                    }
                }
                PlanOp::Rep { stop, origin, .. } => {
                    match stop {
                        crate::plan::RepStopC::Terminator(t) => {
                            self.bytes_idx(&what("terminator"), t);
                        }
                        crate::plan::RepStopC::Exhausted => {}
                        crate::plan::RepStopC::CountOf(s) => {
                            self.slot(&what("count link"), s);
                        }
                    }
                    if origin != NONE {
                        self.plain(&what("origin"), origin);
                    }
                    if arity != 1 {
                        self.push(
                            SLOT_OUT_OF_BOUNDS,
                            what(&format!("repetition has {arity} children, expected 1")),
                        );
                    }
                }
                PlanOp::Tab { counter, origin, .. } => {
                    self.numeric_plain(&what("counter"), counter);
                    if origin != NONE {
                        self.plain(&what("origin"), origin);
                    }
                    if arity != 1 {
                        self.push(
                            SLOT_OUT_OF_BOUNDS,
                            what(&format!("tabular has {arity} children, expected 1")),
                        );
                    }
                }
                PlanOp::Mirror => {
                    if arity != 1 {
                        self.push(
                            SLOT_OUT_OF_BOUNDS,
                            what(&format!("mirror has {arity} children, expected 1")),
                        );
                    }
                }
                PlanOp::Prefixed { width, .. } => {
                    if width == 0 || width > 8 {
                        self.push(
                            POOL_OUT_OF_BOUNDS,
                            what(&format!("length prefix width {width} outside 1..=8")),
                        );
                    }
                    if arity != 1 {
                        self.push(
                            SLOT_OUT_OF_BOUNDS,
                            what(&format!("prefixed has {arity} children, expected 1")),
                        );
                    }
                }
            }
        }
    }

    fn base(&mut self, slot: usize, base: &BaseOp) {
        let what = |part: &str| format!("slot {slot} {part}");
        match *base {
            BaseOp::Source { plain } => {
                self.plain(&what("source"), plain);
            }
            BaseOp::Pad { .. } | BaseOp::Inherit => {}
            BaseOp::AutoLen { target, width, .. } | BaseOp::AutoCount { target, width, .. } => {
                self.plain(&what("auto target"), target);
                if width == 0 || width > 8 {
                    self.push(
                        PLAIN_OUT_OF_BOUNDS,
                        what(&format!("auto encoding width {width} outside 1..=8")),
                    );
                }
            }
            BaseOp::Const { pool } => {
                if pool as usize >= self.plan.consts.len() {
                    self.push(
                        POOL_OUT_OF_BOUNDS,
                        what(&format!(
                            "constant {pool} out of bounds ({} pooled)",
                            self.plan.consts.len()
                        )),
                    );
                }
            }
        }
    }

    /// Scope depths: bounded by [`MAX_SCOPE`] and equal to the graph's
    /// own container depth.
    fn depths(&mut self) {
        let plain = self.g.plain();
        let n = self.plan.plain_depth.len().min(plain.len());
        for i in 0..n {
            let d = self.plan.plain_depth[i] as usize;
            if d > MAX_SCOPE {
                self.push(
                    SCOPE_TOO_DEEP,
                    format!("plain {i}: scope depth {d} exceeds MAX_SCOPE ({MAX_SCOPE})"),
                );
            } else if d != runtime::container_depth(plain, NodeId(i as u32)) {
                self.push(
                    SCOPE_TOO_DEEP,
                    format!(
                        "plain {i}: compiled scope depth {d} disagrees with the graph ({})",
                        runtime::container_depth(plain, NodeId(i as u32))
                    ),
                );
            }
        }
    }

    /// Recovery programs: ranges, balance, load targets. Returns the
    /// per-plain validity map the duality pass keys on.
    fn rec_programs(&mut self) -> Vec<bool> {
        let mut ok = vec![false; self.plan.rec.len()];
        for (p, valid) in ok.iter_mut().enumerate() {
            let Some(prog) = self.plan.rec[p] else { continue };
            *valid = self.rec_program(&format!("plain {p}"), prog);
        }
        ok
    }

    fn rec_program(&mut self, what: &str, prog: RecProg) -> bool {
        if !range_ok(prog.0, self.plan.rec_steps.len()) {
            self.push(
                POOL_OUT_OF_BOUNDS,
                format!(
                    "{what}: recovery program {}+{} out of bounds ({} steps pooled)",
                    prog.0 .0,
                    prog.0 .1,
                    self.plan.rec_steps.len()
                ),
            );
            return false;
        }
        let mut clean = true;
        let mut depth: u64 = 0;
        for (j, step) in self.plan.rec_prog(prog).to_vec().iter().enumerate() {
            match *step {
                RecStep::Load { obf, ops } => {
                    clean &= self.term_slot(&format!("{what} recovery step {j}"), obf);
                    clean &= self.ops_range(&format!("{what} recovery step {j}"), ops);
                    depth += 1;
                }
                RecStep::Concat { ops } | RecStep::Op { ops, .. } => {
                    clean &= self.ops_range(&format!("{what} recovery step {j}"), ops);
                    if depth < 2 {
                        self.push(
                            REC_UNBALANCED,
                            format!("{what}: recovery step {j} underflows the value stack"),
                        );
                        return false;
                    }
                    depth -= 1;
                }
            }
        }
        if depth != 1 {
            self.push(
                REC_UNBALANCED,
                format!("{what}: recovery program leaves {depth} values on the stack, expected 1"),
            );
            return false;
        }
        clean
    }

    /// Distribution programs: ranges, balance, store targets and boundary
    /// checks. Returns the per-slot validity map for the duality pass.
    fn dist_programs(&mut self) -> Vec<bool> {
        let mut ok = vec![false; self.plan.dist.len()];
        for (s, valid) in ok.iter_mut().enumerate() {
            let Some(prog) = self.plan.dist[s] else { continue };
            *valid = self.dist_program(&format!("slot {s}"), prog);
        }
        ok
    }

    fn dist_program(&mut self, what: &str, prog: DistProg) -> bool {
        if !range_ok(prog.0, self.plan.dist_steps.len()) {
            self.push(
                POOL_OUT_OF_BOUNDS,
                format!(
                    "{what}: distribution program {}+{} out of bounds ({} steps pooled)",
                    prog.0 .0,
                    prog.0 .1,
                    self.plan.dist_steps.len()
                ),
            );
            return false;
        }
        let mut clean = true;
        // The program starts with exactly one input value on the stack and
        // must consume everything it pushes (the serializer asserts this
        // dynamically; here it is checked once, statically).
        let mut depth: u64 = 1;
        for (j, step) in self.plan.dist_prog(prog).to_vec().iter().enumerate() {
            match *step {
                DistStep::Store { obf, ops, check } => {
                    let ctx = format!("{what} distribution step {j}");
                    if self.term_slot(&ctx, obf) {
                        clean &= self.store_check(&ctx, obf, check);
                    } else {
                        clean = false;
                    }
                    clean &= self.ops_range(&ctx, ops);
                    if depth == 0 {
                        self.push(
                            DIST_UNBALANCED,
                            format!("{what}: distribution step {j} underflows the value stack"),
                        );
                        return false;
                    }
                    depth -= 1;
                }
                DistStep::Split { ops, .. } => {
                    clean &= self.ops_range(&format!("{what} distribution step {j}"), ops);
                    if depth == 0 {
                        self.push(
                            DIST_UNBALANCED,
                            format!("{what}: distribution step {j} underflows the value stack"),
                        );
                        return false;
                    }
                    depth += 1;
                }
            }
        }
        if depth != 0 {
            self.push(
                DIST_UNBALANCED,
                format!("{what}: distribution program leaves {depth} values unconsumed"),
            );
            return false;
        }
        clean
    }

    /// A store's validation must mirror the target slot's wire boundary.
    fn store_check(&mut self, what: &str, obf: u32, check: DistCheck) -> bool {
        let PlanOp::Term { ref boundary, .. } = self.plan.nodes[obf as usize].op else {
            return false;
        };
        let agrees = match (boundary, check) {
            (TermB::Fixed(n), DistCheck::Fixed(k)) => *n == k,
            (TermB::Delim(d), DistCheck::Delim(e)) => {
                d == &e
                    || (range_ok((*d, 1), self.plan.bytes.len())
                        && range_ok((e, 1), self.plan.bytes.len())
                        && self.plan.bytes[*d as usize] == self.plan.bytes[e as usize])
            }
            (TermB::PlainLen { .. } | TermB::End, DistCheck::None) => true,
            _ => false,
        };
        if !agrees {
            self.push(
                DIST_UNBALANCED,
                format!("{what}: store validation {check:?} disagrees with slot {obf}'s boundary"),
            );
        }
        agrees
    }

    /// The invertibility invariant: for every plain terminal whose holder
    /// has both programs compiled, the distribution program must be the
    /// forward mirror (pre-order) of the recovery program (post-order) —
    /// same leaves, same constant-op stacks, inverse combination rules in
    /// mirrored order.
    fn duality(&mut self, rec_ok: &[bool], dist_ok: &[bool]) {
        let n = self.plan.rec.len().min(self.plan.holder.len());
        for (p, &ok) in rec_ok.iter().enumerate().take(n) {
            let Some(rec) = self.plan.rec[p] else { continue };
            let h = self.plan.holder[p];
            if h == NONE || h as usize >= self.plan.dist.len() {
                continue;
            }
            let Some(dist) = self.plan.dist[h as usize] else { continue };
            // Only compare structurally valid programs: bounds or balance
            // failures were already reported above and would cascade here.
            if !ok || !dist_ok[h as usize] {
                continue;
            }
            if let Some(msg) = self.mirror_mismatch(rec, dist) {
                self.push(DUALITY_VIOLATION, format!("plain {p} (holder slot {h}): {msg}"));
            }
        }
    }

    /// Rebuilds the value tree from the post-order recovery program and
    /// compares its pre-order rendition against the distribution program.
    /// Returns a description of the first mismatch.
    fn mirror_mismatch(&self, rec: RecProg, dist: DistProg) -> Option<String> {
        enum Node {
            Leaf { obf: u32, ops: PoolRange },
            Branch { op: Option<ByteOp>, ops: PoolRange, left: usize, right: usize },
        }
        let mut arena: Vec<Node> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for step in self.plan.rec_prog(rec) {
            match *step {
                RecStep::Load { obf, ops } => {
                    arena.push(Node::Leaf { obf, ops });
                    stack.push(arena.len() - 1);
                }
                RecStep::Concat { ops } | RecStep::Op { ops, .. } => {
                    let op = match *step {
                        RecStep::Op { op, .. } => Some(op),
                        _ => None,
                    };
                    let right = stack.pop()?;
                    let left = stack.pop()?;
                    arena.push(Node::Branch { op, ops, left, right });
                    stack.push(arena.len() - 1);
                }
            }
        }
        let root = stack.pop()?;
        // Pre-order emission of the rebuilt tree, compared step-by-step.
        let dist_steps = self.plan.dist_prog(dist);
        let mut cursor = 0usize;
        let mut todo = vec![root];
        while let Some(ix) = todo.pop() {
            let Some(step) = dist_steps.get(cursor) else {
                return Some(format!(
                    "distribution program has {} steps, recovery mirror expects more",
                    dist_steps.len()
                ));
            };
            match (&arena[ix], *step) {
                (Node::Leaf { obf, ops }, DistStep::Store { obf: so, ops: sops, .. }) => {
                    if *obf != so {
                        return Some(format!(
                            "step {cursor}: store targets slot {so}, recovery loads slot {obf}"
                        ));
                    }
                    if self.plan.ops(*ops) != self.plan.ops(sops) {
                        return Some(format!(
                            "step {cursor}: slot {so}'s constant-op stacks differ between \
                             recovery and distribution"
                        ));
                    }
                }
                (Node::Leaf { obf, .. }, DistStep::Split { .. }) => {
                    return Some(format!(
                        "step {cursor}: distribution splits where recovery loads slot {obf}"
                    ));
                }
                (Node::Branch { op, ops, left, right }, DistStep::Split { ops: sops, rule }) => {
                    let rule_agrees = match (op, rule) {
                        (None, SplitRuleC::At(_) | SplitRuleC::Half) => true,
                        (Some(o), SplitRuleC::Op(r)) => *o == r,
                        _ => false,
                    };
                    if !rule_agrees {
                        return Some(format!(
                            "step {cursor}: split rule {rule:?} is not the forward mirror of \
                             the recovery combination"
                        ));
                    }
                    if self.plan.ops(*ops) != self.plan.ops(sops) {
                        return Some(format!(
                            "step {cursor}: split-expression op stacks differ between \
                             recovery and distribution"
                        ));
                    }
                    // Pre-order: left subtree first (push right, then left).
                    todo.push(*right);
                    todo.push(*left);
                }
                (Node::Branch { .. }, DistStep::Store { obf, .. }) => {
                    return Some(format!(
                        "step {cursor}: distribution stores to slot {obf} where recovery \
                         combines two values"
                    ));
                }
            }
            cursor += 1;
        }
        if cursor != dist_steps.len() {
            return Some(format!(
                "distribution program has {} trailing steps beyond the recovery mirror",
                dist_steps.len() - cursor
            ));
        }
        None
    }

    /// Auto-check operands and the auto-field dependency graph (an auto
    /// field must not derive from a subtree that contains itself or
    /// another auto field deriving back from it).
    fn autos(&mut self) {
        let plain = self.g.plain();
        let autos = self.plan.autos.clone();
        let mut target_of: Vec<Option<u32>> = Vec::with_capacity(autos.len());
        let mut by_plain = std::collections::HashMap::new();
        for (i, a) in autos.iter().enumerate() {
            let what = format!("auto check {i}");
            self.plain(&what, a.plain);
            self.term_slot(&format!("{what} first_term"), a.first_term);
            let target = match a.kind {
                AutoCheckKind::Literal(c) => {
                    if c as usize >= self.plan.consts.len() {
                        self.push(
                            POOL_OUT_OF_BOUNDS,
                            format!(
                                "{what}: constant {c} out of bounds ({} pooled)",
                                self.plan.consts.len()
                            ),
                        );
                    }
                    None
                }
                AutoCheckKind::LengthOf { target, .. }
                | AutoCheckKind::CounterOf { target, .. } => {
                    if self.plain(&format!("{what} target"), target) {
                        Some(target)
                    } else {
                        None
                    }
                }
            };
            target_of.push(target);
            if (a.plain as usize) < plain.len() {
                by_plain.insert(a.plain, i);
            }
        }
        // Edges: auto i → auto j when j's field lies inside i's target
        // subtree (i's derived value depends on j's subtree content).
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); autos.len()];
        for (i, target) in target_of.iter().enumerate() {
            let Some(t) = target else { continue };
            for y in plain.subtree(NodeId(*t)) {
                if let Some(&j) = by_plain.get(&y.0) {
                    edges[i].push(j);
                }
            }
        }
        // Depth-first cycle detection (0 unvisited / 1 on stack / 2 done).
        let mut color = vec![0u8; autos.len()];
        for start in 0..autos.len() {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&mut (n, ref mut e)) = stack.last_mut() {
                if *e < edges[n].len() {
                    let next = edges[n][*e];
                    *e += 1;
                    match color[next] {
                        0 => {
                            color[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => {
                            let name =
                                |i: usize| plain.node(NodeId(autos[i].plain)).name().to_string();
                            self.push(
                                AUTO_CYCLE,
                                format!(
                                    "auto field {:?} depends on a subtree containing {:?}, \
                                     which derives back from it",
                                    name(n),
                                    name(next)
                                ),
                            );
                            return;
                        }
                        _ => {}
                    }
                } else {
                    color[n] = 2;
                    stack.pop();
                }
            }
        }
    }
}

/// Verifies a compiled transcode program against the (source,
/// destination) graph pair it was compiled for: relative jumps stay
/// inside the program and properly nested, every plain/slot/pool
/// reference is in bounds, and step shapes agree with the shared plain
/// specification's node types.
pub fn verify_copy_program(src: &ObfGraph, dst: &ObfGraph, prog: &CopyProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let (sp, dp) = (src.plan(), dst.plan());
    let plain = src.plain();
    if !runtime::plains_match(plain, dst.plain()) {
        diags.push(diag(
            COPY_TYPE_MISMATCH,
            format!(
                "copy program pairs foreign specifications {:?} and {:?}",
                plain.name(),
                dst.plain().name()
            ),
        ));
        return diags;
    }
    let n = prog.steps.len();
    // Stack of enclosing block end indices (exclusive): a jump may end a
    // block early but must never escape the enclosing one.
    let mut blocks: Vec<usize> = Vec::new();
    for (i, step) in prog.steps.iter().enumerate() {
        while blocks.last().is_some_and(|&e| i >= e) {
            blocks.pop();
        }
        let mut block = |width: u32, label: &str| {
            let end = i + 1 + width as usize;
            if end > n {
                diags.push(diag(
                    JUMP_OUT_OF_BOUNDS,
                    format!(
                        "step {i}: {label} jump over {width} steps leaves the {n}-step program"
                    ),
                ));
                return;
            }
            if let Some(&e) = blocks.last() {
                if end > e {
                    diags.push(diag(
                        JUMP_OUT_OF_BOUNDS,
                        format!(
                            "step {i}: {label} jump to {end} escapes the enclosing block ({e})"
                        ),
                    ));
                    return;
                }
            }
            blocks.push(end);
        };
        match *step {
            CopyStep::Optional { plain: p, skip } => {
                block(skip, "optional");
                match plain.get(NodeId(p)) {
                    None => diags.push(diag(
                        PLAIN_OUT_OF_BOUNDS,
                        format!("step {i}: optional plain {p} out of bounds"),
                    )),
                    Some(node) if !matches!(node.node_type(), NodeType::Optional(_)) => {
                        diags.push(diag(
                            COPY_TYPE_MISMATCH,
                            format!(
                                "step {i}: optional step targets plain {p} ({}), not an optional",
                                node.node_type().notation()
                            ),
                        ));
                    }
                    Some(_) => {}
                }
            }
            CopyStep::Loop { plain: p, body } => {
                block(body, "loop");
                match plain.get(NodeId(p)) {
                    None => diags.push(diag(
                        PLAIN_OUT_OF_BOUNDS,
                        format!("step {i}: loop plain {p} out of bounds"),
                    )),
                    Some(node)
                        if !matches!(
                            node.node_type(),
                            NodeType::Repetition(_) | NodeType::Tabular
                        ) =>
                    {
                        diags.push(diag(
                            COPY_TYPE_MISMATCH,
                            format!(
                                "step {i}: loop step targets plain {p} ({}), not a container",
                                node.node_type().notation()
                            ),
                        ));
                    }
                    Some(_) => {}
                }
            }
            CopyStep::Value { plain: p, rec, dist } => {
                match plain.get(NodeId(p)) {
                    None => diags.push(diag(
                        PLAIN_OUT_OF_BOUNDS,
                        format!("step {i}: value plain {p} out of bounds"),
                    )),
                    Some(node) if !node.is_terminal() => diags.push(diag(
                        COPY_TYPE_MISMATCH,
                        format!("step {i}: value step targets plain {p}, not a terminal"),
                    )),
                    Some(node) if node.auto().is_auto() => diags.push(diag(
                        COPY_TYPE_MISMATCH,
                        format!(
                            "step {i}: value step copies auto field {:?} (rematerialized by \
                             the destination serializer)",
                            node.name()
                        ),
                    )),
                    Some(_) => {}
                }
                if !range_ok(rec.0, sp.rec_steps.len()) {
                    diags.push(diag(
                        POOL_OUT_OF_BOUNDS,
                        format!("step {i}: recovery program out of bounds in the source plan"),
                    ));
                }
                if !range_ok(dist.0, dp.dist_steps.len()) {
                    diags.push(diag(
                        POOL_OUT_OF_BOUNDS,
                        format!(
                            "step {i}: distribution program out of bounds in the destination plan"
                        ),
                    ));
                }
            }
            CopyStep::ValueDirect { src_obf, src_ops, dist } => {
                if src_obf as usize >= sp.nodes.len()
                    || !matches!(sp.nodes[src_obf as usize].op, PlanOp::Term { .. })
                {
                    diags.push(diag(
                        SLOT_OUT_OF_BOUNDS,
                        format!(
                            "step {i}: direct source slot {src_obf} is not a terminal of the \
                             source plan"
                        ),
                    ));
                }
                if !range_ok(src_ops, sp.ops.len()) {
                    diags.push(diag(
                        POOL_OUT_OF_BOUNDS,
                        format!("step {i}: source op range out of bounds in the source plan"),
                    ));
                }
                if !range_ok(dist.0, dp.dist_steps.len()) {
                    diags.push(diag(
                        POOL_OUT_OF_BOUNDS,
                        format!(
                            "step {i}: distribution program out of bounds in the destination plan"
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Verifies the covert tunnel's carrier classification for `codec`: every
/// carrier must own a value channel in the compiled plan, and in a traced
/// serialization of a sampled (pinned) cover message every produced span
/// must lie inside its parent's wire extent — carrier spans in
/// particular, since payload bytes are committed to exactly those ranges.
pub fn verify_channel_map(codec: &Codec, map: &ChannelMap<'_>) -> Vec<Diagnostic> {
    let plan = codec.plan();
    let mut diags = Vec::new();
    let mut carrier_slots = Vec::new();
    for &c in map.carriers() {
        match plan.holder_slot(c) {
            Some(h) => carrier_slots.push(h),
            None => diags.push(diag(
                CARRIER_SPAN_OUT_OF_EXTENT,
                format!(
                    "carrier {:?} has no value channel in the compiled plan",
                    codec.plain().node(c).name()
                ),
            )),
        }
    }
    // One traced serialization of a deterministic sampled cover message:
    // the spans are the byte ranges the tunnel encoder would write payload
    // into.
    let mut rng = StdRng::seed_from_u64(0x0bf_11a7);
    let msg = crate::sample::random_message_pinned(codec, &mut rng, map.pins());
    let mut session = codec.serializer();
    let (mut wire, mut spans) = (Vec::new(), Vec::new());
    if session.serialize_traced(&msg, &mut wire, &mut spans).is_ok() {
        diags.extend(check_spans(&spans, wire.len(), plan, &carrier_slots));
    }
    diags
}

/// Pure span-containment check behind [`verify_channel_map`]: spans are
/// recorded in pre-order and must nest — each inside the enclosing one and
/// inside the produced wire. Kept separate so tests can corrupt a span
/// list directly and prove the rule fires.
fn check_spans(
    spans: &[SlotSpan],
    wire_len: usize,
    plan: &CodecPlan,
    carrier_slots: &[u32],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut stack: Vec<SlotSpan> = Vec::new();
    for s in spans {
        let role = if carrier_slots.contains(&s.slot) { "carrier slot" } else { "slot" };
        if s.slot as usize >= plan.nodes.len() {
            diags.push(diag(
                CARRIER_SPAN_OUT_OF_EXTENT,
                format!("span of unknown slot {} ({} slots)", s.slot, plan.nodes.len()),
            ));
            continue;
        }
        if s.start > s.end || s.end as usize > wire_len {
            diags.push(diag(
                CARRIER_SPAN_OUT_OF_EXTENT,
                format!(
                    "{role} {}: span {}..{} outside the {wire_len}-byte wire",
                    s.slot, s.start, s.end
                ),
            ));
            continue;
        }
        while stack.last().is_some_and(|top| s.start >= top.end) {
            stack.pop();
        }
        if let Some(top) = stack.last() {
            if s.start < top.start || s.end > top.end {
                diags.push(diag(
                    CARRIER_SPAN_OUT_OF_EXTENT,
                    format!(
                        "{role} {}: span {}..{} escapes the enclosing slot {}'s extent {}..{}",
                        s.slot, s.start, s.end, top.slot, top.start, top.end
                    ),
                ));
                continue;
            }
        }
        stack.push(*s);
    }
    diags
}

/// Full static verification of one codec: the plan pass plus the tunnel
/// carrier-span pass. This is what `protoobf lint` runs per derivation
/// leg.
pub fn verify_codec(codec: &Codec) -> Vec<Diagnostic> {
    let mut diags = verify_plan(codec.obf_graph(), codec.plan());
    let map = ChannelMap::analyze(codec);
    diags.extend(verify_channel_map(codec, &map));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, Condition, GraphBuilder, Predicate};
    use crate::plan::RepStopC;
    use crate::transform::{apply, TransformKind};
    use crate::value::{TerminalKind, Value};

    /// Test-only corruption hook, mirroring `fuzz.rs`'s wire tamper: the
    /// plan is compiled clean, corrupted in place, and re-verified — each
    /// verifier rule must fire on its matching corruption.
    fn verify_tampered(g: &ObfGraph, tamper: impl FnOnce(&mut CodecPlan)) -> Vec<Diagnostic> {
        let mut plan = CodecPlan::compile(g);
        tamper(&mut plan);
        verify_plan(g, &plan)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn sample() -> ObfGraph {
        let mut b = GraphBuilder::new("s");
        let root = b.root_sequence("m", Boundary::End);
        let len = b.uint_be(root, "len", 2);
        let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
        b.set_auto(len, AutoValue::LengthOf(data));
        let flag = b.uint_be(root, "flag", 1);
        let opt = b.optional(
            root,
            "extra",
            Condition { subject: flag, predicate: Predicate::Equals(Value::from_bytes(vec![1])) },
        );
        b.uint_be(opt, "ev", 2);
        ObfGraph::from_plain(&b.build().unwrap())
    }

    fn transformed() -> ObfGraph {
        let mut g = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let data = g.plain().resolve_names(&["data"]).unwrap();
        let h = g.holder_of(data).unwrap();
        apply(&mut g, h, TransformKind::ConstAdd, &mut rng).unwrap();
        let h = g.holder_of(data).unwrap();
        apply(&mut g, h, TransformKind::SplitXor, &mut rng).unwrap();
        g
    }

    #[test]
    fn clean_plans_verify_clean() {
        for g in [sample(), transformed()] {
            let plan = CodecPlan::compile(&g);
            assert_eq!(verify_plan(&g, &plan), vec![], "false positive on a clean plan");
        }
    }

    #[test]
    fn p002_slot_out_of_bounds_fires() {
        let d = verify_tampered(&sample(), |p| p.children[0] = 999);
        assert!(codes(&d).contains(&SLOT_OUT_OF_BOUNDS), "{d:?}");
    }

    #[test]
    fn p002_dead_reference_fires() {
        // A transformed graph has detached (dead) slots; point the root at
        // one of them.
        let g = transformed();
        let dead = {
            let plan = CodecPlan::compile(&g);
            (0..plan.nodes.len())
                .find(|&i| matches!(plan.nodes[i].op, PlanOp::Dead))
                .expect("transformed graphs leave dead slots") as u32
        };
        let mut plan = CodecPlan::compile(&g);
        plan.root = dead;
        let d = verify_plan(&g, &plan);
        assert!(codes(&d).contains(&SLOT_OUT_OF_BOUNDS), "{d:?}");
    }

    #[test]
    fn p003_pool_range_fires() {
        let d = verify_tampered(&transformed(), |p| {
            let step = p
                .rec_steps
                .iter_mut()
                .find(|s| matches!(s, RecStep::Load { .. }))
                .expect("has a load step");
            if let RecStep::Load { ops, .. } = step {
                ops.0 = 10_000;
                ops.1 = 4;
            }
        });
        assert!(codes(&d).contains(&POOL_OUT_OF_BOUNDS), "{d:?}");
    }

    #[test]
    fn p004_plain_reference_fires() {
        let d = verify_tampered(&sample(), |p| {
            for n in &mut p.nodes {
                if let PlanOp::Opt { subject, .. } = &mut n.op {
                    *subject = 999;
                }
            }
        });
        assert!(codes(&d).contains(&PLAIN_OUT_OF_BOUNDS), "{d:?}");
    }

    #[test]
    fn p005_scope_depth_fires() {
        let d = verify_tampered(&sample(), |p| p.plain_depth[0] = (MAX_SCOPE + 1) as u8);
        assert!(codes(&d).contains(&SCOPE_TOO_DEEP), "{d:?}");
        // A depth within bounds but disagreeing with the graph also fires.
        let d = verify_tampered(&sample(), |p| p.plain_depth[0] = 3);
        assert!(codes(&d).contains(&SCOPE_TOO_DEEP), "{d:?}");
    }

    #[test]
    fn p006_unbalanced_recovery_fires() {
        let d = verify_tampered(&sample(), |p| {
            let prog = p.rec.iter_mut().flatten().next().expect("has a recovery program");
            prog.0 .1 = 0; // empty program: no value left on the stack
        });
        assert!(codes(&d).contains(&REC_UNBALANCED), "{d:?}");
        // Underflow: a combine step with only one loaded value.
        let d = verify_tampered(&transformed(), |p| {
            let (at, len) = {
                let prog = p.rec.iter().flatten().find(|r| r.0 .1 >= 3).expect("split program");
                (prog.0 .0, prog.0 .1)
            };
            // Rewrite the program's steps to [Load, Combine, ...]: drop the
            // second Load by duplicating the combine earlier.
            let combine = p.rec_steps[(at + len - 1) as usize];
            p.rec_steps[(at + 1) as usize] = combine;
        });
        assert!(codes(&d).contains(&REC_UNBALANCED), "{d:?}");
    }

    #[test]
    fn p007_unbalanced_distribution_fires() {
        let d = verify_tampered(&sample(), |p| {
            let prog = p.dist.iter_mut().flatten().next().expect("has a distribution program");
            prog.0 .1 = 0; // empty program: the input value is never consumed
        });
        assert!(codes(&d).contains(&DIST_UNBALANCED), "{d:?}");
    }

    #[test]
    fn p007_store_check_mismatch_fires() {
        let d = verify_tampered(&sample(), |p| {
            for s in &mut p.dist_steps {
                if let DistStep::Store { check, .. } = s {
                    *check = DistCheck::Fixed(77);
                }
            }
        });
        assert!(codes(&d).contains(&DIST_UNBALANCED), "{d:?}");
    }

    #[test]
    fn p008_duality_violation_fires() {
        // Flip the forward split rule out from under the recovery program:
        // the pair no longer mirrors, so round-trips would corrupt.
        let d = verify_tampered(&transformed(), |p| {
            for s in &mut p.dist_steps {
                if let DistStep::Split { rule: SplitRuleC::Op(op), .. } = s {
                    *op = match op {
                        ByteOp::Xor => ByteOp::Add,
                        _ => ByteOp::Xor,
                    };
                }
            }
        });
        assert!(codes(&d).contains(&DUALITY_VIOLATION), "{d:?}");
        // Re-target a store at a different (live, terminal) slot.
        let d = verify_tampered(&sample(), |p| {
            let slots: Vec<u32> = (0..p.nodes.len() as u32)
                .filter(|&i| matches!(p.nodes[i as usize].op, PlanOp::Term { .. }))
                .collect();
            let at = p
                .dist_steps
                .iter()
                .position(|s| matches!(s, DistStep::Store { .. }))
                .expect("has a store step");
            let DistStep::Store { obf, .. } = p.dist_steps[at] else { unreachable!() };
            let other = *slots.iter().find(|&&t| t != obf).expect("second terminal");
            // Keep the store check agreeing with the new slot so only the
            // duality rule can catch the retarget.
            let check = match &p.nodes[other as usize].op {
                PlanOp::Term { boundary: TermB::Fixed(n), .. } => DistCheck::Fixed(*n),
                _ => DistCheck::None,
            };
            if let DistStep::Store { obf, check: c, .. } = &mut p.dist_steps[at] {
                *obf = other;
                *c = check;
            }
        });
        assert!(codes(&d).contains(&DUALITY_VIOLATION), "{d:?}");
    }

    #[test]
    fn p009_auto_cycle_fires() {
        // Point the auto length's target at the root: its own subtree now
        // contains the auto field — a self-dependency.
        let g = sample();
        let root = g.plain().root();
        let d = verify_tampered(&g, move |p| {
            for a in &mut p.autos {
                if let AutoCheckKind::LengthOf { target, .. } = &mut a.kind {
                    *target = root.0;
                }
            }
        });
        assert!(codes(&d).contains(&AUTO_CYCLE), "{d:?}");
    }

    #[test]
    fn p001_copy_jump_out_of_bounds_fires() {
        let src = sample();
        let dst = transformed();
        let mut prog = CopyProgram::compile(&src, &dst).expect("same plain spec");
        assert_eq!(verify_copy_program(&src, &dst, &prog), vec![], "clean program");
        for s in &mut prog.steps {
            if let CopyStep::Optional { skip, .. } = s {
                *skip = 1000;
            }
        }
        let d = verify_copy_program(&src, &dst, &prog);
        assert!(codes(&d).contains(&JUMP_OUT_OF_BOUNDS), "{d:?}");
    }

    #[test]
    fn p010_copy_type_mismatch_fires() {
        let src = sample();
        let dst = transformed();
        let mut prog = CopyProgram::compile(&src, &dst).expect("same plain spec");
        let terminal = src.plain().resolve_names(&["flag"]).unwrap();
        for s in &mut prog.steps {
            if let CopyStep::Optional { plain, .. } = s {
                *plain = terminal.0; // an optional step aimed at a terminal
            }
        }
        let d = verify_copy_program(&src, &dst, &prog);
        assert!(codes(&d).contains(&COPY_TYPE_MISMATCH), "{d:?}");
    }

    #[test]
    fn p011_carrier_span_out_of_extent_fires() {
        let g = sample();
        let plan = CodecPlan::compile(&g);
        // A child span escaping its parent's extent.
        let spans = [
            SlotSpan { slot: 0, start: 0, end: 10, depth: 0 },
            SlotSpan { slot: 1, start: 5, end: 12, depth: 0 },
        ];
        let d = check_spans(&spans, 12, &plan, &[1]);
        assert!(codes(&d).contains(&CARRIER_SPAN_OUT_OF_EXTENT), "{d:?}");
        // A span past the end of the wire.
        let spans = [SlotSpan { slot: 0, start: 0, end: 10, depth: 0 }];
        let d = check_spans(&spans, 8, &plan, &[]);
        assert!(codes(&d).contains(&CARRIER_SPAN_OUT_OF_EXTENT), "{d:?}");
    }

    #[test]
    fn p002_rep_count_link_fires() {
        // Corrupt a CountOf link if the graph has one; otherwise corrupt a
        // holder entry — both are slot references.
        let d = verify_tampered(&sample(), |p| {
            let has_count = p
                .nodes
                .iter()
                .any(|n| matches!(n.op, PlanOp::Rep { stop: RepStopC::CountOf(_), .. }));
            if has_count {
                for n in &mut p.nodes {
                    if let PlanOp::Rep { stop: RepStopC::CountOf(s), .. } = &mut n.op {
                        *s = 999;
                    }
                }
            } else {
                p.holder[0] = 998;
            }
        });
        assert!(codes(&d).contains(&SLOT_OUT_OF_BOUNDS), "{d:?}");
    }

    #[test]
    fn copy_program_verifies_clean_both_directions() {
        let clear = sample();
        let obf = transformed();
        let fwd = CopyProgram::compile(&clear, &obf).unwrap();
        let back = CopyProgram::compile(&obf, &clear).unwrap();
        assert_eq!(verify_copy_program(&clear, &obf, &fwd), vec![]);
        assert_eq!(verify_copy_program(&obf, &clear, &back), vec![]);
    }

    #[test]
    fn channel_map_verifies_clean() {
        let g = sample();
        let codec = Codec::from_parts(g, Vec::new());
        let map = ChannelMap::analyze(&codec);
        assert!(!map.is_empty(), "sample spec has a carrier");
        assert_eq!(verify_channel_map(&codec, &map), vec![]);
    }

    #[test]
    fn verify_codec_covers_transformed_graphs() {
        let codec = Codec::from_parts(transformed(), Vec::new());
        assert_eq!(verify_codec(&codec), vec![]);
    }
}

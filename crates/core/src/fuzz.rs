//! Grammar-aware differential fuzzing over compiled codec plans.
//!
//! The in-tree proptest harnesses (`tests/fuzz_differential.rs`,
//! `tests/transcode_differential.rs`) mutate at random byte offsets.
//! This module is the plan-aware engine behind `protoobf fuzz`: it reads
//! the field and scope boundaries straight off a traced serialization of
//! the compiled [`CodecPlan`](crate::plan::CodecPlan) (see
//! [`SerializeSession::serialize_traced`](crate::serialize::SerializeSession::serialize_traced))
//! and mutates **at those boundaries** — flip the first/last byte of a
//! slot, truncate at a slot edge, delete or duplicate a whole slot's
//! bytes — which is where off-by-one and boundary-recovery bugs live.
//!
//! Every input, pristine or mutated, runs through the full differential
//! stack:
//!
//! 1. **Parse agreement** — compiled-plan session
//!    ([`Codec::parser`]) vs the reference graph-walk parser
//!    ([`crate::parse::parse`]): both reject, or both accept with
//!    structurally equal messages (compared under the seeded reference
//!    serializer).
//! 2. **Transcode agreement** — whenever the parser accepts, the parsed
//!    message is re-expressed through both transcode implementations
//!    ([`Message::transcode_into`] vs [`Message::transcode_into_walk`])
//!    onto the clear codec *and* onto a second obfuscation of the same
//!    spec: the two gateway relay directions.
//!
//! Any disagreement is a **divergence**: the engine shrinks it to a
//! smallest reproducer with a deterministic ddmin-style loop
//! ([`minimize`]) and dedupes reproducers by plan-slot coverage
//! signature ([`coverage_signature`]), so one root cause files one
//! corpus entry no matter how many mutants tripped over it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::Codec;
use crate::engine::Obfuscator;
use crate::message::Message;
use crate::parse;
use crate::sample::random_message;
use crate::serialize;
pub use crate::serialize::SlotSpan;

// ---------------------------------------------------------------------------
// differential oracle
// ---------------------------------------------------------------------------

/// Test-only fault injection: rewrites the plan path's normalized parse
/// in place (a `Vec` so a fault may also grow or truncate it).
#[cfg(test)]
type Tamper = fn(&[u8], &mut Vec<u8>);

/// The full differential stack over one codec: plan-vs-walk parsing plus
/// both gateway transcode directions. Holds the three codecs every check
/// needs so per-input checks allocate nothing beyond the parse itself.
#[derive(Debug)]
pub struct DiffOracle<'a> {
    codec: &'a Codec,
    clear: &'a Codec,
    other: &'a Codec,
    /// Seed for the destination-message RNGs of the transcode check
    /// (both paths get identically seeded destinations, so the random
    /// shares of op-splits must line up too).
    seed: u64,
    /// A deliberately broken "transform" applied to the plan path's
    /// normalized parse, used to prove the minimizer shrinks a real
    /// divergence through the real stack.
    #[cfg(test)]
    tamper: Option<Tamper>,
}

impl<'a> DiffOracle<'a> {
    /// Builds the oracle for `codec`. `clear` and `other` must be built
    /// over the same plain spec: the identity codec and a *different*
    /// obfuscation — the two directions a gateway relay transcodes in.
    pub fn new(codec: &'a Codec, clear: &'a Codec, other: &'a Codec, seed: u64) -> Self {
        DiffOracle {
            codec,
            clear,
            other,
            seed,
            #[cfg(test)]
            tamper: None,
        }
    }

    #[cfg(test)]
    fn with_tamper(mut self, tamper: Tamper) -> Self {
        self.tamper = Some(tamper);
        self
    }

    /// Runs `wire` through the whole stack. `None` means every pair of
    /// implementations agreed; `Some(detail)` describes the first
    /// divergence found.
    pub fn check(&self, wire: &[u8]) -> Option<String> {
        let codec = self.codec;
        let walk = parse::parse(codec.obf_graph(), wire);
        let mut session = codec.parser();
        let plan = session.parse_in_place(wire).map(|_| ()).map_err(|e| e.to_string());
        let msg = match (walk, plan) {
            (Ok(w), Ok(())) => {
                let p = session.take_message();
                let nw = normalize(codec, &w);
                #[allow(unused_mut)]
                let mut np = normalize(codec, &p);
                #[cfg(test)]
                if let Some(t) = self.tamper {
                    t(wire, &mut np);
                }
                if nw != np {
                    return Some(format!(
                        "parsers accepted {} bytes but recovered different structures\n  \
                         walk: {nw:02x?}\n  plan: {np:02x?}",
                        wire.len()
                    ));
                }
                p
            }
            (Err(_), Err(_)) => return None,
            (Ok(_), Err(e)) => {
                return Some(format!("graph-walk accepted but plan session rejected ({e})"))
            }
            (Err(e), Ok(())) => {
                return Some(format!("plan session accepted but graph-walk rejected ({e})"))
            }
        };
        // Parsed: the relay step must agree in both gateway directions.
        transcode_divergence(&msg, self.clear, self.seed)
            .or_else(|| transcode_divergence(&msg, self.other, self.seed))
    }
}

/// Normalized bytes of a message: reference-serialized with a fixed seed.
fn normalize(codec: &Codec, msg: &Message<'_>) -> Vec<u8> {
    serialize::serialize_seeded(codec.obf_graph(), msg, 0).expect("normalization serializes")
}

/// Transcodes `src` through both implementations onto `dst` (identically
/// seeded destination messages) and reports any disagreement.
fn transcode_divergence(src: &Message<'_>, dst: &Codec, seed: u64) -> Option<String> {
    let mut compiled = dst.message_seeded(seed);
    let mut walked = dst.message_seeded(seed);
    let ra = src.transcode_into(&mut compiled);
    let rb = src.transcode_into_walk(&mut walked);
    match (ra, rb) {
        (Ok(()), Ok(())) => {
            let sa = serialize::serialize_seeded(dst.obf_graph(), &compiled, 0)
                .map_err(|e| e.to_string());
            let sb =
                serialize::serialize_seeded(dst.obf_graph(), &walked, 0).map_err(|e| e.to_string());
            if sa != sb {
                Some(format!(
                    "transcode paths diverged onto {}\n  compiled: {sa:02x?}\n  walk:     {sb:02x?}",
                    dst.plain().name()
                ))
            } else {
                None
            }
        }
        (Err(ea), Err(eb)) => {
            if std::mem::discriminant(&ea) == std::mem::discriminant(&eb) {
                None
            } else {
                Some(format!("transcode errors diverged: compiled {ea:?} vs walk {eb:?}"))
            }
        }
        (ra, rb) => Some(format!("transcode outcomes diverged: compiled {ra:?} vs walk {rb:?}")),
    }
}

// ---------------------------------------------------------------------------
// plan-aware mutation
// ---------------------------------------------------------------------------

/// Applies one plan-aware mutation to `wire`, targeting the slot
/// boundaries recorded in `spans` (a traced serialization of the
/// pristine ancestor — offsets are clamped to the current length, so a
/// chain of mutations keeps aiming near real field edges).
pub fn mutate_plan_aware(wire: &mut Vec<u8>, spans: &[SlotSpan], rng: &mut StdRng) {
    if wire.is_empty() {
        wire.push(rng.gen());
        return;
    }
    // Prefer a non-empty span; fall back to whatever we drew.
    let span = (0..4)
        .map(|_| spans[rng.gen_range(0..spans.len().max(1)).min(spans.len() - 1)])
        .find(|s| !s.is_empty())
        .unwrap_or(spans[0]);
    let len = wire.len();
    let start = (span.start as usize).min(len - 1);
    let end = (span.end as usize).clamp(start + 1, len);
    match rng.gen_range(0u8..8) {
        // Flip the first byte of the slot.
        0 => wire[start] ^= rng.gen::<u8>() | 1,
        // Flip the last byte of the slot.
        1 => wire[end - 1] ^= rng.gen::<u8>() | 1,
        // Truncate at the slot edge (start, or end when that shortens).
        2 => wire.truncate(if rng.gen() && end < len { end } else { start }),
        // Delete the slot's bytes: structural absence, aligned.
        3 => {
            wire.drain(start..end);
        }
        // Duplicate the slot's bytes in place: repeated element / double
        // header, still boundary-aligned.
        4 => {
            let dup: Vec<u8> = wire[start..end].to_vec();
            wire.splice(end..end, dup);
        }
        // Zero the slot (minimum values, empty counters).
        5 => wire[start..end].fill(0),
        // Saturate the slot (overflow lengths/counters).
        6 => wire[start..end].fill(0xFF),
        // Insert a byte exactly at the slot boundary.
        _ => wire.insert(start, rng.gen()),
    }
}

// ---------------------------------------------------------------------------
// minimization & coverage
// ---------------------------------------------------------------------------

/// Shrinks `wire` to a locally minimal input for which `diverges` still
/// holds, with a deterministic ddmin-style loop: chunk removal at
/// halving granularities down to single bytes, iterated to a fixpoint.
/// The result is 1-minimal with respect to byte removal — deleting any
/// single byte no longer diverges.
///
/// `diverges(wire)` must be true on entry; the result preserves it.
pub fn minimize(wire: &[u8], diverges: &mut dyn FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut cur = wire.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let cand: Vec<u8> = [&cur[..i], &cur[end..]].concat();
            if diverges(&cand) {
                cur = cand;
                reduced = true;
                // Do not advance: the next chunk shifted into place.
            } else {
                i = end;
            }
        }
        if cur.is_empty() || (chunk == 1 && !reduced) {
            break;
        }
        if chunk > 1 {
            chunk = (chunk / 2).max(1);
        }
    }
    cur
}

/// A dedupe key for fuzz inputs: hashes *which plan slots* the parse
/// populated (with their repetition scopes and value widths) — or, for
/// rejected inputs, the typed parse error — so inputs exercising the
/// same structural path collapse to one signature. Stable within a
/// process run, which is the dedupe scope.
pub fn coverage_signature(codec: &Codec, wire: &[u8]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let mut session = codec.parser();
    match session.parse_in_place(wire) {
        Ok(_) => {
            0u8.hash(&mut h);
            let msg = session.take_message();
            for (slot, scope, bytes) in msg.populated_wires() {
                slot.hash(&mut h);
                scope.hash(&mut h);
                bytes.len().hash(&mut h);
            }
        }
        Err(e) => {
            1u8.hash(&mut h);
            std::mem::discriminant(&e).hash(&mut h);
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// the fuzzing loop
// ---------------------------------------------------------------------------

/// Configuration of one [`fuzz_codec`] run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of seed messages to sample (each spawns a mutation chain).
    pub cases: u32,
    /// RNG seed: same seed + same codec → same run, bit for bit.
    pub seed: u64,
    /// Mutations chained per case (each link is checked).
    pub mutations_per_case: u32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { cases: 256, seed: 0x0BF5_CA7E, mutations_per_case: 6 }
    }
}

/// A minimized, deduplicated divergence found by [`fuzz_codec`].
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The minimized diverging wire.
    pub wire: Vec<u8>,
    /// The original (pre-minimization) diverging wire.
    pub original: Vec<u8>,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// Plan-slot coverage signature of the minimized wire (dedupe key).
    pub signature: u64,
}

/// Aggregate result of a [`fuzz_codec`] run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Inputs executed through the differential stack.
    pub executions: u64,
    /// Inputs both parsers accepted.
    pub accepted: u64,
    /// Inputs both parsers rejected.
    pub rejected: u64,
    /// Distinct plan-slot coverage signatures observed.
    pub signatures: usize,
    /// Minimized divergences, deduplicated by coverage signature.
    pub divergences: Vec<Reproducer>,
}

/// Fuzzes one codec: samples `cfg.cases` random messages, serializes
/// each with span tracing, then walks a chain of plan-aware mutations —
/// checking the pristine wire and every mutant through the full
/// differential stack. Divergences are minimized ([`minimize`]) and
/// deduplicated by coverage signature before being reported.
pub fn fuzz_codec(codec: &Codec, cfg: &FuzzConfig) -> FuzzReport {
    let clear = Codec::identity(codec.plain());
    let other = Obfuscator::new(codec.plain())
        .seed(cfg.seed ^ 0x0007_EA11)
        .max_per_node(2)
        .obfuscate()
        .expect("builtin specs obfuscate at level 2");
    let oracle = DiffOracle::new(codec, &clear, &other, cfg.seed);
    fuzz_with_oracle(codec, &oracle, cfg)
}

/// The [`fuzz_codec`] loop over a caller-built oracle (the test seam the
/// fault-injection tests use).
fn fuzz_with_oracle(codec: &Codec, oracle: &DiffOracle<'_>, cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    let mut seen = std::collections::HashSet::new();
    let mut found = std::collections::HashSet::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut session = codec.serializer();
    let mut wire = Vec::new();
    let mut spans = Vec::new();

    let mut run_one = |report: &mut FuzzReport, wire: &[u8]| {
        report.executions += 1;
        let sig = coverage_signature(codec, wire);
        seen.insert(sig);
        if coverage_ok(codec, wire) {
            report.accepted += 1;
        } else {
            report.rejected += 1;
        }
        if let Some(detail) = oracle.check(wire) {
            let min = minimize(wire, &mut |w| oracle.check(w).is_some());
            let min_sig = coverage_signature(codec, &min);
            if found.insert(min_sig) {
                report.divergences.push(Reproducer {
                    wire: min,
                    original: wire.to_vec(),
                    detail,
                    signature: min_sig,
                });
            }
        }
    };

    // Covert-tunnel corpus: when the spec has carrier slots, every fourth
    // seed case is a cover message whose carriers hold a live tunnel
    // frame (header + payload chunk), so the plan-aware boundary
    // mutations exercise the spans a [`crate::tunnel::ChannelMap`]
    // writes through — not just sampler-shaped values.
    let mut tunnel_enc = crate::tunnel::TunnelEncoder::new(codec, cfg.seed ^ 0x7u64).ok();

    for case in 0..cfg.cases {
        let mut msg = None;
        if case % 4 == 3 {
            if let Some(enc) = &mut tunnel_enc {
                let chunk: Vec<u8> = (0..rng.gen_range(1usize..48)).map(|_| rng.gen()).collect();
                enc.push(&chunk);
                msg = enc.next_cover().ok().flatten().map(|f| f.message);
            }
        }
        let msg = msg.unwrap_or_else(|| random_message(codec, &mut rng));
        session.reseed(rng.gen());
        if session.serialize_traced(&msg, &mut wire, &mut spans).is_err() {
            // Sampled messages serialize for all builtin specs; a failure
            // here would itself be a sampler bug — skip defensively.
            continue;
        }
        run_one(&mut report, &wire);
        for _ in 0..cfg.mutations_per_case {
            mutate_plan_aware(&mut wire, &spans, &mut rng);
            run_one(&mut report, &wire);
        }
    }
    report.signatures = seen.len();
    report
}

/// Whether the plan session accepts `wire` (bookkeeping only — the
/// differential verdict comes from [`DiffOracle::check`]).
fn coverage_ok(codec: &Codec, wire: &[u8]) -> bool {
    codec.parser().parse_in_place(wire).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Boundary, GraphBuilder};
    use crate::FormatGraph;

    fn toy_graph() -> FormatGraph {
        let mut b = GraphBuilder::new("toy");
        let root = b.root_sequence("msg", Boundary::End);
        b.uint_be(root, "id", 2);
        b.uint_be(root, "code", 1);
        b.build().unwrap()
    }

    fn toy_codec(level: u32, seed: u64) -> Codec {
        let g = toy_graph();
        if level == 0 {
            Codec::identity(&g)
        } else {
            Obfuscator::new(&g).seed(seed).max_per_node(level).obfuscate().unwrap()
        }
    }

    #[test]
    fn traced_spans_cover_the_wire_and_nest() {
        let codec = toy_codec(2, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let msg = random_message(&codec, &mut rng);
        let mut session = codec.serializer();
        let (mut wire, mut spans) = (Vec::new(), Vec::new());
        session.reseed(3);
        session.serialize_traced(&msg, &mut wire, &mut spans).unwrap();
        assert!(!spans.is_empty());
        // The root span covers the whole wire; every span is in bounds
        // and well-formed.
        assert_eq!(spans[0].start, 0);
        assert_eq!(spans[0].end as usize, wire.len());
        for s in &spans {
            assert!(s.start <= s.end, "inverted span {s:?}");
            assert!(s.end as usize <= wire.len(), "span out of bounds {s:?}");
        }
        // Tracing must not change the bytes: a plain serialization with
        // the same seed produces the identical wire.
        let mut plain = Vec::new();
        session.serialize_into_seeded(&msg, &mut plain, 3).unwrap();
        assert_eq!(plain, wire);
    }

    #[test]
    fn minimize_shrinks_to_locally_minimal_input() {
        // A toy oracle: diverges iff the wire contains the byte 0xAB.
        let mut oracle = |w: &[u8]| w.contains(&0xAB);
        let wire: Vec<u8> = (0..64u8).chain([0xAB]).chain(64..128u8).collect();
        let min = minimize(&wire, &mut oracle);
        assert_eq!(min, vec![0xAB], "must shrink to the single guilty byte");
    }

    #[test]
    fn minimize_preserves_multi_byte_witness() {
        // Diverges iff 0xDE appears before 0xAD (order-sensitive pair).
        let mut oracle = |w: &[u8]| {
            let d = w.iter().position(|&b| b == 0xDE);
            let a = w.iter().position(|&b| b == 0xAD);
            matches!((d, a), (Some(d), Some(a)) if d < a)
        };
        let wire: Vec<u8> = [1, 2, 0xDE, 3, 4, 5, 0xAD, 6, 7].to_vec();
        let min = minimize(&wire, &mut oracle);
        assert_eq!(min, vec![0xDE, 0xAD]);
        // 1-minimality: removing either byte kills the divergence.
        for i in 0..min.len() {
            let cand: Vec<u8> = [&min[..i], &min[i + 1..]].concat();
            assert!(!oracle(&cand), "not 1-minimal at {i}");
        }
    }

    /// The deliberately broken toy transform: mis-normalizes the plan
    /// path whenever the wire is ≥ 2 bytes — a fault the differential
    /// stack must surface and the minimizer must preserve while
    /// shrinking.
    #[allow(clippy::ptr_arg)] // signature is pinned by the `Tamper` fn type
    fn broken_transform(wire: &[u8], plan_normalized: &mut Vec<u8>) {
        if wire.len() >= 2 {
            if let Some(b) = plan_normalized.first_mut() {
                *b ^= 0x40;
            }
        }
    }

    #[test]
    fn seeded_divergence_shrinks_to_minimal_reproducer() {
        let codec = toy_codec(0, 0); // identity: 3-byte wires, all parse
        let clear = Codec::identity(codec.plain());
        let other = Obfuscator::new(codec.plain()).seed(5).max_per_node(2).obfuscate().unwrap();
        let oracle = DiffOracle::new(&codec, &clear, &other, 11).with_tamper(broken_transform);

        let wire = vec![0x01, 0x02, 0x03];
        let detail = oracle.check(&wire).expect("tampered stack must diverge");
        assert!(detail.contains("different structures"), "unexpected divergence: {detail}");

        let min = minimize(&wire, &mut |w| oracle.check(w).is_some());
        // The toy spec needs exactly 3 bytes to parse at all, and the
        // tamper fires on ≥2 — so the minimal reproducer is the full
        // 3-byte frame, still diverging.
        assert!(oracle.check(&min).is_some(), "minimized input no longer diverges");
        assert_eq!(min.len(), 3, "minimal reproducer must stay exactly one parseable frame");
    }

    #[test]
    fn fuzz_loop_reports_seeded_divergence_once() {
        let codec = toy_codec(0, 0);
        let clear = Codec::identity(codec.plain());
        let other = Obfuscator::new(codec.plain()).seed(5).max_per_node(2).obfuscate().unwrap();
        let oracle = DiffOracle::new(&codec, &clear, &other, 11).with_tamper(broken_transform);
        let cfg = FuzzConfig { cases: 8, seed: 42, mutations_per_case: 4 };
        let report = fuzz_with_oracle(&codec, &oracle, &cfg);
        assert!(report.executions >= 8);
        // Every accepted wire diverges under the tamper, but they all
        // shrink to the same structural signature: exactly one
        // reproducer survives dedupe.
        assert_eq!(report.divergences.len(), 1, "dedupe by coverage signature failed");
        let rep = &report.divergences[0];
        assert!(oracle.check(&rep.wire).is_some(), "pinned reproducer must still diverge");
        assert!(rep.wire.len() <= rep.original.len());
    }

    #[test]
    fn clean_codecs_survive_plan_aware_fuzzing() {
        for (level, seed) in [(0u32, 0u64), (1, 1), (3, 2)] {
            let codec = toy_codec(level, seed);
            let report =
                fuzz_codec(&codec, &FuzzConfig { cases: 24, seed: 7, mutations_per_case: 5 });
            assert!(
                report.divergences.is_empty(),
                "level {level} diverged: {:?}",
                report.divergences.iter().map(|d| &d.detail).collect::<Vec<_>>()
            );
            assert!(report.accepted > 0, "no valid wire survived at level {level}");
            assert!(report.rejected > 0, "mutations never produced a hostile wire");
            assert!(report.signatures > 1, "coverage signatures collapsed");
        }
    }

    #[test]
    fn mutations_hit_slot_boundaries() {
        let codec = toy_codec(1, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let msg = random_message(&codec, &mut rng);
        let mut session = codec.serializer();
        let (mut wire, mut spans) = (Vec::new(), Vec::new());
        session.reseed(1);
        session.serialize_traced(&msg, &mut wire, &mut spans).unwrap();
        let pristine = wire.clone();
        let mut changed = 0;
        for _ in 0..32 {
            let mut w = pristine.clone();
            mutate_plan_aware(&mut w, &spans, &mut rng);
            if w != pristine {
                changed += 1;
            }
        }
        // Zero-filling an already-zero slot is the one remaining no-op;
        // everything else must visibly change the wire.
        assert!(changed >= 26, "mutator left the wire untouched too often ({changed}/32)");
    }
}

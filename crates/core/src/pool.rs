//! A lock-free bounded free list (Treiber stack) — the session-scratch
//! pool primitive behind [`crate::service::CodecService`].
//!
//! The classic Treiber stack pushes and pops heap nodes through one
//! atomic head pointer. This variant adapts it to a *pool*: the node
//! count is fixed up front (the pool's capacity bound), so nodes live in
//! a pre-allocated slab and the two stacks — **live** (parked items) and
//! **spare** (empty nodes) — exchange slab *indices* instead of
//! pointers. That shape buys three things at once:
//!
//! * **Lock-freedom.** [`FreeList::pop`] and [`FreeList::push`] are each
//!   one CAS loop on a single `AtomicU64`; no thread ever blocks another,
//!   so an event-loop worker preempted mid-checkout cannot stall its
//!   siblings the way a held `Mutex` can.
//! * **ABA safety without hazard pointers.** Each stack head packs a
//!   32-bit node index with a 32-bit tag that increments on every
//!   successful CAS. A thread that read a stale head/next pair simply
//!   fails its CAS (the tag moved) and retries — the classic
//!   pop-repush-same-node ABA cannot link a node to a dead successor.
//!   Reclamation is a non-problem: nodes are slab slots, never freed.
//! * **A hard capacity bound.** A push with no spare node means the pool
//!   is full; the item is handed back to the caller to drop. The old
//!   mutex pools enforced their cap by checking `Vec::len` under the
//!   lock; here the cap is structural.
//!
//! The item slot of each node is an [`UnsafeCell`]: exclusive access is
//! transferred by list membership (popping a node off either stack makes
//! the popping thread its unique owner until it pushes the node onto the
//! other stack), with the head CASes providing the release/acquire edges
//! that order the slot writes.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Sentinel index terminating a stack ("null" link).
const NIL: u32 = u32::MAX;

fn pack(index: u32, tag: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(index)
}

fn unpack(head: u64) -> (u32, u32) {
    (head as u32, (head >> 32) as u32)
}

#[derive(Debug)]
struct Node<T> {
    /// Slab index of the next node on whichever stack this node is on.
    /// Only the node's current owner writes it (just before linking the
    /// node back in), so relaxed loads suffice — a racing reader's stale
    /// value is discarded by its failing head CAS.
    next: AtomicU32,
    /// The parked item. `None` while the node sits on the spare stack.
    item: UnsafeCell<Option<T>>,
}

/// A bounded lock-free pool of `T`s; see the [module docs](self).
#[derive(Debug)]
pub struct FreeList<T> {
    slab: Box<[Node<T>]>,
    /// Packed `(index, tag)` head of the stack of parked items.
    live: AtomicU64,
    /// Packed `(index, tag)` head of the stack of empty nodes.
    spare: AtomicU64,
    /// Approximate number of parked items (stats only — updated after
    /// the fact, so a concurrent reader can be off by in-flight ops).
    len: AtomicUsize,
    /// High-water mark of `len` — the occupancy gauge telemetry scrapes
    /// to size pools: a peak pinned at capacity means sessions are
    /// being dropped instead of parked. Approximate like `len`.
    high_water: AtomicUsize,
}

// SAFETY: the UnsafeCell item slots are accessed only by the unique
// owner of a popped node (see module docs); the list itself is all
// atomics. Sharing the pool therefore only ever hands `T`s across
// threads, which `T: Send` permits.
unsafe impl<T: Send> Send for FreeList<T> {}
// SAFETY: same argument as the `Send` impl above — concurrent `&self`
// access goes through atomics, and the item slots are only touched
// under exclusive node ownership.
unsafe impl<T: Send> Sync for FreeList<T> {}

impl<T> FreeList<T> {
    /// An empty pool that can park at most `capacity` items. Capacity
    /// zero is legal and makes every [`FreeList::push`] bounce — pooling
    /// disabled.
    pub fn new(capacity: usize) -> FreeList<T> {
        let capacity = capacity.min(NIL as usize); // index space bound
        let slab: Box<[Node<T>]> = (0..capacity)
            .map(|i| Node {
                // Thread the whole slab onto the spare stack: node i
                // links to i+1, the last to NIL.
                next: AtomicU32::new(if i + 1 < capacity { (i + 1) as u32 } else { NIL }),
                item: UnsafeCell::new(None),
            })
            .collect();
        FreeList {
            slab,
            live: AtomicU64::new(pack(NIL, 0)),
            spare: AtomicU64::new(pack(if capacity > 0 { 0 } else { NIL }, 0)),
            len: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    /// How many items can be parked at once.
    pub fn capacity(&self) -> usize {
        self.slab.len()
    }

    /// Approximate number of currently parked items.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no items are parked (approximate, like [`FreeList::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peak number of items ever parked at once (approximate, like
    /// [`FreeList::len`]) — the occupancy gauge for pool sizing.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Pops a node off the stack at `head`, returning its slab index with
    /// exclusive ownership of the node. Lock-free: a failed CAS means
    /// another thread made progress.
    fn pop_node(&self, head: &AtomicU64) -> Option<usize> {
        let mut cur = head.load(Ordering::Acquire);
        loop {
            let (index, tag) = unpack(cur);
            if index == NIL {
                return None;
            }
            let next = self.slab[index as usize].next.load(Ordering::Relaxed);
            // Tag bump: even if `next` was read stale (the node was
            // popped and re-pushed meanwhile), the tag mismatch fails
            // this CAS instead of installing a dead link.
            let replacement = pack(next, tag.wrapping_add(1));
            match head.compare_exchange_weak(cur, replacement, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(index as usize),
                Err(observed) => cur = observed,
            }
        }
    }

    /// Pushes the exclusively-owned node `index` onto the stack at
    /// `head`, publishing the owner's writes to its item slot.
    fn push_node(&self, head: &AtomicU64, index: usize) {
        let mut cur = head.load(Ordering::Relaxed);
        loop {
            let (top, tag) = unpack(cur);
            self.slab[index].next.store(top, Ordering::Relaxed);
            let replacement = pack(index as u32, tag.wrapping_add(1));
            match head.compare_exchange_weak(cur, replacement, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Takes a parked item, or `None` when the pool is empty. Never
    /// blocks.
    pub fn pop(&self) -> Option<T> {
        let index = self.pop_node(&self.live)?;
        // SAFETY: popping off `live` made this thread the node's unique
        // owner; the Acquire on the head CAS ordered the pusher's slot
        // write before this read.
        let item = unsafe { (*self.slab[index].item.get()).take() };
        self.push_node(&self.spare, index);
        self.len.fetch_sub(1, Ordering::Relaxed);
        Some(item.expect("live node holds an item"))
    }

    /// Parks `item`, or hands it back as `Err` when the pool is at
    /// capacity (the caller drops it — bounded memory). Never blocks.
    ///
    /// # Errors
    ///
    /// `Err(item)` when all `capacity` slots already hold parked items.
    pub fn push(&self, item: T) -> Result<(), T> {
        let Some(index) = self.pop_node(&self.spare) else {
            return Err(item);
        };
        // SAFETY: unique ownership as in `pop`; the Release on the live
        // head CAS below publishes this write to the next popper.
        unsafe {
            *self.slab[index].item.get() = Some(item);
        }
        self.push_node(&self.live, index);
        let now = self.len.fetch_add(1, Ordering::Relaxed) + 1;
        // Relaxed max: a racing lower value only under-reports a gauge.
        let mut peak = self.high_water.load(Ordering::Relaxed);
        while now > peak {
            match self.high_water.compare_exchange_weak(
                peak,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => peak = observed,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip_and_capacity_bound() {
        let pool = FreeList::new(2);
        assert_eq!(pool.capacity(), 2);
        assert!(pool.pop().is_none());
        assert!(pool.push(1u32).is_ok());
        assert!(pool.push(2).is_ok());
        assert_eq!(pool.push(3), Err(3), "full pool bounces the item back");
        assert_eq!(pool.len(), 2);
        // LIFO: the warmest item comes back first.
        assert_eq!(pool.pop(), Some(2));
        assert_eq!(pool.pop(), Some(1));
        assert!(pool.pop().is_none());
        assert!(pool.is_empty());
    }

    #[test]
    fn zero_capacity_disables_pooling() {
        let pool = FreeList::new(0);
        assert_eq!(pool.push(7u8), Err(7));
        assert!(pool.pop().is_none());
    }

    /// 8 threads hammer one pool with push/pop churn; every pushed value
    /// must come back exactly once (no loss, no duplication — the
    /// failures an ABA bug or a mis-ordered slot write would produce).
    #[test]
    fn concurrent_churn_conserves_items() {
        const THREADS: u64 = 8;
        const ROUNDS: u64 = 2_000;
        let pool = Arc::new(FreeList::new(4));
        let recovered: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        for round in 0..ROUNDS {
                            let value = t * ROUNDS + round;
                            if pool.push(value).is_err() {
                                got.push(value); // bounced: still accounted
                            }
                            if let Some(v) = pool.pop() {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = recovered;
        while let Some(v) = pool.pop() {
            all.push(v);
        }
        all.sort_unstable();
        let expected: Vec<u64> = (0..THREADS * ROUNDS).collect();
        assert_eq!(all.len(), expected.len(), "items lost or duplicated");
        assert_eq!(all, expected, "recovered set differs from pushed set");
    }
}

//! Field paths: the stable addressing scheme of the accessor interface.
//!
//! A path names a terminal (or subtree) of the **plain** specification, e.g.
//! `pdu.write_multiple.values[3].value`. Indices select elements of
//! repetition/tabular nodes. Paths are what the generated setters/getters
//! are keyed on, and they never change when the obfuscation plan changes —
//! the paper's "stable interface" requirement (§VI).

use std::fmt;
use std::str::FromStr;

use crate::error::BuildError;
use crate::graph::{FormatGraph, NodeId, NodeType};

/// One path segment: a child name plus an optional element index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Node name.
    pub name: String,
    /// Element index when the named node is a repetition/tabular.
    pub index: Option<usize>,
}

impl Segment {
    /// Plain segment without an index.
    pub fn named(name: impl Into<String>) -> Self {
        Segment { name: name.into(), index: None }
    }

    /// Indexed segment (`name[i]`).
    pub fn indexed(name: impl Into<String>, index: usize) -> Self {
        Segment { name: name.into(), index: Some(index) }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{}]", self.name, i),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A dotted field path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path {
    segments: Vec<Segment>,
}

impl Path {
    /// The empty path (addresses the root).
    pub fn root() -> Self {
        Path { segments: Vec::new() }
    }

    /// Builds a path from segments.
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        Path { segments }
    }

    /// Path segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// True for the root path.
    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    /// Returns a new path with `segment` appended.
    pub fn child(&self, segment: Segment) -> Path {
        let mut segments = self.segments.clone();
        segments.push(segment);
        Path { segments }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Error produced when parsing a path string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    text: String,
    reason: &'static str,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path {:?}: {}", self.text, self.reason)
    }
}

impl std::error::Error for ParsePathError {}

impl FromStr for Path {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParsePathError { text: s.to_string(), reason };
        if s.is_empty() {
            return Ok(Path::root());
        }
        let mut segments = Vec::new();
        for part in s.split('.') {
            if part.is_empty() {
                return Err(err("empty segment"));
            }
            if let Some(open) = part.find('[') {
                if !part.ends_with(']') {
                    return Err(err("unterminated index"));
                }
                let name = &part[..open];
                let idx = &part[open + 1..part.len() - 1];
                if name.is_empty() {
                    return Err(err("empty segment name"));
                }
                let index: usize = idx.parse().map_err(|_| err("index is not a number"))?;
                segments.push(Segment::indexed(name, index));
            } else {
                segments.push(Segment::named(part));
            }
        }
        Ok(Path { segments })
    }
}

/// Result of resolving a path against a plain graph: the target node and
/// the element-index *scope* accumulated along repetition/tabular
/// ancestors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolved {
    /// The plain node the path addresses.
    pub node: NodeId,
    /// Element indices of every repetition/tabular crossed, outermost
    /// first. This is the instance scope used by the message store.
    pub scope: Vec<usize>,
}

/// Resolves `path` against `graph`, checking indices appear exactly on
/// repetition/tabular nodes.
///
/// Optional nodes are transparent wrappers: naming the optional resolves to
/// it, and the next segment matches either its child directly or the
/// child's own children (so `pdu.read_coils.start` works whether or not the
/// intermediate body sequence is named in the path).
///
/// # Errors
///
/// Returns [`BuildError::UnknownPath`] when a segment does not match.
pub fn resolve(graph: &FormatGraph, path: &Path) -> Result<Resolved, BuildError> {
    let mut cur = graph.root();
    let mut scope = Vec::new();
    let mut segments = path.segments().iter().peekable();
    // Allow the first segment to name the root itself.
    if let Some(first) = segments.peek() {
        if first.name == graph.node(cur).name() && first.index.is_none() {
            segments.next();
        }
    }
    for seg in segments {
        cur = descend(graph, cur, seg, &mut scope)
            .ok_or_else(|| BuildError::UnknownPath(path.to_string()))?;
    }
    Ok(Resolved { node: cur, scope })
}

fn descend(
    graph: &FormatGraph,
    at: NodeId,
    seg: &Segment,
    scope: &mut Vec<usize>,
) -> Option<NodeId> {
    let node = graph.node(at);
    match node.node_type() {
        NodeType::Sequence => {
            let child =
                node.children().iter().copied().find(|&c| graph.node(c).name() == seg.name)?;
            enter(graph, child, seg, scope)
        }
        NodeType::Optional(_) | NodeType::Repetition(_) | NodeType::Tabular => {
            // Wrapper already entered; look in its single child.
            let child = *node.children().first()?;
            if graph.node(child).name() == seg.name {
                enter(graph, child, seg, scope)
            } else {
                descend(graph, child, seg, scope)
            }
        }
        NodeType::Terminal(_) => None,
    }
}

/// Handles index bookkeeping when stepping onto `node`.
fn enter(
    graph: &FormatGraph,
    node: NodeId,
    seg: &Segment,
    scope: &mut Vec<usize>,
) -> Option<NodeId> {
    let is_elem_container =
        matches!(graph.node(node).node_type(), NodeType::Repetition(_) | NodeType::Tabular);
    match (is_elem_container, seg.index) {
        (true, Some(i)) => {
            scope.push(i);
            Some(node)
        }
        (true, None) => Some(node), // addressing the container itself
        (false, None) => Some(node),
        (false, Some(_)) => None, // index on a non-repeated node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, GraphBuilder};
    use crate::value::TerminalKind;

    fn graph_with_tabular() -> FormatGraph {
        let mut b = GraphBuilder::new("t");
        let root = b.root_sequence("m", Boundary::End);
        let count = b.uint_be(root, "count", 1);
        let tab = b.tabular(root, "items", count);
        b.set_auto(count, AutoValue::CounterOf(tab));
        let item = b.sequence(tab, "item", Boundary::Delegated);
        b.uint_be(item, "addr", 2);
        b.terminal(item, "data", TerminalKind::Bytes, Boundary::Fixed(2));
        b.build().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for text in ["a", "a.b", "items[3].addr", "a.b[0].c[12].d"] {
            let p: Path = text.parse().unwrap();
            assert_eq!(p.to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_bad_paths() {
        assert!("a..b".parse::<Path>().is_err());
        assert!("a[".parse::<Path>().is_err());
        assert!("a[x]".parse::<Path>().is_err());
        assert!("[3]".parse::<Path>().is_err());
        assert!("a.".parse::<Path>().is_err());
    }

    #[test]
    fn empty_string_is_root() {
        let p: Path = "".parse().unwrap();
        assert!(p.is_root());
    }

    #[test]
    fn resolve_indexed_element_field() {
        let g = graph_with_tabular();
        let r = resolve(&g, &"items[2].addr".parse().unwrap()).unwrap();
        assert_eq!(g.node(r.node).name(), "addr");
        assert_eq!(r.scope, vec![2]);
    }

    #[test]
    fn resolve_skips_transparent_element_name() {
        let g = graph_with_tabular();
        // The element sequence "item" may be named or skipped.
        let a = resolve(&g, &"items[0].item.addr".parse().unwrap()).unwrap();
        let b = resolve(&g, &"items[0].addr".parse().unwrap()).unwrap();
        assert_eq!(a.node, b.node);
        assert_eq!(a.scope, b.scope);
    }

    #[test]
    fn resolve_root_prefix_optional() {
        let g = graph_with_tabular();
        let a = resolve(&g, &"m.count".parse().unwrap()).unwrap();
        let b = resolve(&g, &"count".parse().unwrap()).unwrap();
        assert_eq!(a.node, b.node);
    }

    #[test]
    fn resolve_rejects_index_on_scalar() {
        let g = graph_with_tabular();
        assert!(resolve(&g, &"count[0]".parse().unwrap()).is_err());
    }

    #[test]
    fn resolve_rejects_unknown_name() {
        let g = graph_with_tabular();
        assert!(resolve(&g, &"bogus".parse().unwrap()).is_err());
    }

    #[test]
    fn child_appends() {
        let p = Path::root().child(Segment::named("a")).child(Segment::indexed("b", 1));
        assert_eq!(p.to_string(), "a.b[1]");
    }
}

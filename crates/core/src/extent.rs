//! Wire-extent calculus.
//!
//! Several transformations are only invertible when the parser can delimit
//! the transformed bytes. This module classifies every obfuscation-graph
//! node by *how* its wire extent can be determined:
//!
//! * [`ExtentClass::Static`] — a constant number of bytes;
//! * [`ExtentClass::PlainDep`] — computable **before** parsing the node,
//!   from plain values already recovered (length references, counters,
//!   optional conditions);
//! * [`ExtentClass::SelfDelim`] — discovered *while* parsing forward
//!   (delimiters, length prefixes);
//! * [`ExtentClass::WindowNeeded`] — requires an externally bounded window
//!   (`End` boundaries, exhausted repetitions).
//!
//! `ReadFromEnd` (Mirror) must know its child's extent before it can
//! un-reverse the bytes, so it requires `Static` or `PlainDep` — and all
//! plain references used in that computation must live *outside* the
//! mirrored subtree. These are exactly the checks
//! [`mirror_applicable`] performs.

use crate::graph::NodeId;
use crate::obf::{ObfGraph, ObfId, ObfKind, RepStop, SeqBoundary, TermBoundary};

/// How a node's wire extent can be determined. Ordered from most to least
/// predictable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtentClass {
    /// Always exactly this many bytes.
    Static(usize),
    /// Computable before parsing, from recovered plain values.
    PlainDep,
    /// Discovered by parsing forward.
    SelfDelim,
    /// Requires an externally bounded window.
    WindowNeeded,
}

impl ExtentClass {
    /// Severity rank used when combining children.
    fn rank(self) -> u8 {
        match self {
            ExtentClass::Static(_) => 0,
            ExtentClass::PlainDep => 1,
            ExtentClass::SelfDelim => 2,
            ExtentClass::WindowNeeded => 3,
        }
    }

    /// True if the extent is computable before parsing the node.
    pub fn precomputable(self) -> bool {
        self.rank() <= 1
    }
}

/// Combines sibling extents (sequence-like concatenation).
fn combine(classes: impl IntoIterator<Item = ExtentClass>) -> ExtentClass {
    let mut sum: usize = 0;
    let mut worst = 0u8;
    let mut all_static = true;
    for c in classes {
        match c {
            ExtentClass::Static(n) => sum += n,
            other => {
                all_static = false;
                worst = worst.max(other.rank());
            }
        }
    }
    if all_static {
        ExtentClass::Static(sum)
    } else {
        match worst {
            1 => ExtentClass::PlainDep,
            2 => ExtentClass::SelfDelim,
            _ => ExtentClass::WindowNeeded,
        }
    }
}

/// Classifies the wire extent of `id`.
pub fn classify(g: &ObfGraph, id: ObfId) -> ExtentClass {
    let node = g.node(id);
    match &node.kind {
        ObfKind::Terminal { boundary, .. } => match boundary {
            TermBoundary::Fixed(n) => ExtentClass::Static(*n),
            TermBoundary::Delimited(_) => ExtentClass::SelfDelim,
            TermBoundary::PlainLen { .. } => ExtentClass::PlainDep,
            TermBoundary::End => ExtentClass::WindowNeeded,
        },
        ObfKind::SplitSeq { .. } => combine(node.children.iter().map(|&c| classify(g, c))),
        ObfKind::Sequence { boundary } => match boundary {
            SeqBoundary::Fixed(n) => ExtentClass::Static(*n),
            SeqBoundary::PlainLen(_) => ExtentClass::PlainDep,
            SeqBoundary::End => ExtentClass::WindowNeeded,
            SeqBoundary::Delegated => combine(node.children.iter().map(|&c| classify(g, c))),
        },
        ObfKind::Optional { .. } => {
            // Presence is runtime information: never better than PlainDep.
            match classify(g, node.children[0]) {
                ExtentClass::Static(_) | ExtentClass::PlainDep => ExtentClass::PlainDep,
                other => other,
            }
        }
        ObfKind::Repetition { stop } => match stop {
            RepStop::Terminator(_) => match classify(g, node.children[0]) {
                ExtentClass::WindowNeeded => ExtentClass::WindowNeeded,
                _ => ExtentClass::SelfDelim,
            },
            RepStop::Exhausted => ExtentClass::WindowNeeded,
            RepStop::CountOf(_) => match classify(g, node.children[0]) {
                // The linked count is known once the first half parsed, so a
                // statically sized element makes the whole extent
                // precomputable at that point.
                ExtentClass::Static(_) => ExtentClass::PlainDep,
                ExtentClass::WindowNeeded => ExtentClass::WindowNeeded,
                _ => ExtentClass::SelfDelim,
            },
        },
        ObfKind::Tabular { .. } => match classify(g, node.children[0]) {
            ExtentClass::Static(_) => ExtentClass::PlainDep,
            ExtentClass::WindowNeeded => ExtentClass::WindowNeeded,
            _ => ExtentClass::SelfDelim,
        },
        ObfKind::Mirror => classify(g, node.children[0]),
        ObfKind::Prefixed { .. } => ExtentClass::SelfDelim,
    }
}

/// The plain terminals whose recovered values the extent computation of
/// `id`'s subtree will read at parse time.
pub fn extent_refs(g: &ObfGraph, id: ObfId) -> Vec<NodeId> {
    let mut out = Vec::new();
    for n in g.subtree(id) {
        match &g.node(n).kind {
            ObfKind::Terminal { boundary: TermBoundary::PlainLen { source, .. }, .. } => {
                if let Some(r) = g.plain().node(*source).boundary().reference() {
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
            ObfKind::Sequence { boundary: SeqBoundary::PlainLen(p) } => {
                if let Some(r) = g.plain().node(*p).boundary().reference() {
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
            ObfKind::Optional { condition } if !out.contains(&condition.subject) => {
                out.push(condition.subject);
            }
            ObfKind::Tabular { counter } if !out.contains(counter) => {
                out.push(*counter);
            }
            _ => {}
        }
    }
    out
}

/// Checks whether a `ReadFromEnd` (Mirror) wrapper can be applied around
/// `id`: the extent must be precomputable, and every plain reference that
/// computation needs must be held *outside* the mirrored subtree (otherwise
/// the value would only become available after un-mirroring — a cycle).
pub fn mirror_applicable(g: &ObfGraph, id: ObfId) -> Result<(), String> {
    let class = classify(g, id);
    if !class.precomputable() {
        return Err(format!("subtree extent is {class:?}; ReadFromEnd needs Static or PlainDep"));
    }
    for r in extent_refs(g, id) {
        let holder = match g.holder_of(r) {
            Some(h) => h,
            None => {
                return Err(format!(
                    "reference {} has no recoverable holder",
                    g.plain().node(r).name()
                ))
            }
        };
        if g.is_descendant(holder, id) {
            return Err(format!(
                "reference {} is held inside the mirrored subtree",
                g.plain().node(r).name()
            ));
        }
    }
    // Count-linked repetitions inside the subtree must resolve their count
    // from a repetition *outside* it (chasing CountOf chains), otherwise
    // the extent depends on parsing the mirrored bytes themselves.
    for n in g.subtree(id) {
        if let ObfKind::Repetition { stop: RepStop::CountOf(first) } = g.node(n).kind() {
            let mut cur = *first;
            loop {
                if !g.is_descendant(cur, id) {
                    break; // escapes the subtree: count known before the mirror
                }
                match g.node(cur).kind() {
                    ObfKind::Repetition { stop: RepStop::CountOf(next) } => cur = *next,
                    _ => {
                        return Err(format!(
                            "count link of {} resolves inside the mirrored subtree",
                            g.node(n).name()
                        ))
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks that every rest-of-window node sits in tail position under a
/// window-providing ancestor — i.e. that `End` boundaries and exhausted
/// repetitions will actually receive a bounded window at parse time.
pub fn check_windows(g: &ObfGraph) -> Result<(), String> {
    for id in g.preorder() {
        if classify(g, id) != ExtentClass::WindowNeeded {
            continue;
        }
        // Walk up: `id` must be the last child at every level until a
        // window provider (root, Prefixed, Mirror, Fixed/PlainLen
        // sequence) is reached.
        let mut cur = id;
        loop {
            let parent = match g.node(cur).parent() {
                None => break, // reached the root: whole-message window
                Some(p) => p,
            };
            let pnode = g.node(parent);
            let provides_window = matches!(
                pnode.kind,
                ObfKind::Prefixed { .. }
                    | ObfKind::Mirror
                    | ObfKind::Sequence {
                        boundary: SeqBoundary::Fixed(_) | SeqBoundary::PlainLen(_)
                    }
            );
            let is_last = pnode.children.last() == Some(&cur);
            if !is_last {
                return Err(format!(
                    "rest-of-window node {} is not in tail position under {}",
                    g.node(id).name(),
                    pnode.name()
                ));
            }
            if provides_window {
                break;
            }
            // Repetition/tabular elements never receive exact windows.
            if matches!(pnode.kind, ObfKind::Repetition { .. } | ObfKind::Tabular { .. }) {
                return Err(format!(
                    "rest-of-window node {} sits inside repeated element {}",
                    g.node(id).name(),
                    pnode.name()
                ));
            }
            cur = parent;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AutoValue, Boundary, Condition, GraphBuilder, Predicate, StopRule};
    use crate::value::{TerminalKind, Value};

    fn build(f: impl FnOnce(&mut GraphBuilder)) -> ObfGraph {
        let mut b = GraphBuilder::new("t");
        f(&mut b);
        ObfGraph::from_plain(&b.build().unwrap())
    }

    fn find(g: &ObfGraph, name: &str) -> ObfId {
        g.preorder().into_iter().find(|&id| g.node(id).name() == name).unwrap()
    }

    #[test]
    fn fixed_terminals_are_static() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            b.uint_be(root, "a", 2);
            b.uint_be(root, "b", 4);
        });
        assert_eq!(classify(&g, find(&g, "a")), ExtentClass::Static(2));
        assert_eq!(classify(&g, find(&g, "b")), ExtentClass::Static(4));
    }

    #[test]
    fn delegated_sequence_sums_static_children() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            let s = b.sequence(root, "s", Boundary::Delegated);
            b.uint_be(s, "a", 2);
            b.uint_be(s, "b", 4);
        });
        assert_eq!(classify(&g, find(&g, "s")), ExtentClass::Static(6));
    }

    #[test]
    fn length_bounded_field_is_plain_dep() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            let len = b.uint_be(root, "len", 2);
            let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
            b.set_auto(len, AutoValue::LengthOf(data));
        });
        assert_eq!(classify(&g, find(&g, "data")), ExtentClass::PlainDep);
    }

    #[test]
    fn delimited_field_is_self_delim() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            b.terminal(root, "uri", TerminalKind::Ascii, Boundary::Delimited(b" ".to_vec()));
            b.uint_be(root, "x", 1);
        });
        assert_eq!(classify(&g, find(&g, "uri")), ExtentClass::SelfDelim);
    }

    #[test]
    fn end_terminal_needs_window() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            b.uint_be(root, "x", 1);
            b.terminal(root, "body", TerminalKind::Bytes, Boundary::End);
        });
        assert_eq!(classify(&g, find(&g, "body")), ExtentClass::WindowNeeded);
        assert!(check_windows(&g).is_ok()); // tail position under root
    }

    #[test]
    fn end_terminal_not_last_fails_window_check() {
        // Built directly at the obf level: the plain validator would also
        // reject this, so force the shape via from_plain on a valid graph
        // and then reorder children.
        let mut g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            b.uint_be(root, "x", 1);
            b.terminal(root, "body", TerminalKind::Bytes, Boundary::End);
        });
        let root = g.root();
        g.node_mut(root).children.reverse();
        assert!(check_windows(&g).is_err());
    }

    #[test]
    fn tabular_of_static_elements_is_plain_dep() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            let c = b.uint_be(root, "count", 1);
            let t = b.tabular(root, "items", c);
            b.set_auto(c, AutoValue::CounterOf(t));
            b.uint_be(t, "item", 2);
        });
        assert_eq!(classify(&g, find(&g, "items")), ExtentClass::PlainDep);
    }

    #[test]
    fn repetition_with_terminator_is_self_delim() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            let r = b.repetition(
                root,
                "headers",
                StopRule::Terminator(b"\r\n".to_vec()),
                Boundary::Delegated,
            );
            let h = b.sequence(r, "header", Boundary::Delegated);
            b.terminal(h, "name", TerminalKind::Ascii, Boundary::Delimited(b":".to_vec()));
            b.terminal(h, "value", TerminalKind::Ascii, Boundary::Delimited(b"\r\n".to_vec()));
        });
        assert_eq!(classify(&g, find(&g, "headers")), ExtentClass::SelfDelim);
    }

    #[test]
    fn optional_is_at_best_plain_dep() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            let f = b.uint_be(root, "flag", 1);
            let o = b.optional(
                root,
                "extra",
                Condition { subject: f, predicate: Predicate::Equals(Value::from_bytes(vec![1])) },
            );
            b.uint_be(o, "v", 4);
        });
        assert_eq!(classify(&g, find(&g, "extra")), ExtentClass::PlainDep);
    }

    #[test]
    fn mirror_applicable_on_static_subtree() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            let s = b.sequence(root, "s", Boundary::Delegated);
            b.uint_be(s, "a", 2);
            b.uint_be(s, "b", 2);
        });
        assert!(mirror_applicable(&g, find(&g, "s")).is_ok());
    }

    #[test]
    fn mirror_rejected_on_delimited_subtree() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            b.terminal(root, "uri", TerminalKind::Ascii, Boundary::Delimited(b" ".to_vec()));
            b.uint_be(root, "x", 1);
        });
        assert!(mirror_applicable(&g, find(&g, "uri")).is_err());
    }

    #[test]
    fn mirror_rejected_when_length_ref_is_inside() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            let s = b.sequence(root, "s", Boundary::Delegated);
            let len = b.uint_be(s, "len", 2);
            let data = b.terminal(s, "data", TerminalKind::Bytes, Boundary::Length(len));
            b.set_auto(len, AutoValue::LengthOf(data));
        });
        // Mirroring `s` would need `len`'s value, which is inside `s`.
        assert!(mirror_applicable(&g, find(&g, "s")).is_err());
        // Mirroring just the data field is fine: the ref is outside.
        assert!(mirror_applicable(&g, find(&g, "data")).is_ok());
    }

    #[test]
    fn extent_refs_reports_length_sources() {
        let g = build(|b| {
            let root = b.root_sequence("m", Boundary::End);
            let len = b.uint_be(root, "len", 2);
            let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
            b.set_auto(len, AutoValue::LengthOf(data));
        });
        let refs = extent_refs(&g, g.root());
        let len_plain = g.plain().resolve_names(&["len"]).unwrap();
        assert_eq!(refs, vec![len_plain]);
    }

    #[test]
    fn combine_orders_by_severity() {
        assert_eq!(
            combine([ExtentClass::Static(2), ExtentClass::Static(3)]),
            ExtentClass::Static(5)
        );
        assert_eq!(combine([ExtentClass::Static(2), ExtentClass::PlainDep]), ExtentClass::PlainDep);
        assert_eq!(
            combine([ExtentClass::PlainDep, ExtentClass::SelfDelim]),
            ExtentClass::SelfDelim
        );
        assert_eq!(
            combine([ExtentClass::SelfDelim, ExtentClass::WindowNeeded]),
            ExtentClass::WindowNeeded
        );
    }
}

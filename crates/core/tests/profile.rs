//! Property and integration tests of the [`protoobf_core::profile`]
//! layer: the text format round-trips **exactly** for arbitrary
//! profiles, and the fingerprint behaves like a derivation digest —
//! equal profiles agree, any divergence (key above all) is detected.

use proptest::prelude::*;
use protoobf_core::profile::{Profile, SpecSource};
use protoobf_core::{FormatGraph, TransformKind};

/// DSL-backed resolver: both test sources are realistic little protocols
/// parsed through the spec crate (the same path the facade's standard
/// resolver takes for files).
fn resolver(src: &SpecSource) -> Result<FormatGraph, String> {
    let text = match src {
        SpecSource::Builtin(n) if n == "ping" => {
            r#"
            message Ping {
                u16 id;
                u16 length = len(payload);
                bytes payload sized_by length;
            }
            "#
        }
        SpecSource::Builtin(n) if n == "pong" => {
            r#"
            message Pong {
                u16 id;
                u8 status;
                ascii note until ";";
            }
            "#
        }
        other => return Err(format!("unknown test source {other}")),
    };
    protoobf_spec::parse_spec(text).map_err(|e| e.to_string())
}

fn ping() -> SpecSource {
    "builtin:ping".parse().unwrap()
}

fn pong() -> SpecSource {
    "builtin:pong".parse().unwrap()
}

/// Builds a profile from raw generated parts.
#[allow(clippy::too_many_arguments)]
fn assemble(
    symmetric: bool,
    tx_builtin: bool,
    tx_name: String,
    rx_name: String,
    key: Vec<u8>,
    level: u32,
    transform_mask: u16,
    max_frame: usize,
    shards: Option<usize>,
    pool_capacity: Option<usize>,
) -> Profile {
    let mk = |builtin: bool, name: &str| -> SpecSource {
        if builtin {
            format!("builtin:{name}").parse().unwrap()
        } else {
            format!("specs/{name}.pobf").parse().unwrap()
        }
    };
    let tx = mk(tx_builtin, &tx_name);
    let mut p = if symmetric {
        Profile::symmetric(tx)
    } else {
        Profile::asymmetric(tx, mk(!tx_builtin, &rx_name))
    };
    p = p.key(key).level(level).max_frame(max_frame);
    let allowed: Vec<TransformKind> = TransformKind::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| transform_mask & (1 << i) != 0)
        .map(|(_, &k)| k)
        .collect();
    p = p.transforms(allowed);
    if let Some(s) = shards {
        p = p.shards(s);
    }
    if let Some(c) = pool_capacity {
        p = p.pool_capacity(c);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(to_text(p)) == p` for arbitrary profiles: random keys
    /// (including unprintable and quote/backslash bytes), spec names,
    /// levels, transform subsets and tuning.
    #[test]
    fn text_round_trips(
        symmetric in any::<bool>(),
        tx_builtin in any::<bool>(),
        tx_name in "[a-z][a-z0-9-]{0,11}",
        rx_name in "[a-z][a-z0-9-]{0,11}",
        key in proptest::collection::vec(any::<u8>(), 0..32),
        level in 0u32..6,
        transform_mask in any::<u16>(),
        max_frame in 1usize..(1 << 26),
        shards in proptest::option::of(1usize..32),
        pool_capacity in proptest::option::of(0usize..64),
    ) {
        let p = assemble(
            symmetric, tx_builtin, tx_name, rx_name, key, level,
            transform_mask & 0x1FFF, max_frame, shards, pool_capacity,
        );
        let text = p.to_text();
        let back = Profile::parse(&text);
        prop_assert!(back.is_ok(), "canonical text must re-parse: {text:?} -> {back:?}");
        prop_assert_eq!(back.unwrap(), p, "round-trip must be exact: {}", text);
    }

    /// Equal profiles derive equal fingerprints; flipping a single key
    /// byte changes the fingerprint (the mismatch check peers run before
    /// sending traffic).
    #[test]
    fn fingerprints_track_the_key(
        key in proptest::collection::vec(any::<u8>(), 1..16),
        flip_at in any::<usize>(),
        level in 1u32..4,
    ) {
        let base = Profile::symmetric(ping()).key(&key).level(level);
        let copy = Profile::parse(&base.to_text()).unwrap();
        prop_assert_eq!(
            base.fingerprint_with(&resolver).unwrap(),
            copy.fingerprint_with(&resolver).unwrap(),
        );
        let mut wrong = key.clone();
        let at = flip_at % wrong.len();
        wrong[at] ^= 0x01;
        let imposter = Profile::symmetric(ping()).key(&wrong).level(level);
        prop_assert_ne!(
            base.fingerprint_with(&resolver).unwrap(),
            imposter.fingerprint_with(&resolver).unwrap(),
            "flipping key byte {} went undetected", at
        );
    }
}

#[test]
fn asymmetric_profile_round_trips_and_builds() {
    let p = Profile::asymmetric(ping(), pong()).key("integration").level(2);
    let copy = Profile::parse(&p.to_text()).unwrap();
    assert_eq!(copy, p);
    let a = p.build_with(&resolver).unwrap();
    let b = copy.build_with(&resolver).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.tx_service().codec().plain().name(), "Ping");
    assert_eq!(a.rx_service().codec().plain().name(), "Pong");
}

#[test]
fn endpoints_from_one_profile_interoperate() {
    // The initiator's tx stack and the responder's rx stack are the same
    // derived codec: a wire serialized by one parses on the other.
    let p = Profile::asymmetric(ping(), pong()).key("interop").level(2);
    let initiator = p.build_with(&resolver).unwrap();
    let responder = Profile::parse(&p.to_text()).unwrap().build_with(&resolver).unwrap();
    assert_eq!(initiator.fingerprint(), responder.fingerprint());

    let tx = initiator.tx_service();
    let mut msg = tx.codec().message_seeded(1);
    msg.set_uint("id", 7).unwrap();
    msg.set("payload", b"profile-driven".as_slice()).unwrap();
    let mut wire = Vec::new();
    tx.serializer().serialize_into(&msg, &mut wire).unwrap();

    // Responder parses the initiator's bytes with its own derivation.
    let back = responder.tx_service().parser().parse_in_place(&wire).unwrap().get_uint("id");
    assert_eq!(back.unwrap(), 7);
}

#[test]
fn mismatched_keys_fail_to_interoperate_and_fingerprints_say_so_first() {
    let good = Profile::symmetric(ping()).key("right").level(2);
    let bad = Profile::symmetric(ping()).key("wrong").level(2);
    let a = good.build_with(&resolver).unwrap();
    let b = bad.build_with(&resolver).unwrap();
    // The cheap pre-traffic check already disagrees...
    assert_ne!(a.fingerprint(), b.fingerprint());
    // ...and it is telling the truth: the stacks really diverged (the
    // wire from one side does not survive the other side's parser as the
    // same message, if it parses at all).
    let mut msg = a.tx_service().codec().message_seeded(3);
    msg.set_uint("id", 9).unwrap();
    msg.set("payload", b"key mismatch".as_slice()).unwrap();
    let mut wire = Vec::new();
    a.tx_service().serializer().serialize_into_seeded(&msg, &mut wire, 5).unwrap();
    let survived = match b.tx_service().parser().parse_in_place(&wire) {
        Err(_) => false,
        Ok(parsed) => {
            parsed.get_uint("id").ok() == Some(9)
                && parsed.get("payload").map(|v| v.as_bytes() == b"key mismatch").unwrap_or(false)
        }
    };
    assert!(!survived, "mismatched keys must not interoperate silently");
}

#[test]
fn stretch_key_derivation_is_pinned() {
    // Deployed peers derive seeds independently; an accidental change to
    // the derivation would break every existing profile. Pin it.
    assert_eq!(protoobf_core::profile::stretch_key(b""), 0x613a_b7c5_885d_9bfc);
    assert_eq!(protoobf_core::profile::stretch_key(b"secret"), 0xd7a5_9c1d_59c7_8f70);
}

#[test]
fn plan_digest_is_stable_within_a_derivation() {
    let ep = Profile::symmetric(ping()).key("stable").level(2).build_with(&resolver).unwrap();
    let d1 = ep.tx_service().codec().plan().digest();
    let ep2 = Profile::symmetric(ping()).key("stable").level(2).build_with(&resolver).unwrap();
    assert_eq!(d1, ep2.tx_service().codec().plan().digest());
    let other = Profile::symmetric(ping()).key("other").level(2).build_with(&resolver).unwrap();
    assert_ne!(d1, other.tx_service().codec().plan().digest());
}

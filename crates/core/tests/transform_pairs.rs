//! Pairwise transformation-composition sweep.
//!
//! Invertibility must survive *composition*: the paper's engine freely
//! stacks transformations, so every ordered pair of transformation kinds
//! restricted to the engine must still yield codecs whose parse inverts
//! their serialize. 13 × 13 pairs × seeds, on a graph with every node
//! type.

use protoobf_core::graph::{
    AutoValue, Boundary, Condition, FormatGraph, GraphBuilder, Predicate, StopRule,
};
use protoobf_core::{Obfuscator, TerminalKind, TransformKind, Value};

fn graph() -> FormatGraph {
    let mut b = GraphBuilder::new("pairs");
    let root = b.root_sequence("m", Boundary::End);
    let len = b.uint_be(root, "len", 2);
    let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
    b.set_auto(len, AutoValue::LengthOf(data));
    let flag = b.uint_be(root, "flag", 1);
    let opt = b.optional(
        root,
        "extra",
        Condition { subject: flag, predicate: Predicate::Equals(Value::from_bytes(vec![1])) },
    );
    let oseq = b.sequence(opt, "extra_body", Boundary::Delegated);
    b.uint_be(oseq, "ev", 4);
    b.terminal(oseq, "etag", TerminalKind::Bytes, Boundary::Fixed(3));
    let count = b.uint_be(root, "count", 1);
    let tab = b.tabular(root, "items", count);
    b.set_auto(count, AutoValue::CounterOf(tab));
    let item = b.sequence(tab, "item", Boundary::Delegated);
    b.uint_be(item, "a", 2);
    b.uint_be(item, "v", 2);
    let rep =
        b.repetition(root, "hdrs", StopRule::Terminator(b"\r\n".to_vec()), Boundary::Delegated);
    let h = b.sequence(rep, "hdr", Boundary::Delegated);
    b.terminal(h, "k", TerminalKind::Ascii, Boundary::Delimited(b":".to_vec()));
    b.terminal(h, "w", TerminalKind::Ascii, Boundary::Delimited(b"\r\n".to_vec()));
    b.terminal(root, "tail", TerminalKind::Bytes, Boundary::End);
    b.build().unwrap()
}

fn roundtrip(codec: &protoobf_core::Codec, seed: u64, label: &str) {
    let mut m = codec.message_seeded(seed);
    m.set_uint("flag", 1).unwrap();
    m.set("data", b"pairwise data".as_slice()).unwrap();
    m.set_uint("extra.ev", 0xCAFEBABE).unwrap();
    m.set("extra.etag", b"tag".as_slice()).unwrap();
    m.set_uint("items[0].a", 1).unwrap();
    m.set_uint("items[0].v", 2).unwrap();
    m.set_uint("items[1].a", 3).unwrap();
    m.set_uint("items[1].v", 4).unwrap();
    m.set_str("hdrs[0].k", "Host").unwrap();
    m.set_str("hdrs[0].w", "example").unwrap();
    m.set("tail", b"trailing".as_slice()).unwrap();

    let wire = codec
        .serialize_seeded(&m, seed ^ 0x77)
        .unwrap_or_else(|e| panic!("{label}: serialize failed: {e}\n{:#?}", codec.records()));
    let back = codec
        .parse(&wire)
        .unwrap_or_else(|e| panic!("{label}: parse failed: {e}\n{:#?}", codec.records()));
    assert_eq!(back.get("data").unwrap().as_bytes(), b"pairwise data", "{label}");
    assert_eq!(back.get_uint("extra.ev").unwrap(), 0xCAFEBABE, "{label}");
    assert_eq!(back.get_uint("items[1].v").unwrap(), 4, "{label}");
    assert_eq!(back.get_string("hdrs[0].w").unwrap(), "example", "{label}");
    assert_eq!(back.get("tail").unwrap().as_bytes(), b"trailing", "{label}");
}

#[test]
fn all_ordered_pairs_compose_soundly() {
    let g = graph();
    for &a in &TransformKind::ALL {
        for &b in &TransformKind::ALL {
            for seed in 0..2u64 {
                let codec = Obfuscator::new(&g)
                    .seed(seed * 131 + 7)
                    .max_per_node(2)
                    .allowed([a, b])
                    .obfuscate()
                    .unwrap();
                roundtrip(&codec, seed, &format!("{a:?}+{b:?} seed {seed}"));
            }
        }
    }
}

#[test]
fn triple_stacks_of_structural_kinds() {
    // The structurally aggressive kinds, stacked deeper.
    let g = graph();
    let structural = [
        TransformKind::SplitAdd,
        TransformKind::SplitCat,
        TransformKind::BoundaryChange,
        TransformKind::ReadFromEnd,
        TransformKind::TabSplit,
        TransformKind::RepSplit,
        TransformKind::PadInsert,
        TransformKind::ChildMove,
    ];
    for window in structural.windows(3) {
        for seed in 0..3u64 {
            let codec = Obfuscator::new(&g)
                .seed(seed + 400)
                .max_per_node(3)
                .allowed(window.iter().copied())
                .obfuscate()
                .unwrap();
            roundtrip(&codec, seed, &format!("{window:?} seed {seed}"));
        }
    }
}

//! Window machinery tests: `Length`-bounded sequences (exact sub-windows
//! with rest-of-window fields inside), fixed-size sequences, and their
//! interaction with obfuscation constraints.
//!
//! These paths are not exercised by the shipped protocol specs (which use
//! auto length fields + delegated sequences), so they get a dedicated
//! suite.

use protoobf_core::graph::{AutoValue, Boundary, FormatGraph, GraphBuilder};
use protoobf_core::{Codec, Obfuscator, TerminalKind, TransformKind};

/// A format with a Length-bounded sequence whose last field consumes the
/// rest of the window — the classic TLV-with-inner-rest shape.
fn windowed() -> FormatGraph {
    let mut b = GraphBuilder::new("win");
    let root = b.root_sequence("m", Boundary::End);
    let len = b.uint_be(root, "len", 2);
    let pdu = b.sequence(root, "pdu", Boundary::Length(len));
    b.set_auto(len, AutoValue::LengthOf(pdu));
    b.uint_be(pdu, "kind", 1);
    b.terminal(pdu, "body", TerminalKind::Bytes, Boundary::End);
    b.uint_be(root, "crc", 2);
    b.build().unwrap()
}

#[test]
fn length_bounded_sequence_windows_inner_rest_field() {
    let g = windowed();
    let codec = Codec::identity(&g);
    let mut m = codec.message_seeded(1);
    m.set_uint("pdu.kind", 7).unwrap();
    m.set("pdu.body", b"window body".as_slice()).unwrap();
    m.set_uint("crc", 0xAABB).unwrap();
    let wire = codec.serialize_seeded(&m, 1).unwrap();
    // len = 1 + 11 = 12; crc follows the window.
    assert_eq!(&wire[..2], &[0x00, 0x0C]);
    assert_eq!(&wire[wire.len() - 2..], &[0xAA, 0xBB]);
    let back = codec.parse(&wire).unwrap();
    assert_eq!(back.get("pdu.body").unwrap().as_bytes(), b"window body");
    assert_eq!(back.get_uint("crc").unwrap(), 0xAABB);
}

#[test]
fn empty_inner_rest_field() {
    let g = windowed();
    let codec = Codec::identity(&g);
    let mut m = codec.message_seeded(1);
    m.set_uint("pdu.kind", 1).unwrap();
    m.set("pdu.body", b"".as_slice()).unwrap();
    m.set_uint("crc", 0).unwrap();
    let wire = codec.serialize_seeded(&m, 1).unwrap();
    assert_eq!(&wire[..2], &[0x00, 0x01]);
    let back = codec.parse(&wire).unwrap();
    assert_eq!(back.get("pdu.body").unwrap().len(), 0);
}

#[test]
fn corrupted_window_length_is_rejected() {
    let g = windowed();
    let codec = Codec::identity(&g);
    let mut m = codec.message_seeded(1);
    m.set_uint("pdu.kind", 7).unwrap();
    m.set("pdu.body", b"abc".as_slice()).unwrap();
    m.set_uint("crc", 1).unwrap();
    let wire = codec.serialize_seeded(&m, 1).unwrap();
    for delta in [1i32, -1, 100] {
        let mut corrupted = wire.clone();
        let len = u16::from_be_bytes([wire[0], wire[1]]) as i32 + delta;
        if len < 0 {
            continue;
        }
        corrupted[0] = ((len >> 8) & 0xFF) as u8;
        corrupted[1] = (len & 0xFF) as u8;
        assert!(codec.parse(&corrupted).is_err(), "length {delta:+} must break the window");
    }
}

#[test]
fn size_changing_transforms_rejected_inside_pinned_windows() {
    use protoobf_core::transform::applicable;
    let g = windowed();
    let codec = Codec::identity(&g);
    let og = codec.obf_graph();
    let kind = og.preorder().into_iter().find(|&id| og.node(id).name() == "kind").unwrap();
    // `kind` sits inside the Length-bounded pdu: size-changing transforms
    // are barred (the paper's "parents must be Delegated or End" rule)...
    assert!(applicable(og, kind, TransformKind::SplitAdd).is_err());
    assert!(applicable(og, kind, TransformKind::BoundaryChange).is_err());
    // ...but size-preserving ones are fine.
    assert!(applicable(og, kind, TransformKind::ConstAdd).is_ok());
}

#[test]
fn obfuscation_still_works_around_pinned_windows() {
    // The engine must find sound plans that respect the pinned window:
    // transforms land on the header/crc and value transforms inside.
    let g = windowed();
    for seed in 0..10u64 {
        let codec = Obfuscator::new(&g).seed(seed).max_per_node(3).obfuscate().unwrap();
        assert!(codec.transform_count() > 0, "seed {seed}");
        let mut m = codec.message_seeded(seed);
        m.set_uint("pdu.kind", 3).unwrap();
        m.set("pdu.body", b"payload".as_slice()).unwrap();
        m.set_uint("crc", 0x0102).unwrap();
        let wire = codec.serialize_seeded(&m, seed).unwrap();
        let back = codec
            .parse(&wire)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\nplan: {:#?}", codec.records()));
        assert_eq!(back.get("pdu.body").unwrap().as_bytes(), b"payload");
        assert_eq!(back.get_uint("crc").unwrap(), 0x0102);
    }
}

#[test]
fn fixed_size_sequence_is_checked_on_both_sides() {
    let mut b = GraphBuilder::new("fixed");
    let root = b.root_sequence("m", Boundary::End);
    let hdr = b.sequence(root, "hdr", Boundary::Fixed(4));
    b.uint_be(hdr, "a", 2);
    b.uint_be(hdr, "b", 2);
    b.terminal(root, "rest_field", TerminalKind::Bytes, Boundary::End);
    let g = b.build().unwrap();
    let codec = Codec::identity(&g);
    let mut m = codec.message_seeded(1);
    m.set_uint("hdr.a", 1).unwrap();
    m.set_uint("hdr.b", 2).unwrap();
    m.set("rest_field", b"xyz".as_slice()).unwrap();
    let wire = codec.serialize_seeded(&m, 1).unwrap();
    assert_eq!(wire.len(), 7);
    let back = codec.parse(&wire).unwrap();
    assert_eq!(back.get_uint("hdr.b").unwrap(), 2);
}

#[test]
fn dsl_supports_sized_by_sequences() {
    let g = protoobf_spec::parse_spec(
        r#"
        message W {
            u16 len;
            seq pdu sized_by len {
                u8 kind;
                bytes body rest;
            }
            u16 crc;
        }
        "#,
    )
    .unwrap();
    let codec = Codec::identity(&g);
    let mut m = codec.message_seeded(1);
    // `len` is user-set here (no auto annotation): it must be consistent.
    m.set_uint("len", 4).unwrap();
    m.set_uint("pdu.kind", 9).unwrap();
    m.set("pdu.body", b"abc".as_slice()).unwrap();
    m.set_uint("crc", 5).unwrap();
    let wire = codec.serialize_seeded(&m, 1).unwrap();
    let back = codec.parse(&wire).unwrap();
    assert_eq!(back.get("pdu.body").unwrap().as_bytes(), b"abc");

    // An inconsistent user-set length must be rejected at serialization.
    let mut bad = codec.message_seeded(2);
    bad.set_uint("len", 9).unwrap();
    bad.set_uint("pdu.kind", 9).unwrap();
    bad.set("pdu.body", b"abc".as_slice()).unwrap();
    bad.set_uint("crc", 5).unwrap();
    assert!(codec.serialize_seeded(&bad, 1).is_err());
}

//! Boundary tests of the framing layer: frame sizes exactly at and just
//! over `max_frame`, zero-length bodies, and truncated length headers.

use protoobf_core::framing::{FrameBuffer, FrameError, FrameReader, FrameWriter};
use protoobf_core::graph::{Boundary, GraphBuilder};
use protoobf_core::value::TerminalKind;
use protoobf_core::Codec;

fn codec() -> Codec {
    let mut b = GraphBuilder::new("fb");
    let root = b.root_sequence("m", Boundary::End);
    b.terminal(root, "body", TerminalKind::Bytes, Boundary::End);
    Codec::identity(&b.build().unwrap())
}

/// One raw frame: 4-byte big-endian length prefix plus body.
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = (body.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(body);
    out
}

#[test]
fn writer_accepts_exactly_max_frame_and_rejects_one_more() {
    let c = codec();
    let mut out = Vec::new();
    let mut w = FrameWriter::new(&c, &mut out).max_frame(8);
    w.send_raw(&[0xAA; 8]).expect("a body of exactly max_frame is legal");
    match w.send_raw(&[0xAA; 9]) {
        Err(FrameError::TooLarge { limit: 8, got: 9 }) => {}
        other => panic!("one byte over the limit must be TooLarge, got {other:?}"),
    }
}

#[test]
fn reader_accepts_exactly_max_frame_and_rejects_one_more() {
    let c = codec();
    let at_limit = frame(&[0x42; 8]);
    let mut r = FrameReader::new(&c, at_limit.as_slice()).max_frame(8);
    let m = r.recv().unwrap().expect("frame present");
    assert_eq!(m.get("body").unwrap().as_bytes(), [0x42; 8]);

    let over = frame(&[0x42; 9]);
    let mut r = FrameReader::new(&c, over.as_slice()).max_frame(8);
    match r.recv() {
        Err(FrameError::TooLarge { limit: 8, got: 9 }) => {}
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn frame_buffer_boundary_at_and_over_limit() {
    let mut fb = FrameBuffer::new().max_frame(8);
    fb.feed(&frame(&[1; 8]));
    assert_eq!(fb.pop().unwrap(), Some(vec![1; 8]), "at the limit pops cleanly");
    fb.feed(&frame(&[1; 9]));
    assert!(matches!(fb.pop(), Err(FrameError::TooLarge { limit: 8, got: 9 })));
}

#[test]
fn zero_length_bodies_are_framed_and_recovered() {
    let c = codec();
    // Writer side: a zero-length raw body is a legal frame.
    let mut out = Vec::new();
    FrameWriter::new(&c, &mut out).send_raw(&[]).unwrap();
    assert_eq!(out, frame(&[]));

    // Reader side: the empty frame is delivered (here the codec accepts an
    // empty body because the spec is a single End-bounded field).
    let mut r = FrameReader::new(&c, out.as_slice());
    let m = r.recv().unwrap().expect("empty frame present");
    assert_eq!(m.get("body").unwrap().as_bytes(), b"");
    assert!(r.recv().unwrap().is_none(), "clean EOF after the empty frame");

    // Two adjacent empty frames do not desynchronize reassembly.
    let mut fb = FrameBuffer::new();
    fb.feed(&[frame(&[]), frame(&[])].concat());
    assert_eq!(fb.pop().unwrap(), Some(Vec::new()));
    assert_eq!(fb.pop().unwrap(), Some(Vec::new()));
    assert_eq!(fb.pending(), 0);
}

#[test]
fn truncated_header_regression() {
    // Regression: a stream ending inside the 4-byte length prefix must be
    // Truncated (EOF mid-header), never a clean EOF and never a hang —
    // for every possible cut.
    let c = codec();
    let full = frame(b"xyz");
    for cut in 1..4 {
        let mut r = FrameReader::new(&c, &full[..cut]);
        match r.recv() {
            Err(FrameError::Truncated) => {}
            other => panic!("header cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    // A partial header buffered in a FrameBuffer simply stays pending.
    let mut fb = FrameBuffer::new();
    fb.feed(&full[..3]);
    assert_eq!(fb.pop().unwrap(), None);
    assert_eq!(fb.pending(), 3);
    fb.feed(&full[3..]);
    assert_eq!(fb.pop().unwrap(), Some(b"xyz".to_vec()));
}

//! Steady-state allocation audit of the session hot paths.
//!
//! The plan sessions promise that, once warmed up, `serialize_into` /
//! `parse_in_place` perform **no heap allocation** — including
//! [`SerializeSession::materialize`], which since the compiled
//! distribution programs no longer routes through the allocating
//! `runtime::distribute`. This test pins that property with a counting
//! global allocator: any future regression (a stray `Vec`, `format!`, or
//! `Value` clone on the hot path) fails loudly.
//!
//! The counter is **thread-local**: the libtest harness keeps its own
//! threads (and may allocate on them at any time — its main thread races
//! the test thread), so a process-global counter flakes. Only
//! allocations made by the test's own thread count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use protoobf_core::graph::{AutoValue, Boundary, GraphBuilder};
use protoobf_core::telemetry::{EventKind, Metrics};
use protoobf_core::value::TerminalKind;
use protoobf_core::Obfuscator;

struct CountingAlloc;

thread_local! {
    /// Allocations made by this thread (const-initialized: reading it
    /// never allocates, which matters inside the allocator itself).
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: during thread teardown the TLS slot may already be
    // destroyed; those allocations are not ours to count anyway.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// A spec exercising every materialization path: auto length over a
/// subtree, auto counter over a tabular, and (after obfuscation) splits,
/// constant stacks, mirrors and pads on top.
fn audit_graph() -> protoobf_core::FormatGraph {
    let mut b = GraphBuilder::new("za");
    let root = b.root_sequence("m", Boundary::End);
    let len = b.uint_be(root, "len", 2);
    let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
    b.set_auto(len, AutoValue::LengthOf(data));
    let count = b.uint_be(root, "count", 1);
    let tab = b.tabular(root, "items", count);
    b.set_auto(count, AutoValue::CounterOf(tab));
    let item = b.sequence(tab, "item", Boundary::Delegated);
    b.uint_be(item, "v", 2);
    b.uint_be(root, "code", 4);
    b.build().unwrap()
}

#[test]
fn steady_state_sessions_do_not_allocate() {
    let graph = audit_graph();

    for (what, level) in [("identity", 0u32), ("obfuscated", 3)] {
        let codec = if level == 0 {
            protoobf_core::Codec::identity(&graph)
        } else {
            Obfuscator::new(&graph).seed(9).max_per_node(level).obfuscate().unwrap()
        };
        let mut msg = codec.message_seeded(1);
        msg.set("data", b"steady state payload".as_slice()).unwrap();
        for i in 0..4u64 {
            msg.set_uint(&format!("items[{i}].v"), 40 + i).unwrap();
        }
        msg.set_uint("code", 7).unwrap();

        let mut serializer = codec.serializer();
        let mut parser = codec.parser();
        let mut wire = Vec::new();

        // Warm-up: let every scratch buffer reach its steady-state size.
        for round in 0..5u64 {
            serializer.serialize_into_seeded(&msg, &mut wire, round).unwrap();
            parser.parse_in_place(&wire).unwrap();
        }

        let before = allocations();
        for round in 0..50u64 {
            serializer.serialize_into_seeded(&msg, &mut wire, round).unwrap();
        }
        let after_serialize = allocations();
        assert_eq!(after_serialize - before, 0, "{what}: steady-state serialization allocated");

        for _ in 0..50 {
            parser.parse_in_place(&wire).unwrap();
        }
        let after_parse = allocations();
        assert_eq!(after_parse - after_serialize, 0, "{what}: steady-state parsing allocated");
    }
}

/// The gateway relay hot path — decode, transcode through the compiled
/// copy program, re-encode — pinned allocation-free in both directions
/// (clear → obfuscated and back). This is the loop
/// `protoobf-transport`'s `Relay` runs per message; before the copy
/// programs it routed through the allocating graph-walk runtime.
#[test]
fn steady_state_relay_transcode_does_not_allocate() {
    let graph = audit_graph();
    let clear = protoobf_core::Codec::identity(&graph);
    let obf = Obfuscator::new(&graph).seed(9).max_per_node(3).obfuscate().unwrap();

    let mut msg = clear.message_seeded(1);
    msg.set("data", b"steady state payload".as_slice()).unwrap();
    for i in 0..4u64 {
        msg.set_uint(&format!("items[{i}].v"), 40 + i).unwrap();
    }
    msg.set_uint("code", 7).unwrap();

    // The relay's long-lived pieces: one parser per inbound leg, one
    // serializer per outbound leg, one armed transcode target per
    // direction (program compiled once per pairing, scratch reused).
    let mut clear_parser = clear.parser();
    let mut obf_parser = obf.parser();
    let mut clear_serializer = clear.serializer();
    let mut obf_serializer = obf.serializer();
    let mut to_obf = obf.transcode_target(&clear).unwrap();
    let mut to_clear = clear.transcode_target(&obf).unwrap();

    let mut clear_wire = Vec::new();
    let mut obf_wire = Vec::new();
    let mut back_wire = Vec::new();
    clear_serializer.serialize_into_seeded(&msg, &mut clear_wire, 1).unwrap();

    // The full telemetry plane rides along exactly as the transport
    // relay wires it: stage timers, frame-shape histograms, counters
    // and a flight-recorder event per round. All of it must stay inside
    // the zero-allocation envelope (the constraint that shaped it:
    // relaxed atomics and pre-allocated rings only).
    let metrics = Metrics::new();

    macro_rules! round_trip {
        ($seed:expr) => {{
            let parse_t = metrics.stages.parse.start();
            let inbound = clear_parser.parse_in_place(&clear_wire).unwrap();
            metrics.stages.parse.finish(parse_t);
            Metrics::add(&metrics.messages_in, 1);
            metrics.frame_bytes_in.record(clear_wire.len() as u64);
            let transcode_t = metrics.stages.transcode.start();
            inbound.transcode_into(&mut to_obf).unwrap();
            metrics.stages.transcode.finish(transcode_t);
            let serialize_t = metrics.stages.serialize.start();
            obf_serializer.serialize_into_seeded(&to_obf, &mut obf_wire, $seed).unwrap();
            metrics.stages.serialize.finish(serialize_t);
            Metrics::add(&metrics.messages_out, 1);
            metrics.frame_bytes_out.record(obf_wire.len() as u64);
            let upstream = obf_parser.parse_in_place(&obf_wire).unwrap();
            upstream.transcode_into(&mut to_clear).unwrap();
            clear_serializer.serialize_into_seeded(&to_clear, &mut back_wire, $seed).unwrap();
            metrics.recorder.record(EventKind::Backpressure, $seed, back_wire.len() as u64);
        }};
    }

    // Warm-up: compile programs, grow every scratch to steady state.
    for round in 0..5u64 {
        round_trip!(round);
    }
    assert_eq!(back_wire, clear_wire, "relay round trip must be lossless");

    let before = allocations();
    for round in 0..50u64 {
        round_trip!(round);
    }
    assert_eq!(allocations() - before, 0, "steady-state relay transcode allocated");
}

/// The transport responder's per-reply path: sampling into a pooled
/// message ([`protoobf_core::sample::sample_into`]) reuses the message's
/// wire/presence/count stores, so a warmed refill loop must allocate
/// strictly less than building a fresh message per draw. Full zero
/// allocation is deliberately *not* the pin here — the sampler's values
/// (fresh byte vectors, formatted instance paths) are inherent to
/// structure-varying sampling and documented as such on `sample_into`;
/// what this test forbids is regressing the pooled stores back to
/// per-reply message construction.
#[test]
fn pooled_reply_sampling_beats_fresh_messages() {
    use protoobf_core::sample::{random_message_pinned, sample_into};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let graph = audit_graph();
    let codec = protoobf_core::Codec::identity(&graph);
    const DRAWS: u64 = 50;

    // Fresh-message baseline: what the responder used to do per reply.
    let mut rng = StdRng::seed_from_u64(11);
    let before = allocations();
    for _ in 0..DRAWS {
        let _ = random_message_pinned(&codec, &mut rng, &[]);
    }
    let fresh = allocations() - before;

    // Pooled refill over the same rng stream, stores warmed first.
    let mut rng = StdRng::seed_from_u64(11);
    let mut reply = codec.message_seeded(1);
    for _ in 0..5 {
        sample_into(&codec, &mut reply, &mut rng, &[]);
    }
    let before = allocations();
    for _ in 0..DRAWS {
        sample_into(&codec, &mut reply, &mut rng, &[]);
    }
    let pooled = allocations() - before;

    assert!(
        pooled < fresh,
        "pooled reply refill must allocate less than fresh sampling \
         (pooled {pooled} vs fresh {fresh} allocations over {DRAWS} draws)"
    );
}

/// Every telemetry primitive on its own, driven far enough to hit the
/// paths a short relay loop might miss: the stage-timer sampling branch
/// (period 32), histogram clamp buckets, and the flight-recorder ring
/// wrapping past its capacity. None of it may allocate after
/// construction.
#[test]
fn telemetry_primitives_do_not_allocate() {
    let metrics = Metrics::new();

    let before = allocations();
    for i in 0..4096u64 {
        Metrics::add(&metrics.messages_in, 1);
        Metrics::add(&metrics.bytes_in, 64);
        metrics.wake_latency.record(i);
        metrics.frame_bytes_in.record(i.wrapping_mul(0x9E37_79B9));
        metrics.frame_bytes_out.record(u64::MAX - i);
        let t = metrics.stages.serialize.start();
        metrics.stages.serialize.finish(t);
        let t = metrics.stages.parse.start();
        metrics.stages.parse.finish(t);
        metrics.recorder.record(EventKind::Accept, 0x7f00_0001_0000 | i, 0);
    }
    assert_eq!(allocations() - before, 0, "telemetry instrumentation allocated");

    // Sanity outside the measured window: everything actually moved.
    let snap = metrics.snapshot();
    assert_eq!(snap.messages_in, 4096);
    assert_eq!(snap.wake_latency.count(), 4096);
    assert_eq!(snap.stages.serialize.calls, 4096);
    assert!(snap.stages.serialize.latency.count() >= 4096 / 32, "sampling branch never fired");
    assert_eq!(metrics.recorder.recorded(), 4096, "ring must have wrapped");
    assert!(metrics.recorder.dump().len() <= metrics.recorder.capacity());
}

//! End-to-end invertibility: for every obfuscation plan the framework can
//! generate, `parse ∘ serialize` must be the identity on messages
//! (the paper's τ⁻¹ ∘ τ = id requirement, §V-B).
//!
//! These tests sweep seeds × obfuscation levels over a specification that
//! exercises every node type and boundary kind, then compare every plain
//! field after the roundtrip.

use protoobf_core::graph::{
    AutoValue, Boundary, Condition, FormatGraph, GraphBuilder, Predicate, StopRule,
};
use protoobf_core::{Obfuscator, TerminalKind, Value};

/// A specification exercising every feature: fixed/delimited/length/end
/// boundaries, optional, repetition with terminator, tabular with counter,
/// auto length and counter fields.
fn kitchen_sink() -> FormatGraph {
    let mut b = GraphBuilder::new("sink");
    let root = b.root_sequence("m", Boundary::End);
    let tid = b.uint_be(root, "tid", 2);
    let _ = tid;
    let len = b.uint_be(root, "len", 2);
    let data = b.terminal(root, "data", TerminalKind::Bytes, Boundary::Length(len));
    b.set_auto(len, AutoValue::LengthOf(data));
    let flag = b.uint_be(root, "flag", 1);
    let opt = b.optional(
        root,
        "extra",
        Condition { subject: flag, predicate: Predicate::Equals(Value::from_bytes(vec![1])) },
    );
    let optseq = b.sequence(opt, "extra_body", Boundary::Delegated);
    b.uint_be(optseq, "ev", 4);
    b.terminal(optseq, "etag", TerminalKind::Bytes, Boundary::Fixed(3));
    let count = b.uint_be(root, "count", 1);
    let tab = b.tabular(root, "items", count);
    b.set_auto(count, AutoValue::CounterOf(tab));
    let item = b.sequence(tab, "item", Boundary::Delegated);
    b.uint_be(item, "addr", 2);
    b.uint_be(item, "val", 2);
    let rep =
        b.repetition(root, "headers", StopRule::Terminator(b"\r\n".to_vec()), Boundary::Delegated);
    let h = b.sequence(rep, "header", Boundary::Delegated);
    b.terminal(h, "name", TerminalKind::Ascii, Boundary::Delimited(b": ".to_vec()));
    b.terminal(h, "value", TerminalKind::Ascii, Boundary::Delimited(b"\r\n".to_vec()));
    b.terminal(root, "body", TerminalKind::Bytes, Boundary::End);
    b.build().unwrap()
}

struct Fixture {
    tid: u64,
    data: Vec<u8>,
    flag: u64,
    ev: Option<(u64, [u8; 3])>,
    items: Vec<(u64, u64)>,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

fn fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            tid: 0x0102,
            data: b"hello world".to_vec(),
            flag: 1,
            ev: Some((0xDEADBEEF, *b"tag")),
            items: vec![(1, 100), (2, 200), (3, 300)],
            headers: vec![("Host".into(), "example.org".into()), ("Accept".into(), "*/*".into())],
            body: b"the quick brown fox".to_vec(),
        },
        Fixture {
            tid: 0,
            data: Vec::new(), // empty length-bounded field
            flag: 0,
            ev: None,
            items: Vec::new(), // zero elements
            headers: Vec::new(),
            body: Vec::new(), // empty end field
        },
        Fixture {
            tid: 0xFFFF,
            data: vec![0xAB; 257], // longer than one length byte
            flag: 1,
            ev: Some((1, [0, 0, 0])),
            items: vec![(0xFFFF, 0); 9],
            headers: (0..5).map(|i| (format!("A{i}"), "B".to_string())).collect(),
            body: vec![0x0D, 0x0A, 0x00, 0xFF], // bytes that look like delimiters
        },
    ]
}

fn build_message<'c>(
    codec: &'c protoobf_core::Codec,
    f: &Fixture,
    seed: u64,
) -> protoobf_core::Message<'c> {
    let mut m = codec.message_seeded(seed);
    m.set_uint("tid", f.tid).unwrap();
    m.set("data", f.data.as_slice()).unwrap();
    m.set_uint("flag", f.flag).unwrap();
    if let Some((ev, tag)) = &f.ev {
        m.set_uint("extra.ev", *ev).unwrap();
        m.set("extra.etag", tag.as_slice()).unwrap();
    }
    for (i, (a, v)) in f.items.iter().enumerate() {
        m.set_uint(&format!("items[{i}].addr"), *a).unwrap();
        m.set_uint(&format!("items[{i}].val"), *v).unwrap();
    }
    for (i, (n, v)) in f.headers.iter().enumerate() {
        m.set_str(&format!("headers[{i}].name"), n).unwrap();
        m.set_str(&format!("headers[{i}].value"), v).unwrap();
    }
    m.set("body", f.body.as_slice()).unwrap();
    m
}

fn check_roundtrip(codec: &protoobf_core::Codec, f: &Fixture, seed: u64) {
    let m = build_message(codec, f, seed);
    let wire = codec.serialize_seeded(&m, seed ^ 0x5555).unwrap_or_else(|e| {
        panic!("serialize failed (seed {seed}): {e}\nplan: {:#?}", codec.records())
    });
    let back = codec.parse(&wire).unwrap_or_else(|e| {
        panic!("parse failed (seed {seed}): {e}\nplan: {:#?}", codec.records())
    });
    assert_eq!(back.get_uint("tid").unwrap(), f.tid, "seed {seed}");
    assert_eq!(back.get("data").unwrap().as_bytes(), f.data.as_slice(), "seed {seed}");
    assert_eq!(back.get_uint("flag").unwrap(), f.flag);
    assert_eq!(back.is_present("extra"), f.ev.is_some());
    if let Some((ev, tag)) = &f.ev {
        assert_eq!(back.get_uint("extra.ev").unwrap(), *ev);
        assert_eq!(back.get("extra.etag").unwrap().as_bytes(), tag.as_slice());
    }
    assert_eq!(back.element_count("items"), f.items.len());
    for (i, (a, v)) in f.items.iter().enumerate() {
        assert_eq!(back.get_uint(&format!("items[{i}].addr")).unwrap(), *a);
        assert_eq!(back.get_uint(&format!("items[{i}].val")).unwrap(), *v);
    }
    assert_eq!(back.element_count("headers"), f.headers.len());
    for (i, (n, v)) in f.headers.iter().enumerate() {
        assert_eq!(back.get_string(&format!("headers[{i}].name")).unwrap(), *n);
        assert_eq!(back.get_string(&format!("headers[{i}].value")).unwrap(), *v);
    }
    assert_eq!(back.get("body").unwrap().as_bytes(), f.body.as_slice());
    // Auto fields recovered consistently.
    assert_eq!(back.get_uint("len").unwrap(), f.data.len() as u64);
    assert_eq!(back.get_uint("count").unwrap(), f.items.len() as u64);
}

#[test]
fn identity_codec_roundtrips_all_fixtures() {
    let g = kitchen_sink();
    let codec = protoobf_core::Codec::identity(&g);
    for (i, f) in fixtures().iter().enumerate() {
        check_roundtrip(&codec, f, i as u64);
    }
}

#[test]
fn roundtrip_sweep_levels_1_to_4() {
    let g = kitchen_sink();
    for level in 1..=4u32 {
        for seed in 0..25u64 {
            let codec = Obfuscator::new(&g)
                .seed(seed * 31 + u64::from(level))
                .max_per_node(level)
                .obfuscate()
                .unwrap();
            assert!(codec.transform_count() > 0);
            for (i, f) in fixtures().iter().enumerate() {
                check_roundtrip(&codec, f, seed * 100 + i as u64);
            }
        }
    }
}

#[test]
fn roundtrip_each_transform_kind_in_isolation() {
    use protoobf_core::TransformKind;
    let g = kitchen_sink();
    for kind in TransformKind::ALL {
        for seed in 0..10u64 {
            let codec =
                Obfuscator::new(&g).seed(seed).max_per_node(2).allowed([kind]).obfuscate().unwrap();
            for (i, f) in fixtures().iter().enumerate() {
                let m = build_message(&codec, f, i as u64);
                let wire = codec.serialize_seeded(&m, seed).unwrap_or_else(|e| {
                    panic!("{kind:?} serialize failed: {e}\nplan: {:#?}", codec.records())
                });
                let back = codec.parse(&wire).unwrap_or_else(|e| {
                    panic!("{kind:?} parse failed: {e}\nplan: {:#?}", codec.records())
                });
                assert_eq!(back.get_uint("tid").unwrap(), f.tid, "{kind:?} seed {seed}");
                assert_eq!(back.get("data").unwrap().as_bytes(), f.data.as_slice());
                assert_eq!(back.get("body").unwrap().as_bytes(), f.body.as_slice());
            }
        }
    }
}

#[test]
fn obfuscated_wire_differs_from_plain() {
    let g = kitchen_sink();
    let plain = protoobf_core::Codec::identity(&g);
    let f = &fixtures()[0];
    let plain_wire = {
        let m = build_message(&plain, f, 1);
        plain.serialize_seeded(&m, 1).unwrap()
    };
    let mut changed = 0;
    for seed in 0..10u64 {
        let codec = Obfuscator::new(&g).seed(seed).max_per_node(1).obfuscate().unwrap();
        let m = build_message(&codec, f, 1);
        let wire = codec.serialize_seeded(&m, 1).unwrap();
        if wire != plain_wire {
            changed += 1;
        }
    }
    assert!(changed >= 9, "obfuscation changed the wire in {changed}/10 plans");
}

#[test]
fn two_peers_with_same_seed_interoperate() {
    let g = kitchen_sink();
    // Peer A and peer B regenerate the library independently.
    let a = Obfuscator::new(&g).seed(7).max_per_node(3).obfuscate().unwrap();
    let b = Obfuscator::new(&g).seed(7).max_per_node(3).obfuscate().unwrap();
    let f = &fixtures()[0];
    let m = build_message(&a, f, 3);
    let wire = a.serialize_seeded(&m, 3).unwrap();
    let back = b.parse(&wire).unwrap();
    assert_eq!(back.get_uint("tid").unwrap(), f.tid);
    assert_eq!(back.get("body").unwrap().as_bytes(), f.body.as_slice());
}

#[test]
fn mismatched_plans_fail_to_interoperate() {
    let g = kitchen_sink();
    let a = Obfuscator::new(&g).seed(1).max_per_node(3).obfuscate().unwrap();
    let b = Obfuscator::new(&g).seed(2).max_per_node(3).obfuscate().unwrap();
    let f = &fixtures()[0];
    let mut agreements = 0;
    for seed in 0..5 {
        let m = build_message(&a, f, seed);
        let wire = a.serialize_seeded(&m, seed).unwrap();
        if let Ok(back) = b.parse(&wire) {
            if back.get_uint("tid").map(|t| t == f.tid).unwrap_or(false) {
                agreements += 1;
            }
        }
    }
    assert!(agreements < 5, "different plans should not transparently interoperate");
}

#[test]
fn corrupted_messages_error_not_panic() {
    let g = kitchen_sink();
    let codec = Obfuscator::new(&g).seed(11).max_per_node(2).obfuscate().unwrap();
    let f = &fixtures()[0];
    let m = build_message(&codec, f, 5);
    let wire = codec.serialize_seeded(&m, 5).unwrap();
    // Truncations.
    for cut in 0..wire.len().min(64) {
        let _ = codec.parse(&wire[..cut]); // must not panic
    }
    // Bit flips.
    for i in 0..wire.len().min(128) {
        let mut corrupted = wire.clone();
        corrupted[i] ^= 0x80;
        if let Ok(back) = codec.parse(&corrupted) {
            // A flip may land in a pad or a random share; the message
            // must still be structurally coherent if accepted.
            let _ = back.get_uint("tid");
        }
    }
}

//! The experiment runner (paper §VII-A/B).
//!
//! For each obfuscation level (transformations per node, 0–4) the runner
//! regenerates the library many times with fresh random plans, measures
//! generation time and the potency of the generated code, then serializes
//! and parses a population of random messages to measure processing time
//! and buffer size — exactly the measurement loop behind Tables III and IV
//! and Figures 4–7.

use std::time::Instant;

use protoobf_codegen::{generate, measure, PotencyMetrics};
use protoobf_core::{Codec, FormatGraph, Message, Obfuscator};
use protoobf_protocols::{http, modbus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which protocol an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Modbus/TCP requests (binary; Tabular/Length/Counter features).
    Modbus,
    /// HTTP requests (text; Optional/Repetition/Delimited features).
    Http,
}

impl Protocol {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Modbus => "TCP-Modbus",
            Protocol::Http => "HTTP",
        }
    }

    /// The plain format graph.
    pub fn graph(self) -> FormatGraph {
        match self {
            Protocol::Modbus => modbus::request_graph(),
            Protocol::Http => http::request_graph(),
        }
    }

    /// Builds one run's message population.
    pub fn corpus<'c, R: Rng + ?Sized>(
        self,
        codec: &'c Codec,
        n: usize,
        rng: &mut R,
    ) -> Vec<Message<'c>> {
        match self {
            Protocol::Modbus => {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let f = modbus::Function::ALL[i % modbus::Function::ALL.len()];
                    out.push(modbus::build_request(codec, f, rng));
                }
                out
            }
            Protocol::Http => (0..n).map(|_| http::build_request(codec, rng)).collect(),
        }
    }
}

/// Configuration of one experiment sweep.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Regenerations per obfuscation level (the paper used 1000).
    pub runs_per_level: usize,
    /// Messages serialized/parsed per run.
    pub messages_per_run: usize,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Highest level to sweep (the paper used 4).
    pub max_level: u32,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            runs_per_level: env_usize("PROTOOBF_ITERS", 100),
            messages_per_run: 32,
            base_seed: 0x0b_f0_5c,
            max_level: 4,
        }
    }
}

/// Reads a `usize` from the environment with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Measurements of a single run (one regenerated library).
#[derive(Debug, Clone, Copy)]
pub struct RunMetrics {
    /// Obfuscation level (transformations per node).
    pub level: u32,
    /// Transformations actually applied on the graph.
    pub applied: usize,
    /// Specification parse + transformation + code generation time.
    pub generation_ms: f64,
    /// Potency of the generated library.
    pub potency: PotencyMetrics,
    /// Mean per-message parse time.
    pub parse_ms: f64,
    /// Mean per-message serialization time.
    pub serialize_ms: f64,
    /// Mean serialized size in bytes.
    pub buffer_bytes: f64,
}

/// A full sweep: the level-0 baseline plus every obfuscated run.
#[derive(Debug, Clone)]
pub struct ExperimentData {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Baseline (non-obfuscated) run, used for normalization.
    pub baseline: RunMetrics,
    /// Obfuscated runs, all levels.
    pub runs: Vec<RunMetrics>,
}

impl ExperimentData {
    /// Runs of one level.
    pub fn at_level(&self, level: u32) -> Vec<&RunMetrics> {
        self.runs.iter().filter(|r| r.level == level).collect()
    }
}

/// Executes one run: regenerate the library with a fresh plan and measure
/// everything (paper: "the transformations are selected randomly … the
/// code source of the parser and serializer is generated … it is executed
/// to generate different messages with random values").
pub fn run_once(protocol: Protocol, level: u32, seed: u64, messages: usize) -> RunMetrics {
    let spec_text = match protocol {
        Protocol::Modbus => modbus::REQUEST_SPEC,
        Protocol::Http => http::REQUEST_SPEC,
    };
    let gen_start = Instant::now();
    let graph = protoobf_spec::parse_spec(spec_text).expect("embedded specs are valid");
    let codec = Obfuscator::new(&graph)
        .seed(seed)
        .max_per_node(level)
        .obfuscate()
        .expect("embedded specs obfuscate");
    let library = generate(&codec);
    let generation_ms = gen_start.elapsed().as_secs_f64() * 1e3;
    let potency = measure(&library);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let corpus = protocol.corpus(&codec, messages, &mut rng);
    // Warm the caches and allocator before timing (first-touch effects
    // otherwise dominate sub-10µs measurements).
    if let Some(first) = corpus.first() {
        let wire = codec.serialize_seeded(first, 0).expect("corpus serializes");
        let _ = codec.parse(&wire).expect("own serialization parses");
    }
    let mut ser_total = 0.0f64;
    let mut parse_total = 0.0f64;
    let mut bytes_total = 0.0f64;
    for msg in &corpus {
        // Best-of-3 per message: scheduler noise is comparable to the
        // microsecond-scale costs being measured.
        let wire_seed = rng.gen();
        let mut best_ser = f64::INFINITY;
        let mut wire = Vec::new();
        for _ in 0..3 {
            let t = Instant::now();
            wire = codec.serialize_seeded(msg, wire_seed).expect("corpus serializes");
            best_ser = best_ser.min(t.elapsed().as_secs_f64() * 1e3);
        }
        ser_total += best_ser;
        bytes_total += wire.len() as f64;
        let mut best_parse = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            let back = codec.parse(&wire).expect("own serialization parses");
            best_parse = best_parse.min(t.elapsed().as_secs_f64() * 1e3);
            drop(back);
        }
        parse_total += best_parse;
    }
    let n = corpus.len().max(1) as f64;
    RunMetrics {
        level,
        applied: codec.transform_count(),
        generation_ms,
        potency,
        parse_ms: parse_total / n,
        serialize_ms: ser_total / n,
        buffer_bytes: bytes_total / n,
    }
}

/// Executes the full sweep for a protocol.
pub fn run_experiment(protocol: Protocol, cfg: &ExperimentConfig) -> ExperimentData {
    let baseline = run_once(protocol, 0, cfg.base_seed, cfg.messages_per_run);
    let mut runs = Vec::new();
    for level in 1..=cfg.max_level {
        for i in 0..cfg.runs_per_level {
            let seed = cfg
                .base_seed
                .wrapping_add(u64::from(level) * 1_000_003)
                .wrapping_add(i as u64 * 7919);
            runs.push(run_once(protocol, level, seed, cfg.messages_per_run));
        }
    }
    ExperimentData { protocol, baseline, runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExperimentConfig {
        ExperimentConfig { runs_per_level: 3, messages_per_run: 8, base_seed: 7, max_level: 2 }
    }

    #[test]
    fn run_once_produces_sane_metrics() {
        let r = run_once(Protocol::Http, 1, 3, 8);
        assert_eq!(r.level, 1);
        assert!(r.applied > 0);
        assert!(r.generation_ms > 0.0);
        assert!(r.potency.lines > 0);
        assert!(r.buffer_bytes > 10.0);
        assert!(r.parse_ms >= 0.0 && r.serialize_ms >= 0.0);
    }

    #[test]
    fn baseline_has_no_transforms() {
        let r = run_once(Protocol::Modbus, 0, 3, 8);
        assert_eq!(r.applied, 0);
    }

    #[test]
    fn experiment_covers_levels() {
        let data = run_experiment(Protocol::Http, &small());
        assert_eq!(data.runs.len(), 6);
        assert_eq!(data.at_level(1).len(), 3);
        assert_eq!(data.at_level(2).len(), 3);
        assert_eq!(data.baseline.applied, 0);
    }

    #[test]
    fn applied_count_grows_with_level_modbus() {
        let cfg = small();
        let data = run_experiment(Protocol::Modbus, &cfg);
        let l1: f64 = data.at_level(1).iter().map(|r| r.applied as f64).sum::<f64>() / 3.0;
        let l2: f64 = data.at_level(2).iter().map(|r| r.applied as f64).sum::<f64>() / 3.0;
        assert!(l2 > l1 * 1.5, "level 1: {l1}, level 2: {l2}");
        // Paper reports ≈48 applied transformations at level 1 on the
        // Modbus graph; ours should be in the same regime.
        assert!((25.0..=90.0).contains(&l1), "level-1 applied = {l1}");
    }

    #[test]
    fn http_applied_count_matches_paper_regime() {
        let data = run_experiment(Protocol::Http, &small());
        let l1: f64 = data.at_level(1).iter().map(|r| r.applied as f64).sum::<f64>() / 3.0;
        // Paper: 10[9; 11] at one transformation per node.
        assert!((5.0..=20.0).contains(&l1), "level-1 applied = {l1}");
    }

    #[test]
    fn env_override() {
        assert_eq!(env_usize("PROTOOBF_DOES_NOT_EXIST", 42), 42);
    }
}

//! Regenerates **Table IV** — comparative results for TCP-Modbus.

use protoobf_bench::report::comparative_table;
use protoobf_bench::{run_experiment, ExperimentConfig, Protocol};

fn main() {
    let cfg = ExperimentConfig::default();
    eprintln!(
        "TABLE IV — TCP-Modbus: {} runs/level, {} messages/run (PROTOOBF_ITERS to change)",
        cfg.runs_per_level, cfg.messages_per_run
    );
    let data = run_experiment(Protocol::Modbus, &cfg);
    println!("TABLE IV — A COMPARATIVE RESULTS FOR TCP-MODBUS PROTOCOL");
    print!("{}", comparative_table(&data));
}

//! Regenerates **Figure 6** — HTTP normalized potency metrics.

use protoobf_bench::report::potency_figure;
use protoobf_bench::{run_experiment, ExperimentConfig, Protocol};

fn main() {
    let data = run_experiment(Protocol::Http, &ExperimentConfig::default());
    println!("FIGURE 6 — HTTP: NORMALIZED POTENCY METRICS");
    print!("{}", potency_figure(&data));
}

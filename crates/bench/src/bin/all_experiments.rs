//! Runs every table and figure in sequence (convenience wrapper; see the
//! individual binaries `table3`, `table4`, `fig4`–`fig7`, `resilience`).

use protoobf_bench::report::{comparative_table, cost_figure, potency_figure};
use protoobf_bench::resilience::{dns_resilience, http_resilience, modbus_resilience, render};
use protoobf_bench::runner::env_usize;
use protoobf_bench::{run_experiment, ExperimentConfig, Protocol};

fn main() {
    let cfg = ExperimentConfig::default();
    eprintln!("running full evaluation: {} runs/level", cfg.runs_per_level);

    let http = run_experiment(Protocol::Http, &cfg);
    let modbus = run_experiment(Protocol::Modbus, &cfg);

    println!("TABLE III — A COMPARATIVE RESULTS FOR HTTP PROTOCOL");
    print!("{}", comparative_table(&http));
    println!();
    println!("TABLE IV — A COMPARATIVE RESULTS FOR TCP-MODBUS PROTOCOL");
    print!("{}", comparative_table(&modbus));
    println!();
    println!("FIGURE 4 — HTTP COSTS");
    print!("{}", cost_figure(&http));
    println!();
    println!("FIGURE 5 — TCP-MODBUS COSTS");
    print!("{}", cost_figure(&modbus));
    println!();
    println!("FIGURE 6 — HTTP POTENCY");
    print!("{}", potency_figure(&http));
    println!();
    println!("FIGURE 7 — TCP-MODBUS POTENCY");
    print!("{}", potency_figure(&modbus));
    println!();
    println!("RESILIENCE (§VII-D)");
    let per_type = env_usize("PROTOOBF_TRACE_PER_TYPE", 8);
    print!("{}", render(&modbus_resilience(per_type, 2, 0xD5)));
    print!("{}", render(&http_resilience(per_type * 8, 2, 0xD5)));
    print!("{}", render(&dns_resilience(per_type * 4, 2, 0xD5)));
}

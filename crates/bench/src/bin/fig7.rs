//! Regenerates **Figure 7** — Modbus normalized potency metrics.

use protoobf_bench::report::potency_figure;
use protoobf_bench::{run_experiment, ExperimentConfig, Protocol};

fn main() {
    let data = run_experiment(Protocol::Modbus, &ExperimentConfig::default());
    println!("FIGURE 7 — TCP-MODBUS: NORMALIZED POTENCY METRICS");
    print!("{}", potency_figure(&data));
}

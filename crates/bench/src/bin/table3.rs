//! Regenerates **Table III** — comparative results for the HTTP protocol.

use protoobf_bench::report::comparative_table;
use protoobf_bench::{run_experiment, ExperimentConfig, Protocol};

fn main() {
    let cfg = ExperimentConfig::default();
    eprintln!(
        "TABLE III — HTTP: {} runs/level, {} messages/run (PROTOOBF_ITERS to change)",
        cfg.runs_per_level, cfg.messages_per_run
    );
    let data = run_experiment(Protocol::Http, &cfg);
    println!("TABLE III — A COMPARATIVE RESULTS FOR HTTP PROTOCOL");
    print!("{}", comparative_table(&data));
}

//! Regenerates the **§VII-D resilience assessment**, quantified: PRE
//! quality (classification + format inference) on plain vs. obfuscated
//! traces of the paper's Modbus scenario, plus an HTTP variant.

use protoobf_bench::resilience::{dns_resilience, http_resilience, modbus_resilience, render};
use protoobf_bench::runner::env_usize;

fn main() {
    let per_type = env_usize("PROTOOBF_TRACE_PER_TYPE", 8);
    let max_level = env_usize("PROTOOBF_MAX_LEVEL", 2) as u32;
    println!("RESILIENCE ASSESSMENT (paper §VII-D, quantified)");
    println!();
    println!("Modbus trace: 4 request types and their responses, {per_type} per type");
    let rows = modbus_resilience(per_type, max_level, 0xD5);
    print!("{}", render(&rows));
    println!();
    println!("HTTP trace: {} random requests", per_type * 8);
    let rows = http_resilience(per_type * 8, max_level, 0xD5);
    print!("{}", render(&rows));
    println!();
    println!("DNS trace: {} queries and responses", per_type * 8);
    let rows = dns_resilience(per_type * 4, max_level, 0xD5);
    print!("{}", render(&rows));
    println!();
    println!("Reading: level 0 is the plain protocol. Rising levels should reduce");
    println!("purity/ARI (classification defeated), the static-column fraction");
    println!("(format inference defeated) and delimiter visibility (field");
    println!("delimitation defeated) — the paper's expert observations, measured.");
}

//! Regenerates **Figure 4** — HTTP parsing and serialization time against
//! the number of applied transformations (scatter + linear fit + r).

use protoobf_bench::report::cost_figure;
use protoobf_bench::{run_experiment, ExperimentConfig, Protocol};

fn main() {
    let data = run_experiment(Protocol::Http, &ExperimentConfig::default());
    println!("FIGURE 4 — HTTP: PARSING AND SERIALIZATION TIME");
    print!("{}", cost_figure(&data));
}

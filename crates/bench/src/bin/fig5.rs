//! Regenerates **Figure 5** — Modbus parsing and serialization time.

use protoobf_bench::report::cost_figure;
use protoobf_bench::{run_experiment, ExperimentConfig, Protocol};

fn main() {
    let data = run_experiment(Protocol::Modbus, &ExperimentConfig::default());
    println!("FIGURE 5 — TCP-MODBUS: PARSING AND SERIALIZATION TIME");
    print!("{}", cost_figure(&data));
}

//! Ablation study: per-transformation contributions (Modbus, level 2).

use protoobf_bench::ablation::{ablation, render};
use protoobf_bench::runner::env_usize;

fn main() {
    let seeds = env_usize("PROTOOBF_ABLATION_SEEDS", 5) as u64;
    println!(
        "ABLATION — per-transformation contributions (Modbus requests, level 2, {seeds} seeds)"
    );
    println!();
    print!("{}", render(&ablation(seeds)));
    println!();
    println!("columns: applied = mean applications; lines/cg size = generated-code");
    println!("growth vs plain; buffer = wire-size ratio; static frac = structure an");
    println!("alignment analyst still recovers from same-type messages (lower = stronger).");
}

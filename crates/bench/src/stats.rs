//! Summary statistics and linear regression for the experiment reports:
//! the paper presents every metric as `average[min; max]` and fits
//! processing times against the number of applied transformations with a
//! least-squares line and its correlation coefficient (figures 4 and 5).

use std::fmt;

/// `average[min; max]` summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; zeroes for an empty one.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary { mean: 0.0, min: 0.0, max: 0.0 };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Summary { mean: sum / values.len() as f64, min, max }
    }

    /// Renders with `digits` decimal places, paper-style.
    pub fn render(&self, digits: usize) -> String {
        format!("{:.d$}[{:.d$}; {:.d$}]", self.mean, self.min, self.max, d = digits)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(2))
    }
}

/// Least-squares line `y = slope·x + intercept` with Pearson correlation
/// coefficient `r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regression {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Pearson correlation coefficient.
    pub r: f64,
}

/// Fits a least-squares line through `(x, y)` pairs.
///
/// Returns `None` for fewer than two points or zero variance in `x`.
pub fn linear_regression(x: &[f64], y: &[f64]) -> Option<Regression> {
    let n = x.len().min(y.len());
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = x[..n].iter().sum::<f64>() / nf;
    let mean_y = y[..n].iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for i in 0..n {
        let dx = x[i] - mean_x;
        let dy = y[i] - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r = if syy == 0.0 { 1.0 } else { sxy / (sxx.sqrt() * syy.sqrt()) };
    Some(Regression { slope, intercept, r })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.render(1), "2.0[1.0; 3.0]");
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[5.5]);
        assert_eq!(s.render(2), "5.50[5.50; 5.50]");
    }

    #[test]
    fn regression_on_perfect_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0]; // y = 2x + 1
        let r = linear_regression(&x, &y).unwrap();
        assert!((r.slope - 2.0).abs() < 1e-9);
        assert!((r.intercept - 1.0).abs() < 1e-9);
        assert!((r.r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_on_noise_has_low_r() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [4.0, 1.0, 5.0, 2.0, 6.0, 1.5];
        let r = linear_regression(&x, &y).unwrap();
        assert!(r.r.abs() < 0.6);
    }

    #[test]
    fn regression_degenerate_cases() {
        assert!(linear_regression(&[1.0], &[2.0]).is_none());
        assert!(linear_regression(&[2.0, 2.0], &[1.0, 5.0]).is_none());
        let flat = linear_regression(&[1.0, 2.0], &[3.0, 3.0]).unwrap();
        assert_eq!(flat.slope, 0.0);
        assert_eq!(flat.r, 1.0); // zero variance in y: perfectly explained
    }

    #[test]
    fn negative_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        let r = linear_regression(&x, &y).unwrap();
        assert!((r.r + 1.0).abs() < 1e-9);
        assert!((r.slope + 1.0).abs() < 1e-9);
    }
}

//! # protoobf-bench
//!
//! The experiment harness reproducing every table and figure of the
//! paper's evaluation (§VII):
//!
//! | Artifact | Binary |
//! |---|---|
//! | Table III (HTTP comparative results) | `table3` |
//! | Table IV (TCP-Modbus comparative results) | `table4` |
//! | Figure 4 (HTTP parsing/serialization time) | `fig4` |
//! | Figure 5 (Modbus parsing/serialization time) | `fig5` |
//! | Figure 6 (HTTP normalized potency) | `fig6` |
//! | Figure 7 (Modbus normalized potency) | `fig7` |
//! | §VII-D resilience assessment | `resilience` |
//!
//! Run counts default to 100 regenerations per level (the paper used
//! 1000); set `PROTOOBF_ITERS` to change. All binaries honour
//! `PROTOOBF_SEED`.

pub mod ablation;
pub mod report;
pub mod resilience;
pub mod runner;
pub mod stats;

pub use runner::{run_experiment, run_once, ExperimentConfig, Protocol};

//! The resilience experiment (paper §VII-D), quantified.
//!
//! The paper asked a Netzob expert to reverse a Modbus trace: half an hour
//! sufficed for the plain protocol, while one obfuscation per field
//! defeated him after two hours. Here the expert is replaced by the
//! algorithms his tooling uses (alignment-based classification and format
//! inference from `protoobf-pre`), scored against ground truth, so the
//! claim becomes measurable: classification quality (purity, adjusted Rand
//! index) and inferred-structure quality (static-column fraction,
//! delimiter visibility) degrade as obfuscation levels rise.

use protoobf_core::{Codec, Obfuscator};
use protoobf_pre::align::{similarity_matrix, ScoreParams};
use protoobf_pre::cluster::upgma;
use protoobf_pre::infer::multiple_alignment;
use protoobf_pre::score::{adjusted_rand_index, purity, type_count};
use protoobf_protocols::corpus::{self, Sample};
use protoobf_protocols::{dns, http, modbus};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// PRE quality on one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceRow {
    /// Scenario name (protocol).
    pub scenario: String,
    /// Obfuscation level of the trace.
    pub level: u32,
    /// Ground-truth number of message types in the trace.
    pub true_types: usize,
    /// Number of clusters the analyst's classification finds.
    pub clusters: usize,
    /// Cluster purity against ground truth.
    pub purity: f64,
    /// Adjusted Rand index against ground truth.
    pub ari: f64,
    /// Mean fraction of static alignment columns within each true type —
    /// how much structure format inference can recover.
    pub static_fraction: f64,
    /// Known delimiters still visible in inferred static fields, per
    /// message type (HTTP scenario; 0 for binary protocols).
    pub delimiters_visible: f64,
    /// Mean per-column byte entropy within each true type (bits; rises
    /// toward 8 as obfuscation randomizes the wire).
    pub mean_entropy: f64,
}

/// Runs PRE against a trace and scores it. `threshold` is the analyst's
/// similarity cut-off for classification (binary protocols need a lower
/// one than text protocols).
pub fn assess(
    scenario: &str,
    level: u32,
    samples: &[Sample],
    delims: &[&[u8]],
    threshold: f64,
) -> ResilienceRow {
    let msgs: Vec<&[u8]> = samples.iter().map(|s| s.wire.as_slice()).collect();
    let labels: Vec<&str> = samples.iter().map(|s| s.label.as_str()).collect();
    let params = ScoreParams::default();

    let sim = similarity_matrix(&msgs, params);
    let clusters = upgma(&sim, threshold);
    let p = purity(&clusters, &labels);
    let ari = adjusted_rand_index(&clusters, &labels);

    // Give the analyst perfect classification for the inference step: how
    // much structure is recoverable per *true* type?
    let mut fractions = Vec::new();
    let mut delim_counts = Vec::new();
    let mut entropies = Vec::new();
    let mut types: Vec<&str> = labels.clone();
    types.sort_unstable();
    types.dedup();
    for t in &types {
        let group: Vec<&[u8]> =
            samples.iter().filter(|s| s.label == *t).map(|s| s.wire.as_slice()).collect();
        if group.len() < 2 {
            continue;
        }
        let profile = multiple_alignment(&group, params);
        fractions.push(profile.static_fraction());
        let visible: usize = delims.iter().map(|d| profile.static_needle_count(d)).sum();
        delim_counts.push(visible as f64);
        entropies.push(protoobf_pre::entropy::mean_entropy(&profile));
    }
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };

    ResilienceRow {
        scenario: scenario.to_string(),
        level,
        true_types: type_count(&labels),
        clusters: clusters.len(),
        purity: p,
        ari,
        static_fraction: mean(&fractions),
        delimiters_visible: mean(&delim_counts),
        mean_entropy: mean(&entropies),
    }
}

/// The paper's §VII-D setup: a Modbus trace of four request types and
/// their responses, assessed plain and at increasing obfuscation levels.
pub fn modbus_resilience(per_type: usize, max_level: u32, seed: u64) -> Vec<ResilienceRow> {
    let req_graph = modbus::request_graph();
    let resp_graph = modbus::response_graph();
    let functions = [
        modbus::Function::ReadCoils,
        modbus::Function::ReadHoldingRegisters,
        modbus::Function::WriteSingleRegister,
        modbus::Function::WriteMultipleRegisters,
    ];
    let mut rows = Vec::new();
    for level in 0..=max_level {
        let (req, resp) = if level == 0 {
            (Codec::identity(&req_graph), Codec::identity(&resp_graph))
        } else {
            (
                Obfuscator::new(&req_graph)
                    .seed(seed + u64::from(level))
                    .max_per_node(level)
                    .obfuscate()
                    .expect("modbus request graph obfuscates"),
                Obfuscator::new(&resp_graph)
                    .seed(seed + 100 + u64::from(level))
                    .max_per_node(level)
                    .obfuscate()
                    .expect("modbus response graph obfuscates"),
            )
        };
        let mut rng = StdRng::seed_from_u64(seed ^ u64::from(level));
        let trace = corpus::modbus_trace(&req, &resp, &functions, per_type, &mut rng);
        rows.push(assess("TCP-Modbus", level, &trace, &[], 0.55));
    }
    rows
}

/// HTTP variant: delimiter visibility is the additional signal (known
/// `\r\n` / `": "` separators disappear under `BoundaryChange`).
pub fn http_resilience(n: usize, max_level: u32, seed: u64) -> Vec<ResilienceRow> {
    let graph = http::request_graph();
    let mut rows = Vec::new();
    for level in 0..=max_level {
        let codec = if level == 0 {
            Codec::identity(&graph)
        } else {
            Obfuscator::new(&graph)
                .seed(seed + u64::from(level))
                .max_per_node(level)
                .obfuscate()
                .expect("http graph obfuscates")
        };
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(level) << 8));
        let trace = corpus::http_requests(&codec, n, &mut rng);
        rows.push(assess("HTTP", level, &trace, &[b"\r\n", b": ", b" "], 0.55));
    }
    rows
}

/// Renders resilience rows as a table.
pub fn render(rows: &[ResilienceRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>6} {:>11} {:>9} {:>8} {:>8} {:>12} {:>8} {:>9}\n",
        "scenario",
        "level",
        "true types",
        "clusters",
        "purity",
        "ARI",
        "static frac",
        "delims",
        "entropy"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>6} {:>11} {:>9} {:>8.2} {:>8.2} {:>12.2} {:>8.1} {:>9.2}\n",
            r.scenario,
            r.level,
            r.true_types,
            r.clusters,
            r.purity,
            r.ari,
            r.static_fraction,
            r.delimiters_visible,
            r.mean_entropy
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modbus_structure_degrades_with_obfuscation() {
        let rows = modbus_resilience(4, 1, 11);
        assert_eq!(rows.len(), 2);
        let plain = &rows[0];
        let obf = &rows[1];
        assert!(plain.static_fraction > 0.25, "plain static {}", plain.static_fraction);
        assert!(
            obf.static_fraction < plain.static_fraction,
            "obfuscation should reduce inferrable structure: {} -> {}",
            plain.static_fraction,
            obf.static_fraction
        );
    }

    #[test]
    fn http_delimiters_become_less_visible() {
        let rows = http_resilience(12, 1, 3);
        let plain = &rows[0];
        let obf = &rows[1];
        assert!(plain.delimiters_visible >= 3.0, "plain sees {}", plain.delimiters_visible);
        assert!(
            obf.delimiters_visible < plain.delimiters_visible,
            "delimiters should fade: {} -> {}",
            plain.delimiters_visible,
            obf.delimiters_visible
        );
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = modbus_resilience(2, 1, 5);
        let text = render(&rows);
        assert!(text.contains("TCP-Modbus"));
        assert_eq!(text.lines().count(), 3);
    }
}

/// DNS variant: queries vs responses; the query header constants and the
/// label length structure are what plain inference recovers.
pub fn dns_resilience(n: usize, max_level: u32, seed: u64) -> Vec<ResilienceRow> {
    let qg = dns::query_graph();
    let rg = dns::response_graph();
    let mut rows = Vec::new();
    for level in 0..=max_level {
        let (q, r) = if level == 0 {
            (Codec::identity(&qg), Codec::identity(&rg))
        } else {
            (
                Obfuscator::new(&qg)
                    .seed(seed + u64::from(level))
                    .max_per_node(level)
                    .obfuscate()
                    .expect("dns query graph obfuscates"),
                Obfuscator::new(&rg)
                    .seed(seed + 50 + u64::from(level))
                    .max_per_node(level)
                    .obfuscate()
                    .expect("dns response graph obfuscates"),
            )
        };
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(level) << 4));
        let trace = corpus::dns_trace(&q, &r, n, &mut rng);
        rows.push(assess("DNS", level, &trace, &[b"\x00"], 0.55));
    }
    rows
}

#[cfg(test)]
mod dns_tests {
    use super::*;

    #[test]
    fn dns_structure_degrades_with_obfuscation() {
        let rows = dns_resilience(8, 1, 21);
        let plain = &rows[0];
        let obf = &rows[1];
        assert!(plain.static_fraction > 0.08, "plain static {}", plain.static_fraction);
        assert!(
            obf.static_fraction < plain.static_fraction,
            "{} -> {}",
            plain.static_fraction,
            obf.static_fraction
        );
    }
}

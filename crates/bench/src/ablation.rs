//! Ablation study: what each generic transformation contributes.
//!
//! The paper selects transformations uniformly at random and reports only
//! aggregate numbers; its future-work section asks which transformations
//! buy how much resilience. This module isolates each Table-I
//! transformation — running the engine with *only* that kind enabled — and
//! measures its applicability, potency contribution, cost contribution and
//! how much of the analyst's inferrable structure it destroys.

use protoobf_codegen::{generate, measure};
use protoobf_core::{Codec, Obfuscator, TransformKind};
use protoobf_pre::align::ScoreParams;
use protoobf_pre::infer::multiple_alignment;
use protoobf_protocols::modbus;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-transformation ablation measurements (Modbus request graph,
/// level 2, averaged over seeds).
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The isolated transformation.
    pub kind: TransformKind,
    /// Mean number of applications the engine managed.
    pub applied: f64,
    /// Mean normalized generated-code lines (1.0 = baseline).
    pub lines_ratio: f64,
    /// Mean normalized call-graph size.
    pub callgraph_ratio: f64,
    /// Mean serialized size relative to the plain wire.
    pub buffer_ratio: f64,
    /// Static-column fraction an analyst recovers from a same-type trace
    /// (plain Modbus FC3 requests score ≈0.5; lower is stronger).
    pub static_fraction: f64,
}

/// Runs the ablation for every transformation kind.
pub fn ablation(seeds: u64) -> Vec<AblationRow> {
    let graph = modbus::request_graph();
    let base_codec = Codec::identity(&graph);
    let base = measure(&generate(&base_codec));
    let base_buffer = mean_buffer(&base_codec, 40);

    TransformKind::ALL
        .iter()
        .map(|&kind| {
            let mut applied = Vec::new();
            let mut lines = Vec::new();
            let mut cg = Vec::new();
            let mut buf = Vec::new();
            let mut stat = Vec::new();
            for seed in 0..seeds {
                let codec = Obfuscator::new(&graph)
                    .seed(seed)
                    .max_per_node(2)
                    .allowed([kind])
                    .obfuscate()
                    .expect("embedded spec obfuscates");
                applied.push(codec.transform_count() as f64);
                let m = measure(&generate(&codec));
                lines.push(m.lines as f64 / base.lines as f64);
                cg.push(m.callgraph_size as f64 / base.callgraph_size as f64);
                buf.push(mean_buffer(&codec, 40) / base_buffer);
                stat.push(static_fraction(&codec));
            }
            AblationRow {
                kind,
                applied: mean(&applied),
                lines_ratio: mean(&lines),
                callgraph_ratio: mean(&cg),
                buffer_ratio: mean(&buf),
                static_fraction: mean(&stat),
            }
        })
        .collect()
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn mean_buffer(codec: &Codec, n: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(5);
    let mut total = 0usize;
    for i in 0..n {
        let f = modbus::Function::ALL[i % modbus::Function::ALL.len()];
        let msg = modbus::build_request(codec, f, &mut rng);
        total += codec.serialize_seeded(&msg, 3).expect("corpus serializes").len();
    }
    total as f64 / n as f64
}

/// Static structure an analyst recovers from 12 same-type messages.
fn static_fraction(codec: &Codec) -> f64 {
    let mut rng = StdRng::seed_from_u64(17);
    let wires: Vec<Vec<u8>> = (0..12)
        .map(|_| {
            let msg =
                modbus::build_request(codec, modbus::Function::ReadHoldingRegisters, &mut rng);
            codec.serialize_seeded(&msg, 3).expect("corpus serializes")
        })
        .collect();
    let refs: Vec<&[u8]> = wires.iter().map(Vec::as_slice).collect();
    multiple_alignment(&refs, ScoreParams::default()).static_fraction()
}

/// Renders the ablation as a table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>8} {:>9} {:>8} {:>12}\n",
        "transformation", "applied", "lines", "cg size", "buffer", "static frac"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>8.1} {:>8.2} {:>9.2} {:>8.2} {:>12.2}\n",
            r.kind.name(),
            r.applied,
            r.lines_ratio,
            r.callgraph_ratio,
            r.buffer_ratio,
            r.static_fraction
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_all_kinds() {
        let rows = ablation(1);
        assert_eq!(rows.len(), TransformKind::ALL.len());
        // Const ops are widely applicable on the Modbus graph.
        let const_add = rows.iter().find(|r| r.kind == TransformKind::ConstAdd).unwrap();
        assert!(const_add.applied >= 10.0);
        // Value transformations do not inflate the wire...
        assert!(const_add.buffer_ratio < 1.05);
        // ...but splits do.
        let split = rows.iter().find(|r| r.kind == TransformKind::SplitAdd).unwrap();
        assert!(split.buffer_ratio > 1.1, "{}", split.buffer_ratio);
    }

    #[test]
    fn split_add_destroys_more_structure_than_childmove() {
        let rows = ablation(2);
        let split = rows.iter().find(|r| r.kind == TransformKind::SplitAdd).unwrap();
        let mv = rows.iter().find(|r| r.kind == TransformKind::ChildMove).unwrap();
        assert!(
            split.static_fraction < mv.static_fraction,
            "SplitAdd {} vs ChildMove {}",
            split.static_fraction,
            mv.static_fraction
        );
    }
}

//! Report rendering: the paper's tables and figures as text.
//!
//! [`comparative_table`] reproduces the layout of Tables III/IV;
//! [`cost_figure`] reproduces Figures 4/5 (scatter + least-squares line +
//! correlation coefficient); [`potency_figure`] reproduces Figures 6/7
//! (normalized potency metric series against the number of applied
//! obfuscations).

use crate::runner::{ExperimentData, RunMetrics};
use crate::stats::{linear_regression, Summary};

fn column<F: Fn(&RunMetrics) -> f64>(data: &ExperimentData, level: u32, f: F) -> Summary {
    let values: Vec<f64> = data.at_level(level).iter().map(|r| f(r)).collect();
    Summary::of(&values)
}

fn levels(data: &ExperimentData) -> Vec<u32> {
    let mut ls: Vec<u32> = data.runs.iter().map(|r| r.level).collect();
    ls.sort_unstable();
    ls.dedup();
    ls
}

/// Renders the comparative results table (paper Tables III and IV).
pub fn comparative_table(data: &ExperimentData) -> String {
    let ls = levels(data);
    let base = &data.baseline.potency;
    let mut out = String::new();
    let width = 22usize;
    let colw = 24usize;

    fn row(out: &mut String, width: usize, colw: usize, label: &str, cells: Vec<String>) {
        out.push_str(&format!("{label:<width$}"));
        for c in cells {
            out.push_str(&format!("{c:>colw$}"));
        }
        out.push('\n');
    }

    row(&mut out, width, colw, "Nb. transf. per node", ls.iter().map(|l| l.to_string()).collect());
    row(
        &mut out,
        width,
        colw,
        "Nb. transf. applied",
        ls.iter().map(|&l| column(data, l, |r| r.applied as f64).render(0)).collect(),
    );
    out.push_str("Potency (normalized)\n");
    let norm = |v: f64, b: usize| if b == 0 { 0.0 } else { v / b as f64 };
    row(
        &mut out,
        width,
        colw,
        "  Nb. lines",
        ls.iter()
            .map(|&l| column(data, l, |r| norm(r.potency.lines as f64, base.lines)).render(1))
            .collect(),
    );
    row(
        &mut out,
        width,
        colw,
        "  Nb. structs",
        ls.iter()
            .map(|&l| column(data, l, |r| norm(r.potency.structs as f64, base.structs)).render(1))
            .collect(),
    );
    row(
        &mut out,
        width,
        colw,
        "  Call graph size",
        ls.iter()
            .map(|&l| {
                column(data, l, |r| norm(r.potency.callgraph_size as f64, base.callgraph_size))
                    .render(1)
            })
            .collect(),
    );
    row(
        &mut out,
        width,
        colw,
        "  Call graph depth",
        ls.iter()
            .map(|&l| {
                column(data, l, |r| norm(r.potency.callgraph_depth as f64, base.callgraph_depth))
                    .render(1)
            })
            .collect(),
    );
    out.push_str("Costs (absolute)\n");
    row(
        &mut out,
        width,
        colw,
        "  Generation time (ms)",
        ls.iter().map(|&l| column(data, l, |r| r.generation_ms).render(2)).collect(),
    );
    row(
        &mut out,
        width,
        colw,
        "  Parsing time (ms)",
        ls.iter().map(|&l| column(data, l, |r| r.parse_ms).render(3)).collect(),
    );
    row(
        &mut out,
        width,
        colw,
        "  Serialization (ms)",
        ls.iter().map(|&l| column(data, l, |r| r.serialize_ms).render(3)).collect(),
    );
    row(
        &mut out,
        width,
        colw,
        "  Buffer size (bytes)",
        ls.iter().map(|&l| column(data, l, |r| r.buffer_bytes).render(0)).collect(),
    );
    out
}

/// ASCII scatter plot of `(x, y)` points, `rows` high and `cols` wide.
fn scatter(points: &[(f64, f64)], rows: usize, cols: usize) -> String {
    if points.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![b' '; cols]; rows];
    for &(x, y) in points {
        let cx = (((x - x_min) / (x_max - x_min)) * (cols - 1) as f64).round() as usize;
        let cy = (((y - y_min) / (y_max - y_min)) * (rows - 1) as f64).round() as usize;
        grid[rows - 1 - cy][cx] = b'*';
    }
    let mut out = String::new();
    out.push_str(&format!("{y_max:>10.3} +{}\n", "-".repeat(cols)));
    for row in grid {
        out.push_str("           |");
        out.push_str(std::str::from_utf8(&row).expect("ascii grid"));
        out.push('\n');
    }
    out.push_str(&format!("{y_min:>10.3} +{}\n", "-".repeat(cols)));
    out.push_str(&format!("            {:<10.1}{:>width$.1}\n", x_min, x_max, width = cols - 10));
    out
}

/// Renders a cost figure (paper Figures 4/5): parsing and serialization
/// time against the number of applied transformations, with the
/// least-squares fit and correlation coefficient.
pub fn cost_figure(data: &ExperimentData) -> String {
    let mut out = String::new();
    for (label, pick) in [
        (
            "Parsing time (ms)",
            Box::new(|r: &RunMetrics| r.parse_ms) as Box<dyn Fn(&RunMetrics) -> f64>,
        ),
        ("Serialization time (ms)", Box::new(|r: &RunMetrics| r.serialize_ms)),
    ] {
        let points: Vec<(f64, f64)> =
            data.runs.iter().map(|r| (r.applied as f64, pick(r))).collect();
        out.push_str(&format!(
            "\n{}: {} vs. number of applied transformations\n",
            data.protocol.name(),
            label
        ));
        out.push_str(&scatter(&points, 14, 60));
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        match linear_regression(&xs, &ys) {
            Some(reg) => out.push_str(&format!(
                "linear fit: y = {:.6}·x + {:.6}   correlation r = {:.3}\n",
                reg.slope, reg.intercept, reg.r
            )),
            None => out.push_str("linear fit: insufficient data\n"),
        }
    }
    out
}

/// Renders a potency figure (paper Figures 6/7): normalized potency
/// metrics against the number of applied obfuscations, per level.
pub fn potency_figure(data: &ExperimentData) -> String {
    let base = &data.baseline.potency;
    let ls = levels(data);
    let mut out = String::new();
    out.push_str(&format!(
        "\n{}: normalized potency metrics vs. applied obfuscations\n",
        data.protocol.name()
    ));
    out.push_str(&format!(
        "{:>10} {:>12} {:>10} {:>10} {:>12} {:>12}\n",
        "level", "applied", "lines", "structs", "cg size", "cg depth"
    ));
    let norm = |v: f64, b: usize| if b == 0 { 0.0 } else { v / b as f64 };
    for &l in &ls {
        let applied = column(data, l, |r| r.applied as f64);
        let lines = column(data, l, |r| norm(r.potency.lines as f64, base.lines));
        let structs = column(data, l, |r| norm(r.potency.structs as f64, base.structs));
        let size = column(data, l, |r| norm(r.potency.callgraph_size as f64, base.callgraph_size));
        let depth =
            column(data, l, |r| norm(r.potency.callgraph_depth as f64, base.callgraph_depth));
        out.push_str(&format!(
            "{:>10} {:>12.1} {:>10.2} {:>10.2} {:>12.2} {:>12.2}\n",
            l, applied.mean, lines.mean, structs.mean, size.mean, depth.mean
        ));
    }
    // The shape checks of the paper: linear-ish lines/structs/size, slower
    // depth growth.
    let xs: Vec<f64> = data.runs.iter().map(|r| r.applied as f64).collect();
    let lines_n: Vec<f64> =
        data.runs.iter().map(|r| norm(r.potency.lines as f64, base.lines)).collect();
    if let Some(reg) = linear_regression(&xs, &lines_n) {
        out.push_str(&format!(
            "lines ratio vs applied: slope {:.4}, r = {:.3}\n",
            reg.slope, reg.r
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_experiment, ExperimentConfig, Protocol};

    fn data() -> ExperimentData {
        run_experiment(
            Protocol::Http,
            &ExperimentConfig {
                runs_per_level: 2,
                messages_per_run: 4,
                base_seed: 5,
                max_level: 2,
            },
        )
    }

    #[test]
    fn table_contains_all_rows() {
        let t = comparative_table(&data());
        for row in [
            "Nb. transf. per node",
            "Nb. transf. applied",
            "Nb. lines",
            "Nb. structs",
            "Call graph size",
            "Call graph depth",
            "Generation time",
            "Parsing time",
            "Serialization",
            "Buffer size",
        ] {
            assert!(t.contains(row), "missing row {row}\n{t}");
        }
    }

    #[test]
    fn cost_figure_has_fit_and_plot() {
        let f = cost_figure(&data());
        assert!(f.contains("linear fit"));
        assert!(f.contains("correlation"));
        assert!(f.contains('*'));
    }

    #[test]
    fn potency_figure_lists_levels() {
        let f = potency_figure(&data());
        assert!(f.contains("applied"));
        assert!(f.contains("cg depth"));
    }

    #[test]
    fn scatter_handles_degenerate_input() {
        assert!(scatter(&[], 5, 10).contains("no data"));
        let s = scatter(&[(1.0, 1.0)], 5, 10);
        assert!(s.contains('*'));
    }
}

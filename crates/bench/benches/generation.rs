//! Criterion microbenchmark of the generation-time cost metric (paper
//! Tables III/IV "Generation time"): specification parse + random
//! transformation selection + C library generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protoobf_codegen::generate;
use protoobf_core::Obfuscator;
use protoobf_protocols::{http, modbus};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(20);
    for (name, spec) in [("modbus", modbus::REQUEST_SPEC), ("http", http::REQUEST_SPEC)] {
        for level in [1u32, 2, 4] {
            group.bench_with_input(BenchmarkId::new(name, level), &level, |b, &level| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    let graph = protoobf_spec::parse_spec(spec).unwrap();
                    let codec =
                        Obfuscator::new(&graph).seed(seed).max_per_node(level).obfuscate().unwrap();
                    generate(&codec)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);

//! Criterion microbenchmarks of the PRE toolkit: pairwise alignment,
//! similarity matrix, clustering and format inference on a Modbus trace.

use criterion::{criterion_group, criterion_main, Criterion};
use protoobf_core::Codec;
use protoobf_pre::align::{needleman_wunsch, similarity_matrix, ScoreParams};
use protoobf_pre::cluster::upgma;
use protoobf_pre::infer::multiple_alignment;
use protoobf_protocols::{corpus, modbus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pre(c: &mut Criterion) {
    let req = Codec::identity(&modbus::request_graph());
    let mut rng = StdRng::seed_from_u64(3);
    let samples = corpus::modbus_requests(&req, 3, &mut rng);
    let msgs: Vec<&[u8]> = samples.iter().map(|s| s.wire.as_slice()).collect();
    let p = ScoreParams::default();

    c.bench_function("nw_align_pair", |b| b.iter(|| needleman_wunsch(msgs[0], msgs[1], p)));
    c.bench_function("similarity_matrix_24", |b| b.iter(|| similarity_matrix(&msgs, p)));
    let sim = similarity_matrix(&msgs, p);
    c.bench_function("upgma_24", |b| b.iter(|| upgma(&sim, 0.55)));
    c.bench_function("multiple_alignment_8", |b| b.iter(|| multiple_alignment(&msgs[..8], p)));
}

criterion_group!(benches, bench_pre);
criterion_main!(benches);

//! Criterion microbenchmarks of the cost metrics (paper Tables III/IV,
//! Figures 4/5): per-message serialization and parsing time at obfuscation
//! levels 0–4 for the evaluated protocols, with bytes/second throughput
//! reporting.
//!
//! Each protocol × level is measured on three paths:
//!
//! * `*-session` — reusable plan sessions
//!   ([`Codec::serializer`]/[`Codec::parser`]): the steady-state hot path;
//! * `*-oneshot` — the compat entry points `Codec::serialize`/`parse`
//!   (cached plan, fresh session per call);
//! * `*-walk` — the reference graph-walk interpreters the plan layer
//!   replaced (`core::serialize::serialize_seeded` / `core::parse::parse`).
//!
//! The `large` group drives a ≥64 KiB deeply repeated message so
//! plan-layer wins are measurable across message sizes, not just on the
//! small protocol PDUs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use protoobf_core::graph::{AutoValue, Boundary, GraphBuilder};
use protoobf_core::telemetry::Metrics;
use protoobf_core::value::TerminalKind;
use protoobf_core::{parse as parse_mod, serialize as serialize_mod};
use protoobf_core::{Codec, CodecService, FormatGraph, Message, Obfuscator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn codec_for(graph: &FormatGraph, level: u32) -> Codec {
    if level == 0 {
        Codec::identity(graph)
    } else {
        Obfuscator::new(graph).seed(42).max_per_node(level).obfuscate().unwrap()
    }
}

/// Benchmarks all three serialize paths and all three parse paths for one
/// prepared message.
fn bench_paths(
    group: &mut criterion::BenchmarkGroup<'_>,
    level: u32,
    codec: &Codec,
    msg: &Message<'_>,
) {
    let wire = codec.serialize_seeded(msg, 1).unwrap();
    group.throughput(Throughput::Bytes(wire.len() as u64));

    let mut session = codec.serializer();
    let mut out = Vec::new();
    group.bench_with_input(BenchmarkId::new("serialize-session", level), &level, |b, _| {
        b.iter(|| session.serialize_into_seeded(msg, &mut out, 1).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("serialize-oneshot", level), &level, |b, _| {
        b.iter(|| codec.serialize_seeded(msg, 1).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("serialize-walk", level), &level, |b, _| {
        b.iter(|| serialize_mod::serialize_seeded(codec.obf_graph(), msg, 1).unwrap())
    });

    let mut parser = codec.parser();
    group.bench_with_input(BenchmarkId::new("parse-session", level), &level, |b, _| {
        b.iter(|| {
            parser.parse_in_place(&wire).unwrap();
        })
    });
    group.bench_with_input(BenchmarkId::new("parse-oneshot", level), &level, |b, _| {
        b.iter(|| codec.parse(&wire).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("parse-walk", level), &level, |b, _| {
        b.iter(|| parse_mod::parse(codec.obf_graph(), &wire).unwrap())
    });
}

fn bench_modbus(c: &mut Criterion) {
    use protoobf_protocols::modbus;
    let graph = modbus::request_graph();
    let mut group = c.benchmark_group("modbus");
    for level in [0u32, 1, 2, 4] {
        let codec = codec_for(&graph, level);
        let mut rng = StdRng::seed_from_u64(7);
        let msg = modbus::build_request(&codec, modbus::Function::WriteMultipleRegisters, &mut rng);
        bench_paths(&mut group, level, &codec, &msg);
    }
    group.finish();
}

fn bench_http(c: &mut Criterion) {
    use protoobf_protocols::http;
    let graph = http::request_graph();
    let mut group = c.benchmark_group("http");
    for level in [0u32, 1, 2, 4] {
        let codec = codec_for(&graph, level);
        let mut rng = StdRng::seed_from_u64(7);
        let msg = http::build_request(&codec, &mut rng);
        bench_paths(&mut group, level, &codec, &msg);
    }
    group.finish();
}

fn bench_dns(c: &mut Criterion) {
    use protoobf_protocols::dns;
    let graph = dns::response_graph();
    let mut group = c.benchmark_group("dns");
    for level in [0u32, 1, 2, 4] {
        let codec = codec_for(&graph, level);
        let mut rng = StdRng::seed_from_u64(7);
        let msg = dns::build_response(&codec, &mut rng);
        bench_paths(&mut group, level, &codec, &msg);
    }
    group.finish();
}

/// A bulk-transfer style spec: a counted table of 30-byte records nested
/// one level deep, plus a rest-of-message payload. At 2048 records the
/// wire is ≥64 KiB.
fn bulk_graph() -> FormatGraph {
    let mut b = GraphBuilder::new("bulk");
    let root = b.root_sequence("m", Boundary::End);
    let count = b.uint_be(root, "count", 2);
    let tab = b.tabular(root, "records", count);
    b.set_auto(count, AutoValue::CounterOf(tab));
    let rec = b.sequence(tab, "record", Boundary::Delegated);
    b.uint_be(rec, "key", 4);
    b.uint_be(rec, "flags", 2);
    b.terminal(rec, "payload", TerminalKind::Bytes, Boundary::Fixed(24));
    b.terminal(root, "tail", TerminalKind::Bytes, Boundary::End);
    b.build().unwrap()
}

/// The ≥64 KiB bulk message used by the `large` and `service` groups.
fn bulk_message(codec: &Codec) -> Message<'_> {
    let mut msg = codec.message_seeded(3);
    let mut rng = StdRng::seed_from_u64(5);
    for i in 0..2048u64 {
        msg.set_uint(&format!("records[{i}].key"), i).unwrap();
        msg.set_uint(&format!("records[{i}].flags"), i & 0xFFFF).unwrap();
        let payload: Vec<u8> = (0..24).map(|_| rand::Rng::gen::<u8>(&mut rng)).collect();
        msg.set(&format!("records[{i}].payload"), payload).unwrap();
    }
    msg.set("tail", vec![0xAB; 4096]).unwrap();
    msg
}

fn bench_large(c: &mut Criterion) {
    let graph = bulk_graph();
    let mut group = c.benchmark_group("large");
    group.sample_size(10);
    for level in [0u32, 2] {
        let codec = codec_for(&graph, level);
        let msg = bulk_message(&codec);
        let wire = codec.serialize_seeded(&msg, 1).unwrap();
        assert!(wire.len() >= 64 * 1024, "large scenario must be ≥64 KiB, got {}", wire.len());
        bench_paths(&mut group, level, &codec, &msg);
    }
    group.finish();
}

/// Multi-threaded service scenario: W workers share one [`CodecService`]
/// (one compiled plan, pooled sessions) and round-trip the 64 KiB bulk
/// message. The reported bytes/sec is the **aggregate** round-trip
/// throughput (each message is serialized and parsed once); near-linear
/// growth from 1 → 4 workers on a multi-core host demonstrates that the
/// shared plan and sharded pools do not serialize the hot path.
fn bench_service(c: &mut Criterion) {
    const PER_WORKER: u64 = 4;
    let graph = bulk_graph();
    let service = CodecService::new(codec_for(&graph, 2));
    let msg = bulk_message(service.codec());
    let wire = service.codec().serialize_seeded(&msg, 1).unwrap();
    {
        let mut group = c.benchmark_group("service");
        group.sample_size(10);
        for workers in [1usize, 2, 4, 8] {
            group.throughput(Throughput::Bytes(wire.len() as u64 * workers as u64 * PER_WORKER));
            group.bench_with_input(
                BenchmarkId::new("roundtrip-64KiB", workers),
                &workers,
                |b, &w| {
                    b.iter(|| {
                        std::thread::scope(|scope| {
                            for _ in 0..w {
                                scope.spawn(|| {
                                    let mut serializer = service.serializer();
                                    let mut parser = service.parser();
                                    let mut out = Vec::new();
                                    for _ in 0..PER_WORKER {
                                        serializer
                                            .serialize_into_seeded(&msg, &mut out, 1)
                                            .unwrap();
                                        parser.parse_in_place(&out).unwrap();
                                    }
                                });
                            }
                        })
                    })
                },
            );
        }

        // The same 8-worker round trip with the full telemetry plane
        // wired in exactly as the transport relay wires it: stage
        // timers, frame-shape histograms and message counters per
        // message. Benched next to the plain run so the overhead guard
        // below compares medians from the *same* host and load.
        let metrics = Metrics::new();
        group.throughput(Throughput::Bytes(wire.len() as u64 * 8 * PER_WORKER));
        group.bench_with_input(
            BenchmarkId::new("roundtrip-64KiB-telemetry", 8),
            &8usize,
            |b, &w| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for _ in 0..w {
                            scope.spawn(|| {
                                let mut serializer = service.serializer();
                                let mut parser = service.parser();
                                let mut out = Vec::new();
                                for _ in 0..PER_WORKER {
                                    let serialize_t = metrics.stages.serialize.start();
                                    serializer.serialize_into_seeded(&msg, &mut out, 1).unwrap();
                                    metrics.stages.serialize.finish(serialize_t);
                                    metrics.frame_bytes_out.record(out.len() as u64);
                                    Metrics::add(&metrics.messages_out, 1);
                                    let parse_t = metrics.stages.parse.start();
                                    parser.parse_in_place(&out).unwrap();
                                    metrics.stages.parse.finish(parse_t);
                                    metrics.frame_bytes_in.record(out.len() as u64);
                                    Metrics::add(&metrics.messages_in, 1);
                                }
                            });
                        }
                    })
                })
            },
        );
        group.finish();
    }
    // Telemetry-overhead guard: the instrumented 8-worker run must stay
    // within noise of the plain one (relaxed atomics and 1-in-32
    // sampled timers on 64 KiB messages are sub-percent work; 1.5x is a
    // generous noise floor for a loaded CI host). A regression here
    // means instrumentation crept onto the hot path — a lock, an
    // allocation, an unsampled syscall.
    let median = |suffix: &str| {
        c.results().iter().find(|r| r.name.contains(suffix)).map(|r| r.stats.median_ns)
    };
    if let (Some(plain), Some(instrumented)) =
        (median("roundtrip-64KiB/8"), median("roundtrip-64KiB-telemetry/8"))
    {
        let ratio = instrumented / plain.max(f64::MIN_POSITIVE);
        eprintln!("telemetry overhead on the 8-worker service roundtrip: {ratio:.2}x");
        assert!(
            ratio < 1.5,
            "telemetry instrumentation must be within noise of the plain hot path \
             (plain {plain:.0} ns vs instrumented {instrumented:.0} ns, ratio {ratio:.2}x)"
        );
    }
    // The sharded pools are lock-free Treiber stacks: even the 8-worker
    // run above must observe zero pool contention. Asserting it here
    // keeps the claim load-bearing — a regression back to blocking
    // checkout fails the bench, not just a dashboard.
    let stats = service.stats();
    assert_eq!(
        stats.pool_contention, 0,
        "lock-free session pools must report zero contention (stats: {stats:?})"
    );
    // Trajectory file for cross-run comparison of the serving layer
    // (min/median/max + aggregate throughput per worker count). Runs
    // that filtered this group out write nothing (export_json skips
    // empty prefixes), so CI can point PROTOOBF_BENCH_JSON at a
    // different file per filtered invocation.
    let path =
        std::env::var("PROTOOBF_BENCH_JSON").unwrap_or_else(|_| "BENCH_service.json".to_string());
    match c.export_json(&path, "service/") {
        Ok(true) => eprintln!("service trajectory written to {path}"),
        Ok(false) => {}
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Gateway relay scenario: the per-message transcode step on the 64 KiB
/// bulk message — compiled copy program vs. the graph-walk reference it
/// replaced — plus the **aggregate gateway round trip** (decode the
/// clear frame, transcode, encode obfuscated; then the decode gateway's
/// inverse back to clear), which is exactly the per-message work a
/// `Relay` pair performs. Throughput is bytes of relayed payload per
/// second; the round trip counts the payload once per gateway.
fn bench_relay(c: &mut Criterion) {
    let graph = bulk_graph();
    let clear = Codec::identity(&graph);
    let obf = codec_for(&graph, 2);
    let msg = bulk_message(&clear);
    let clear_wire = clear.serialize_seeded(&msg, 1).unwrap();
    assert!(clear_wire.len() >= 64 * 1024, "bulk scenario must be ≥64 KiB");
    {
        let mut group = c.benchmark_group("relay");
        group.sample_size(10);
        group.throughput(Throughput::Bytes(clear_wire.len() as u64));

        // The relay transcodes *parsed* messages; bench against one.
        let mut parser = clear.parser();
        parser.parse_in_place(&clear_wire).unwrap();
        let src = parser.take_message();

        let mut compiled_dst = obf.transcode_target(&clear).unwrap();
        group.bench_with_input(BenchmarkId::new("transcode-compiled", "64KiB"), &0u32, |b, _| {
            b.iter(|| src.transcode_into(&mut compiled_dst).unwrap())
        });
        let mut walk_dst = obf.message();
        group.bench_with_input(BenchmarkId::new("transcode-walk", "64KiB"), &0u32, |b, _| {
            b.iter(|| src.transcode_into_walk(&mut walk_dst).unwrap())
        });

        // Full gateway pair: encode side (clear in → obf out) and decode
        // side (obf in → clear out), all sessions and targets long-lived.
        let mut clear_parser = clear.parser();
        let mut obf_parser = obf.parser();
        let mut obf_serializer = obf.serializer();
        let mut clear_serializer = clear.serializer();
        let mut to_obf = obf.transcode_target(&clear).unwrap();
        let mut to_clear = clear.transcode_target(&obf).unwrap();
        let mut obf_wire = Vec::new();
        let mut back_wire = Vec::new();
        group.throughput(Throughput::Bytes(2 * clear_wire.len() as u64));
        group.bench_with_input(BenchmarkId::new("gateway-roundtrip", "64KiB"), &0u32, |b, _| {
            b.iter(|| {
                let inbound = clear_parser.parse_in_place(&clear_wire).unwrap();
                inbound.transcode_into(&mut to_obf).unwrap();
                obf_serializer.serialize_into_seeded(&to_obf, &mut obf_wire, 1).unwrap();
                let upstream = obf_parser.parse_in_place(&obf_wire).unwrap();
                upstream.transcode_into(&mut to_clear).unwrap();
                clear_serializer.serialize_into_seeded(&to_clear, &mut back_wire, 1).unwrap();
            })
        });
        group.finish();
    }
    // Relay-throughput trajectory, tracked from this PR onward. Same env
    // override as the service group; CI runs the two groups as separate
    // filtered invocations so each writes its own file. In an
    // *unfiltered* run both groups record results — honor the override
    // only when the service group did not already claim it, so one run
    // can never silently clobber the other group's trajectory.
    let service_also_ran = c.results().iter().any(|r| r.name.starts_with("service/"));
    let path = match std::env::var("PROTOOBF_BENCH_JSON") {
        Ok(p) if !service_also_ran => p,
        _ => "BENCH_relay.json".to_string(),
    };
    match c.export_json(&path, "relay/") {
        Ok(true) => eprintln!("relay trajectory written to {path}"),
        Ok(false) => {}
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Idle-wake cost of the event loop's two readiness backends — the
/// tentpole claim of the epoll path. With `CONNS` established-but-idle
/// connections, one **scan** pass costs `CONNS` read syscalls that all
/// return `WouldBlock`, while one **epoll** pass costs a single
/// `epoll_wait` that returns zero events. The asserted ≥5× gap is what
/// makes the kernel-readiness backend worth its registration
/// bookkeeping; in practice the gap is closer to the fd count.
fn bench_evloop(c: &mut Criterion) {
    use protoobf_transport::sys;
    use std::io::Read;
    use std::net::{TcpListener, TcpStream};

    const CONNS: usize = 1024;
    // Two fds per pair plus the listener and slack; best-effort — on a
    // capped host the connect loop below fails loudly instead.
    let _ = sys::raise_nofile_limit(CONNS as u64 * 2 + 512);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut clients = Vec::with_capacity(CONNS);
    let mut servers = Vec::with_capacity(CONNS);
    for _ in 0..CONNS {
        clients.push(TcpStream::connect(addr).unwrap());
        let (s, _) = listener.accept().unwrap();
        s.set_nonblocking(true).unwrap();
        servers.push(s);
    }

    {
        let mut group = c.benchmark_group("evloop");
        group.throughput(Throughput::Elements(CONNS as u64));

        let mut buf = [0u8; 1];
        group.bench_with_input(BenchmarkId::new("idle-wake-scan", CONNS), &CONNS, |b, _| {
            b.iter(|| {
                let mut ready = 0usize;
                for s in &servers {
                    match (&*s).read(&mut buf) {
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        _ => ready += 1,
                    }
                }
                ready
            })
        });

        #[cfg(unix)]
        if sys::supported() {
            use std::os::fd::AsRawFd;
            let epoll = sys::Epoll::new().unwrap();
            for (i, s) in servers.iter().enumerate() {
                let interest = sys::flags::IN | sys::flags::RDHUP | sys::flags::ET;
                epoll.add(s.as_raw_fd(), interest, i as u64).unwrap();
            }
            let mut events = [sys::EpollEvent::zeroed(); 64];
            group.bench_with_input(BenchmarkId::new("idle-wake-epoll", CONNS), &CONNS, |b, _| {
                b.iter(|| epoll.wait(&mut events, Some(std::time::Duration::ZERO)).unwrap())
            });
        }
        group.finish();
    }

    // Claim guard: the README/ISSUE advertise kernel readiness as ≥5×
    // cheaper per idle wake than scanning. Enforce it whenever both
    // backends actually ran (the epoll side is compile-time gated).
    let median = |suffix: &str| {
        c.results().iter().find(|r| r.name.contains(suffix)).map(|r| r.stats.median_ns)
    };
    if let (Some(scan), Some(epoll)) = (median("idle-wake-scan"), median("idle-wake-epoll")) {
        let ratio = scan / epoll.max(f64::MIN_POSITIVE);
        eprintln!("evloop idle-wake scan/epoll cost ratio at {CONNS} conns: {ratio:.1}x");
        assert!(
            ratio >= 5.0,
            "epoll idle wake must be >=5x cheaper than the scan pass \
             (scan {scan:.0} ns vs epoll {epoll:.0} ns, ratio {ratio:.1}x)"
        );
    }

    // Trajectory export, same claim chain as the service and relay
    // groups: honor PROTOOBF_BENCH_JSON only when no earlier group in
    // this run already wrote to it, so filtered CI invocations each get
    // their own file and unfiltered runs never clobber one another.
    let earlier_claimed =
        c.results().iter().any(|r| r.name.starts_with("service/") || r.name.starts_with("relay/"));
    let path = match std::env::var("PROTOOBF_BENCH_JSON") {
        Ok(p) if !earlier_claimed => p,
        _ => "BENCH_evloop.json".to_string(),
    };
    match c.export_json(&path, "evloop/") {
        Ok(true) => eprintln!("evloop trajectory written to {path}"),
        Ok(false) => {}
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Covert-tunnel cost metrics: **goodput** (payload bytes per second
/// through the full encode → serialize → parse → decode covert path) and
/// **overhead ratio** (cover wire bytes per payload byte) for every
/// builtin protocol at obfuscation levels 0–3.
///
/// The ratio is a deterministic property of (protocol, level, seed) —
/// the encoder's cover sampling is seeded — so it is computed once in
/// setup and folded into the benchmark *name* (`-ovhN.NN`), which is how
/// it reaches `BENCH_tunnel.json` (the trajectory format only carries
/// timing stats and declared throughput).
fn bench_tunnel(c: &mut Criterion) {
    use protoobf_core::tunnel::{encode_stream, TunnelDecoder};
    use protoobf_protocols::{dns, http, modbus};

    // Deterministic 4 KiB payload: enough to span many cover messages on
    // every builtin without dominating CI wall-clock.
    let payload: Vec<u8> = (0..4096usize).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
    let builtins: [(&str, FormatGraph); 6] = [
        ("dns-query", dns::query_graph()),
        ("dns-response", dns::response_graph()),
        ("http-request", http::request_graph()),
        ("http-response", http::response_graph()),
        ("modbus-request", modbus::request_graph()),
        ("modbus-response", modbus::response_graph()),
    ];
    {
        let mut group = c.benchmark_group("tunnel");
        group.sample_size(10);
        for (name, graph) in &builtins {
            for level in [0u32, 1, 2, 3] {
                let codec = codec_for(graph, level);
                // Overhead in setup: serialized cover bytes per payload
                // byte at this (protocol, level), seed fixed.
                let msgs = encode_stream(&codec, &payload, 7).unwrap();
                let wire_bytes: usize =
                    msgs.iter().map(|m| codec.serialize_seeded(m, 1).unwrap().len()).sum();
                let ratio = wire_bytes as f64 / payload.len() as f64;
                group.throughput(Throughput::Bytes(payload.len() as u64));
                group.bench_with_input(
                    BenchmarkId::new(format!("goodput-{name}-ovh{ratio:.2}"), level),
                    &level,
                    |b, _| {
                        b.iter(|| {
                            let msgs = encode_stream(&codec, &payload, 7).unwrap();
                            let mut serializer = codec.serializer();
                            let mut parser = codec.parser();
                            let mut dec = TunnelDecoder::new(&codec).unwrap();
                            let mut wire = Vec::new();
                            let mut out = Vec::with_capacity(payload.len());
                            for m in &msgs {
                                serializer.serialize_into_seeded(m, &mut wire, 1).unwrap();
                                dec.accept(parser.parse_in_place(&wire).unwrap()).unwrap();
                                dec.take_ready(&mut out);
                            }
                            assert!(dec.is_complete());
                            assert_eq!(out.len(), payload.len());
                            out
                        })
                    },
                );
            }
        }
        group.finish();
    }
    // Tunnel-goodput trajectory, same claim chain as the earlier groups:
    // honor PROTOOBF_BENCH_JSON only when no earlier group in this run
    // already wrote to it.
    let earlier_claimed = c.results().iter().any(|r| {
        r.name.starts_with("service/")
            || r.name.starts_with("relay/")
            || r.name.starts_with("evloop/")
    });
    let path = match std::env::var("PROTOOBF_BENCH_JSON") {
        Ok(p) if !earlier_claimed => p,
        _ => "BENCH_tunnel.json".to_string(),
    };
    match c.export_json(&path, "tunnel/") {
        Ok(true) => eprintln!("tunnel trajectory written to {path}"),
        Ok(false) => {}
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_modbus,
    bench_http,
    bench_dns,
    bench_large,
    bench_service,
    bench_relay,
    bench_evloop,
    bench_tunnel
);
criterion_main!(benches);

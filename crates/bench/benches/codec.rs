//! Criterion microbenchmarks of the cost metrics (paper Tables III/IV,
//! Figures 4/5): per-message serialization and parsing time at obfuscation
//! levels 0–4, for both evaluated protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protoobf_core::{Codec, Obfuscator};
use protoobf_protocols::{http, modbus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn codec_for(graph: &protoobf_core::FormatGraph, level: u32) -> Codec {
    if level == 0 {
        Codec::identity(graph)
    } else {
        Obfuscator::new(graph).seed(42).max_per_node(level).obfuscate().unwrap()
    }
}

fn bench_modbus(c: &mut Criterion) {
    let graph = modbus::request_graph();
    let mut group = c.benchmark_group("modbus");
    for level in [0u32, 1, 2, 4] {
        let codec = codec_for(&graph, level);
        let mut rng = StdRng::seed_from_u64(7);
        let msg = modbus::build_request(&codec, modbus::Function::WriteMultipleRegisters, &mut rng);
        let wire = codec.serialize_seeded(&msg, 1).unwrap();
        group.bench_with_input(BenchmarkId::new("serialize", level), &level, |b, _| {
            b.iter(|| codec.serialize_seeded(&msg, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parse", level), &level, |b, _| {
            b.iter(|| codec.parse(&wire).unwrap())
        });
    }
    group.finish();
}

fn bench_http(c: &mut Criterion) {
    let graph = http::request_graph();
    let mut group = c.benchmark_group("http");
    for level in [0u32, 1, 2, 4] {
        let codec = codec_for(&graph, level);
        let mut rng = StdRng::seed_from_u64(7);
        let msg = http::build_request(&codec, &mut rng);
        let wire = codec.serialize_seeded(&msg, 1).unwrap();
        group.bench_with_input(BenchmarkId::new("serialize", level), &level, |b, _| {
            b.iter(|| codec.serialize_seeded(&msg, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parse", level), &level, |b, _| {
            b.iter(|| codec.parse(&wire).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modbus, bench_http);
criterion_main!(benches);

//! Known-answer tests for the PRE scoring pipeline: hand-built message
//! sets with externally computed cluster counts, memberships, and
//! entropy bounds, so the alignment → clustering → inference chain is
//! pinned end to end (not just per-module).

use protoobf_pre::align::{similarity_matrix, ScoreParams};
use protoobf_pre::cluster::{assignments, upgma};
use protoobf_pre::entropy::{column_entropy, mean_entropy};
use protoobf_pre::infer::{multiple_alignment, InferredField};
use protoobf_pre::resilience::{attack, AttackParams};
use protoobf_pre::score::{adjusted_rand_index, purity, type_count};

/// Two byte-level message families an analyst must separate: HTTP-ish
/// text requests and fixed-layout binary frames.
fn two_family_trace() -> (Vec<Vec<u8>>, Vec<&'static str>) {
    let mut msgs: Vec<Vec<u8>> = Vec::new();
    let mut labels = Vec::new();
    for path in ["a", "bb", "ccc", "dddd"] {
        msgs.push(format!("GET /{path} HTTP/1.0").into_bytes());
        labels.push("http");
    }
    for i in 0u8..4 {
        msgs.push(vec![0xAA, 0x55, i, 0x00, 0x10, i.wrapping_mul(3)]);
        labels.push("bin");
    }
    (msgs, labels)
}

#[test]
fn two_families_cluster_into_exactly_two_groups() {
    let (msgs, labels) = two_family_trace();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let sim = similarity_matrix(&refs, ScoreParams::default());
    let clusters = upgma(&sim, 0.55);
    assert_eq!(clusters.len(), 2, "expected the two families, got {clusters:?}");
    // Known memberships: messages 0..4 are HTTP, 4..8 binary.
    assert_eq!(clusters[0], vec![0, 1, 2, 3]);
    assert_eq!(clusters[1], vec![4, 5, 6, 7]);
    assert_eq!(purity(&clusters, &labels), 1.0);
    assert!((adjusted_rand_index(&clusters, &labels) - 1.0).abs() < 1e-9);
    assert_eq!(type_count(&labels), 2);
    let assign = assignments(&clusters, refs.len());
    assert_eq!(assign, vec![0, 0, 0, 0, 1, 1, 1, 1]);
}

#[test]
fn http_family_profile_recovers_the_known_format() {
    let (msgs, _) = two_family_trace();
    let refs: Vec<&[u8]> = msgs[..4].iter().map(Vec::as_slice).collect();
    let p = multiple_alignment(&refs, ScoreParams::default());
    let fields = p.fields();
    // Known answer: static "GET /", a 1–4 byte variable path, then the
    // static " HTTP/1.0" suffix.
    assert_eq!(fields.first(), Some(&InferredField::Static(b"GET /".to_vec())));
    assert!(
        fields.iter().any(|f| matches!(f, InferredField::Variable { min_len: 1, max_len: 4 })),
        "variable path not recovered: {fields:?}"
    );
    assert!(
        matches!(fields.last(), Some(InferredField::Static(s)) if s.ends_with(b"HTTP/1.0")),
        "static suffix not recovered: {fields:?}"
    );
    assert!(p.static_needle_count(b"HTTP") >= 1);
}

#[test]
fn entropy_bounds_on_known_columns() {
    // Columns built by hand: [constant 0x42], [two equiprobable values],
    // [four equiprobable values] → exactly 0, 1, and 2 bits. Value
    // ranges are disjoint per column so the aligner can't cross-match.
    let msgs: Vec<Vec<u8>> =
        (0u8..8).map(|i| vec![0x42, if i % 2 == 0 { 0x10 } else { 0x20 }, 0x80 + i % 4]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let p = multiple_alignment(&refs, ScoreParams::default());
    assert_eq!(p.columns.len(), 3, "identical-length messages must align column-for-column");
    assert!(column_entropy(&p, 0).abs() < 1e-9);
    assert!((column_entropy(&p, 1) - 1.0).abs() < 1e-9);
    assert!((column_entropy(&p, 2) - 2.0).abs() < 1e-9);
    let mean = mean_entropy(&p);
    assert!((mean - 1.0).abs() < 1e-9, "mean of 0,1,2 bits is 1.0, got {mean}");
}

#[test]
fn attack_grades_the_known_trace() {
    let (msgs, labels) = two_family_trace();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let labels_ref: Vec<&str> = labels.clone();
    let s = attack(&refs, &labels_ref, &AttackParams::default());
    assert_eq!(s.messages, 8);
    assert_eq!(s.types, 2);
    assert_eq!(s.clusters, 2);
    assert_eq!(s.purity, 1.0);
    assert!((s.ari - 1.0).abs() < 1e-9);
    // The binary family is 4/6 static by construction and HTTP is
    // mostly static: the recovered structure must reflect that.
    assert!(s.static_fraction > 0.5, "static_fraction = {}", s.static_fraction);
    assert!(s.score > 0.6, "attack must succeed on this trace (score = {})", s.score);
}

//! # protoobf-pre
//!
//! A protocol reverse-engineering (PRE) toolkit in the style of the
//! network-based inference tools the paper defends against (PI project,
//! Netzob — §II): Needleman–Wunsch sequence alignment, UPGMA message
//! classification, and alignment-based message format inference, plus the
//! scoring metrics used to quantify the resilience experiment (§VII-D).
//!
//! The pipeline mirrors figure 1 of the paper: observation (a trace of
//! byte strings) → classification ([`cluster::upgma`] on
//! [`align::similarity_matrix`]) → format inference
//! ([`infer::multiple_alignment`] per class).
//!
//! ```
//! use protoobf_pre::align::{similarity_matrix, ScoreParams};
//! use protoobf_pre::cluster::upgma;
//! use protoobf_pre::score::purity;
//!
//! let msgs: Vec<&[u8]> = vec![b"GET /a", b"GET /b", b"PUT /c", b"PUT /d"];
//! let labels = ["get", "get", "put", "put"];
//! let sim = similarity_matrix(&msgs, ScoreParams::default());
//! let clusters = upgma(&sim, 0.7);
//! assert_eq!(purity(&clusters, &labels), 1.0);
//! ```

pub mod align;
pub mod cluster;
pub mod entropy;
pub mod infer;
pub mod resilience;
pub mod score;

pub use align::{needleman_wunsch, similarity, similarity_matrix, Alignment, ScoreParams};
pub use cluster::upgma;
pub use infer::{multiple_alignment, InferredField, Profile};
pub use resilience::{attack, AttackParams, AttackScore};
pub use score::{adjusted_rand_index, purity};

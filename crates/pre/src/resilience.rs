//! The end-to-end PRE inference attack, packaged as a resilience scorer.
//!
//! Chains the toolkit exactly the way a Netzob-style analyst would (paper
//! figure 1): observe a trace → classify it ([`upgma`] over
//! [`similarity_matrix`]) → infer per-class formats
//! ([`multiple_alignment`]) — then grades the attack against ground
//! truth. The result is one number per (protocol, obfuscation level)
//! cell: the **attacker success score**, high when the trace yields to
//! inference and low when the obfuscation holds. Exported by
//! `protoobf resilience` as the `BENCH_resilience.json` trajectory, the
//! security analogue of the perf curves (§VII-D).

use crate::align::{similarity_matrix, ScoreParams};
use crate::cluster::upgma;
use crate::entropy::{mean_entropy, random_fraction};
use crate::infer::multiple_alignment;
use crate::score::{adjusted_rand_index, purity, type_count};

/// Knobs of the simulated analyst.
#[derive(Debug, Clone, Copy)]
pub struct AttackParams {
    /// Alignment scoring used for both classification and inference.
    pub score: ScoreParams,
    /// UPGMA similarity threshold: clusters stop merging below it.
    pub threshold: f64,
}

impl Default for AttackParams {
    fn default() -> Self {
        AttackParams { score: ScoreParams::default(), threshold: 0.55 }
    }
}

/// The graded outcome of one inference attack.
#[derive(Debug, Clone, Copy)]
pub struct AttackScore {
    /// Messages observed.
    pub messages: usize,
    /// Ground-truth message types in the trace.
    pub types: usize,
    /// Clusters the analyst recovered.
    pub clusters: usize,
    /// Cluster label purity (1.0 = every cluster label-pure; inflated by
    /// over-splitting, so read together with `ari`).
    pub purity: f64,
    /// Adjusted Rand index vs ground truth (1.0 perfect, ≈0 random).
    pub ari: f64,
    /// Size-weighted static-column fraction over the per-cluster format
    /// profiles — how much fixed structure the analyst recovered.
    pub static_fraction: f64,
    /// Size-weighted mean column entropy (bits, 0–8) of the profiles.
    pub mean_entropy: f64,
    /// Size-weighted fraction of columns guessed `Random`.
    pub random_fraction: f64,
    /// Composite attacker success in `[0, 1]`: classification quality
    /// plus recovered structure minus apparent randomness. Higher means
    /// the attack worked; obfuscation aims to push it down.
    pub score: f64,
}

/// Runs the full inference attack on a labeled trace and grades it.
///
/// `labels[i]` is the ground-truth type of `messages[i]` (unseen by the
/// attack itself — only by the grading). Format profiles are inferred
/// per recovered cluster of size ≥ 2; an analyst learns no generalizable
/// structure from singletons, so an all-singleton classification grades
/// as zero recovered structure.
pub fn attack(messages: &[&[u8]], labels: &[&str], params: &AttackParams) -> AttackScore {
    assert_eq!(messages.len(), labels.len(), "one label per message");
    let sim = similarity_matrix(messages, params.score);
    let clusters = upgma(&sim, params.threshold);
    let purity = purity(&clusters, labels);
    let ari = adjusted_rand_index(&clusters, labels);

    // Per-cluster format inference, size-weighted over clusters the
    // analyst can actually generalize from.
    let (mut weight, mut w_static, mut w_entropy, mut w_random) = (0usize, 0.0, 0.0, 0.0);
    for cluster in clusters.iter().filter(|c| c.len() >= 2) {
        let group: Vec<&[u8]> = cluster.iter().map(|&m| messages[m]).collect();
        let profile = multiple_alignment(&group, params.score);
        let w = cluster.len();
        weight += w;
        w_static += profile.static_fraction() * w as f64;
        w_entropy += mean_entropy(&profile) * w as f64;
        w_random += random_fraction(&profile) * w as f64;
    }
    let (static_fraction, entropy, random) = if weight > 0 {
        (w_static / weight as f64, w_entropy / weight as f64, w_random / weight as f64)
    } else {
        // Nothing but singletons: zero structure, maximal apparent noise.
        (0.0, 8.0, 1.0)
    };

    // The composite weighs classification quality as the paper does
    // (§VII-D leans on clustering as the leverage point), then the
    // recovered structure, then how much of the rest still looks
    // non-random. Weights are arbitrary but pinned: the *trajectory
    // across levels* is the signal, not the absolute value.
    let score = 0.5 * ari.clamp(0.0, 1.0) + 0.3 * static_fraction + 0.2 * (1.0 - random);

    AttackScore {
        messages: messages.len(),
        types: type_count(labels),
        clusters: clusters.len(),
        purity,
        ari,
        static_fraction,
        mean_entropy: entropy,
        random_fraction: random,
        score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_trace() -> (Vec<Vec<u8>>, Vec<&'static str>) {
        let mut msgs = Vec::new();
        let mut labels = Vec::new();
        for i in 0u8..6 {
            msgs.push(format!("GET /page/{i} HTTP/1.1").into_bytes());
            labels.push("http");
        }
        for i in 0u8..6 {
            msgs.push(vec![0x00, i, 0x00, 0x06, 0x01, 0x03, i, 0x10]);
            labels.push("modbus");
        }
        (msgs, labels)
    }

    /// Per-message deterministic "obfuscation": keyed byte scrambling
    /// destroying cross-message alignment, like random shares do.
    fn scramble(msgs: &[Vec<u8>]) -> Vec<Vec<u8>> {
        msgs.iter()
            .enumerate()
            .map(|(i, m)| {
                let mut state = 0x9E37u16.wrapping_mul(i as u16 + 1);
                m.iter()
                    .map(|&b| {
                        state = state.wrapping_mul(25173).wrapping_add(13849);
                        b ^ (state >> 8) as u8
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn plain_trace_yields_to_the_attack() {
        let (msgs, labels) = mixed_trace();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let s = attack(&refs, &labels, &AttackParams::default());
        assert_eq!(s.messages, 12);
        assert_eq!(s.types, 2);
        assert!(s.ari > 0.8, "plain trace should classify cleanly (ari = {})", s.ari);
        assert!(s.static_fraction > 0.4, "static structure visible ({})", s.static_fraction);
        assert!(s.score > 0.5, "attack should succeed on plain traffic ({})", s.score);
    }

    #[test]
    fn scrambled_trace_resists_the_attack() {
        let (msgs, labels) = mixed_trace();
        let scrambled = scramble(&msgs);
        let refs: Vec<&[u8]> = scrambled.iter().map(Vec::as_slice).collect();
        let s = attack(&refs, &labels, &AttackParams::default());
        let plain_refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let plain = attack(&plain_refs, &labels, &AttackParams::default());
        assert!(
            s.score < plain.score - 0.2,
            "scrambling must measurably hurt the attacker (plain {} vs scrambled {})",
            plain.score,
            s.score
        );
    }

    #[test]
    fn attack_score_is_bounded() {
        let (msgs, labels) = mixed_trace();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        for threshold in [0.1, 0.5, 0.9] {
            let p = AttackParams { threshold, ..AttackParams::default() };
            let s = attack(&refs, &labels, &p);
            assert!((0.0..=1.0).contains(&s.score), "score out of range: {}", s.score);
            assert!((0.0..=1.0).contains(&s.static_fraction));
            assert!((0.0..=1.0).contains(&s.random_fraction));
        }
    }
}

//! Scoring inference quality against ground truth: classification metrics
//! (purity, adjusted Rand index) used to quantify the paper's resilience
//! claim (§VII-D) instead of an anecdotal expert report.

use std::collections::HashMap;

/// Fraction of messages whose cluster's majority label matches their own:
/// 1.0 means every cluster is label-pure.
pub fn purity(clusters: &[Vec<usize>], labels: &[&str]) -> f64 {
    let n: usize = clusters.iter().map(Vec::len).sum();
    if n == 0 {
        return 0.0;
    }
    let mut agree = 0usize;
    for cluster in clusters {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for &m in cluster {
            *counts.entry(labels[m]).or_insert(0) += 1;
        }
        agree += counts.values().copied().max().unwrap_or(0);
    }
    agree as f64 / n as f64
}

/// Adjusted Rand index between the clustering and the ground-truth labels:
/// 1.0 for identical partitions, ≈0 for random assignment, negative for
/// worse-than-random.
pub fn adjusted_rand_index(clusters: &[Vec<usize>], labels: &[&str]) -> f64 {
    let n: usize = clusters.iter().map(Vec::len).sum();
    if n < 2 {
        return 1.0;
    }
    // Contingency table clusters × labels.
    let mut label_ids: HashMap<&str, usize> = HashMap::new();
    for &l in labels {
        let next = label_ids.len();
        label_ids.entry(l).or_insert(next);
    }
    let k = label_ids.len();
    let mut table = vec![vec![0usize; k]; clusters.len()];
    for (ci, cluster) in clusters.iter().enumerate() {
        for &m in cluster {
            table[ci][label_ids[labels[m]]] += 1;
        }
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1)) / 2;
    let sum_ij: usize = table.iter().flatten().map(|&x| choose2(x)).sum();
    let sum_i: usize = table.iter().map(|row| choose2(row.iter().sum())).sum();
    let sum_j: usize = (0..k).map(|j| choose2(table.iter().map(|row| row[j]).sum())).sum();
    let total = choose2(n) as f64;
    let expected = (sum_i as f64 * sum_j as f64) / total;
    let max_index = (sum_i as f64 + sum_j as f64) / 2.0;
    if (max_index - expected).abs() < f64::EPSILON {
        return 1.0;
    }
    (sum_ij as f64 - expected) / (max_index - expected)
}

/// Number of ground-truth types in a label set.
pub fn type_count(labels: &[&str]) -> usize {
    let mut set: Vec<&str> = labels.to_vec();
    set.sort_unstable();
    set.dedup();
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let clusters = vec![vec![0, 1], vec![2, 3]];
        let labels = ["a", "a", "b", "b"];
        assert_eq!(purity(&clusters, &labels), 1.0);
        assert!((adjusted_rand_index(&clusters, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_cluster_of_mixed_labels() {
        let clusters = vec![vec![0, 1, 2, 3]];
        let labels = ["a", "a", "b", "b"];
        assert_eq!(purity(&clusters, &labels), 0.5);
        let ari = adjusted_rand_index(&clusters, &labels);
        assert!(ari.abs() < 0.01, "ari = {ari}");
    }

    #[test]
    fn all_singletons_are_pure_but_uninformative() {
        let clusters: Vec<Vec<usize>> = (0..4).map(|i| vec![i]).collect();
        let labels = ["a", "a", "b", "b"];
        assert_eq!(purity(&clusters, &labels), 1.0);
        let ari = adjusted_rand_index(&clusters, &labels);
        assert!(ari.abs() < 0.01, "ari = {ari}");
    }

    #[test]
    fn partial_agreement_in_between() {
        let clusters = vec![vec![0, 1, 2], vec![3]];
        let labels = ["a", "a", "b", "b"];
        let p = purity(&clusters, &labels);
        assert!(p > 0.5 && p < 1.0);
        // Over-merged cluster with one stray: exactly chance-level ARI.
        assert!(adjusted_rand_index(&clusters, &labels).abs() < 1e-9);
        // One pure pair recovered, rest singletons: between 0 and 1.
        let partial = vec![vec![0, 1], vec![2], vec![3]];
        let ari = adjusted_rand_index(&partial, &labels);
        assert!(ari > 0.3 && ari < 1.0, "ari = {ari}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(purity(&[], &[]), 0.0);
        assert_eq!(adjusted_rand_index(&[vec![0]], &["a"]), 1.0);
        assert_eq!(type_count(&["a", "b", "a"]), 2);
    }
}

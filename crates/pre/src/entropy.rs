//! Column entropy and field-type guessing.
//!
//! Netzob-family tools annotate inferred fields with semantic guesses:
//! constants, flags, counters, random/encrypted data. The byte entropy of
//! an alignment column separates them — and gives another resilience
//! signal: obfuscated traffic pushes most columns toward maximum entropy
//! (random shares, keys), while plain protocols show low-entropy keywords
//! and counters.

use crate::infer::Profile;

/// Semantic guess for an inferred field position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldGuess {
    /// One value across all messages.
    Constant,
    /// Very few distinct values (flags, opcodes, versions).
    LowCardinality,
    /// Small numeric range (counters, small lengths).
    Counter,
    /// High entropy: payload, random shares, or encrypted data.
    Random,
}

/// Shannon entropy (bits) of the byte distribution in one column,
/// ignoring gaps. 0 for constant columns, up to 8 for uniform bytes.
pub fn column_entropy(profile: &Profile, col: usize) -> f64 {
    let mut counts = [0u32; 256];
    let mut total = 0u32;
    for b in profile.columns[col].iter().flatten() {
        counts[*b as usize] += 1;
        total += 1;
    }
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in &counts {
        if c > 0 {
            let p = f64::from(c) / f64::from(total);
            h -= p * p.log2();
        }
    }
    h
}

/// Mean column entropy of a profile — the aggregate randomness an analyst
/// observes in a message type.
pub fn mean_entropy(profile: &Profile) -> f64 {
    if profile.columns.is_empty() {
        return 0.0;
    }
    let total: f64 = (0..profile.columns.len()).map(|c| column_entropy(profile, c)).sum();
    total / profile.columns.len() as f64
}

/// Guesses the field type of a column from its value distribution.
pub fn guess_column(profile: &Profile, col: usize) -> FieldGuess {
    let values: Vec<u8> = profile.columns[col].iter().flatten().copied().collect();
    if values.is_empty() {
        return FieldGuess::Constant;
    }
    let mut distinct: Vec<u8> = values.clone();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() == 1 {
        return FieldGuess::Constant;
    }
    let n = values.len();
    let min = *distinct.first().expect("non-empty");
    let max = *distinct.last().expect("non-empty");
    // Small dense numeric range: counters and small lengths take many
    // distinct-but-adjacent values, so check the range before cardinality.
    if max < 64 && usize::from(max - min) <= n * 2 {
        return FieldGuess::Counter;
    }
    if distinct.len() <= (n / 4).max(2) {
        return FieldGuess::LowCardinality;
    }
    FieldGuess::Random
}

/// Fraction of columns guessed as `Random` — rises sharply under
/// obfuscation (split shares, padding, constant-op ciphertexts).
pub fn random_fraction(profile: &Profile) -> f64 {
    if profile.columns.is_empty() {
        return 0.0;
    }
    let r = (0..profile.columns.len())
        .filter(|&c| guess_column(profile, c) == FieldGuess::Random)
        .count();
    r as f64 / profile.columns.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::ScoreParams;
    use crate::infer::multiple_alignment;

    fn profile(msgs: &[&[u8]]) -> Profile {
        multiple_alignment(msgs, ScoreParams::default())
    }

    #[test]
    fn constant_column_has_zero_entropy() {
        let p = profile(&[b"AAAA", b"AAAA", b"AAAA"]);
        for c in 0..p.columns.len() {
            assert_eq!(column_entropy(&p, c), 0.0);
            assert_eq!(guess_column(&p, c), FieldGuess::Constant);
        }
        assert_eq!(mean_entropy(&p), 0.0);
    }

    #[test]
    fn two_valued_column_has_one_bit() {
        let p = profile(&[b"A", b"B", b"A", b"B"]);
        assert!((column_entropy(&p, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counter_detected() {
        // A column holding 0..8 across messages.
        let msgs: Vec<Vec<u8>> = (0u8..8).map(|i| vec![b'X', i, b'Y']).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let p = profile(&refs);
        assert_eq!(guess_column(&p, 0), FieldGuess::Constant);
        assert_eq!(guess_column(&p, 1), FieldGuess::Counter);
    }

    #[test]
    fn random_bytes_detected() {
        let msgs: Vec<Vec<u8>> = (0u8..16)
            .map(|i| vec![i.wrapping_mul(37).wrapping_add(11), i.wrapping_mul(91) ^ 0x5A])
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let p = profile(&refs);
        assert_eq!(guess_column(&p, 0), FieldGuess::Random);
        assert!(random_fraction(&p) > 0.4);
    }

    #[test]
    fn low_cardinality_detected() {
        // Opcode-like column: two spread-out values.
        let msgs: Vec<Vec<u8>> =
            (0..12).map(|i| vec![if i % 2 == 0 { 0x10 } else { 0x80 }]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let p = profile(&refs);
        assert_eq!(guess_column(&p, 0), FieldGuess::LowCardinality);
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = profile(&[]);
        assert_eq!(mean_entropy(&p), 0.0);
        assert_eq!(random_fraction(&p), 0.0);
    }
}

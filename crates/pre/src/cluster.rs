//! UPGMA hierarchical clustering over a similarity matrix — the message
//! classification step of PRE (paper §II-C3: classification quality is the
//! key leverage point the obfuscation attacks).

/// Clusters message indices by average-linkage (UPGMA): repeatedly merge
/// the two clusters with the highest average pairwise similarity until it
/// drops below `threshold`.
///
/// Returns clusters as index lists, each sorted, ordered by first member.
pub fn upgma(similarity: &[Vec<f64>], threshold: f64) -> Vec<Vec<usize>> {
    let n = similarity.len();
    if n == 0 {
        return Vec::new();
    }
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    loop {
        // Find the closest pair of clusters.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                let s = average_link(similarity, &clusters[i], &clusters[j]);
                if best.map(|(_, _, bs)| s > bs).unwrap_or(true) {
                    best = Some((i, j, s));
                }
            }
        }
        match best {
            Some((i, j, s)) if s >= threshold => {
                let merged = clusters.swap_remove(j);
                clusters[i].extend(merged);
                clusters[i].sort_unstable();
            }
            _ => break,
        }
    }
    clusters.sort_by_key(|c| c[0]);
    clusters
}

fn average_link(similarity: &[Vec<f64>], a: &[usize], b: &[usize]) -> f64 {
    let mut total = 0.0;
    for &x in a {
        for &y in b {
            total += similarity[x][y];
        }
    }
    total / (a.len() * b.len()) as f64
}

/// Assigns each element its cluster id, for label-based scoring.
pub fn assignments(clusters: &[Vec<usize>], n: usize) -> Vec<usize> {
    let mut out = vec![usize::MAX; n];
    for (cid, members) in clusters.iter().enumerate() {
        for &m in members {
            out[m] = cid;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::needless_range_loop)]
    fn block_matrix() -> Vec<Vec<f64>> {
        // Two tight groups {0,1,2} and {3,4}, dissimilar across.
        let mut m = vec![vec![0.1; 5]; 5];
        for i in 0..5 {
            m[i][i] = 1.0;
        }
        for &(i, j) in &[(0, 1), (0, 2), (1, 2), (3, 4)] {
            m[i][j] = 0.9;
            m[j][i] = 0.9;
        }
        m
    }

    #[test]
    fn clusters_tight_groups() {
        let c = upgma(&block_matrix(), 0.5);
        assert_eq!(c, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn threshold_one_keeps_singletons() {
        let c = upgma(&block_matrix(), 1.01);
        assert_eq!(c.len(), 5);
        assert!(c.iter().all(|cl| cl.len() == 1));
    }

    #[test]
    fn threshold_zero_merges_everything() {
        let c = upgma(&block_matrix(), 0.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        assert!(upgma(&[], 0.5).is_empty());
    }

    #[test]
    fn assignments_cover_all() {
        let c = upgma(&block_matrix(), 0.5);
        let a = assignments(&c, 5);
        assert_eq!(a[0], a[1]);
        assert_eq!(a[0], a[2]);
        assert_eq!(a[3], a[4]);
        assert_ne!(a[0], a[3]);
    }
}

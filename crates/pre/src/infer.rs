//! Message format inference from aligned message groups.
//!
//! Given a set of messages believed to be of the same type, a progressive
//! multiple alignment produces a column profile; runs of *static* columns
//! (same byte in every message) become inferred constant fields, runs of
//! *variable* columns become inferred data fields. This is the format
//! recovery step a Netzob-style analyst performs (paper §VII-D).

use crate::align::{needleman_wunsch, ScoreParams};

/// One column of the multiple alignment: the byte (or gap) each message
/// has at this position.
pub type Column = Vec<Option<u8>>;

/// A multiple alignment profile: `columns[c][m]` is message `m`'s byte at
/// column `c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Alignment columns.
    pub columns: Vec<Column>,
    /// Number of messages aligned.
    pub message_count: usize,
}

/// An inferred field of the message format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferredField {
    /// All messages carry these exact bytes here.
    Static(Vec<u8>),
    /// Messages differ here; lengths observed in `min_len..=max_len`.
    Variable {
        /// Shortest observed extent (gaps excluded).
        min_len: usize,
        /// Longest observed extent.
        max_len: usize,
    },
}

impl InferredField {
    /// True for static fields.
    pub fn is_static(&self) -> bool {
        matches!(self, InferredField::Static(_))
    }
}

/// Progressively aligns `messages` into a column profile.
///
/// Each message is aligned against the running consensus (majority byte
/// per column); insertions extend the profile with gap-padded columns.
pub fn multiple_alignment(messages: &[&[u8]], p: ScoreParams) -> Profile {
    let mut columns: Vec<Column> = Vec::new();
    let mut aligned = 0usize;
    for &msg in messages {
        if aligned == 0 {
            for &b in msg {
                columns.push(vec![Some(b)]);
            }
            aligned = 1;
            continue;
        }
        let consensus: Vec<u8> = columns.iter().map(majority).collect();
        let al = needleman_wunsch(&consensus, msg, p);
        let mut new_columns: Vec<Column> = Vec::with_capacity(al.len());
        let mut old_idx = 0usize;
        for (ca, cb) in al.a.iter().zip(&al.b) {
            match ca {
                Some(_) => {
                    // Existing column: append the new message's byte/gap.
                    let mut col = columns[old_idx].clone();
                    col.push(*cb);
                    new_columns.push(col);
                    old_idx += 1;
                }
                None => {
                    // Insertion: all previous messages have a gap here.
                    let mut col = vec![None; aligned];
                    col.push(*cb);
                    new_columns.push(col);
                }
            }
        }
        // Consensus deletions at the tail (shouldn't happen with global
        // alignment, but keep the profile consistent).
        while old_idx < columns.len() {
            let mut col = columns[old_idx].clone();
            col.push(None);
            new_columns.push(col);
            old_idx += 1;
        }
        columns = new_columns;
        aligned += 1;
    }
    Profile { columns, message_count: aligned }
}

fn majority(col: &Column) -> u8 {
    let mut counts = [0u32; 256];
    for b in col.iter().flatten() {
        counts[*b as usize] += 1;
    }
    counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(b, _)| b as u8).unwrap_or(0)
}

impl Profile {
    /// True if every message has the same (non-gap) byte at column `c`.
    pub fn is_static_column(&self, c: usize) -> bool {
        let col = &self.columns[c];
        let mut it = col.iter();
        match it.next() {
            Some(Some(first)) => it.all(|b| b.as_ref() == Some(first)),
            _ => false,
        }
    }

    /// Fraction of static columns — the "inferrable structure" score.
    /// High for a plain protocol type (keywords, opcodes, padding), low
    /// for obfuscated traffic (random shares, shuffled fields).
    pub fn static_fraction(&self) -> f64 {
        if self.columns.is_empty() {
            return 0.0;
        }
        let s = (0..self.columns.len()).filter(|&c| self.is_static_column(c)).count();
        s as f64 / self.columns.len() as f64
    }

    /// Segments the profile into inferred fields: maximal runs of static
    /// columns become [`InferredField::Static`], the rest
    /// [`InferredField::Variable`].
    pub fn fields(&self) -> Vec<InferredField> {
        let mut out = Vec::new();
        let mut c = 0;
        while c < self.columns.len() {
            if self.is_static_column(c) {
                let mut bytes = Vec::new();
                while c < self.columns.len() && self.is_static_column(c) {
                    bytes.push(self.columns[c][0].expect("static column has a byte"));
                    c += 1;
                }
                out.push(InferredField::Static(bytes));
            } else {
                let start = c;
                while c < self.columns.len() && !self.is_static_column(c) {
                    c += 1;
                }
                // Per-message extent of this run, gaps excluded.
                let (mut min_len, mut max_len) = (usize::MAX, 0usize);
                for m in 0..self.message_count {
                    let len = (start..c).filter(|&cc| self.columns[cc][m].is_some()).count();
                    min_len = min_len.min(len);
                    max_len = max_len.max(len);
                }
                out.push(InferredField::Variable {
                    min_len: if min_len == usize::MAX { 0 } else { min_len },
                    max_len,
                });
            }
        }
        out
    }

    /// Occurrences of `needle` inside inferred static fields — used to
    /// test whether a known delimiter (`\r\n`, `": "`) is still visible to
    /// the analyst.
    pub fn static_needle_count(&self, needle: &[u8]) -> usize {
        self.fields()
            .iter()
            .filter_map(|f| match f {
                InferredField::Static(bytes) => Some(bytes),
                _ => None,
            })
            .map(|bytes| {
                if bytes.len() < needle.len() {
                    0
                } else {
                    bytes.windows(needle.len()).filter(|w| *w == needle).count()
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(msgs: &[&[u8]]) -> Profile {
        multiple_alignment(msgs, ScoreParams::default())
    }

    #[test]
    fn identical_messages_are_fully_static() {
        let p = profile(&[b"GET /", b"GET /", b"GET /"]);
        assert_eq!(p.static_fraction(), 1.0);
        assert_eq!(p.fields(), vec![InferredField::Static(b"GET /".to_vec())]);
    }

    #[test]
    fn common_prefix_detected() {
        let p = profile(&[b"GET /a", b"GET /b", b"GET /c"]);
        let fields = p.fields();
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0], InferredField::Static(b"GET /".to_vec()));
        assert!(matches!(fields[1], InferredField::Variable { min_len: 1, max_len: 1 }));
    }

    #[test]
    fn variable_length_field_measured() {
        let p = profile(&[b"ab:x:", b"ab:yyy:", b"ab:zz:"]);
        let fields = p.fields();
        // Static "ab:" then variable then static ":".
        assert_eq!(fields[0], InferredField::Static(b"ab:".to_vec()));
        match &fields[1] {
            InferredField::Variable { min_len, max_len } => {
                assert_eq!(*min_len, 1);
                assert_eq!(*max_len, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn static_needle_counting() {
        let p = profile(&[b"a\r\nb\r\n", b"a\r\nb\r\n"]);
        assert_eq!(p.static_needle_count(b"\r\n"), 2);
        assert_eq!(p.static_needle_count(b"xx"), 0);
    }

    #[test]
    fn random_bytes_have_low_static_fraction() {
        // Two unrelated random-ish strings share few columns.
        let p = profile(&[b"\x12\x54\x9a\xde\x03\x77", b"\xb1\x02\x45\x99\xfe\x10"]);
        assert!(p.static_fraction() < 0.35, "{}", p.static_fraction());
    }

    #[test]
    fn profile_counts_messages() {
        let p = profile(&[b"aa", b"ab", b"ac", b"ad"]);
        assert_eq!(p.message_count, 4);
    }

    #[test]
    fn empty_and_single() {
        let p = profile(&[]);
        assert_eq!(p.message_count, 0);
        assert_eq!(p.static_fraction(), 0.0);
        let p1 = profile(&[b"xy"]);
        assert_eq!(p1.message_count, 1);
        assert_eq!(p1.static_fraction(), 1.0);
    }
}

//! Needleman–Wunsch global sequence alignment on byte strings.
//!
//! This is the algorithm family the PI project introduced to protocol
//! reverse engineering (paper §II-B) and that Netzob-style tools use for
//! message comparison: align two messages, score their similarity, and use
//! the aligned columns for format inference.

/// Scoring parameters for the alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreParams {
    /// Score for two equal bytes.
    pub matched: i32,
    /// Score for two different bytes.
    pub mismatch: i32,
    /// Score for aligning a byte against a gap.
    pub gap: i32,
}

impl Default for ScoreParams {
    fn default() -> Self {
        // Classic PI-project weights: reward identity, punish gaps mildly.
        ScoreParams { matched: 2, mismatch: -1, gap: -1 }
    }
}

/// Result of aligning two byte strings: two equal-length rows where `None`
/// is a gap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Alignment row for the first input.
    pub a: Vec<Option<u8>>,
    /// Alignment row for the second input.
    pub b: Vec<Option<u8>>,
    /// Raw alignment score.
    pub score: i32,
}

impl Alignment {
    /// Number of columns.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True if the alignment is empty.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Number of columns where both rows hold the same byte.
    pub fn matches(&self) -> usize {
        self.a.iter().zip(&self.b).filter(|(x, y)| x.is_some() && x == y).count()
    }
}

/// Globally aligns `a` and `b`.
pub fn needleman_wunsch(a: &[u8], b: &[u8], p: ScoreParams) -> Alignment {
    let n = a.len();
    let m = b.len();
    // DP matrix, row-major (n+1) x (m+1).
    let w = m + 1;
    let mut dp = vec![0i32; (n + 1) * w];
    for i in 1..=n {
        dp[i * w] = dp[(i - 1) * w] + p.gap;
    }
    for j in 1..=m {
        dp[j] = dp[j - 1] + p.gap;
    }
    for i in 1..=n {
        for j in 1..=m {
            let s = if a[i - 1] == b[j - 1] { p.matched } else { p.mismatch };
            let diag = dp[(i - 1) * w + (j - 1)] + s;
            let up = dp[(i - 1) * w + j] + p.gap;
            let left = dp[i * w + (j - 1)] + p.gap;
            dp[i * w + j] = diag.max(up).max(left);
        }
    }
    // Traceback.
    let mut ra = Vec::with_capacity(n.max(m));
    let mut rb = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        if i > 0 && j > 0 {
            let s = if a[i - 1] == b[j - 1] { p.matched } else { p.mismatch };
            if dp[i * w + j] == dp[(i - 1) * w + (j - 1)] + s {
                ra.push(Some(a[i - 1]));
                rb.push(Some(b[j - 1]));
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 && dp[i * w + j] == dp[(i - 1) * w + j] + p.gap {
            ra.push(Some(a[i - 1]));
            rb.push(None);
            i -= 1;
        } else {
            ra.push(None);
            rb.push(Some(b[j - 1]));
            j -= 1;
        }
    }
    ra.reverse();
    rb.reverse();
    Alignment { score: dp[n * w + m], a: ra, b: rb }
}

/// Similarity in `[0, 1]`: matched columns over the longer input length.
/// Two identical messages score 1; unrelated random bytes score near the
/// coincidence floor (~1/256 per byte plus alignment slack).
pub fn similarity(a: &[u8], b: &[u8], p: ScoreParams) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let al = needleman_wunsch(a, b, p);
    al.matches() as f64 / a.len().max(b.len()) as f64
}

/// Pairwise similarity matrix of a message set (symmetric, 1.0 diagonal).
pub fn similarity_matrix(messages: &[&[u8]], p: ScoreParams) -> Vec<Vec<f64>> {
    let n = messages.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        m[i][i] = 1.0;
        for j in i + 1..n {
            let s = similarity(messages[i], messages[j], p);
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_align_perfectly() {
        let al = needleman_wunsch(b"hello", b"hello", ScoreParams::default());
        assert_eq!(al.matches(), 5);
        assert_eq!(al.len(), 5);
        assert_eq!(similarity(b"hello", b"hello", ScoreParams::default()), 1.0);
    }

    #[test]
    fn insertion_produces_gap() {
        let al = needleman_wunsch(b"abcd", b"abXcd", ScoreParams::default());
        assert_eq!(al.matches(), 4);
        assert_eq!(al.len(), 5);
        assert!(al.a.contains(&None));
        assert!(!al.b.contains(&None));
    }

    #[test]
    fn empty_inputs() {
        let al = needleman_wunsch(b"", b"abc", ScoreParams::default());
        assert_eq!(al.len(), 3);
        assert_eq!(al.matches(), 0);
        assert!(al.is_empty() || !al.is_empty()); // len 3
        assert_eq!(similarity(b"", b"", ScoreParams::default()), 1.0);
        assert_eq!(similarity(b"", b"abc", ScoreParams::default()), 0.0);
    }

    #[test]
    fn alignment_rows_have_equal_length() {
        let al = needleman_wunsch(b"GET /a HTTP/1.1", b"POST /bb HTTP/1.1", ScoreParams::default());
        assert_eq!(al.a.len(), al.b.len());
        // The shared suffix should align.
        assert!(al.matches() >= b" HTTP/1.1".len());
    }

    #[test]
    fn similar_messages_score_higher_than_dissimilar() {
        let p = ScoreParams::default();
        let m1 = b"\x00\x01\x00\x00\x00\x06\x11\x03\x00\x6B\x00\x03";
        let m2 = b"\x00\x02\x00\x00\x00\x06\x11\x03\x00\x10\x00\x01";
        let m3 = b"GET /index.html HTTP/1.1\r\n\r\n";
        assert!(similarity(m1, m2, p) > 0.6);
        assert!(similarity(m1, m2, p) > similarity(m1, m3, p));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let msgs: Vec<&[u8]> = vec![b"aaa", b"aab", b"zzz"];
        let m = similarity_matrix(&msgs, ScoreParams::default());
        for i in 0..3 {
            assert_eq!(m[i][i], 1.0);
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
        assert!(m[0][1] > m[0][2]);
    }

    #[test]
    fn score_reflects_parameters() {
        let strict = ScoreParams { matched: 1, mismatch: -10, gap: -10 };
        let al = needleman_wunsch(b"abc", b"abc", strict);
        assert_eq!(al.score, 3);
    }
}

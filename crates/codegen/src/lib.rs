//! # protoobf-codegen
//!
//! C source generation for obfuscated protocol libraries, plus the potency
//! metrics the paper reports on the generated artifact (§VI–§VII).
//!
//! The paper's framework emits a C serialization library (parser,
//! serializer, accessors, internal structures, sanity checks) whose
//! complexity is the *potency* measure of the obfuscation: number of code
//! lines, number of structures, and the size/depth of the parse call graph
//! extracted with `cflow`. [`generate`] reproduces that artifact from a
//! [`protoobf_core::Codec`]; [`measure`] computes the metrics with a
//! built-in miniature cflow.
//!
//! ```
//! use protoobf_core::{Codec, Obfuscator};
//! use protoobf_codegen::{generate, measure};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = protoobf_spec::parse_spec("message M { u16 a; u16 b; }")?;
//! let base = measure(&generate(&Codec::identity(&graph)));
//! let codec = Obfuscator::new(&graph).seed(5).max_per_node(2).obfuscate()?;
//! let obf = measure(&generate(&codec));
//! assert!(obf.lines > base.lines);
//! # Ok(())
//! # }
//! ```

//! The emitter intentionally walks the obfuscation graph (the paper's
//! artifact is defined node-by-node over it); the runtime-oriented,
//! plan-targeted backend is a separate follow-up tracked in ROADMAP.md
//! and stubbed in [`plan`].

pub mod cflow;
pub mod emit;
pub mod metrics;
pub mod plan;

pub use emit::{generate, GeneratedLibrary};
pub use metrics::{measure, NormalizedPotency, PotencyMetrics};

//! A miniature `cflow`: static call-graph extraction from the generated C
//! source. The paper uses the real cflow tool on its generated library and
//! reports the size (number of nodes) and depth of the parsing process's
//! call graph; this module computes the same quantities.

use std::collections::{HashMap, HashSet};

/// A static call graph: functions and their call edges.
#[derive(Debug, Clone)]
pub struct CallGraph {
    names: Vec<String>,
    index: HashMap<String, usize>,
    edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Number of functions defined in the source.
    pub fn function_count(&self) -> usize {
        self.names.len()
    }

    /// Index of a function by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Callees of a function.
    pub fn callees(&self, f: usize) -> &[usize] {
        &self.edges[f]
    }

    /// Function name by index.
    pub fn name(&self, f: usize) -> &str {
        &self.names[f]
    }

    /// Number of functions reachable from `entry` (including itself) —
    /// the paper's "call graph size".
    pub fn reachable_size(&self, entry: &str) -> usize {
        let start = match self.find(entry) {
            Some(s) => s,
            None => return 0,
        };
        let mut seen = HashSet::new();
        let mut stack = vec![start];
        while let Some(f) = stack.pop() {
            if seen.insert(f) {
                for &c in &self.edges[f] {
                    stack.push(c);
                }
            }
        }
        seen.len()
    }

    /// Length (in nodes) of the longest call chain from `entry` — the
    /// paper's "call graph depth". Cycles (never produced by the
    /// generator) are cut at the back edge.
    pub fn depth(&self, entry: &str) -> usize {
        let start = match self.find(entry) {
            Some(s) => s,
            None => return 0,
        };
        let mut memo: HashMap<usize, usize> = HashMap::new();
        let mut on_stack: HashSet<usize> = HashSet::new();
        fn go(
            g: &CallGraph,
            f: usize,
            memo: &mut HashMap<usize, usize>,
            on_stack: &mut HashSet<usize>,
        ) -> usize {
            if let Some(&d) = memo.get(&f) {
                return d;
            }
            if !on_stack.insert(f) {
                return 0; // back edge
            }
            let best = g.edges[f].iter().map(|&c| go(g, c, memo, on_stack)).max().unwrap_or(0);
            on_stack.remove(&f);
            memo.insert(f, best + 1);
            best + 1
        }
        go(self, start, &mut memo, &mut on_stack)
    }
}

/// Extracts the call graph from C source text.
///
/// Function definitions are recognized as lines that declare a name
/// followed by `(` and end the header with `{`; call sites are identifiers
/// followed by `(` inside bodies that match a defined function.
pub fn extract(source: &str) -> CallGraph {
    let defs = definitions(source);
    let index: HashMap<String, usize> =
        defs.iter().enumerate().map(|(i, (n, _, _))| (n.clone(), i)).collect();
    let lines: Vec<&str> = source.lines().collect();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];
    for (i, (_, start, end)) in defs.iter().enumerate() {
        let mut seen = HashSet::new();
        for line in &lines[*start..*end] {
            for name in call_sites(line) {
                if let Some(&callee) = index.get(name) {
                    if callee != i && seen.insert(callee) {
                        edges[i].push(callee);
                    }
                }
            }
        }
    }
    CallGraph { names: defs.into_iter().map(|(n, _, _)| n).collect(), index, edges }
}

/// Finds function definitions: `(name, body_start_line, body_end_line)`.
fn definitions(source: &str) -> Vec<(String, usize, usize)> {
    let lines: Vec<&str> = source.lines().collect();
    let mut defs = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        if let Some(name) = definition_name(line) {
            // Body runs until the matching closing brace at column 0.
            let mut j = i + 1;
            while j < lines.len() && !lines[j].starts_with('}') {
                j += 1;
            }
            defs.push((name, i + 1, j.min(lines.len())));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    defs
}

/// Heuristic matching the emitter's rigid format: a definition header is a
/// top-level line with a `(`, ending in `{`, that is not a control keyword
/// or struct declaration.
fn definition_name(line: &str) -> Option<String> {
    if !line.ends_with('{') || line.starts_with(' ') || line.starts_with('}') {
        return None;
    }
    if line.starts_with("struct") || line.starts_with("typedef") {
        return None;
    }
    let open = line.find('(')?;
    let head = &line[..open];
    let name = head.rsplit(|c: char| c.is_whitespace() || c == '*').next()?;
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    Some(name.to_string())
}

/// Identifiers immediately followed by `(` in a body line.
fn call_sites(line: &str) -> Vec<&str> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if (bytes[i] as char).is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'(' {
                out.push(&line[start..i]);
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
static void helper_a(int x) {
    noop(x);
}
static void helper_b(int x) {
    helper_a(x);
}
static int parse_root(int y) {
    helper_b(y);
    helper_a(y);
    if (y) {
        helper_b(y);
    }
    return 0;
}
int unrelated(void) {
    return 1;
}
"#;

    #[test]
    fn extracts_definitions() {
        let g = extract(SAMPLE);
        assert_eq!(g.function_count(), 4);
        assert!(g.find("parse_root").is_some());
        assert!(g.find("noop").is_none()); // undefined callee ignored
    }

    #[test]
    fn reachable_size_from_entry() {
        let g = extract(SAMPLE);
        assert_eq!(g.reachable_size("parse_root"), 3); // root, b, a
        assert_eq!(g.reachable_size("helper_a"), 1);
        assert_eq!(g.reachable_size("missing"), 0);
    }

    #[test]
    fn depth_is_longest_chain() {
        let g = extract(SAMPLE);
        assert_eq!(g.depth("parse_root"), 3); // root -> b -> a
        assert_eq!(g.depth("helper_a"), 1);
    }

    #[test]
    fn duplicate_calls_counted_once() {
        let g = extract(SAMPLE);
        let root = g.find("parse_root").unwrap();
        assert_eq!(g.callees(root).len(), 2);
    }

    #[test]
    fn cycles_do_not_hang() {
        let src = r#"
static void a(void) {
    b();
}
static void b(void) {
    a();
}
"#;
        let g = extract(src);
        assert_eq!(g.depth("a"), 2);
        assert_eq!(g.reachable_size("a"), 2);
    }

    #[test]
    fn control_keywords_not_definitions() {
        let src = "static int f(void) {\n    while (x) {\n    }\n    return 0;\n}\n";
        let g = extract(src);
        assert_eq!(g.function_count(), 1);
    }
}

//! Placeholder for the **plan-targeted** code generator.
//!
//! The emitter in [`crate::emit`] deliberately walks the obfuscation
//! graph because the artifact it produces *is the paper's measured
//! object*: the potency metrics of §VII are defined over the generated C
//! library, node by node. It is a measurement rendition, not a runtime
//! backend, and it stays graph-shaped for that reason.
//!
//! The runtime-oriented successor sketched in ROADMAP.md ("Ahead-of-time
//! codegen backend") targets the compiled [`protoobf_core::plan::CodecPlan`]
//! instead: the plan's flat slot program — dense `u32` indices, pooled
//! byte-op stacks, pre-resolved recovery/distribution programs — is
//! exactly the IR a specializing code generator wants, and the new
//! `protoobf_core::verify` pass gives it a machine-checkable contract to
//! emit against (every diagnostic the verifier can raise is an invariant
//! the generated code may assume). Differential coverage against the
//! interpreter comes free from the existing fuzz harnesses.
//!
//! Until that backend lands this module only records the interface
//! boundary, so downstream code has a stable path to probe.

/// Whether the plan-targeted backend is implemented. Always `false` for
/// now; flips when the ROADMAP item lands so callers can feature-probe
/// instead of version-sniffing.
pub const BACKEND_AVAILABLE: bool = false;

//! Potency metrics of a generated library (paper §VII-B).
//!
//! * **Number of code lines** — the amount of generated code for the
//!   complete serialization library;
//! * **Number of structures** — internal structures used to store data
//!   during parsing;
//! * **Call graph size / depth** — extracted from the parse entry point
//!   with the miniature cflow.

use crate::cflow;
use crate::emit::GeneratedLibrary;

/// The potency metrics the paper reports per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PotencyMetrics {
    /// Non-empty source lines.
    pub lines: usize,
    /// Structure definitions.
    pub structs: usize,
    /// Functions reachable from the parse entry.
    pub callgraph_size: usize,
    /// Longest call chain from the parse entry.
    pub callgraph_depth: usize,
}

impl PotencyMetrics {
    /// Normalizes against a baseline (the non-obfuscated library), giving
    /// the paper's "potency (normalized)" rows.
    pub fn normalized(&self, baseline: &PotencyMetrics) -> NormalizedPotency {
        let ratio = |a: usize, b: usize| if b == 0 { 0.0 } else { a as f64 / b as f64 };
        NormalizedPotency {
            lines: ratio(self.lines, baseline.lines),
            structs: ratio(self.structs, baseline.structs),
            callgraph_size: ratio(self.callgraph_size, baseline.callgraph_size),
            callgraph_depth: ratio(self.callgraph_depth, baseline.callgraph_depth),
        }
    }
}

/// Potency relative to the non-obfuscated library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedPotency {
    /// Lines ratio.
    pub lines: f64,
    /// Structures ratio.
    pub structs: f64,
    /// Call-graph size ratio.
    pub callgraph_size: f64,
    /// Call-graph depth ratio.
    pub callgraph_depth: f64,
}

/// Measures a generated library.
pub fn measure(lib: &GeneratedLibrary) -> PotencyMetrics {
    let lines = lib.source.lines().filter(|l| !l.trim().is_empty()).count();
    let structs = lib
        .source
        .lines()
        .filter(|l| {
            let t = l.trim_start();
            (t.starts_with("struct ") || t.starts_with("typedef struct")) && t.ends_with('{')
        })
        .count();
    let graph = cflow::extract(&lib.source);
    PotencyMetrics {
        lines,
        structs,
        callgraph_size: graph.reachable_size(&lib.parse_entry),
        callgraph_depth: graph.depth(&lib.parse_entry),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::generate;
    use protoobf_core::{Codec, Obfuscator};
    use protoobf_spec::parse_spec;

    fn graph() -> protoobf_core::FormatGraph {
        parse_spec(
            r#"
            message T {
                u16 id;
                u16 length = len(data);
                bytes data sized_by length;
                ascii word until " ";
                bytes tail rest;
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn baseline_metrics_are_positive() {
        let m = measure(&generate(&Codec::identity(&graph())));
        assert!(m.lines > 50);
        assert!(m.structs >= 6);
        assert!(m.callgraph_size >= 6);
        assert!(m.callgraph_depth >= 2);
    }

    #[test]
    fn obfuscation_increases_potency() {
        let g = graph();
        let base = measure(&generate(&Codec::identity(&g)));
        let mut grew = 0;
        for seed in 0..5 {
            let codec = Obfuscator::new(&g).seed(seed).max_per_node(2).obfuscate().unwrap();
            let m = measure(&generate(&codec));
            let n = m.normalized(&base);
            assert!(n.lines > 1.0, "lines ratio {} (seed {seed})", n.lines);
            assert!(n.structs > 1.0, "structs ratio {}", n.structs);
            if n.callgraph_size > 1.0 {
                grew += 1;
            }
        }
        assert!(grew >= 4, "call graph grew in {grew}/5 plans");
    }

    #[test]
    fn potency_scales_with_level() {
        let g = graph();
        let base = measure(&generate(&Codec::identity(&g)));
        let mut prev = 1.0;
        for level in 1..=4 {
            let codec = Obfuscator::new(&g).seed(9).max_per_node(level).obfuscate().unwrap();
            let n = measure(&generate(&codec)).normalized(&base);
            assert!(
                n.lines >= prev * 0.95,
                "lines ratio should not shrink: level {level} gives {}",
                n.lines
            );
            prev = n.lines;
        }
        // Level 4 should be at least twice the baseline, echoing the
        // paper's Tables III/IV trend.
        assert!(prev > 2.0, "level-4 lines ratio was {prev}");
    }

    #[test]
    fn normalization_math() {
        let a = PotencyMetrics { lines: 200, structs: 20, callgraph_size: 30, callgraph_depth: 8 };
        let b = PotencyMetrics { lines: 100, structs: 10, callgraph_size: 10, callgraph_depth: 4 };
        let n = a.normalized(&b);
        assert_eq!(n.lines, 2.0);
        assert_eq!(n.structs, 2.0);
        assert_eq!(n.callgraph_size, 3.0);
        assert_eq!(n.callgraph_depth, 2.0);
    }
}
